//! Selective-dropping threshold tuning (the Figure 15/16 methodology).
//!
//! Sweeps the Aeolus threshold on an N-to-1 microbenchmark and prints the
//! bottleneck queue occupancy and the first-RTT utilization — showing why
//! the paper recommends 6 KB (4 packets): small enough to keep queues tiny,
//! large enough to fill the first RTT at any fan-in.
//!
//! ```text
//! cargo run --release --example selective_drop_tuning [fan_in]
//! ```

use aeolus::experiments::fig15::queue_stats;
use aeolus::experiments::fig16::first_rtt_utilization;

fn main() {
    let fan_in: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    println!("N-to-1 on a 100G switch, N = {fan_in}, 200KB per sender\n");
    println!(
        "{:>10} {:>14} {:>14} {:>18}",
        "threshold", "avg qlen (B)", "max qlen (B)", "first-RTT util"
    );
    for k in [1_500u64, 3_000, 6_000, 12_000, 24_000, 48_000, 96_000] {
        let (avg, max) = queue_stats(k, fan_in);
        let util = first_rtt_utilization(k, fan_in);
        let marker = if k == 6_000 { "  <- paper default" } else { "" };
        println!("{:>9}B {:>14.1} {:>14} {:>18.3}{marker}", k, avg, max, util);
    }
}
