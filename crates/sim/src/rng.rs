//! Self-contained seedable RNG for workloads and fault injection.
//!
//! The workspace builds fully offline, so instead of depending on the `rand`
//! crate the simulator carries its own generator: **xoshiro256++** (Blackman
//! & Vigna), seeded through SplitMix64 exactly as the reference
//! implementation recommends. It is not cryptographic — it only has to be
//! fast, well-distributed and bit-for-bit reproducible across platforms,
//! which is what a deterministic simulation needs.
//!
//! All draws are derived from `next_u64` with fixed arithmetic (no
//! platform-dependent floating-point paths beyond IEEE-754 double ops), so a
//! fixed seed yields identical traffic on every machine.

/// A seedable xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Expand a 64-bit seed into the full 256-bit state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut z = seed;
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        SimRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply range reduction (Lemire); the modulo bias
    /// is at most `n / 2^64`, far below anything a simulation can observe.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform index in `[0, n)` for slice indexing.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_covers_the_range_uniformly() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }
}
