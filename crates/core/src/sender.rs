//! Sender-side Aeolus state for one flow: pre-credit burst, SACK/probe loss
//! detection, and the paper's retransmission priority order (§3.3):
//! loss-detected unscheduled first, then unsent scheduled, then
//! sent-but-unacknowledged unscheduled.

use std::collections::VecDeque;

use aeolus_sim::RangeSet;

/// A chunk the transport should send next in the credit-induced phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First byte offset.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// True when these bytes were sent before (a recovery transmission).
    pub retransmit: bool,
    /// True when this is a category-3 retransmission: the bytes were never
    /// declared lost, the sender is re-sending them speculatively because
    /// everything else is exhausted (§3.3 "last resort"). Lets transports
    /// attribute the retransmission cause in traces.
    pub last_resort: bool,
}

/// Per-flow sender state for the Aeolus building block.
#[derive(Debug)]
pub struct PreCreditSender {
    size: u64,
    /// End of the region eligible for the unscheduled burst.
    burst_budget_end: u64,
    /// Next unscheduled byte to burst.
    burst_next: u64,
    /// How far the burst actually got before it ended.
    burst_sent_end: u64,
    /// Whether the pre-credit phase is over (credit arrived / budget spent).
    burst_ended: bool,
    /// Sequence carried by the probe (byte after last unscheduled), if sent.
    probe_seq: Option<u64>,
    probe_acked: bool,
    /// Bytes acknowledged by the receiver.
    acked: RangeSet,
    /// Ranges declared lost, awaiting retransmission (popped in order).
    /// The flag forces retransmission even of ranges already covered by a
    /// guaranteed scheduled copy (set by explicit receiver resend requests,
    /// which mean that copy did not arrive).
    lost_pending: VecDeque<(u64, u64, bool)>,
    /// Everything ever declared lost (to avoid double declarations).
    lost_declared: RangeSet,
    /// First never-sent byte (the scheduled frontier).
    next_unsent: u64,
    /// Unacked burst bytes already retransmitted as a last resort.
    resent_last_resort: RangeSet,
    /// Whether category 3 (last-resort retransmission of unacked burst
    /// bytes) is enabled. Protocols with an explicit per-loss signal (NDP's
    /// NACKs) disable it: retransmitting in-flight-ACK bytes there only
    /// feeds duplicate loops.
    last_resort_enabled: bool,
}

impl PreCreditSender {
    /// State for a flow of `size` bytes allowed to burst `burst_budget`
    /// unscheduled bytes (one BDP). With a zero budget the flow behaves like
    /// plain proactive transport (waits for credits).
    pub fn new(size: u64, burst_budget: u64) -> PreCreditSender {
        let burst_budget_end = burst_budget.min(size);
        PreCreditSender {
            size,
            burst_budget_end,
            burst_next: 0,
            burst_sent_end: 0,
            burst_ended: burst_budget_end == 0,
            probe_seq: None,
            probe_acked: false,
            acked: RangeSet::new(),
            lost_pending: VecDeque::new(),
            lost_declared: RangeSet::new(),
            next_unsent: burst_budget_end,
            resent_last_resort: RangeSet::new(),
            last_resort_enabled: true,
        }
    }

    /// Disable category-3 (last-resort) retransmissions.
    pub fn disable_last_resort(&mut self) {
        self.last_resort_enabled = false;
    }

    /// Flow size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Next unscheduled chunk to burst in the pre-credit phase, or `None`
    /// when the budget is spent (which also ends the burst).
    pub fn next_burst_chunk(&mut self, mtu: u32) -> Option<Chunk> {
        if self.burst_ended || self.burst_next >= self.burst_budget_end {
            return None;
        }
        let seq = self.burst_next;
        let len = (mtu as u64).min(self.burst_budget_end - seq) as u32;
        self.burst_next += len as u64;
        self.burst_sent_end = self.burst_next;
        Some(Chunk { seq, len, retransmit: false, last_resort: false })
    }

    /// Whether the pre-credit burst phase is over.
    pub fn burst_ended(&self) -> bool {
        self.burst_ended
    }

    /// End the pre-credit phase (credit arrived, or the burst completed).
    /// Returns the probe sequence to transmit, the first time the burst ends
    /// after having sent at least one unscheduled byte.
    pub fn end_burst(&mut self) -> Option<u64> {
        if self.burst_ended {
            return None;
        }
        self.burst_ended = true;
        // Anything not burst yet becomes plain unsent scheduled data.
        self.next_unsent = self.burst_sent_end;
        if self.burst_sent_end > 0 {
            let seq = self.burst_sent_end;
            self.probe_seq = Some(seq);
            Some(seq)
        } else {
            None
        }
    }

    /// Handle a per-packet ACK of `[start, end)`.
    ///
    /// Because Aeolus keeps one FIFO queue per port, data and ACKs stay in
    /// order; a selective ACK for `start` therefore implies every unacked
    /// unscheduled byte before `start` was dropped (§3.3 "selective ACK …
    /// for loss detection in the middle").
    ///
    /// Returns the number of bytes *newly* declared lost by SACK-gap
    /// inference (zero when the ACK revealed nothing new).
    pub fn on_ack(&mut self, start: u64, end: u64) -> u64 {
        self.acked.insert(start, end);
        self.declare_lost_within(0, start.min(self.burst_sent_end))
    }

    /// Record an ACK *without* SACK gap inference. Used when the network may
    /// reorder packets across priority queues (the §3.2 ambiguity), where a
    /// gap does not imply a loss; recovery then falls back to timeouts.
    pub fn on_ack_no_infer(&mut self, start: u64, end: u64) {
        self.acked.insert(start, end);
    }

    /// Handle the probe ACK: every unacked unscheduled byte is now known
    /// lost (§3.3 tail-loss detection).
    ///
    /// Returns the number of bytes newly declared lost.
    pub fn on_probe_ack(&mut self) -> u64 {
        if self.probe_acked {
            return 0;
        }
        self.probe_acked = true;
        self.declare_lost_within(0, self.burst_sent_end)
    }

    fn declare_lost_within(&mut self, lo: u64, hi: u64) -> u64 {
        let mut newly = 0;
        let mut cursor = lo;
        while let Some((s, e)) = self.acked.first_uncovered_in(cursor, hi) {
            // Skip parts already declared.
            let mut c = s;
            while c < e {
                match self.lost_declared.first_uncovered_in(c, e) {
                    Some((ls, le)) => {
                        self.lost_declared.insert(ls, le);
                        self.lost_pending.push_back((ls, le, false));
                        newly += le - ls;
                        c = le;
                    }
                    None => break,
                }
            }
            cursor = e;
        }
        newly
    }

    /// The next chunk to send with a credit/grant/pull, following the
    /// paper's priority: lost unscheduled > unsent > unacked unscheduled.
    pub fn next_scheduled_chunk(&mut self, mtu: u32) -> Option<Chunk> {
        // 1. Loss-detected unscheduled bytes. Skip anything acked meanwhile.
        // When scheduled delivery is guaranteed (`last_resort_enabled`, the
        // Aeolus regime), also skip anything already retransmitted as a
        // scheduled packet — that copy will arrive, so sending it again only
        // burns credits/grants. Signal-driven protocols (NDP NACKs) keep
        // re-sending on every explicit loss signal instead.
        while let Some((s, e, force)) = self.lost_pending.pop_front() {
            let mut cursor = s;
            let mut found: Option<(u64, u64)> = None;
            while cursor < e {
                match self.acked.first_uncovered_in(cursor, e) {
                    Some((us, ue)) => {
                        if force || !self.last_resort_enabled {
                            found = Some((us, ue));
                            break;
                        }
                        match self.resent_last_resort.first_uncovered_in(us, ue) {
                            Some((rs, re)) => {
                                found = Some((rs, re));
                                break;
                            }
                            None => cursor = ue,
                        }
                    }
                    None => break,
                }
            }
            if let Some((us, ue)) = found {
                let len = (mtu as u64).min(ue - us) as u32;
                let rest = us + len as u64;
                if rest < e {
                    self.lost_pending.push_front((rest, e, force));
                }
                if self.last_resort_enabled {
                    // Record the guaranteed copy so it is never re-sent
                    // without an explicit resend request.
                    self.resent_last_resort.insert(us, us + len as u64);
                }
                return Some(Chunk { seq: us, len, retransmit: true, last_resort: false });
            }
            // Entire range acked or already retransmitted: drop it.
        }
        // 2. Unsent scheduled bytes.
        if self.next_unsent < self.size {
            let seq = self.next_unsent;
            let len = (mtu as u64).min(self.size - seq) as u32;
            self.next_unsent += len as u64;
            return Some(Chunk { seq, len, retransmit: false, last_resort: false });
        }
        // 3. Sent-but-unacknowledged unscheduled bytes (last resort; each
        // range retransmitted at most once this way, and ranges already
        // declared lost are category 1's business).
        if !self.last_resort_enabled {
            return None;
        }
        let mut cursor = 0;
        while let Some((s, e)) = self.acked.first_uncovered_in(cursor, self.burst_sent_end) {
            let mut sub = s;
            while sub < e {
                match self.lost_declared.first_uncovered_in(sub, e) {
                    Some((ds, de)) => match self.resent_last_resort.first_uncovered_in(ds, de) {
                        Some((us, ue)) => {
                            let len = (mtu as u64).min(ue - us) as u32;
                            self.resent_last_resort.insert(us, us + len as u64);
                            return Some(Chunk { seq: us, len, retransmit: true, last_resort: true });
                        }
                        None => sub = de,
                    },
                    None => break,
                }
            }
            cursor = e;
        }
        None
    }

    /// Whether every byte of the flow has been acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.acked.covered() >= self.size
    }

    /// Bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.acked.covered()
    }

    /// Whether the sender still has anything to offer (new, lost, or
    /// last-resort bytes).
    pub fn has_work(&self) -> bool {
        if !self.lost_pending.is_empty() || self.next_unsent < self.size {
            return true;
        }
        if !self.last_resort_enabled {
            return false;
        }
        let mut cursor = 0;
        while let Some((s, e)) = self.acked.first_uncovered_in(cursor, self.burst_sent_end) {
            let mut sub = s;
            while sub < e {
                match self.lost_declared.first_uncovered_in(sub, e) {
                    Some((ds, de)) => {
                        if self.resent_last_resort.first_uncovered_in(ds, de).is_some() {
                            return true;
                        }
                        sub = de;
                    }
                    None => break,
                }
            }
            cursor = e;
        }
        false
    }

    /// Unacked ranges within everything sent so far — used by the RTO-based
    /// recovery strawman (§5.5) instead of probe detection.
    pub fn unacked_ranges(&self) -> Vec<(u64, u64)> {
        let sent_end = self.next_unsent.max(self.burst_sent_end);
        self.acked.gaps(sent_end)
    }

    /// Queue a range for retransmission regardless of earlier declarations.
    /// For *edge-triggered* loss signals (NDP NACKs) where each signal
    /// corresponds to one concrete loss event — a range whose retransmission
    /// is lost again gets NACKed again and must be requeued, which the
    /// level-triggered [`PreCreditSender::force_mark_lost`] dedupe would
    /// suppress. Already-acked portions are still filtered at pop time.
    /// Returns the number of bytes queued for retransmission.
    pub fn requeue_lost(&mut self, start: u64, end: u64) -> u64 {
        // Only bytes actually sent can be lost; clamping keeps a spurious
        // resend request from duplicating bytes category 2 will still send.
        let end = end.min(self.next_unsent.max(self.burst_sent_end));
        if start >= end {
            return 0;
        }
        self.lost_declared.insert(start, end);
        // Force: the receiver explicitly says these bytes are missing, so
        // any earlier "guaranteed" scheduled copy evidently died.
        self.lost_pending.push_back((start, end, true));
        end - start
    }

    /// Force ranges into the lost queue (RTO-based recovery path).
    ///
    /// Returns the number of bytes newly declared lost (ranges already
    /// declared are deduplicated and not counted again).
    pub fn force_mark_lost(&mut self, ranges: &[(u64, u64)]) -> u64 {
        let mut newly = 0;
        for &(s, e) in ranges {
            let mut c = s;
            while c < e {
                match self.lost_declared.first_uncovered_in(c, e) {
                    Some((ls, le)) => {
                        self.lost_declared.insert(ls, le);
                        self.lost_pending.push_back((ls, le, true));
                        newly += le - ls;
                        c = le;
                    }
                    None => break,
                }
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MTU: u32 = 1000;

    /// Drain the whole burst, returning chunk seqs.
    fn burst_all(s: &mut PreCreditSender) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| s.next_burst_chunk(MTU)).map(|c| (c.seq, c.len)).collect()
    }

    #[test]
    fn small_flow_fits_entirely_in_burst() {
        let mut s = PreCreditSender::new(2500, 10_000);
        assert_eq!(burst_all(&mut s), vec![(0, 1000), (1000, 1000), (2000, 500)]);
        assert_eq!(s.end_burst(), Some(2500));
        // Once everything is ACKed there is nothing left to offer.
        s.on_ack(0, 2500);
        assert_eq!(s.next_scheduled_chunk(MTU), None, "nothing lost, nothing unsent");
        assert!(s.fully_acked());
        assert!(!s.has_work());
    }

    #[test]
    fn burst_respects_budget() {
        let mut s = PreCreditSender::new(100_000, 3_000);
        assert_eq!(burst_all(&mut s).len(), 3);
        assert_eq!(s.end_burst(), Some(3000));
        // Unsent bytes start right after the budget.
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (3000, false));
    }

    #[test]
    fn credit_arrival_mid_burst_truncates_unscheduled_region() {
        let mut s = PreCreditSender::new(100_000, 10_000);
        s.next_burst_chunk(MTU);
        s.next_burst_chunk(MTU);
        // Credit arrives: stop bursting at 2000.
        assert_eq!(s.end_burst(), Some(2000));
        assert_eq!(s.next_burst_chunk(MTU), None);
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!(c.seq, 2000);
        assert!(!c.retransmit);
    }

    #[test]
    fn zero_budget_never_bursts_nor_probes() {
        let mut s = PreCreditSender::new(5000, 0);
        assert_eq!(s.next_burst_chunk(MTU), None);
        assert_eq!(s.end_burst(), None);
        assert!(s.burst_ended());
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!(c.seq, 0);
    }

    #[test]
    fn probe_ack_declares_tail_losses() {
        let mut s = PreCreditSender::new(3000, 3000);
        burst_all(&mut s);
        s.end_burst();
        // Only the first packet was ACKed; probe ack reveals the rest lost.
        s.on_ack(0, 1000);
        s.on_probe_ack();
        let c1 = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c1.seq, c1.len, c1.retransmit), (1000, 1000, true));
        let c2 = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c2.seq, c2.len, c2.retransmit), (2000, 1000, true));
        assert_eq!(s.next_scheduled_chunk(MTU), None);
    }

    #[test]
    fn selective_ack_detects_middle_loss_without_probe() {
        let mut s = PreCreditSender::new(3000, 3000);
        burst_all(&mut s);
        s.end_burst();
        // ACK for the third packet implies the first two are lost (FIFO).
        s.on_ack(2000, 3000);
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (0, true));
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (1000, true));
    }

    #[test]
    fn retransmission_priority_order() {
        // 2 KB burst (first packet lost), 2 KB unsent.
        let mut s = PreCreditSender::new(4000, 2000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(1000, 2000); // implies [0,1000) lost
        // 1. loss-detected unscheduled.
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (0, true));
        // 2. unsent scheduled.
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (2000, false));
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (3000, false));
        assert_eq!(s.next_scheduled_chunk(MTU), None, "nothing unacked undeclared");
    }

    #[test]
    fn last_resort_retransmits_unacked_burst_once() {
        let mut s = PreCreditSender::new(2000, 2000);
        burst_all(&mut s);
        s.end_burst();
        // No ACKs, no probe ACK. Categories 1 and 2 are empty; category 3
        // re-sends the whole burst exactly once.
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (0, true));
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (1000, true));
        assert_eq!(s.next_scheduled_chunk(MTU), None);
        assert!(!s.has_work());
    }

    #[test]
    fn acked_lost_ranges_are_skipped_at_pop() {
        let mut s = PreCreditSender::new(2000, 2000);
        burst_all(&mut s);
        s.end_burst();
        s.on_probe_ack(); // both packets declared lost
        s.on_ack(0, 1000); // late ACK beats retransmission
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!(c.seq, 1000, "the acked range must be skipped");
    }

    #[test]
    fn fully_acked_tracks_completion() {
        let mut s = PreCreditSender::new(2000, 2000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(0, 1000);
        assert!(!s.fully_acked());
        s.on_ack(1000, 2000);
        assert!(s.fully_acked());
        assert_eq!(s.acked_bytes(), 2000);
    }

    #[test]
    fn rto_path_uses_forced_marks() {
        let mut s = PreCreditSender::new(3000, 3000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(0, 1000);
        let unacked = s.unacked_ranges();
        assert_eq!(unacked, vec![(1000, 3000)]);
        s.force_mark_lost(&unacked);
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (1000, true));
        // Double-marking must not duplicate.
        s.force_mark_lost(&[(1000, 3000)]);
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!(c.seq, 2000);
        assert_eq!(s.next_scheduled_chunk(MTU), None);
    }

    #[test]
    fn guaranteed_copies_are_not_resent_without_a_force() {
        let mut s = PreCreditSender::new(2000, 2000);
        burst_all(&mut s);
        s.end_burst();
        // Nothing acked: category 3 resends both packets once (guaranteed
        // scheduled copies).
        assert_eq!(s.next_scheduled_chunk(MTU).unwrap().seq, 0);
        assert_eq!(s.next_scheduled_chunk(MTU).unwrap().seq, 1000);
        // A later probe ACK declares them lost — but the guaranteed copies
        // are already in flight, so category 1 must NOT re-send.
        s.on_probe_ack();
        assert_eq!(s.next_scheduled_chunk(MTU), None);
        // An explicit receiver resend request overrides the guarantee.
        s.requeue_lost(0, 1000);
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit), (0, true));
        assert_eq!(s.next_scheduled_chunk(MTU), None);
    }

    #[test]
    fn requeue_can_repeat_after_each_request() {
        // NDP-style: last resort disabled; every explicit signal re-sends.
        let mut s = PreCreditSender::new(1000, 1000);
        s.disable_last_resort();
        burst_all(&mut s);
        s.end_burst();
        for _ in 0..3 {
            s.requeue_lost(0, 1000);
            let c = s.next_scheduled_chunk(MTU).unwrap();
            assert_eq!((c.seq, c.len), (0, 1000));
        }
        assert_eq!(s.next_scheduled_chunk(MTU), None);
    }

    #[test]
    fn priority_spans_all_three_categories_in_order() {
        // 3 KB burst, middle packet ACKed (declaring the first lost), tail
        // packet in limbo; 2 KB scheduled remainder. Credits must be spent
        // in the paper's order: lost unscheduled, then unsent scheduled,
        // then (only once everything else is exhausted) the unACKed tail.
        let mut s = PreCreditSender::new(5000, 3000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(1000, 2000); // implies [0,1000) lost; [2000,3000) undeclared
        let order: Vec<(u64, bool, bool)> =
            std::iter::from_fn(|| s.next_scheduled_chunk(MTU))
                .map(|c| (c.seq, c.retransmit, c.last_resort))
                .collect();
        assert_eq!(
            order,
            vec![
                (0, true, false),    // category 1: loss-detected
                (3000, false, false), // category 2: unsent scheduled
                (4000, false, false),
                (2000, true, true),  // category 3: last-resort unACKed
            ]
        );
    }

    #[test]
    fn lost_probe_with_retry_disabled_recovers_via_last_resort() {
        // The probe_retry_rtts = 0 regime: the probe died on the wire and no
        // retry will ever re-send it, so tail losses are never *declared*.
        // Category 3 must still re-offer the unACKed tail exactly once, and
        // completion must not depend on the probe ACK arriving.
        let mut s = PreCreditSender::new(3000, 3000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(0, 1000);
        // No probe ACK, no SACK gap: categories 1 and 2 are empty.
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit, c.last_resort), (1000, true, true));
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!((c.seq, c.retransmit, c.last_resort), (2000, true, true));
        assert_eq!(s.next_scheduled_chunk(MTU), None, "each range re-sent at most once");
        s.on_ack(1000, 3000);
        assert!(s.fully_acked());
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut s = PreCreditSender::new(2000, 2000);
        burst_all(&mut s);
        s.end_burst();
        s.on_ack(0, 1000);
        s.on_ack(0, 1000);
        s.on_probe_ack();
        s.on_probe_ack();
        let c = s.next_scheduled_chunk(MTU).unwrap();
        assert_eq!(c.seq, 1000);
        assert_eq!(s.next_scheduled_chunk(MTU), None);
    }
}
