//! Plain-text table rendering for experiment output.
//!
//! Every experiment runner prints its paper table/figure as an aligned text
//! table (and optionally CSV), so results diff cleanly between runs.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                let c = &cells[i];
                line.push_str(c);
                line.push_str(&" ".repeat(widths[i] - c.len()));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimal places (the paper's usual precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["scheme", "mean"]);
        t.row(vec!["Homa", "50030.00"]);
        t.row(vec!["Homa+Aeolus", "25.04"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("Homa"));
        // Columns align: "mean" starts at the same offset in all rows.
        let col = lines[0].find("mean").unwrap();
        assert_eq!(&lines[3][col - 2..col], "  ");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(50030.0), "50030.00");
        assert_eq!(f3(0.9), "0.900");
    }
}
