//! Benches for the extensions beyond the paper: pHost, DCTCP, Fastpass and
//! the ablation kernels. Plain `main` under the in-tree harness.

use aeolus_bench::harness::Suite;
use aeolus_bench::{bench_fabric, bench_incast, bench_testbed, bench_workload};
use aeolus_sim::units::ms;
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder};
use aeolus_workloads::Workload;

fn extension_benches(suite: &mut Suite) {
    suite.bench("ext_phost_aeolus_workload", || {
        bench_workload(Scheme::PHostAeolus, bench_fabric(), Workload::WebServer, 30) as u64
    });
    suite.bench("ext_dctcp_workload", || {
        bench_workload(Scheme::Dctcp { rto: ms(10) }, bench_fabric(), Workload::WebServer, 30)
            as u64
    });
    suite.bench("ext_fastpass_incast", || {
        bench_incast(Scheme::FastpassAeolus, 30_000, 3) as u64
    });
    suite.bench("ext_fastpass_arbiter_throughput", || {
        // Many small flows = many arbiter round trips: benches the arbiter.
        let mut h = SchemeBuilder::new(Scheme::Fastpass).topology(bench_testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..40u64)
            .map(|i| FlowDesc {
                id: FlowId(i + 1),
                src: hosts[(i as usize) % (hosts.len() - 1) + 1],
                dst: hosts[0],
                size: 5_000,
                start: i * 50_000_000,
            })
            .collect();
        h.schedule(&flows);
        h.run(ms(100));
        h.metrics().completed_count() as u64
    });
}

fn main() {
    let mut suite = Suite::new("extensions");
    extension_benches(&mut suite);
}
