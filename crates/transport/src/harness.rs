//! Scenario harness: build a topology wired for a [`Scheme`], install
//! endpoints, schedule flows and run — the shared front door for integration
//! tests, examples and every experiment runner.

use aeolus_sim::topology::{
    fat_tree_with, leaf_spine_with, single_switch_with, LinkParams, Topology,
};
use aeolus_sim::units::Time;
use aeolus_sim::{FlowDesc, Metrics, NodeId, NullTracer, Tracer};

use crate::registry::{Scheme, SchemeParams};

/// Which topology to build (the paper's three families).
#[derive(Debug, Clone, Copy)]
pub enum TopoSpec {
    /// `hosts` servers on one switch (testbed / microbenchmarks).
    SingleSwitch {
        /// Number of hosts.
        hosts: usize,
        /// Link parameters.
        link: LinkParams,
    },
    /// Two-tier leaf-spine.
    LeafSpine {
        /// Spine switch count.
        spines: usize,
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Link parameters.
        link: LinkParams,
    },
    /// Three-tier oversubscribed fat-tree (ExpressPass paper shape).
    FatTree {
        /// Spine switch count.
        spines: usize,
        /// Pod count.
        pods: usize,
        /// ToRs per pod.
        tors_per_pod: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// Hosts per ToR.
        hosts_per_tor: usize,
        /// Link parameters.
        link: LinkParams,
    },
}

/// A runnable scenario: topology + scheme + endpoints.
///
/// Generic over the telemetry [`Tracer`]; the default [`NullTracer`]
/// compiles every trace hook away.
pub struct Harness<T: Tracer = NullTracer> {
    /// The built topology (network inside).
    pub topo: Topology<T>,
    /// The scheme under test.
    pub scheme: Scheme,
    /// The resolved parameters (base RTT filled from the topology).
    pub params: SchemeParams,
}

impl Harness {
    /// Build the topology for `scheme`, wiring every port with the scheme's
    /// queue discipline and installing one endpoint per host.
    ///
    /// `params.base_rtt` is overwritten with the topology's base RTT unless
    /// it was already set to a non-zero value by the caller.
    #[deprecated(
        since = "0.2.0",
        note = "use SchemeBuilder::new(scheme).params(..).topology(..).build()"
    )]
    pub fn new(scheme: Scheme, params: SchemeParams, spec: TopoSpec) -> Harness {
        Harness::with_tracer(scheme, params, spec, NullTracer)
    }
}

impl<T: Tracer> Harness<T> {
    /// [`SchemeBuilder::build`]'s engine: build the scheme's topology with
    /// `tracer` installed on the network, wire every port with the scheme's
    /// queue discipline and install one endpoint per host.
    ///
    /// `params.base_rtt` is overwritten with the topology's base RTT unless
    /// it was already set to a non-zero value by the caller.
    pub fn with_tracer(
        scheme: Scheme,
        mut params: SchemeParams,
        spec: TopoSpec,
        tracer: T,
    ) -> Harness<T> {
        // One live shared-buffer pool per harness, handed to every port's
        // queue factory (configs carry only the capacity).
        let pool = params.shared_pool.map(aeolus_sim::SharedPool::new);
        let qf = |rate, role| scheme.make_queue(&params, rate, role, pool.as_ref());
        let mut topo = match spec {
            TopoSpec::SingleSwitch { hosts, mut link } => {
                link.policy = scheme.route_policy();
                single_switch_with(tracer, hosts, link, &qf)
            }
            TopoSpec::LeafSpine { spines, leaves, hosts_per_leaf, mut link } => {
                link.policy = scheme.route_policy();
                leaf_spine_with(tracer, spines, leaves, hosts_per_leaf, link, &qf)
            }
            TopoSpec::FatTree { spines, pods, tors_per_pod, aggs_per_pod, hosts_per_tor, mut link } => {
                link.policy = scheme.route_policy();
                fat_tree_with(tracer, spines, pods, tors_per_pod, aggs_per_pod, hosts_per_tor, link, &qf)
            }
        };
        if params.base_rtt == 0 {
            // Base RTT plus a few serialization times so BDP bursts are not
            // undersized on short-haul topologies.
            let ser_slack = 4 * topo.host_rate.serialize((params.mtu_payload + 40) as u64);
            params.base_rtt = topo.base_rtt + ser_slack;
        }
        if scheme.needs_arbiter() {
            // Reserve the last host as the centralized arbiter; it is
            // removed from `hosts()` so workloads never touch it.
            let arbiter = topo.hosts.pop().expect("topology needs ≥2 hosts for an arbiter");
            params.arbiter = Some(arbiter);
            topo.net.set_endpoint(arbiter, scheme.make_arbiter(&params));
        }
        let hosts = topo.hosts.clone();
        for h in hosts {
            topo.net.set_endpoint(h, scheme.make_endpoint(&params));
        }
        Harness { topo, scheme, params }
    }

    /// All host node ids.
    pub fn hosts(&self) -> &[NodeId] {
        &self.topo.hosts
    }

    /// Schedule flows for execution.
    pub fn schedule(&mut self, flows: &[FlowDesc]) {
        for f in flows {
            self.topo.net.schedule_flow(*f);
        }
    }

    /// Run until all flows complete or `horizon`; returns completion status.
    pub fn run(&mut self, horizon: Time) -> bool {
        self.topo.net.run_to_completion(horizon)
    }

    /// Run metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.topo.net.metrics
    }

    /// Ideal (store-and-forward, unloaded) FCT for a flow of `size` bytes
    /// between two hosts of this topology — the slowdown denominator.
    pub fn ideal_fct(&self, size: u64) -> Time {
        let mtu = self.params.mtu_payload as u64;
        let wire = |payload: u64| payload + 40;
        let full = size / mtu;
        let rest = size % mtu;
        let rate = self.topo.host_rate;
        // All packets serialized at the NIC, plus the last packet's
        // serialization at the bottleneck hop, plus the one-way base delay.
        let mut t = 0;
        for _ in 0..full {
            t += rate.serialize(wire(mtu));
        }
        if rest > 0 {
            t += rate.serialize(wire(rest));
        }
        let last = if rest > 0 { rest } else { mtu.min(size) };
        t += rate.serialize(wire(last));
        t + self.topo.base_rtt / 2
    }
}
