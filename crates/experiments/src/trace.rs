//! `repro --trace` — run one canonical traced scenario and dump the full
//! telemetry capture as deterministic JSONL.
//!
//! The scenario is the paper's recurring motif: a 7:1 incast of 30 KB
//! messages on the 8-host / 10 Gbps single-switch testbed, repeated for a
//! configurable number of rounds spaced 1 ms apart. It exercises every
//! event class the [`aeolus_sim::RecordingTracer`] captures — unscheduled
//! bursts, selective drops / marks / trims, credit flow, loss detection and
//! retransmission — within a few milliseconds of simulated time.
//!
//! Spec grammar: `<scheme>[@rounds]`, e.g. `homa-aeolus`, `ndp@4`,
//! `dctcp:200@2` (the `:rto_us` suffix belongs to the scheme slug).

use std::str::FromStr;

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Time};
use aeolus_sim::{FlowDesc, FlowId, RecordingTracer, SchedulerKind};
use aeolus_stats::sparkline;
use aeolus_transport::{Scheme, SchemeBuilder, TopoSpec};

/// A parsed `--trace` argument: which scheme to trace and for how many
/// incast rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Transport scheme under the tracer.
    pub scheme: Scheme,
    /// Incast rounds (1 ms apart).
    pub rounds: u32,
}

impl TraceSpec {
    /// Filesystem-safe name for output files: the scheme slug, with
    /// `_xN` appended when the round count is not the default.
    pub fn file_stem(&self) -> String {
        let mut s = String::from(self.scheme.name());
        if self.rounds != 2 {
            s.push_str(&format!("_x{}", self.rounds));
        }
        s
    }
}

impl FromStr for TraceSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<TraceSpec, String> {
        let (scheme_part, rounds) = match s.split_once('@') {
            Some((sp, r)) => {
                let rounds: u32 = r
                    .parse()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or_else(|| format!("bad round count '{r}' in trace spec '{s}'"))?;
                (sp, rounds)
            }
            None => (s, 2),
        };
        let scheme = Scheme::from_str(scheme_part).map_err(|e| e.to_string())?;
        Ok(TraceSpec { scheme, rounds })
    }
}

/// Result of a traced run: the JSONL capture plus a human summary.
pub struct TraceOutput {
    /// Deterministic JSONL (see DESIGN.md "Observability" for the schema).
    pub jsonl: String,
    /// ASCII occupancy sparklines and counters for the terminal.
    pub summary: String,
}

/// Senders and message size of the canonical incast.
const FANIN: usize = 7;
const MSG_BYTES: u64 = 30_000;

/// Run the canonical traced incast for `spec` on the given scheduler.
///
/// Deterministic: identical `spec` and `kind` produce byte-identical
/// [`TraceOutput::jsonl`] on every run, on any worker-thread count, and
/// across both scheduler kinds.
pub fn run_trace(spec: &TraceSpec, kind: SchedulerKind) -> TraceOutput {
    let mut h = SchemeBuilder::new(spec.scheme)
        .topology(TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(aeolus_sim::Rate::gbps(10), us(3)),
        })
        .tracer(RecordingTracer::new())
        .build();
    h.topo.net.set_scheduler(kind);
    // Faults go in *after* the scheduler swap: a non-empty plan arms its
    // window-transition events immediately, and set_scheduler requires a
    // quiescent queue.
    let faults = crate::runner::default_faults();
    if !faults.is_empty() {
        h.topo.net.set_fault_plan(faults);
    }
    let hosts = h.hosts().to_vec();
    let mut flows = Vec::new();
    for round in 0..spec.rounds {
        for (i, &src) in hosts.iter().skip(1).take(FANIN).enumerate() {
            flows.push(FlowDesc {
                id: FlowId((round as u64) * FANIN as u64 + i as u64 + 1),
                src,
                dst: hosts[0],
                size: MSG_BYTES,
                start: round as Time * ms(1),
            });
        }
    }
    h.schedule(&flows);
    let done = h.run(spec.rounds as Time * ms(100));
    let completed = h.metrics().completed_count();
    let now = h.topo.net.now();
    let tracer = h.topo.net.tracer_mut();
    tracer.finish(now);
    let jsonl = tracer.to_jsonl();
    let summary = render_summary(spec, tracer, done, completed, flows.len());
    TraceOutput { jsonl, summary }
}

fn render_summary(
    spec: &TraceSpec,
    tracer: &RecordingTracer,
    done: bool,
    completed: usize,
    scheduled: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}: {FANIN}:1 incast x{} rounds, {MSG_BYTES} B messages — {completed}/{scheduled} flows completed{}",
        spec.scheme.label(),
        spec.rounds,
        if done { "" } else { " (HORIZON HIT)" },
    );
    let _ = writeln!(out, "queue depth per egress port (time left to right, '@' = port max):");
    for (&(node, port), pt) in tracer.ports() {
        let depths: Vec<u64> = pt.depth.samples().iter().map(|&(_, v)| v).collect();
        let max = depths.iter().copied().max().unwrap_or(0);
        if max == 0 {
            continue;
        }
        let drops = pt.ring.iter().filter(|r| matches!(r.ev, aeolus_sim::QueueEvent::Drop(_))).count();
        let _ = writeln!(
            out,
            "  n{:<3} p{:<2} -> n{:<3} |{}| max {:>7} B, {} drop(s) in ring",
            node.0,
            port.0,
            pt.to.0,
            sparkline(&depths, 72),
            max,
            drops,
        );
    }
    let ev = tracer.transport_events();
    let count = |pred: fn(&aeolus_sim::TransportEvent) -> bool| {
        ev.iter().filter(|(_, _, e)| pred(e)).count()
    };
    let _ = writeln!(
        out,
        "transport events: {} total — {} credit issues, {} bursts, {} losses detected, {} retransmits",
        ev.len(),
        count(|e| matches!(e, aeolus_sim::TransportEvent::CreditIssue { .. })),
        count(|e| matches!(e, aeolus_sim::TransportEvent::BurstStart { .. })),
        count(|e| matches!(e, aeolus_sim::TransportEvent::LossDetected { .. })),
        count(|e| matches!(e, aeolus_sim::TransportEvent::Retransmit { .. })),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::parallel_map;

    #[test]
    fn spec_parses_scheme_rounds_and_rto() {
        let t: TraceSpec = "homa-aeolus".parse().unwrap();
        assert_eq!(t.rounds, 2);
        assert_eq!(t.scheme.name(), "homa-aeolus");
        let t: TraceSpec = "ndp@4".parse().unwrap();
        assert_eq!(t.rounds, 4);
        assert_eq!(t.file_stem(), "ndp_x4");
        let t: TraceSpec = "dctcp:200@3".parse().unwrap();
        assert_eq!(t.scheme.name(), "dctcp");
        assert_eq!(t.scheme, Scheme::Dctcp { rto: aeolus_sim::units::us(200) });
        assert_eq!(t.file_stem(), "dctcp_x3");
        assert!("homa@0".parse::<TraceSpec>().is_err());
        assert!("nope".parse::<TraceSpec>().is_err());
    }

    #[test]
    fn jsonl_is_bit_identical_across_reruns_and_schedulers() {
        let spec: TraceSpec = "expresspass-aeolus".parse().unwrap();
        let a = run_trace(&spec, SchedulerKind::TimingWheel);
        let b = run_trace(&spec, SchedulerKind::TimingWheel);
        assert_eq!(a.jsonl, b.jsonl, "serial rerun must be bit-identical");
        let c = run_trace(&spec, SchedulerKind::BinaryHeap);
        assert_eq!(a.jsonl, c.jsonl, "scheduler kind must not leak into the trace");
        assert!(a.jsonl.lines().any(|l| l.contains("\"type\":\"queue\"")));
        assert!(a.jsonl.lines().any(|l| l.contains("\"type\":\"transport\"")));
    }

    #[test]
    fn jsonl_is_identical_under_parallel_execution() {
        let spec: TraceSpec = "homa-aeolus".parse().unwrap();
        let runs = parallel_map(&[(); 4], |_| run_trace(&spec, SchedulerKind::TimingWheel).jsonl);
        assert!(runs.windows(2).all(|w| w[0] == w[1]), "worker threads must not perturb the trace");
    }

    #[test]
    fn traced_incast_records_drops_for_aeolus_schemes() {
        // A 7:1 30 KB incast overflows the selective-drop threshold: the
        // trace must show drops at the fan-in port and retransmissions
        // recovering them.
        let spec: TraceSpec = "expresspass-aeolus".parse().unwrap();
        let out = run_trace(&spec, SchedulerKind::TimingWheel);
        assert!(out.jsonl.contains("\"ev\":\"drop\""), "expected selective drops in the capture");
        assert!(out.summary.contains("flows completed"));
    }
}
