//! Dense per-flow state containers for the event hot path.
//!
//! The seed kept per-flow transport state and timer bookkeeping in
//! `BTreeMap`s: every packet paid an O(log n) pointer chase through tree
//! nodes scattered across the heap. The two containers here replace that
//! with flat storage:
//!
//! * [`FlowMap`] — a slab of values plus an open-addressing hash index.
//!   Lookup is one multiply-shift hash and (usually) one probe into a
//!   contiguous array. Iteration in **slot order** is deterministic for a
//!   given operation history but is *not* key order — behavior-affecting
//!   scans must sort keys first (see [`FlowMap::keys_into`]), which the
//!   transports do with a reusable scratch `Vec` at timer cadence, never
//!   per packet.
//! * [`TimerTable`] — generation-checked timer payloads. `arm` hands out a
//!   token encoding `(generation << 32) | slot`; a stale token (slot reused
//!   since) fires as `None`, exactly like the seed's `BTreeMap::remove`
//!   miss. Tokens never enter event *ordering* (events order by
//!   `(time, seq)`), so swapping the token scheme preserves bit-exact
//!   schedules.
//!
//! Both recycle slots through free lists, so steady-state churn
//! (insert/remove per flow, arm/fire per timer) allocates nothing.

/// Key types usable in a [`FlowMap`]: cheap to copy, totally ordered (for
/// report-time sorting) and reducible to a `u64` for hashing.
pub trait FlowKey: Copy + Eq + Ord + std::fmt::Debug {
    /// The raw integer identity that gets hashed.
    fn as_u64(self) -> u64;
}

impl FlowKey for u64 {
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
}

impl FlowKey for crate::packet::FlowId {
    #[inline]
    fn as_u64(self) -> u64 {
        self.0
    }
}

impl FlowKey for crate::packet::NodeId {
    #[inline]
    fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

const EMPTY: u32 = u32::MAX;
const TOMB: u32 = u32::MAX - 1;

/// Fibonacci multiplier: spreads small sequential ids across the high bits.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// A hash map specialized for small-integer keys with slab value storage.
///
/// Values live in a dense `Vec` of slots recycled through a free list;
/// the index maps hashed keys to slot numbers with linear probing and
/// tombstoned deletion. All operations are allocation-free once the table
/// has reached its high-water size.
#[derive(Debug)]
pub struct FlowMap<K, V> {
    /// Value slab. `None` slots are on the free list.
    slots: Vec<Option<(K, V)>>,
    /// Recycled slot numbers.
    free: Vec<u32>,
    /// Open-addressing index: `EMPTY`, `TOMB`, or a slot number.
    /// Length is always a power of two (or zero before first insert).
    index: Vec<u32>,
    /// `64 - log2(index.len())`: multiply-shift hash uses the high bits.
    shift: u32,
    /// Live entries.
    len: usize,
    /// Tombstones in `index` (cleared on rehash).
    tombs: usize,
}

impl<K, V> Default for FlowMap<K, V> {
    fn default() -> Self {
        FlowMap::new()
    }
}

impl<K, V> FlowMap<K, V> {
    /// An empty map. Allocates nothing until the first insert.
    pub const fn new() -> FlowMap<K, V> {
        FlowMap { slots: Vec::new(), free: Vec::new(), index: Vec::new(), shift: 64, len: 0, tombs: 0 }
    }
}

impl<K: FlowKey, V> FlowMap<K, V> {
    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Drop every entry, keeping the allocated capacity (slab, free list and
    /// index are reused by subsequent inserts). Used by crash-recovery
    /// hardening to wipe per-flow transport state wholesale.
    pub fn clear(&mut self) {
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            *slot = None;
            self.free.push(i as u32);
        }
        for b in self.index.iter_mut() {
            *b = EMPTY;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// True when no entries are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // shift == 64 only when the index is empty, and every caller checks
        // that first; u64 >> 64 would be UB-adjacent (masked on x86).
        debug_assert!(self.shift < 64);
        (key.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// Find the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: K) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut i = self.bucket(key.as_u64());
        loop {
            match self.index[i] {
                EMPTY => return None,
                TOMB => {}
                s => {
                    // Index entries always point at occupied slots.
                    let (k, _) = self.slots[s as usize].as_ref().unwrap();
                    if *k == key {
                        return Some(s);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Borrow the value for `key`.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        let s = self.find(key)?;
        Some(&self.slots[s as usize].as_ref().unwrap().1)
    }

    /// Mutably borrow the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let s = self.find(key)?;
        Some(&mut self.slots[s as usize].as_mut().unwrap().1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: K) -> bool {
        self.find(key).is_some()
    }

    /// Insert `val` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        if let Some(s) = self.find(key) {
            let (_, v) = self.slots[s as usize].as_mut().unwrap();
            return Some(std::mem::replace(v, val));
        }
        let s = self.alloc_slot(key, val);
        self.link(key, s);
        None
    }

    /// Borrow the value for `key`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let s = match self.find(key) {
            Some(s) => s,
            None => {
                let s = self.alloc_slot(key, make());
                self.link(key, s);
                s
            }
        };
        &mut self.slots[s as usize].as_mut().unwrap().1
    }

    /// Remove and return the value for `key`.
    pub fn remove(&mut self, key: K) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut i = self.bucket(key.as_u64());
        loop {
            match self.index[i] {
                EMPTY => return None,
                TOMB => {}
                s => {
                    if self.slots[s as usize].as_ref().unwrap().0 == key {
                        self.index[i] = TOMB;
                        self.tombs += 1;
                        self.len -= 1;
                        self.free.push(s);
                        return Some(self.slots[s as usize].take().unwrap().1);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Iterate `(key, &value)` in slot order (deterministic for a given
    /// operation history, **not** key order).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterate `(key, &mut value)` in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots.iter_mut().filter_map(|s| s.as_mut().map(|(k, v)| (*k, v)))
    }

    /// Iterate values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }

    /// Iterate values mutably in slot order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|s| s.as_mut().map(|(_, v)| v))
    }

    /// Append every live key to `out` (unordered). Callers that need key
    /// order — the stall/resend scans whose emission order is
    /// behavior-affecting — sort the scratch afterwards:
    ///
    /// ```ignore
    /// scratch.clear();
    /// map.keys_into(&mut scratch);
    /// scratch.sort_unstable();
    /// ```
    pub fn keys_into(&self, out: &mut Vec<K>) {
        out.extend(self.slots.iter().filter_map(|s| s.as_ref().map(|(k, _)| *k)));
    }

    /// Take a fresh slot from the free list (or grow the slab).
    fn alloc_slot(&mut self, key: K, val: V) -> u32 {
        match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((key, val));
                s
            }
            None => {
                let s = self.slots.len() as u32;
                assert!(s < TOMB, "FlowMap slot space exhausted");
                self.slots.push(Some((key, val)));
                s
            }
        }
    }

    /// Write `slot` into the index under `key`, growing/rehashing first if
    /// the table would get too full (keeps ≥ 1/8 of buckets `EMPTY` so
    /// probes terminate fast).
    fn link(&mut self, key: K, slot: u32) {
        self.len += 1;
        if (self.len + self.tombs) * 8 > self.index.len() * 7 {
            // The rebuild walks the slab, which already holds the new
            // entry — it is fully linked after this, so don't probe again.
            self.rehash();
            return;
        }
        let mask = self.index.len() - 1;
        let mut i = self.bucket(key.as_u64());
        loop {
            match self.index[i] {
                EMPTY => {
                    self.index[i] = slot;
                    return;
                }
                TOMB => {
                    self.index[i] = slot;
                    self.tombs -= 1;
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Rebuild the index at ≥ 2x the live size; clears tombstones.
    #[cold]
    fn rehash(&mut self) {
        let cap = (self.len * 4).next_power_of_two().max(16);
        self.index.clear();
        self.index.resize(cap, EMPTY);
        self.shift = 64 - cap.trailing_zeros();
        self.tombs = 0;
        let mask = cap - 1;
        for (s, slot) in self.slots.iter().enumerate() {
            if let Some((k, _)) = slot {
                let mut i = (k.as_u64().wrapping_mul(PHI) >> self.shift) as usize;
                while self.index[i] != EMPTY {
                    i = (i + 1) & mask;
                }
                self.index[i] = s as u32;
            }
        }
    }
}

/// Generation-checked timer payload slab.
///
/// `arm(payload)` stores the payload and returns a token; `fire(token)`
/// takes it back out exactly once. Firing a token whose slot has since been
/// recycled returns `None` — the moral equivalent of the seed's
/// "token not in the BTreeMap, ignore" path, without the tree.
#[derive(Debug, Default)]
pub struct TimerTable<T> {
    /// `(generation, payload)`; `None` payload = disarmed slot.
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    live: usize,
}

impl<T> TimerTable<T> {
    /// An empty table.
    pub const fn new() -> TimerTable<T> {
        TimerTable { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Number of armed timers.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no timer is armed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Store `payload` and return the token to schedule with.
    pub fn arm(&mut self, payload: T) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push((0, None));
                s
            }
        };
        let (gen, p) = &mut self.slots[slot as usize];
        debug_assert!(p.is_none(), "armed into a live slot");
        *p = Some(payload);
        self.live += 1;
        ((*gen as u64) << 32) | slot as u64
    }

    /// Take the payload for `token`; `None` if the token is stale (already
    /// fired, or the slot was recycled for a newer timer).
    pub fn fire(&mut self, token: u64) -> Option<T> {
        let slot = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        let (g, p) = self.slots.get_mut(slot)?;
        if *g != gen || p.is_none() {
            return None;
        }
        let payload = p.take();
        *g = g.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        payload
    }

    /// Disarm every timer at once (host crash wipe). Each live slot's
    /// generation is bumped so tokens already scheduled into the event queue
    /// go stale — without the bump, a fresh `arm` could recycle the slot at
    /// the old generation and a pre-crash token would fire the new timer.
    pub fn clear(&mut self) {
        self.free.clear();
        for (slot, (gen, p)) in self.slots.iter_mut().enumerate() {
            if p.take().is_some() {
                *gen = gen.wrapping_add(1);
            }
            self.free.push(slot as u32);
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::rng::SimRng;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FlowMap<FlowId, u64> = FlowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(FlowId(7), 70), None);
        assert_eq!(m.insert(FlowId(9), 90), None);
        assert_eq!(m.insert(FlowId(7), 71), Some(70));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(FlowId(7)), Some(&71));
        assert_eq!(m.get(FlowId(8)), None);
        assert_eq!(m.remove(FlowId(7)), Some(71));
        assert_eq!(m.remove(FlowId(7)), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(FlowId(9)));
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: FlowMap<u64, Vec<u32>> = FlowMap::new();
        m.get_or_insert_with(3, || vec![1]).push(2);
        m.get_or_insert_with(3, || unreachable!("key exists")).push(3);
        assert_eq!(m.get(3), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn slot_reuse_keeps_lookups_correct() {
        let mut m: FlowMap<u64, u64> = FlowMap::new();
        for round in 0..50u64 {
            for k in 0..10 {
                m.insert(round * 100 + k, k);
            }
            for k in 0..10 {
                assert_eq!(m.remove(round * 100 + k), Some(k));
            }
        }
        assert!(m.is_empty());
        // The slab never grew past the working set.
        assert!(m.slots.len() <= 16, "slab leaked slots: {}", m.slots.len());
    }

    /// Randomized differential test against a `BTreeMap` reference model:
    /// same operations, same observable results, and identical contents
    /// when both are dumped and sorted.
    #[test]
    fn matches_btreemap_model_under_churn() {
        let mut rng = SimRng::seed_from_u64(0xF10F);
        let mut fm: FlowMap<FlowId, u64> = FlowMap::new();
        let mut model: BTreeMap<FlowId, u64> = BTreeMap::new();
        for step in 0..20_000u64 {
            let key = FlowId(rng.index(257) as u64);
            match rng.index(4) {
                0 => assert_eq!(fm.insert(key, step), model.insert(key, step), "insert {key:?}"),
                1 => assert_eq!(fm.remove(key), model.remove(&key), "remove {key:?}"),
                2 => assert_eq!(fm.get(key), model.get(&key), "get {key:?}"),
                _ => {
                    let v = fm.get_or_insert_with(key, || step);
                    let mv = model.entry(key).or_insert(step);
                    assert_eq!(v, mv, "entry {key:?}");
                    *v += 1;
                    *mv += 1;
                }
            }
            assert_eq!(fm.len(), model.len());
        }
        // Sorted traversal equals the model's ordered iteration.
        let mut keys = Vec::new();
        fm.keys_into(&mut keys);
        keys.sort_unstable();
        let dumped: Vec<(FlowId, u64)> = keys.iter().map(|&k| (k, *fm.get(k).unwrap())).collect();
        let expect: Vec<(FlowId, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(dumped, expect);
    }

    /// Slot-order iteration is a function of operation history alone — two
    /// maps fed the same operations agree element-for-element even though
    /// the order is not key order.
    #[test]
    fn iteration_order_is_deterministic() {
        let build = || {
            let mut m: FlowMap<u64, u64> = FlowMap::new();
            let mut rng = SimRng::seed_from_u64(99);
            for i in 0..500u64 {
                m.insert(rng.index(100) as u64, i);
                if i % 3 == 0 {
                    m.remove(rng.index(100) as u64);
                }
            }
            m
        };
        let a: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn keys_into_collects_all_live_keys() {
        let mut m: FlowMap<FlowId, ()> = FlowMap::new();
        for k in [5u64, 1, 9, 3] {
            m.insert(FlowId(k), ());
        }
        m.remove(FlowId(9));
        let mut keys = Vec::new();
        m.keys_into(&mut keys);
        keys.sort_unstable();
        assert_eq!(keys, vec![FlowId(1), FlowId(3), FlowId(5)]);
    }

    #[test]
    fn timer_tokens_fire_exactly_once() {
        let mut t: TimerTable<&str> = TimerTable::new();
        let a = t.arm("rto");
        let b = t.arm("probe");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.fire(a), Some("rto"));
        assert_eq!(t.fire(a), None, "second fire is stale");
        assert_eq!(t.fire(b), Some("probe"));
        assert!(t.is_empty());
    }

    #[test]
    fn recycled_slot_invalidates_old_token() {
        let mut t: TimerTable<u32> = TimerTable::new();
        let old = t.arm(1);
        assert_eq!(t.fire(old), Some(1));
        let new = t.arm(2);
        assert_eq!(new & 0xffff_ffff, old & 0xffff_ffff, "slot is reused");
        assert_ne!(new, old, "generation differs");
        assert_eq!(t.fire(old), None, "stale token must not steal the new payload");
        assert_eq!(t.fire(new), Some(2));
    }

    #[test]
    fn clear_goes_stale_and_slots_recycle_safely() {
        let mut t: TimerTable<&str> = TimerTable::new();
        let a = t.arm("rto");
        let b = t.arm("probe");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.fire(a), None, "pre-clear token is stale");
        assert_eq!(t.fire(b), None);
        // Recycled slots after the wipe must not answer to old tokens.
        let c = t.arm("fresh");
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert_eq!(t.fire(a), None, "old token must not steal the recycled slot");
        assert_eq!(t.fire(c), Some("fresh"));
        assert_eq!(t.slots.len(), 2, "clear recycles slots instead of leaking them");
    }

    #[test]
    fn flowmap_clear_wipes_and_reuses_capacity() {
        let mut m: FlowMap<FlowId, u32> = FlowMap::new();
        for i in 0..16 {
            m.insert(FlowId(i), i as u32);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        for i in 0..16 {
            assert_eq!(m.get(FlowId(i)), None);
        }
        for i in 16..32 {
            m.insert(FlowId(i), i as u32);
        }
        assert_eq!(m.len(), 16);
        assert_eq!(m.slots.len(), cap, "clear keeps the slab capacity");
        assert_eq!(m.get(FlowId(20)), Some(&20));
    }

    #[test]
    fn timer_churn_reuses_slots() {
        let mut t: TimerTable<u64> = TimerTable::new();
        for i in 0..10_000u64 {
            let tok = t.arm(i);
            assert_eq!(t.fire(tok), Some(i));
        }
        assert_eq!(t.slots.len(), 1, "ping-pong churn must reuse one slot");
    }
}
