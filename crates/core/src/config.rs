//! Aeolus configuration.

use aeolus_sim::units::{Rate, Time};
use aeolus_sim::{bdp_bytes, MIN_PACKET_BYTES};

/// How first-RTT losses are detected and recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Aeolus: per-packet ACKs + probe, retransmit once as scheduled.
    ProbeBased,
    /// Strawman used by the §5.5 priority-queueing comparison: a
    /// retransmission timeout of the given duration.
    Rto(Time),
}

/// Configuration of the Aeolus building block.
#[derive(Debug, Clone, Copy)]
pub struct AeolusConfig {
    /// Selective-dropping threshold at switches, bytes (paper default 6 KB).
    pub drop_threshold: u64,
    /// Per-port physical buffer, bytes (paper default 200 KB).
    pub port_buffer: u64,
    /// MTU payload bytes (paper: 1.5 KB wire MTU).
    pub mtu_payload: u32,
    /// Probe packet wire size (minimum Ethernet frame).
    pub probe_size: u32,
    /// Loss detection / recovery mode.
    pub recovery: RecoveryMode,
    /// Whether new flows burst unscheduled packets in the first RTT at all
    /// (disabled to model plain ExpressPass-style "wait for credit").
    pub precredit_burst: bool,
    /// §6 resilience extension: if the sender has heard *nothing* back (no
    /// credit/grant/pull, no ACK, no probe ACK) for this many base RTTs, it
    /// retransmits its request and probe — covering the extreme case where
    /// even the probe was dropped. 0 disables the retry.
    pub probe_retry_rtts: u32,
    /// Ablation knob: pre-credit burst budget as a fraction of the BDP
    /// (1.0 = the paper's one-BDP burst).
    pub burst_budget_frac: f64,
}

impl Default for AeolusConfig {
    fn default() -> Self {
        AeolusConfig {
            drop_threshold: 6_000,
            port_buffer: 200_000,
            mtu_payload: 1_460,
            probe_size: MIN_PACKET_BYTES,
            recovery: RecoveryMode::ProbeBased,
            precredit_burst: true,
            probe_retry_rtts: 20,
            burst_budget_frac: 1.0,
        }
    }
}

impl AeolusConfig {
    /// Bytes a new flow may burst pre-credit: one bandwidth-delay product of
    /// the host link (§3.1 "a BDP worth of unscheduled packets at line-rate").
    pub fn burst_budget(&self, line_rate: Rate, base_rtt: Time) -> u64 {
        let bdp = bdp_bytes(line_rate, base_rtt) as f64 * self.burst_budget_frac;
        (bdp as u64).max(self.mtu_payload as u64)
    }

    /// Reject nonsensical configurations with a descriptive error.
    ///
    /// A config that passes validation can be handed to any scheme builder
    /// without panicking deep inside the simulator; the checks mirror the
    /// physical constraints a real switch/NIC would impose.
    pub fn validate(&self) -> Result<(), String> {
        if self.mtu_payload == 0 {
            return Err("mtu_payload must be positive (no zero-byte MTUs)".into());
        }
        if self.probe_size == 0 {
            return Err("probe_size must be positive (probes occupy the wire)".into());
        }
        if self.port_buffer == 0 {
            return Err("port_buffer must be positive (a switch needs some buffer)".into());
        }
        if self.drop_threshold > self.port_buffer {
            return Err(format!(
                "drop_threshold ({} B) exceeds port_buffer ({} B): selective dropping \
                 would never engage before the buffer overflows",
                self.drop_threshold, self.port_buffer
            ));
        }
        if !self.burst_budget_frac.is_finite() || self.burst_budget_frac < 0.0 {
            return Err(format!(
                "burst_budget_frac ({}) must be a finite value >= 0",
                self.burst_budget_frac
            ));
        }
        if let RecoveryMode::Rto(rto) = self.recovery {
            if rto == 0 {
                return Err("RTO recovery needs a positive timeout".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::units::us;

    #[test]
    fn defaults_match_paper() {
        let c = AeolusConfig::default();
        assert_eq!(c.drop_threshold, 6_000, "6 KB = 4 packets");
        assert_eq!(c.port_buffer, 200_000);
        assert_eq!(c.probe_size, 64);
        assert_eq!(c.recovery, RecoveryMode::ProbeBased);
        assert!(c.precredit_burst);
        assert_eq!(c.probe_retry_rtts, 20);
    }

    #[test]
    fn validate_accepts_the_paper_defaults() {
        assert_eq!(AeolusConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_threshold_above_buffer() {
        let c = AeolusConfig { drop_threshold: 300_000, port_buffer: 200_000, ..Default::default() };
        let err = c.validate().unwrap_err();
        assert!(err.contains("drop_threshold"), "unhelpful error: {err}");
        assert!(err.contains("port_buffer"));
    }

    #[test]
    fn validate_rejects_zero_mtu_probe_and_buffer() {
        let c = AeolusConfig { mtu_payload: 0, ..Default::default() };
        assert!(c.validate().unwrap_err().contains("mtu_payload"));
        let c = AeolusConfig { probe_size: 0, ..Default::default() };
        assert!(c.validate().unwrap_err().contains("probe_size"));
        let c = AeolusConfig { port_buffer: 0, drop_threshold: 0, ..Default::default() };
        assert!(c.validate().unwrap_err().contains("port_buffer"));
    }

    #[test]
    fn validate_rejects_bad_burst_fraction_and_zero_rto() {
        let c = AeolusConfig { burst_budget_frac: -0.5, ..Default::default() };
        assert!(c.validate().unwrap_err().contains("burst_budget_frac"));
        let c = AeolusConfig { burst_budget_frac: f64::NAN, ..Default::default() };
        assert!(c.validate().is_err());
        let c = AeolusConfig { recovery: RecoveryMode::Rto(0), ..Default::default() };
        assert!(c.validate().unwrap_err().contains("RTO"));
        let c = AeolusConfig { recovery: RecoveryMode::Rto(1), ..Default::default() };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn burst_budget_is_bdp() {
        let c = AeolusConfig::default();
        // 100 Gbps x 4.5 us = 56.25 KB.
        assert_eq!(c.burst_budget(Rate::gbps(100), us(4) + 500_000), 56_250);
        // Never below one MTU, so tiny-RTT topologies still burst something.
        assert_eq!(c.burst_budget(Rate::mbps(1), us(1)), 1_460);
    }
}
