//! Protocol micro-behaviors, measured from packet traces: credit pacing on
//! the wire, trim→NACK→retransmit latency, probe positioning, and window
//! dynamics — details the end-to-end FCT tests cannot see.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Rate};
use aeolus_sim::{FlowDesc, FlowId, PacketKind, TraceKind, TrafficClass};
use aeolus_transport::{Harness, Scheme, SchemeBuilder, TopoSpec};

fn testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

/// Harness with one traced flow scheduled.
fn traced(scheme: Scheme, size: u64) -> Harness {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    h.topo.net.trace_flow(FlowId(1));
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
    assert!(h.run(ms(500)));
    h
}

#[test]
fn expresspass_credits_are_paced_at_the_credit_interval() {
    // Steady-state credits leaving the receiver must be spaced by one
    // (MTU + credit) serialization time — the switch-throttle-compatible
    // cadence that makes induced data exactly fill the link.
    let h = traced(Scheme::ExpressPass, 2_000_000);
    let receiver = h.hosts()[0];
    let credit_txs: Vec<u64> = h
        .topo
        .net
        .trace()
        .iter()
        .filter(|ev| {
            ev.node == receiver
                && ev.kind == PacketKind::Credit
                && matches!(ev.what, TraceKind::Transmit)
        })
        .map(|ev| ev.at)
        .collect();
    assert!(credit_txs.len() > 100, "need a steady-state credit stream");
    // Skip the ramp; measure the median gap in the second half.
    let tail = &credit_txs[credit_txs.len() / 2..];
    let mut gaps: Vec<u64> = tail.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    let median_gap = gaps[gaps.len() / 2];
    // Full rate: one credit per (1500 + 84) B at 10 Gbps = 1267.2 ns.
    let expect = Rate::gbps(10).serialize(1500 + 84);
    let ratio = median_gap as f64 / expect as f64;
    assert!(
        (0.9..1.5).contains(&ratio),
        "median credit gap {median_gap} ps vs expected {expect} ps (ratio {ratio:.2})"
    );
}

#[test]
fn aeolus_probe_is_the_last_first_rtt_transmission() {
    let h = traced(Scheme::ExpressPassAeolus, 15_000);
    let sender = h.hosts()[1];
    let trace = h.topo.net.trace();
    let probe_tx = trace
        .iter()
        .position(|ev| {
            ev.node == sender && ev.kind == PacketKind::Probe && matches!(ev.what, TraceKind::Transmit)
        })
        .expect("probe transmitted");
    let last_burst_tx = trace
        .iter()
        .rposition(|ev| {
            ev.node == sender
                && ev.class == TrafficClass::Unscheduled
                && matches!(ev.what, TraceKind::Transmit)
        })
        .expect("burst transmitted");
    assert!(
        probe_tx > last_burst_tx,
        "the probe (index {probe_tx}) must trail the whole burst (last at {last_burst_tx})"
    );
}

#[test]
fn ndp_trim_to_retransmit_takes_about_one_rtt() {
    // Overload the receiver so trims occur, then check that a trimmed
    // packet's payload is retransmitted roughly one RTT after the trim
    // (header races back, NACK out, pull clocks the retransmission).
    let mut h = SchemeBuilder::new(Scheme::Ndp).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    h.topo.net.trace_flow(FlowId(1));
    let mut flows = vec![FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 60_000, start: 0 }];
    for i in 2..7 {
        flows.push(FlowDesc {
            id: FlowId(i as u64),
            src: hosts[i],
            dst: hosts[0],
            size: 60_000,
            start: 0,
        });
    }
    h.schedule(&flows);
    assert!(h.run(ms(1000)));
    let trace = h.topo.net.trace();
    // Find the first trimmed-header arrival at the receiver and the next
    // retransmission of those bytes by the sender.
    let receiver = hosts[0];
    let sender = hosts[1];
    let (t_trim, seq) = trace
        .iter()
        .find_map(|ev| {
            (ev.node == receiver
                && matches!(ev.what, TraceKind::Arrive)
                && ev.kind == PacketKind::Data
                && ev.class == TrafficClass::Unscheduled)
                .then_some(())?;
            None
        })
        .unwrap_or((0, u64::MAX));
    let _ = (t_trim, seq);
    // Simpler, robust check: every NACK the sender receives is followed by a
    // retransmission transmit within 2 RTTs.
    let rtt = h.params.base_rtt;
    let nacks: Vec<u64> = trace
        .iter()
        .filter(|ev| {
            ev.node == sender && ev.kind == PacketKind::Nack && matches!(ev.what, TraceKind::Arrive)
        })
        .map(|ev| ev.at)
        .collect();
    assert!(!nacks.is_empty(), "overload must produce NACKs");
    for &t in nacks.iter().take(5) {
        let resent = trace.iter().any(|ev| {
            ev.node == sender
                && matches!(ev.what, TraceKind::Transmit)
                && ev.kind == PacketKind::Data
                && ev.at > t
                && ev.at < t + 4 * rtt
        });
        assert!(resent, "NACK at {t} not answered within 4 RTTs");
    }
}

#[test]
fn dctcp_slow_start_doubles_the_flight_per_rtt() {
    let h = traced(Scheme::Dctcp { rto: ms(10) }, 500_000);
    let sender = h.hosts()[1];
    let rtt = h.params.base_rtt;
    // Count data transmissions per RTT epoch; early epochs must grow.
    let txs: Vec<u64> = h
        .topo
        .net
        .trace()
        .iter()
        .filter(|ev| {
            ev.node == sender && ev.kind == PacketKind::Data && matches!(ev.what, TraceKind::Transmit)
        })
        .map(|ev| ev.at)
        .collect();
    let epoch = |t: u64| (t / rtt) as usize;
    let mut per_epoch = vec![0usize; epoch(*txs.last().unwrap()) + 1];
    for &t in &txs {
        per_epoch[epoch(t)] += 1;
    }
    // The testbed BDP is ~15 packets, so slow start saturates the line
    // within one doubling: epoch 0 carries the 10-packet initial window
    // (plus boundary-straddling ACK-clocked sends), epoch 1 runs at
    // (near-)line rate, and the flow never falls back below it.
    assert!(
        (10..=14).contains(&per_epoch[0]),
        "initial window epoch sent {}",
        per_epoch[0]
    );
    let line_rate_pkts = (rtt / Rate::gbps(10).serialize(1500)) as usize;
    assert!(
        per_epoch[1] > per_epoch[0] && per_epoch[1] + 2 >= line_rate_pkts,
        "second RTT must reach ~line rate ({} -> {}, line {})",
        per_epoch[0],
        per_epoch[1],
        line_rate_pkts
    );
    let mid = per_epoch.len() / 2;
    assert!(
        per_epoch[mid] + 3 >= line_rate_pkts,
        "steady state must hold near line rate (epoch {mid}: {})",
        per_epoch[mid]
    );
}

#[test]
fn fastpass_slots_are_evenly_spaced() {
    let h = traced(Scheme::Fastpass, 100_000);
    let sender = h.hosts()[1];
    let txs: Vec<u64> = h
        .topo
        .net
        .trace()
        .iter()
        .filter(|ev| {
            ev.node == sender
                && ev.kind == PacketKind::Data
                && ev.class == TrafficClass::Scheduled
                && matches!(ev.what, TraceKind::Transmit)
        })
        .map(|ev| ev.at)
        .collect();
    assert!(txs.len() >= 10, "scheduled slots expected, saw {}", txs.len());
    let slot = Rate::gbps(10).serialize(1500);
    for w in txs.windows(2) {
        let gap = w[1] - w[0];
        assert!(
            gap >= slot,
            "scheduled transmissions {gap} ps apart — closer than one arbiter slot ({slot} ps)"
        );
    }
}

mod arbiter_invariants {
    use super::*;
    use aeolus_sim::{FlowDesc, SimRng};

    /// Fastpass invariant: under any random flow pattern, the arbiter's
    /// schedules keep every downlink queue near-empty (no destination
    /// receives two slots at once). Seeded-loop fuzz, 16 random cases.
    #[test]
    fn arbiter_keeps_queues_near_empty() {
        let mut rng = SimRng::seed_from_u64(0xa4b1);
        for case in 0..16 {
            let n_specs = 1 + rng.index(9);
            let specs: Vec<(u64, u64, u8, u8)> = (0..n_specs)
                .map(|_| {
                    (
                        1 + rng.below(149_999),
                        rng.below(200),
                        rng.below(7) as u8,
                        rng.below(7) as u8,
                    )
                })
                .collect();
            let mut h = SchemeBuilder::new(Scheme::Fastpass).topology(testbed()).build();
            let hosts = h.hosts().to_vec();
            let n = hosts.len();
            let flows: Vec<FlowDesc> = specs
                .iter()
                .enumerate()
                .map(|(i, &(size, start_us, s, d))| FlowDesc {
                    id: FlowId(i as u64 + 1),
                    src: hosts[s as usize % n],
                    dst: hosts[d as usize % n],
                    size,
                    start: us(start_us),
                })
                .filter(|f| f.src != f.dst)
                .collect();
            if flows.is_empty() {
                continue;
            }
            h.schedule(&flows);
            assert!(h.run(ms(5_000)), "case {case}: flows did not complete");
            // Every downlink queue stayed at a handful of packets.
            for &(sw, port) in &h.topo.host_ingress {
                let max_q = h.topo.net.port(sw, port).stats.qlen_max;
                assert!(
                    max_q <= 12_000,
                    "case {case}: downlink queue peaked at {max_q} B under arbiter scheduling"
                );
            }
        }
    }
}
