//! Run-wide metrics: flow completion, drops, efficiency, timeouts.
//!
//! Per-flow records live in a [`FlowMap`] (flat slab + hash index) because
//! `deliver` runs once per data packet — the hottest metrics call. Reports
//! need deterministic order, so [`Metrics::flows`] sorts by flow id at
//! read time; the hot path never pays for ordering it doesn't use.

use crate::flowmap::FlowMap;
use crate::packet::{FlowDesc, FlowId, TrafficClass};
use crate::queues::DropReason;
use crate::units::Time;

/// Dense index of a [`DropReason`] (declaration = `Ord` order).
#[inline]
const fn reason_idx(r: DropReason) -> usize {
    match r {
        DropReason::BufferFull => 0,
        DropReason::SharedBufferFull => 1,
        DropReason::SelectiveDrop => 2,
        DropReason::CreditOverflow => 3,
        DropReason::Corruption => 4,
        DropReason::LinkDown => 5,
        DropReason::NodeDown => 6,
        DropReason::ArbiterDown => 7,
        DropReason::StaleIncarnation => 8,
    }
}
const N_REASONS: usize = 9;
const REASONS: [DropReason; N_REASONS] = [
    DropReason::BufferFull,
    DropReason::SharedBufferFull,
    DropReason::SelectiveDrop,
    DropReason::CreditOverflow,
    DropReason::Corruption,
    DropReason::LinkDown,
    DropReason::NodeDown,
    DropReason::ArbiterDown,
    DropReason::StaleIncarnation,
];

/// Dense index of a [`TrafficClass`] (declaration = `Ord` order).
#[inline]
const fn class_idx(c: TrafficClass) -> usize {
    match c {
        TrafficClass::Scheduled => 0,
        TrafficClass::Unscheduled => 1,
        TrafficClass::Control => 2,
    }
}
const N_CLASSES: usize = 3;
const CLASSES: [TrafficClass; N_CLASSES] = [
    TrafficClass::Scheduled,
    TrafficClass::Unscheduled,
    TrafficClass::Control,
];

/// Why a flow was aborted instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortCause {
    /// The flow's source or destination host crashed mid-flow.
    NodeCrash,
    /// A centralized arbiter/controller outage made progress impossible.
    ArbiterOutage,
    /// The transport declared the peer dead after a silence threshold.
    PeerSilent,
}

impl AbortCause {
    /// Stable lowercase label (telemetry / reports).
    pub fn as_str(self) -> &'static str {
        match self {
            AbortCause::NodeCrash => "node-crash",
            AbortCause::ArbiterOutage => "arbiter-outage",
            AbortCause::PeerSilent => "peer-silent",
        }
    }
}

/// Lifecycle record of one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// The flow as scheduled.
    pub desc: FlowDesc,
    /// When the last byte was delivered to the receiver, if completed.
    pub completed_at: Option<Time>,
    /// Unique payload bytes delivered so far (current incarnation).
    pub delivered: u64,
    /// Retransmission timeouts suffered by this flow.
    pub timeouts: u32,
    /// Payload bytes retransmitted for this flow.
    pub retransmitted: u64,
    /// How many times the flow was restarted after a crash/abort.
    pub restarts: u32,
    /// Set while the flow is aborted; cleared again by a restart.
    pub aborted: Option<AbortCause>,
}

impl FlowRecord {
    /// Flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<Time> {
        self.completed_at.map(|t| t - self.desc.start)
    }
}

/// Global counters and per-flow records for one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    // Flat slab keyed by flow id; reports sort at read time so every
    // report built from this is still deterministic run-to-run.
    flows: FlowMap<FlowId, FlowRecord>,
    // Packet drops as a dense (reason x class) counter matrix — one add
    // per drop, no tree walk. Read through the typed accessors (`drops_of`,
    // `drops_by_reason`, `drops_for_class`, `total_drops`, `drops`).
    drops: [[u64; N_CLASSES]; N_REASONS],
    /// Data payload bytes handed to NIC queues (first transmissions and
    /// retransmissions alike) — denominator of transfer efficiency.
    pub payload_sent: u64,
    /// Unique payload bytes delivered to receivers — the numerator.
    pub payload_delivered: u64,
    /// ECN CE marks applied by switches.
    pub ce_marks: u64,
    /// Packets trimmed by NDP-style switches.
    pub trimmed: u64,
    /// Completed flow count (cached).
    completed: usize,
    /// Currently-aborted flow count (cached; restarts decrement it).
    aborted: usize,
}

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Register a flow when its arrival is scheduled.
    pub fn flow_scheduled(&mut self, desc: FlowDesc) {
        let prev = self.flows.insert(
            desc.id,
            FlowRecord {
                desc,
                completed_at: None,
                delivered: 0,
                timeouts: 0,
                retransmitted: 0,
                restarts: 0,
                aborted: None,
            },
        );
        assert!(prev.is_none(), "duplicate flow id {:?}", desc.id);
    }

    /// Record `new_bytes` unique payload bytes delivered for `flow` at `now`;
    /// marks the flow complete when its full size has arrived. Returns true
    /// if this call completed the flow.
    pub fn deliver(&mut self, flow: FlowId, new_bytes: u64, now: Time) -> bool {
        let rec = self.flows.get_mut(flow).expect("deliver for unknown flow");
        if rec.aborted.is_some() {
            // Stale delivery racing an abort: the incarnation is dead, the
            // bytes don't count toward anything until a restart re-runs it.
            return false;
        }
        if rec.completed_at.is_some() {
            // Wire residue after completion: a crash can wipe the receiver's
            // book for an already-finished flow while the final ACK dies in
            // the purge, so the sender's RTO re-delivers bytes into a fresh
            // book. The record is terminal — don't double-count them.
            return false;
        }
        self.payload_delivered += new_bytes;
        rec.delivered += new_bytes;
        debug_assert!(rec.delivered <= rec.desc.size, "over-delivery on {flow:?}");
        if rec.delivered >= rec.desc.size {
            rec.completed_at = Some(now);
            self.completed += 1;
            return true;
        }
        false
    }

    /// Abort `flow` with `cause`. Idempotent: a second abort (or an abort
    /// after completion) is a no-op. Returns true if the flow was newly
    /// aborted by this call.
    pub fn abort_flow(&mut self, flow: FlowId, cause: AbortCause) -> bool {
        let Some(rec) = self.flows.get_mut(flow) else { return false };
        if rec.completed_at.is_some() || rec.aborted.is_some() {
            return false;
        }
        rec.aborted = Some(cause);
        self.aborted += 1;
        true
    }

    /// Restart a previously-aborted `flow`: clear the abort, forget the dead
    /// incarnation's delivered bytes (the relaunch must re-deliver the full
    /// payload), and count the restart. No-op if the flow is not aborted.
    pub fn restart_flow(&mut self, flow: FlowId) {
        let Some(rec) = self.flows.get_mut(flow) else { return };
        if rec.aborted.take().is_none() {
            return;
        }
        self.aborted -= 1;
        self.payload_delivered -= rec.delivered;
        rec.delivered = 0;
        rec.restarts += 1;
    }

    /// Record a retransmission timeout on `flow`.
    pub fn note_timeout(&mut self, flow: FlowId) {
        if let Some(rec) = self.flows.get_mut(flow) {
            rec.timeouts += 1;
        }
    }

    /// Record retransmitted payload bytes for `flow`.
    pub fn note_retransmit(&mut self, flow: FlowId, bytes: u64) {
        if let Some(rec) = self.flows.get_mut(flow) {
            rec.retransmitted += bytes;
        }
    }

    /// Record a drop.
    #[inline]
    pub fn note_drop(&mut self, reason: DropReason, class: TrafficClass) {
        self.drops[reason_idx(reason)][class_idx(class)] += 1;
    }

    /// Drops of one (reason, class) cell.
    pub fn drops_of(&self, reason: DropReason, class: TrafficClass) -> u64 {
        self.drops[reason_idx(reason)][class_idx(class)]
    }

    /// Total drops for a reason across classes.
    pub fn drops_by_reason(&self, reason: DropReason) -> u64 {
        self.drops[reason_idx(reason)].iter().sum()
    }

    /// Total drops for a traffic class across reasons.
    pub fn drops_for_class(&self, class: TrafficClass) -> u64 {
        self.drops.iter().map(|row| row[class_idx(class)]).sum()
    }

    /// Total drops across all reasons and classes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().flatten().sum()
    }

    /// Iterate the touched drop cells in deterministic (reason, class)
    /// order (declaration order of both enums, matching their `Ord`).
    pub fn drops(&self) -> impl Iterator<Item = ((DropReason, TrafficClass), u64)> + '_ {
        REASONS.iter().flat_map(move |&r| {
            CLASSES
                .iter()
                .map(move |&c| ((r, c), self.drops[reason_idx(r)][class_idx(c)]))
                .filter(|&(_, v)| v != 0)
        })
    }

    /// Look up a flow record.
    pub fn flow(&self, id: FlowId) -> Option<&FlowRecord> {
        self.flows.get(id)
    }

    /// Iterate all flow records in flow-id order (sorts at call time —
    /// reports pay for ordering, the per-packet path does not).
    pub fn flows(&self) -> impl Iterator<Item = &FlowRecord> {
        let mut v: Vec<&FlowRecord> = self.flows.values().collect();
        v.sort_unstable_by_key(|r| r.desc.id);
        v.into_iter()
    }

    /// Number of flows registered.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of completed flows.
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// Whether every registered flow has completed.
    pub fn all_complete(&self) -> bool {
        self.completed == self.flows.len()
    }

    /// Number of currently-aborted flows.
    pub fn aborted_count(&self) -> usize {
        self.aborted
    }

    /// Whether every registered flow has settled: completed or aborted with
    /// a cause. This is the "never hung" liveness predicate — a run may end
    /// with aborted flows, but not with silently-stuck ones.
    pub fn all_settled(&self) -> bool {
        self.completed + self.aborted == self.flows.len()
    }

    /// Transfer efficiency: unique delivered payload over payload sent
    /// (Table 1 / Table 4 metric). 1.0 when nothing was sent.
    pub fn transfer_efficiency(&self) -> f64 {
        if self.payload_sent == 0 {
            1.0
        } else {
            self.payload_delivered as f64 / self.payload_sent as f64
        }
    }

    /// Number of flows that suffered at least one timeout (Figure 13 metric).
    pub fn flows_with_timeouts(&self) -> usize {
        self.flows.values().filter(|r| r.timeouts > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeId;

    fn desc(id: u64, size: u64) -> FlowDesc {
        FlowDesc { id: FlowId(id), src: NodeId(0), dst: NodeId(1), size, start: 100 }
    }

    #[test]
    fn delivery_completes_flow_and_computes_fct() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 3000));
        assert!(!m.deliver(FlowId(1), 1500, 200));
        assert!(m.deliver(FlowId(1), 1500, 400));
        let rec = m.flow(FlowId(1)).unwrap();
        assert_eq!(rec.fct(), Some(300));
        assert!(m.all_complete());
        assert_eq!(m.completed_count(), 1);
    }

    #[test]
    fn transfer_efficiency_counts_unique_over_sent() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 3000));
        m.payload_sent = 6000; // one full duplicate
        m.deliver(FlowId(1), 3000, 10);
        assert!((m.transfer_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timeout_bookkeeping() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 10));
        m.flow_scheduled(desc(2, 10));
        m.note_timeout(FlowId(1));
        m.note_timeout(FlowId(1));
        assert_eq!(m.flows_with_timeouts(), 1);
        assert_eq!(m.flow(FlowId(1)).unwrap().timeouts, 2);
    }

    #[test]
    fn drop_counters_sliced_both_ways() {
        let mut m = Metrics::new();
        m.note_drop(DropReason::SelectiveDrop, TrafficClass::Unscheduled);
        m.note_drop(DropReason::SelectiveDrop, TrafficClass::Unscheduled);
        m.note_drop(DropReason::BufferFull, TrafficClass::Scheduled);
        assert_eq!(m.drops_by_reason(DropReason::SelectiveDrop), 2);
        assert_eq!(m.drops_for_class(TrafficClass::Scheduled), 1);
        assert_eq!(m.drops_of(DropReason::SelectiveDrop, TrafficClass::Unscheduled), 2);
        assert_eq!(m.drops_of(DropReason::BufferFull, TrafficClass::Unscheduled), 0);
        assert_eq!(m.total_drops(), 3);
        let cells: Vec<_> = m.drops().collect();
        assert_eq!(cells.len(), 2, "two distinct (reason, class) cells");
    }

    #[test]
    fn abort_and_restart_rewind_delivery_accounting() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 3000));
        m.deliver(FlowId(1), 1500, 200);
        assert!(m.abort_flow(FlowId(1), AbortCause::NodeCrash));
        assert!(!m.abort_flow(FlowId(1), AbortCause::PeerSilent), "double abort is a no-op");
        assert!(m.all_settled());
        assert!(!m.all_complete());
        assert_eq!(m.aborted_count(), 1);
        // Deliveries racing the abort don't count.
        assert!(!m.deliver(FlowId(1), 1500, 300));
        assert_eq!(m.payload_delivered, 1500);
        m.restart_flow(FlowId(1));
        assert_eq!(m.payload_delivered, 0, "dead incarnation's bytes forgotten");
        assert_eq!(m.aborted_count(), 0);
        assert!(!m.all_settled());
        // The relaunch re-delivers the full payload and completes normally.
        assert!(m.deliver(FlowId(1), 3000, 900));
        let rec = m.flow(FlowId(1)).unwrap();
        assert_eq!(rec.restarts, 1);
        assert_eq!(rec.aborted, None);
        assert_eq!(rec.fct(), Some(800));
        assert!(m.all_complete() && m.all_settled());
    }

    #[test]
    fn abort_after_completion_is_rejected() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 100));
        m.deliver(FlowId(1), 100, 50);
        assert!(!m.abort_flow(FlowId(1), AbortCause::NodeCrash));
        assert_eq!(m.aborted_count(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate flow id")]
    fn duplicate_flow_ids_rejected() {
        let mut m = Metrics::new();
        m.flow_scheduled(desc(1, 10));
        m.flow_scheduled(desc(1, 10));
    }
}
