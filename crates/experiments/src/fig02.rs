//! Figure 2 — the pre-credit phase matters: fraction of flows (a) and bytes
//! (b) that could finish within the first RTT, versus link speed, for the
//! four production workloads.
//!
//! This is the paper's analytic motivation: FCT is approximated as
//! `size / link_speed` (a), and the byte fraction as `B/A` where `B` is the
//! bytes one RTT carries and `A` the mean flow size (b). We reproduce the
//! computation exactly from the Table 2 distributions.

use aeolus_sim::units::{us, Rate};
use aeolus_stats::{f3, TextTable};
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::scale::Scale;

/// RTT assumed by the paper's motivation analysis.
const BASE_RTT_US: u64 = 20;

/// Link speeds swept (Gbps).
const SPEEDS: [u64; 5] = [1, 10, 25, 40, 100];

/// Run the analysis (scale-independent: it is closed-form).
pub fn run(_scale: Scale) -> Report {
    let mut flows = TextTable::new(
        std::iter::once("workload".to_string())
            .chain(SPEEDS.iter().map(|s| format!("{s}G")))
            .collect::<Vec<_>>(),
    );
    let mut bytes = TextTable::new(
        std::iter::once("workload".to_string())
            .chain(SPEEDS.iter().map(|s| format!("{s}G")))
            .collect::<Vec<_>>(),
    );
    for w in Workload::ALL {
        let dist = w.dist();
        let mut frow = vec![w.name().to_string()];
        let mut brow = vec![w.name().to_string()];
        for g in SPEEDS {
            let rtt_bytes = Rate::gbps(g).bytes_in(us(BASE_RTT_US)) as f64;
            frow.push(f3(dist.fraction_below(rtt_bytes)));
            brow.push(f3((rtt_bytes / dist.mean()).min(1.0)));
        }
        flows.row(frow);
        bytes.row(brow);
    }
    let mut r = Report::new();
    r.section("Figure 2(a): fraction of FLOWS finishable in the first RTT", flows);
    r.section("Figure 2(b): fraction of BYTES transferable in the first RTT", bytes);
    r.note(format!("base RTT assumed {BASE_RTT_US} us, as in the paper's motivating analysis"));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_grow_with_link_speed() {
        let r = run(Scale::Smoke);
        assert_eq!(r.sections.len(), 2);
        // Spot-check the paper's claim: at 100G, 60-90+% of flows finish in
        // one RTT for every workload.
        for w in Workload::ALL {
            let d = w.dist();
            let at_100g = d.fraction_below(Rate::gbps(100).bytes_in(us(BASE_RTT_US)) as f64);
            let at_1g = d.fraction_below(Rate::gbps(1).bytes_in(us(BASE_RTT_US)) as f64);
            assert!(at_100g > at_1g, "{}: must grow with speed", w.name());
            assert!(at_100g > 0.55, "{}: {at_100g} at 100G", w.name());
        }
    }
}
