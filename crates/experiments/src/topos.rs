//! The paper's evaluation topologies, exactly as §5.1 describes them.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ns, us, Rate};
use aeolus_transport::TopoSpec;

use crate::scale::Scale;

/// The 8-server, 10 Gbps, single-switch testbed (base RTT ≈ 14 µs).
/// Propagation picked so `2 × (2 links × 3.5 µs) = 14 µs`.
pub fn testbed() -> TopoSpec {
    TopoSpec::SingleSwitch {
        hosts: 8,
        link: LinkParams::uniform(Rate::gbps(10), us(3) + 500 * ns(1)),
    }
}

/// ExpressPass' oversubscribed fat-tree: 8 spines, 16 aggregation switches
/// (2 per pod), 32 ToRs (4 per pod), 192 servers (6 per ToR), 100 Gbps
/// links, 4 µs link delay, 1 µs host delay — max base RTT 52 µs
/// (2 × (6 × 4 µs + 1 µs) = 50 µs plus switching).
///
/// ToR uplink capacity is 2 × 100 G for 6 × 100 G of hosts — a 3:1
/// oversubscription, mirrored in [`FAT_TREE_OVERSUB`].
pub fn ep_fat_tree(scale: Scale) -> TopoSpec {
    let link = LinkParams {
        host_rate: Rate::gbps(100),
        core_rate: Rate::gbps(100),
        prop_delay: us(4),
        switch_delay: ns(200),
        host_delay: us(1),
        policy: aeolus_sim::RoutePolicy::EcmpHash,
        seed: 0xfa7,
    };
    match scale {
        // Same shape, one pod fewer host per ToR — still oversubscribed.
        Scale::Smoke => TopoSpec::FatTree {
            spines: 2,
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            hosts_per_tor: 3,
            link,
        },
        _ => TopoSpec::FatTree {
            spines: 8,
            pods: 8,
            tors_per_pod: 4,
            aggs_per_pod: 2,
            hosts_per_tor: 6,
            link,
        },
    }
}

/// Host-to-core oversubscription of [`ep_fat_tree`]: 6 host links over
/// 2 uplinks per ToR.
pub const FAT_TREE_OVERSUB: f64 = 3.0;

/// Homa/NDP's two-tier tree: 8 spines, 8 leaves, 64 servers, 100 Gbps,
/// base RTT 4.5 µs (2 × (4 × 0.55 µs + 0.05 µs) = 4.5 µs).
pub fn homa_two_tier(scale: Scale) -> TopoSpec {
    let link = LinkParams {
        host_rate: Rate::gbps(100),
        core_rate: Rate::gbps(100),
        prop_delay: 550 * ns(1),
        switch_delay: 0,
        host_delay: 50 * ns(1),
        policy: aeolus_sim::RoutePolicy::EcmpHash,
        seed: 0x40a,
    };
    match scale {
        Scale::Smoke => TopoSpec::LeafSpine { spines: 2, leaves: 2, hosts_per_leaf: 4, link },
        _ => TopoSpec::LeafSpine { spines: 8, leaves: 8, hosts_per_leaf: 8, link },
    }
}

/// The §5.5 heavy-incast spine-leaf: 4 spines, 9 leaves, 144 servers,
/// 100 G server links, 400 G core links, 0.2 µs propagation, 0.25 µs
/// switching delay, 500 KB per-port buffer (buffer set via SchemeParams).
pub fn heavy_spine_leaf(scale: Scale) -> TopoSpec {
    let link = LinkParams {
        host_rate: Rate::gbps(100),
        core_rate: Rate::gbps(400),
        prop_delay: 200 * ns(1),
        switch_delay: 250 * ns(1),
        host_delay: 0,
        policy: aeolus_sim::RoutePolicy::EcmpHash,
        seed: 0x17c,
    };
    match scale {
        Scale::Smoke => TopoSpec::LeafSpine { spines: 2, leaves: 3, hosts_per_leaf: 6, link },
        _ => TopoSpec::LeafSpine { spines: 4, leaves: 9, hosts_per_leaf: 16, link },
    }
}

/// N-to-1 microbenchmark fabric: N+1 hosts on one 100 G switch (Figs 15–16,
/// Table 5).
pub fn many_to_one(n_hosts: usize) -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: n_hosts, link: LinkParams::uniform(Rate::gbps(100), us(1)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_transport::{Scheme, SchemeBuilder};

    #[test]
    fn paper_topologies_have_paper_rtts() {
        let h = SchemeBuilder::new(Scheme::ExpressPass).topology(testbed()).build();
        // 14 us propagation RTT (plus the harness' serialization slack).
        assert_eq!(h.topo.base_rtt, us(14));

        let h = SchemeBuilder::new(Scheme::ExpressPass).topology(ep_fat_tree(Scale::Full)).build();
        assert_eq!(h.hosts().len(), 192);
        // 2 * (6*4us + 5*0.2ns… switching 200ns*5 + 1us host) = 52 us.
        assert_eq!(h.topo.base_rtt, 2 * (6 * us(4) + 5 * ns(200) + us(1)));

        let h = SchemeBuilder::new(Scheme::HomaAeolus).topology(homa_two_tier(Scale::Full)).build();
        assert_eq!(h.hosts().len(), 64);
        assert_eq!(h.topo.base_rtt, us(4) + 500 * ns(1));

        let h = SchemeBuilder::new(Scheme::HomaAeolus).topology(heavy_spine_leaf(Scale::Full)).build();
        assert_eq!(h.hosts().len(), 144);
    }
}
