//! Fluent construction of runnable scenarios.
//!
//! [`SchemeBuilder`] is the one way to construct a [`Harness`]: every knob —
//! topology, scheme parameters, first-RTT mode, fault plan, telemetry
//! tracer, workload — is named, optional knobs have paper defaults, and the
//! tracer changes the harness type statically so `NullTracer` runs carry no
//! overhead.
//!
//! ```
//! use aeolus_transport::{Scheme, SchemeBuilder, TopoSpec};
//! use aeolus_sim::topology::LinkParams;
//! use aeolus_sim::units::us;
//!
//! let mut h = SchemeBuilder::new(Scheme::HomaAeolus)
//!     .topology(TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(aeolus_sim::Rate::gbps(10), us(3)) })
//!     .build();
//! assert_eq!(h.hosts().len(), 8);
//! assert!(h.run(us(10)));
//! ```

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{us, Time};
use aeolus_sim::{FlowDesc, NullTracer, Tracer};
use aeolus_workloads::{poisson_flows, PoissonConfig, Workload};

use crate::common::FirstRttMode;
use crate::harness::{Harness, TopoSpec};
use crate::registry::{Scheme, SchemeParams};

/// Builder for a [`Harness`]: scheme first, everything else by name.
///
/// The type parameter tracks the telemetry tracer ([`NullTracer`] by
/// default); [`SchemeBuilder::tracer`] swaps it statically, so tracing
/// carries zero cost unless requested.
pub struct SchemeBuilder<T: Tracer = NullTracer> {
    scheme: Scheme,
    params: SchemeParams,
    spec: TopoSpec,
    tracer: T,
    workload: Option<Workload>,
    load: f64,
    flows: usize,
    seed: u64,
}

impl SchemeBuilder {
    /// Start building a scenario for `scheme`.
    ///
    /// Defaults: the paper's 8-host 10 Gbps single-switch testbed, paper
    /// [`SchemeParams`] (base RTT derived from the topology), no tracer, no
    /// workload.
    pub fn new(scheme: Scheme) -> SchemeBuilder {
        SchemeBuilder {
            scheme,
            params: SchemeParams::new(0),
            spec: TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(aeolus_sim::Rate::gbps(10), us(3)) },
            tracer: NullTracer,
            workload: None,
            load: 0.6,
            flows: 200,
            seed: 1,
        }
    }
}

impl<T: Tracer> SchemeBuilder<T> {
    /// Replace the scheme parameters wholesale.
    pub fn params(mut self, params: SchemeParams) -> Self {
        self.params = params;
        self
    }

    /// Set the topology to build.
    pub fn topology(mut self, spec: TopoSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Override the scheme's native first-RTT mode (ablations — e.g. run
    /// Homa's queue discipline with an Aeolus-style droppable burst).
    pub fn first_rtt(mut self, mode: FirstRttMode) -> Self {
        self.params.first_rtt = Some(mode);
        self
    }

    /// Install a wire-level fault plan (corruption loss, link down/degraded
    /// windows) on the built network. An empty plan is the default and adds
    /// no machinery to the run.
    pub fn faults(mut self, plan: aeolus_sim::FaultPlan) -> Self {
        self.params.faults = plan;
        self
    }

    /// Install a telemetry tracer. This changes the harness type: the
    /// default [`NullTracer`] compiles every hook away, while e.g.
    /// [`aeolus_sim::RecordingTracer`] captures typed events.
    pub fn tracer<U: Tracer>(self, tracer: U) -> SchemeBuilder<U> {
        SchemeBuilder {
            scheme: self.scheme,
            params: self.params,
            spec: self.spec,
            tracer,
            workload: self.workload,
            load: self.load,
            flows: self.flows,
            seed: self.seed,
        }
    }

    /// Drive the scenario with Poisson arrivals sized by this empirical
    /// workload (used by [`SchemeBuilder::build_run`]).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Target offered load for the workload (fraction of host capacity).
    pub fn load(mut self, load: f64) -> Self {
        self.load = load;
        self
    }

    /// Number of flows the workload generates.
    pub fn flows(mut self, flows: usize) -> Self {
        self.flows = flows;
        self
    }

    /// RNG seed for workload generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the harness: topology wired with the scheme's queue
    /// discipline, one endpoint per host, tracer installed on the network.
    ///
    /// Panics if the parameters fail [`SchemeParams::validate`] (which
    /// includes [`aeolus_core::AeolusConfig::validate`] on the effective
    /// config) — better a descriptive error at build time than a confusing
    /// one deep inside the simulator.
    pub fn build(self) -> Harness<T> {
        if let Err(e) = self.params.validate() {
            panic!("invalid config for scheme '{}': {e}", self.scheme.name());
        }
        Harness::with_tracer(self.scheme, self.params, self.spec, self.tracer)
    }

    /// Build the harness with the conformance oracle installed: a
    /// [`aeolus_sim::CheckedTracer`] whose protocol-check profile comes from
    /// [`Scheme::oracle_profile`]. The run then panics at the first
    /// invariant-violating event (with event, flow and port context) instead
    /// of laundering the violation into final metrics. Any tracer configured
    /// earlier on this builder is discarded.
    pub fn build_checked(self) -> Harness<aeolus_sim::CheckedTracer> {
        let oracle = aeolus_sim::CheckedTracer::with_profile(self.scheme.oracle_profile());
        self.tracer(oracle).build()
    }

    /// Build the harness, schedule the configured workload's flows and run
    /// until they complete (or `horizon`). Returns the harness (metrics and
    /// tracer inside), the generated flows, and the completion status.
    ///
    /// Panics if no [`SchemeBuilder::workload`] was set, or if the
    /// parameters fail [`SchemeParams::validate`].
    pub fn build_run(self, horizon: Time) -> (Harness<T>, Vec<FlowDesc>, bool) {
        if let Err(e) = self.params.validate() {
            panic!("invalid config for scheme '{}': {e}", self.scheme.name());
        }
        let w = self.workload.expect("SchemeBuilder::build_run needs a workload");
        let mut h = Harness::with_tracer(self.scheme, self.params, self.spec, self.tracer);
        let cfg = PoissonConfig {
            load: self.load,
            host_rate: h.topo.host_rate,
            flows: self.flows,
            seed: self.seed,
            first_id: 1,
            start: 0,
        };
        let flows = poisson_flows(&cfg, h.hosts(), &w.dist());
        h.schedule(&flows);
        let done = h.run(horizon);
        (h, flows, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::units::ms;
    use aeolus_sim::RecordingTracer;

    #[test]
    fn builder_defaults_match_explicit_construction() {
        let explicit = Harness::with_tracer(
            Scheme::HomaAeolus,
            SchemeParams::new(0),
            TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(aeolus_sim::Rate::gbps(10), us(3)) },
            NullTracer,
        );
        let new = SchemeBuilder::new(Scheme::HomaAeolus).build();
        assert_eq!(explicit.hosts(), new.hosts());
        assert_eq!(explicit.params.base_rtt, new.params.base_rtt);
    }

    #[test]
    #[should_panic(expected = "drop_threshold")]
    fn build_rejects_invalid_aeolus_config() {
        let mut p = SchemeParams::new(0);
        p.aeolus.drop_threshold = 1 << 40; // far above any port buffer
        p.aeolus.port_buffer = 1_000;
        let _ = SchemeBuilder::new(Scheme::ExpressPassAeolus).params(p).build();
    }

    #[test]
    #[should_panic(expected = "drop_threshold")]
    fn build_rejects_physical_buffer_below_threshold() {
        // The physical port buffer overrides aeolus.port_buffer at queue
        // construction; a threshold above it used to be clamped silently.
        let mut p = SchemeParams::new(0);
        p.port_buffer = 4_000; // below the 6 KB default drop threshold
        let _ = SchemeBuilder::new(Scheme::ExpressPassAeolus).params(p).build();
    }

    #[test]
    fn faults_knob_reaches_the_network() {
        use aeolus_sim::{FaultPlan, LinkFilter, PacketFilter};
        let plan = FaultPlan::new(7).with_loss(0.5, PacketFilter::Data, LinkFilter::All);
        let h = SchemeBuilder::new(Scheme::HomaAeolus).faults(plan.clone()).build();
        assert_eq!(h.topo.net.fault_plan(), &plan);
        let clean = SchemeBuilder::new(Scheme::HomaAeolus).build();
        assert!(clean.topo.net.fault_plan().is_empty());
    }

    #[test]
    fn tracer_changes_harness_type_and_records() {
        let mut h = SchemeBuilder::new(Scheme::NdpAeolus).tracer(RecordingTracer::new()).build();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc {
            id: aeolus_sim::FlowId(1),
            src: hosts[1],
            dst: hosts[0],
            size: 30_000,
            start: 0,
        }]);
        assert!(h.run(ms(10)));
        let tracer = h.topo.net.tracer();
        assert!(tracer.ports().next().is_some(), "ports registered");
        assert!(tracer.ports().any(|(_, p)| !p.ring.is_empty()), "queue events recorded");
    }

    #[test]
    fn first_rtt_override_reaches_the_endpoint_config() {
        // Homa natively bursts Blind; the override flips it to Hold, which
        // must leave host 1 with nothing to send in the first RTT.
        let b = SchemeBuilder::new(Scheme::Homa { rto: us(10_000) }).first_rtt(FirstRttMode::Hold);
        assert_eq!(b.params.first_rtt, Some(FirstRttMode::Hold));
    }

    #[test]
    fn build_run_drives_a_workload_end_to_end() {
        let (h, flows, done) = SchemeBuilder::new(Scheme::HomaAeolus)
            .workload(Workload::WebSearch)
            .flows(20)
            .load(0.3)
            .seed(7)
            .build_run(ms(2_000));
        assert!(done, "workload must complete");
        assert_eq!(flows.len(), 20);
        assert_eq!(h.metrics().completed_count(), 20);
    }
}
