//! Table 1 — tail FCT (0–100 KB), transfer efficiency and average FCT of all
//! flows under hypothetical Homa, eager Homa (20 µs RTO) and original Homa
//! (10 ms RTO), Cache Follower workload on the two-tier tree.

use aeolus_sim::units::{ms, us};
use aeolus_stats::{f2, f3, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::runner::{run_workload, RunConfig};
use crate::scale::Scale;
use crate::topos::homa_two_tier;

/// Run Table 1.
pub fn run(scale: Scale) -> Report {
    let schemes: [(Scheme, &str, bool); 3] = [
        (Scheme::HomaOracle, "Hypothetical Homa", false),
        (Scheme::HomaEager { rto: us(20) }, "Eager Homa", false),
        // Original Homa's average excludes the RTO-bound tail, as the paper
        // does ("tail excluded").
        (Scheme::Homa { rto: ms(10) }, "Original Homa (tail excluded)", true),
    ];
    let mut table = TextTable::new(vec![
        "scheme",
        "tail FCT (us, 0-100KB p99.9)",
        "transfer efficiency",
        "avg FCT (us, all flows)",
    ]);
    for (scheme, name, exclude_tail) in schemes {
        let mut cfg = RunConfig::new(scheme, homa_two_tier(scale), Workload::CacheFollower);
        cfg.load = 0.54;
        cfg.n_flows = scale.flows(60, 1000, 5000);
        cfg.seed = 11;
        let out = run_workload(&cfg);
        let small = out.agg.band(0, 100_000);
        let tail = small.fct_us().percentile(99.9);
        let avg = if exclude_tail {
            // Exclude flows that suffered a timeout-scale FCT (>= 1 ms here,
            // far above the loaded-network norm of tens of microseconds).
            let s = aeolus_stats::Samples::from_vec(
                out.agg
                    .samples()
                    .iter()
                    .map(|x| x.fct_ps as f64 / 1e6)
                    .filter(|&f| f < 1_000.0)
                    .collect(),
            );
            s.mean()
        } else {
            out.agg.fct_us().mean()
        };
        table.row(vec![name.to_string(), f2(tail), f3(out.efficiency), f2(avg)]);
    }
    let mut r = Report::new();
    r.section("Table 1: the Homa recovery dilemma (Cache Follower)", table);
    r.note("paper: 25.04us/0.90/34.84us (hypothetical), 99.59us/0.31/141.82us (eager), 50030us/0.90/74.39us (original)");
    r
}
