//! Incast message-completion-time demo (the Figure 8/11 scenario).
//!
//! Seven servers respond simultaneously with fixed-size messages to one
//! client — the classic partition/aggregate pattern — repeated over many
//! rounds. We compare message completion times (MCT) for the three base
//! proactive transports with and without the Aeolus building block.
//!
//! ```text
//! cargo run --release --example incast_mct [msg_size_bytes] [rounds]
//! ```

use aeolus::prelude::*;
use aeolus::stats::f2;

fn mct(scheme: Scheme, msg: u64, rounds: usize) -> (f64, f64, f64) {
    let mut h = SchemeBuilder::new(scheme)
        .topology(TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        })
        .build();
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    h.run(ms(2 * rounds as u64 + 500));
    let mut fct = FctAggregator::new();
    for r in h.metrics().flows() {
        if let Some(f) = r.fct() {
            fct.push(FctSample { size: r.desc.size, fct_ps: f, ideal_ps: h.ideal_fct(r.desc.size) });
        }
    }
    let mut s = fct.fct_us();
    (s.mean(), s.percentile(50.0), s.max())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let msg: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let rounds: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20);
    println!("7-to-1 incast, {msg} B messages, {rounds} rounds, 10G testbed\n");
    println!("{:<22} {:>10} {:>10} {:>10}", "scheme", "mean(us)", "p50(us)", "max(us)");
    for scheme in [
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::Ndp,
        Scheme::NdpAeolus,
    ] {
        let (mean, p50, max) = mct(scheme, msg, rounds);
        println!("{:<22} {:>10} {:>10} {:>10}", scheme.name(), f2(mean), f2(p50), f2(max));
    }
}
