//! Smoke tests for the cheap experiment runners (the expensive ones are
//! exercised by the `repro` binary and the Criterion benches).

use aeolus_experiments::{ablation, fig02, fig05, fig08, fig11, fig15, fig16, tab05, Scale};

#[test]
fn fig02_analytic_tables() {
    let r = fig02::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 2);
    for (_, t) in &r.sections {
        assert_eq!(t.len(), 4, "one row per workload");
    }
}

#[test]
fn fig05_cascade_reports_both_schemes() {
    let r = fig05::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 1);
    assert_eq!(r.sections[0].1.len(), 2);
}

#[test]
fn fig08_and_fig11_incast_tables() {
    let r8 = fig08::run(Scale::Smoke);
    assert_eq!(r8.sections.len(), 2, "distribution + mean-vs-size");
    let r11 = fig11::run(Scale::Smoke);
    assert_eq!(r11.sections.len(), 2);
}

#[test]
fn fig15_queue_grows_with_threshold() {
    let r = fig15::run(Scale::Smoke);
    let t = &r.sections[0].1;
    assert_eq!(t.len(), 7, "one row per threshold");
}

#[test]
fn fig16_utilization_table() {
    let r = fig16::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 1);
}

#[test]
fn tab05_has_both_rows() {
    let r = tab05::run(Scale::Smoke);
    assert_eq!(r.sections[0].1.len(), 2);
}

#[test]
fn ablation_produces_three_studies() {
    let r = ablation::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 3);
}

#[test]
fn registry_names_are_unique_and_runnable() {
    let reg = aeolus_experiments::registry();
    let names: std::collections::HashSet<&str> = reg.iter().map(|(n, _)| *n).collect();
    assert_eq!(names.len(), reg.len(), "duplicate experiment names");
    assert!(names.contains("fig9"));
    assert!(names.contains("table1"));
    assert!(names.contains("ablation"));
}

#[test]
fn csv_export_round_trips() {
    let r = fig02::run(Scale::Smoke);
    let dir = std::env::temp_dir().join("aeolus_csv_test");
    let paths = r.write_csv(&dir, "fig2").unwrap();
    assert_eq!(paths.len(), 2);
    let content = std::fs::read_to_string(&paths[0]).unwrap();
    assert!(content.starts_with("workload,"));
    assert_eq!(content.lines().count(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tab02_matches_paper_distributions() {
    use aeolus_experiments::tab02;
    let r = tab02::run(Scale::Smoke);
    let csv = r.sections[0].1.to_csv();
    assert_eq!(csv.lines().count(), 5, "header + 4 workloads");
    assert!(csv.contains("Web Server"));
    assert!(csv.contains("7.41MB (7.41MB)"), "Data Mining mean must match: {csv}");
}

#[test]
fn extension_experiments_run() {
    use aeolus_experiments::{ext_fastpass, ext_reactive};
    let r = ext_fastpass::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 4, "one table per message size");
    let r = ext_reactive::run(Scale::Smoke);
    assert_eq!(r.sections.len(), 2, "two workloads");
}
