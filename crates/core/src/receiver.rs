//! Receiver-side Aeolus state for one flow: duplicate suppression, per-packet
//! ACK policy for unscheduled packets, and probe handling.

use aeolus_sim::RangeSet;

/// What the transport should do after handing a data packet to the receiver
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataVerdict {
    /// Payload bytes not seen before (0 for duplicates).
    pub new_bytes: u64,
    /// Whether the whole message is now complete.
    pub completed: bool,
    /// Whether a per-packet ACK should be sent (Aeolus ACKs unscheduled
    /// packets individually; scheduled packets are acked per the base
    /// protocol's own rules).
    pub send_ack: bool,
}

/// Per-flow receiver state for the Aeolus building block.
#[derive(Debug)]
pub struct PreCreditReceiver {
    /// Message size, learned from the first packet/probe header that
    /// arrives (Data/Request/Probe all carry `flow_size`).
    size: Option<u64>,
    received: RangeSet,
    completed: bool,
    probe_seen: bool,
}

impl Default for PreCreditReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl PreCreditReceiver {
    /// Fresh state; size is learned from headers.
    pub fn new() -> PreCreditReceiver {
        PreCreditReceiver { size: None, received: RangeSet::new(), completed: false, probe_seen: false }
    }

    /// Note the flow size from any header that carries it.
    pub fn learn_size(&mut self, size: u64) {
        if size > 0 {
            match self.size {
                None => self.size = Some(size),
                Some(s) => debug_assert_eq!(s, size, "inconsistent flow size"),
            }
        }
    }

    /// Process data bytes `[seq, seq+len)`; `unscheduled` selects the ACK
    /// policy.
    pub fn on_data(&mut self, seq: u64, len: u32, unscheduled: bool, flow_size: u64) -> DataVerdict {
        self.learn_size(flow_size);
        let new_bytes = self.received.insert(seq, seq + len as u64);
        let completed = !self.completed && self.is_complete();
        if completed {
            self.completed = true;
        }
        DataVerdict { new_bytes, completed, send_ack: unscheduled }
    }

    /// Process an Aeolus probe carrying `probe_seq`; returns true if a probe
    /// ACK should be sent (always — probes are themselves protected).
    pub fn on_probe(&mut self, probe_seq: u64, flow_size: u64) -> bool {
        self.learn_size(flow_size);
        self.probe_seen = true;
        let _ = probe_seq;
        true
    }

    /// Whether the full message has arrived.
    pub fn is_complete(&self) -> bool {
        match self.size {
            Some(s) => self.received.covered() >= s,
            None => false,
        }
    }

    /// Unique bytes received so far.
    pub fn received_bytes(&self) -> u64 {
        self.received.covered()
    }

    /// Message size if known.
    pub fn size(&self) -> Option<u64> {
        self.size
    }

    /// Bytes still missing (None until the size is known).
    pub fn remaining(&self) -> Option<u64> {
        self.size.map(|s| s.saturating_sub(self.received.covered()))
    }

    /// Whether a probe has been seen for this flow.
    pub fn probe_seen(&self) -> bool {
        self.probe_seen
    }

    /// Missing ranges below `upto` (for Homa RESEND requests).
    pub fn missing_below(&self, upto: u64) -> Vec<(u64, u64)> {
        self.received.gaps(upto)
    }

    /// Bytes received within `[0, upto)` — used with a probe's sequence
    /// number to compute exactly how many burst bytes were dropped.
    pub fn received_below(&self, upto: u64) -> u64 {
        self.received.covered_in(0, upto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscheduled_data_gets_per_packet_ack() {
        let mut r = PreCreditReceiver::new();
        let v = r.on_data(0, 1000, true, 3000);
        assert_eq!(v, DataVerdict { new_bytes: 1000, completed: false, send_ack: true });
        let v = r.on_data(1000, 1000, false, 3000);
        assert!(!v.send_ack, "scheduled data follows the base protocol's ACK rules");
    }

    #[test]
    fn duplicates_add_no_bytes_but_still_ack() {
        let mut r = PreCreditReceiver::new();
        r.on_data(0, 1000, true, 3000);
        let v = r.on_data(0, 1000, true, 3000);
        assert_eq!(v.new_bytes, 0);
        assert!(v.send_ack, "duplicate unscheduled packets are re-ACKed");
        assert_eq!(r.received_bytes(), 1000);
    }

    #[test]
    fn completion_fires_exactly_once() {
        let mut r = PreCreditReceiver::new();
        r.on_data(0, 1000, true, 2000);
        let v = r.on_data(1000, 1000, false, 2000);
        assert!(v.completed);
        let v = r.on_data(1000, 1000, false, 2000);
        assert!(!v.completed, "completion must not re-fire on duplicates");
        assert!(r.is_complete());
    }

    #[test]
    fn size_learned_from_probe_when_all_data_dropped() {
        let mut r = PreCreditReceiver::new();
        assert!(!r.is_complete());
        assert_eq!(r.remaining(), None);
        assert!(r.on_probe(5000, 5000));
        assert_eq!(r.size(), Some(5000));
        assert_eq!(r.remaining(), Some(5000));
        assert!(r.probe_seen());
    }

    #[test]
    fn missing_ranges_reported_for_resend() {
        let mut r = PreCreditReceiver::new();
        r.on_data(0, 1000, true, 5000);
        r.on_data(2000, 1000, true, 5000);
        assert_eq!(r.missing_below(4000), vec![(1000, 2000), (3000, 4000)]);
    }
}
