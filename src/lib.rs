#![warn(missing_docs)]
//! # aeolus — reproduction of "Aeolus: A Building Block for Proactive
//! Transport in Datacenters" (SIGCOMM 2020)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — packet-level discrete-event datacenter simulator (switches,
//!   queue disciplines, links, routing, topologies);
//! * [`core`] — the Aeolus building block (pre-credit burst, selective
//!   dropping, probe-based loss recovery);
//! * [`transport`] — ExpressPass, Homa and NDP, each with and without
//!   Aeolus, plus the paper's oracle and priority-queueing variants;
//! * [`workloads`] — Table 2 flow-size distributions, Poisson arrivals and
//!   incast generators;
//! * [`stats`] — FCT aggregation, percentiles, CDFs, text tables;
//! * [`experiments`] — a runner per paper table/figure (also available as
//!   the `repro` binary).
//!
//! ## Quickstart
//!
//! ```
//! use aeolus::prelude::*;
//!
//! // ExpressPass+Aeolus on the paper's 8-host 10G testbed.
//! let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus)
//!     .topology(TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) })
//!     .build();
//! let hosts = h.hosts().to_vec();
//! // 15 KB is under the testbed BDP (~23 KB): it fits in the pre-credit burst.
//! h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 15_000, start: 0 }]);
//! assert!(h.run(ms(100)));
//! let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
//! assert!(fct < h.params.base_rtt * 3, "a sub-BDP flow finishes within a few RTTs");
//! ```

pub use aeolus_core as core;
pub use aeolus_experiments as experiments;
pub use aeolus_sim as sim;
pub use aeolus_stats as stats;
pub use aeolus_transport as transport;
pub use aeolus_workloads as workloads;

/// Everything needed to run a simulation in one import.
pub mod prelude {
    pub use aeolus_core::{AeolusConfig, RecoveryMode};
    pub use aeolus_sim::topology::LinkParams;
    pub use aeolus_sim::units::{kb, mb, ms, ns, secs, us, Rate, Time};
    pub use aeolus_sim::{
        DropReason, FaultPlan, FlowDesc, FlowId, LinkFilter, Metrics, NodeId, PacketFilter,
    };
    pub use aeolus_stats::{Cdf, FctAggregator, FctSample, Samples, TextTable};
    pub use aeolus_transport::{Harness, Scheme, SchemeBuilder, SchemeParams, TopoSpec};
    pub use aeolus_workloads::{
        incast_round, incast_rounds, mixed_flows, poisson_flows, MixConfig, PoissonConfig,
        Workload,
    };
}
