//! One bench per paper *figure*: each measures a miniature, fixed-seed
//! configuration of the same kernel the corresponding `aeolus-experiments`
//! runner uses, so regressions in any figure's code path show up as a bench
//! regression. (Figures 6 and 7 are architecture diagrams — no experiment,
//! no bench.) Plain `main` under the in-tree harness.

use std::hint::black_box;

use aeolus_bench::harness::Suite;
use aeolus_bench::{bench_fabric, bench_incast, bench_many_to_one, bench_workload};
use aeolus_experiments::fig15::queue_stats;
use aeolus_experiments::fig16::first_rtt_utilization;
use aeolus_experiments::fig18::goodput;
use aeolus_experiments::{fig02, fig05, Scale};
use aeolus_sim::units::ms;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

fn motivation_figures(suite: &mut Suite) {
    // Fig 1/3: ExpressPass vs its oracle on a workload.
    suite.bench("fig01_fig03_ep_vs_oracle", || {
        let a = bench_workload(Scheme::ExpressPass, bench_fabric(), Workload::CacheFollower, 30);
        let o =
            bench_workload(Scheme::ExpressPassOracle, bench_fabric(), Workload::CacheFollower, 30);
        (a + o) as u64
    });
    // Fig 2 is closed-form.
    suite.bench("fig02_first_rtt_fractions", || fig02::run(Scale::Smoke).sections.len() as u64);
    // Fig 4 / Table 1: Homa vs its oracle.
    suite.bench("fig04_homa_vs_oracle", || {
        let a =
            bench_workload(Scheme::Homa { rto: ms(10) }, bench_fabric(), Workload::WebServer, 30);
        let o = bench_workload(Scheme::HomaOracle, bench_fabric(), Workload::WebServer, 30);
        (a + o) as u64
    });
    // Fig 5: the cascade micro-experiment.
    suite.bench("fig05_cascade", || fig05::run(Scale::Smoke).sections.len() as u64);
}

fn testbed_figures(suite: &mut Suite) {
    // Fig 8: EP incast MCT.
    suite.bench("fig08_ep_incast", || bench_incast(Scheme::ExpressPassAeolus, 30_000, 3) as u64);
    // Fig 11: Homa incast MCT.
    suite.bench("fig11_homa_incast", || bench_incast(Scheme::HomaAeolus, 30_000, 3) as u64);
}

fn workload_figures(suite: &mut Suite) {
    // Fig 9/10: EP+Aeolus under a production workload.
    suite.bench("fig09_fig10_ep_aeolus_workload", || {
        bench_workload(Scheme::ExpressPassAeolus, bench_fabric(), Workload::WebServer, 30) as u64
    });
    // Fig 12/13: Homa+Aeolus under a production workload.
    suite.bench("fig12_fig13_homa_aeolus_workload", || {
        bench_workload(Scheme::HomaAeolus, bench_fabric(), Workload::WebServer, 30) as u64
    });
    // Fig 14: NDP+Aeolus under a production workload.
    suite.bench("fig14_ndp_aeolus_workload", || {
        bench_workload(Scheme::NdpAeolus, bench_fabric(), Workload::WebServer, 30) as u64
    });
}

fn parameter_figures(suite: &mut Suite) {
    // Fig 15: queue length vs threshold.
    suite.bench("fig15_queue_vs_threshold", || {
        let (mean, max) = queue_stats(6_000, 4);
        black_box(mean);
        max
    });
    // Fig 16: first-RTT utilization.
    suite.bench("fig16_first_rtt_utilization", || {
        black_box(first_rtt_utilization(6_000, 4));
        1
    });
    // Fig 17: heavy incast slowdown.
    suite.bench("fig17_heavy_incast", || bench_many_to_one(Scheme::HomaAeolus, 16, 64_000) as u64);
    // Fig 18: goodput under mixed load.
    suite.bench("fig18_goodput_mix", || {
        black_box(goodput(Scheme::NdpAeolus, Scale::Smoke, 0.5));
        1
    });
}

fn main() {
    let mut suite = Suite::new("figures");
    motivation_figures(&mut suite);
    testbed_figures(&mut suite);
    workload_figures(&mut suite);
    parameter_figures(&mut suite);
}
