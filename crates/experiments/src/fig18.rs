//! Figure 18 — goodput across network loads for all six schemes, driven by
//! a mix of Web Search traffic and 64-to-1 incasts of 64 KB messages on the
//! heavy spine-leaf fabric.

use aeolus_sim::units::{ms, us};
use aeolus_stats::{f3, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};
use aeolus_workloads::{mixed_flows, MixConfig, Workload};

use crate::report::Report;
use crate::scale::Scale;
use crate::topos::heavy_spine_leaf;
use crate::fig17::schemes;

/// Loads swept.
pub fn loads(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Smoke => vec![0.4],
        Scale::Quick => vec![0.3, 0.5, 0.7, 0.9],
        Scale::Full => vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    }
}

/// Normalized goodput for one (scheme, load): unique payload delivered over
/// the aggregate host capacity of the *makespan* (arrival of the first flow
/// to delivery of the last byte). Below a scheme's saturation point this
/// tracks the offered load; past it, the makespan stretches and goodput
/// pins at the scheme's sustainable ceiling — the paper's Figure 18 shape.
pub fn goodput(scheme: Scheme, scale: Scale, load: f64) -> f64 {
    let mut params = SchemeParams::new(0);
    params.port_buffer = 500_000;
    let mut h = SchemeBuilder::new(scheme).params(params).topology(heavy_spine_leaf(scale)).build();
    let hosts = h.hosts().to_vec();
    let flows = mixed_flows(
        &MixConfig {
            background_load: load,
            host_rate: h.topo.host_rate,
            background_flows: scale.flows(60, 1200, 6000),
            incast_fan_in: scale.count(4, 32, 64),
            incast_msg_size: 64_000,
            incast_events: scale.count(1, 6, 20),
            incast_gap: us(400),
            seed: 1818,
        },
        &hosts,
        &Workload::WebSearch.dist(),
    );
    let window = flows.iter().map(|f| f.start).max().unwrap_or(0).max(1);
    h.schedule(&flows);
    h.run(window + ms(2_000));
    let makespan = h.topo.net.now().max(1);
    crate::runner::note_events(h.topo.net.events_processed());
    let delivered_bits = h.metrics().payload_delivered as f64 * 8.0;
    let capacity_bits = hosts.len() as f64
        * h.topo.host_rate.bps() as f64
        * makespan as f64
        / aeolus_sim::units::PS_PER_SEC as f64;
    delivered_bits / capacity_bits
}

/// Run Figure 18.
pub fn run(scale: Scale) -> Report {
    let ls = loads(scale);
    let mut cells = Vec::new();
    for scheme in schemes() {
        for &l in &ls {
            cells.push((scheme, l));
        }
    }
    let results =
        crate::runner::parallel_map(&cells, |&(scheme, l)| goodput(scheme, scale, l));
    let mut results = results.iter();
    let mut header = vec!["scheme".to_string()];
    header.extend(ls.iter().map(|l| format!("load {l:.1}")));
    let mut table = TextTable::new(header);
    for scheme in schemes() {
        let mut row = vec![scheme.label()];
        for _ in &ls {
            row.push(f3(*results.next().expect("one result per cell")));
        }
        table.row(row);
    }
    let mut r = Report::new();
    r.section("Figure 18: normalized goodput vs offered load (WebSearch + 64:1 incast)", table);
    r.note("paper: NDP peaks highest (~0.84), ExpressPass ~0.70, Homa lowest (~0.54); Aeolus never hurts and slightly helps Homa/NDP");
    r
}
