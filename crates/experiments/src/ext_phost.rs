//! Extension — pHost vs pHost+Aeolus (beyond the paper's three baselines).
//!
//! pHost shares Homa's design choice the paper critiques in §2.4: a blind
//! first-RTT burst at a priority *above* scheduled packets. This experiment
//! repeats the Figure 12 methodology for pHost to show the building block
//! generalizes to a fourth proactive transport.

use aeolus_sim::units::ms;

use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::homa_two_tier;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run the pHost extension comparison.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Extension: pHost",
            schemes: &[Scheme::PHost { rto: ms(10) }, Scheme::PHostAeolus],
            spec: homa_two_tier(scale),
            workloads: &[Workload::WebServer, Workload::CacheFollower],
            host_load: 0.5,
            flows: (50, 600, 3000),
            seed: 4242,
        },
        scale,
    );
    r.note("expected: the same shape as Figure 12 — Aeolus removes the RTO-bound tail of the blind-burst design");
    r
}
