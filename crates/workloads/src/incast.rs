//! Incast workload generators.
//!
//! The paper uses incast in four places: the 7-to-1 testbed experiments
//! (Figs 8, 11), the contrived 20-to-1 shared-buffer stress (Table 5), the
//! heavy N-to-1 sweep with N ∈ {32..256} (Fig 17) and as a component of the
//! goodput mix (Fig 18).

use aeolus_sim::rng::SimRng;
use aeolus_sim::{FlowDesc, FlowId, NodeId, Time};

/// One N-to-1 incast: every sender ships `msg_size` bytes to `receiver`
/// starting at `start`. Returns one flow per sender with consecutive ids
/// from `first_id`.
pub fn incast_round(
    senders: &[NodeId],
    receiver: NodeId,
    msg_size: u64,
    start: Time,
    first_id: u64,
) -> Vec<FlowDesc> {
    assert!(!senders.contains(&receiver), "receiver cannot also send");
    senders
        .iter()
        .enumerate()
        .map(|(i, &src)| FlowDesc {
            id: FlowId(first_id + i as u64),
            src,
            dst: receiver,
            size: msg_size,
            start,
        })
        .collect()
}

/// Repeated incast rounds spaced `gap` apart (the testbed methodology:
/// request, wait for all responses, repeat). Round `r` starts at
/// `start + r * gap`; ids are consecutive across rounds.
pub fn incast_rounds(
    senders: &[NodeId],
    receiver: NodeId,
    msg_size: u64,
    rounds: usize,
    gap: Time,
    start: Time,
    first_id: u64,
) -> Vec<FlowDesc> {
    let mut out = Vec::with_capacity(senders.len() * rounds);
    for r in 0..rounds {
        out.extend(incast_round(
            senders,
            receiver,
            msg_size,
            start + r as u64 * gap,
            first_id + (r * senders.len()) as u64,
        ));
    }
    out
}

/// Random N-to-1 incast events: for each event, pick a receiver and `fan_in`
/// distinct senders uniformly from `hosts` (Fig 17/18 methodology).
#[allow(clippy::too_many_arguments)]
pub fn random_incasts(
    hosts: &[NodeId],
    fan_in: usize,
    msg_size: u64,
    events: usize,
    gap: Time,
    start: Time,
    first_id: u64,
    seed: u64,
) -> Vec<FlowDesc> {
    assert!(fan_in < hosts.len(), "fan-in must leave room for a receiver");
    let mut rng = SimRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(events * fan_in);
    let mut id = first_id;
    for e in 0..events {
        let mut pool: Vec<NodeId> = hosts.to_vec();
        rng.shuffle(&mut pool);
        let receiver = pool[0];
        let senders = &pool[1..=fan_in];
        let t = start + e as u64 * gap + rng.below(gap.max(1)) / 4;
        out.extend(incast_round(senders, receiver, msg_size, t, id));
        id += fan_in as u64;
    }
    out.sort_by_key(|f| f.start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i as u32)).collect()
    }

    #[test]
    fn seven_to_one_shape() {
        let h = hosts(8);
        let flows = incast_round(&h[1..], h[0], 30_000, 1000, 5);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.dst == h[0] && f.size == 30_000 && f.start == 1000));
        assert_eq!(flows[0].id, FlowId(5));
        assert_eq!(flows[6].id, FlowId(11));
    }

    #[test]
    fn rounds_are_spaced_and_ids_unique() {
        let h = hosts(8);
        let flows = incast_rounds(&h[1..], h[0], 40_000, 10, 1_000_000, 0, 0);
        assert_eq!(flows.len(), 70);
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 70, "ids must be unique");
        assert_eq!(flows[69].start, 9_000_000);
    }

    #[test]
    fn random_incasts_pick_distinct_senders() {
        let h = hosts(16);
        let flows = random_incasts(&h, 8, 64_000, 20, 1_000_000, 0, 0, 77);
        assert_eq!(flows.len(), 160);
        // Per event: all senders distinct and differ from receiver.
        for chunk in flows.chunks(8) {
            // flows were re-sorted by time; group by dst+start instead.
            let _ = chunk;
        }
        for f in &flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    #[should_panic(expected = "receiver cannot also send")]
    fn receiver_in_senders_rejected() {
        let h = hosts(4);
        incast_round(&h, h[0], 100, 0, 0);
    }
}
