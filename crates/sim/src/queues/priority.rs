//! Strict-priority queue bank (commodity switches expose 8 levels).
//!
//! Used by Homa (unscheduled packets in high priorities, scheduled below),
//! by the §5.5 "priority queueing" alternative to Aeolus (unscheduled in the
//! lowest priority), and — with `selective_threshold` — by Homa+Aeolus where
//! per-port RED/ECN drops unscheduled arrivals once the *port* occupancy
//! exceeds the threshold, regardless of which priority queue they target.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, PoolHandle, QueueDisc};
use crate::packet::Packet;
use crate::units::Time;

/// A bank of strict-priority FIFOs sharing one per-port byte budget.
pub struct PriorityBank {
    queues: Vec<ByteFifo>,
    /// Per-port buffer cap across all priority levels.
    cap_bytes: u64,
    /// Aeolus per-port selective dropping: droppable (Non-ECT) arrivals are
    /// discarded once total port occupancy reaches this threshold.
    selective_threshold: Option<u64>,
    /// Optional switch-wide shared buffer pool (Table 5 experiment).
    pool: Option<PoolHandle>,
    bytes: u64,
}

impl PriorityBank {
    /// A bank with `levels` strict priorities (0 served first) and a shared
    /// per-port cap of `cap_bytes`.
    pub fn new(levels: usize, cap_bytes: u64) -> PriorityBank {
        assert!((1..=64).contains(&levels), "unreasonable priority level count");
        PriorityBank {
            queues: (0..levels).map(|_| ByteFifo::new()).collect(),
            cap_bytes,
            selective_threshold: None,
            pool: None,
            bytes: 0,
        }
    }

    /// Enable Aeolus selective dropping at port scope.
    pub fn with_selective_threshold(mut self, threshold: u64) -> PriorityBank {
        self.selective_threshold = Some(threshold);
        self
    }

    /// Attach a switch-wide shared buffer pool.
    pub fn with_pool(mut self, pool: PoolHandle) -> PriorityBank {
        self.pool = Some(pool);
        self
    }

    /// Number of priority levels.
    pub fn levels(&self) -> usize {
        self.queues.len()
    }

    /// Bytes queued at one priority level (for tests / tracing).
    pub fn bytes_at(&self, level: usize) -> u64 {
        self.queues[level].bytes()
    }
}

impl QueueDisc for PriorityBank {
    fn enqueue(&mut self, pkt: Packet, _now: Time) -> EnqueueOutcome {
        let sz = pkt.size as u64;
        if let Some(k) = self.selective_threshold {
            if self.bytes >= k && pkt.droppable() {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::SelectiveDrop,
                    pkt: Box::new(pkt),
                };
            }
        }
        if self.bytes + sz > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt: Box::new(pkt) };
        }
        if let Some(pool) = &self.pool {
            if !pool.borrow_mut().try_alloc(sz) {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::SharedBufferFull,
                    pkt: Box::new(pkt),
                };
            }
        }
        let level = (pkt.priority as usize).min(self.queues.len() - 1);
        self.bytes += sz;
        self.queues[level].push(pkt);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _now: Time) -> Poll {
        for q in self.queues.iter_mut() {
            if let Some(pkt) = q.pop() {
                self.bytes -= pkt.size as u64;
                if let Some(pool) = &self.pool {
                    pool.borrow_mut().free(pkt.size as u64);
                }
                return Poll::Ready(pkt);
            }
        }
        Poll::Empty
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn pkts(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        // Commodity switches expose 8 levels; deeper banks aggregate the
        // tail under the last name rather than invent dynamic labels.
        const NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];
        for (level, q) in self.queues.iter().enumerate() {
            let name = NAMES[level.min(NAMES.len() - 1)];
            if level < NAMES.len() {
                out.push((name, q.bytes()));
            } else if let Some(last) = out.last_mut() {
                last.1 += q.bytes();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_pkt;
    use super::super::SharedPool;
    use super::*;
    use crate::packet::TrafficClass;

    fn pkt_at(prio: u8, seq: u64) -> Packet {
        let mut p = data_pkt(TrafficClass::Scheduled, seq);
        p.priority = prio;
        p
    }

    #[test]
    fn strict_priority_order() {
        let mut q = PriorityBank::new(8, 1 << 20);
        q.enqueue(pkt_at(5, 50), 0);
        q.enqueue(pkt_at(0, 0), 0);
        q.enqueue(pkt_at(3, 30), 0);
        q.enqueue(pkt_at(0, 1), 0);
        let order: Vec<u64> = std::iter::from_fn(|| match q.poll(0) {
            Poll::Ready(p) => Some(p.seq),
            _ => None,
        })
        .collect();
        assert_eq!(order, vec![0, 1, 30, 50]);
    }

    #[test]
    fn port_cap_shared_across_levels() {
        let mut q = PriorityBank::new(8, 3000);
        assert!(matches!(q.enqueue(pkt_at(7, 0), 0), EnqueueOutcome::Queued));
        assert!(matches!(q.enqueue(pkt_at(6, 1), 0), EnqueueOutcome::Queued));
        // A *high* priority arrival is still tail-dropped when the port
        // buffer is full of low-priority bytes — the §5.5 failure mode.
        match q.enqueue(pkt_at(0, 2), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. } => {}
            other => panic!("expected drop, got {other:?}"),
        }
    }

    #[test]
    fn selective_threshold_applies_across_the_whole_port() {
        let mut q = PriorityBank::new(8, 1 << 20).with_selective_threshold(3000);
        let unsched = |seq| {
            let mut p = data_pkt(TrafficClass::Unscheduled, seq);
            p.priority = 7;
            p
        };
        assert!(matches!(q.enqueue(unsched(0), 0), EnqueueOutcome::Queued));
        assert!(matches!(q.enqueue(pkt_at(2, 1), 0), EnqueueOutcome::Queued));
        // Port occupancy is now 3000 B: droppable arrivals go, even to an
        // empty priority level...
        match q.enqueue(unsched(2), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. } => {}
            other => panic!("expected selective drop, got {other:?}"),
        }
        // ...while scheduled packets are still accepted.
        assert!(matches!(q.enqueue(pkt_at(1, 3), 0), EnqueueOutcome::Queued));
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest() {
        let mut q = PriorityBank::new(2, 1 << 20);
        q.enqueue(pkt_at(9, 42), 0);
        assert_eq!(q.bytes_at(1), 1500);
    }

    #[test]
    fn shared_pool_integrates() {
        let pool = SharedPool::new(1500);
        let mut a = PriorityBank::new(2, 1 << 20).with_pool(pool.clone());
        let mut b = PriorityBank::new(2, 1 << 20).with_pool(pool.clone());
        assert!(matches!(a.enqueue(pkt_at(0, 0), 0), EnqueueOutcome::Queued));
        match b.enqueue(pkt_at(0, 1), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, .. } => {}
            other => panic!("expected pool drop, got {other:?}"),
        }
        assert!(matches!(a.poll(0), Poll::Ready(_)));
        assert_eq!(pool.borrow().used(), 0);
    }

    #[test]
    fn byte_and_packet_counters_consistent() {
        let mut q = PriorityBank::new(8, 1 << 20);
        for i in 0..5 {
            q.enqueue(pkt_at((i % 3) as u8, i), 0);
        }
        assert_eq!(q.pkts(), 5);
        assert_eq!(q.bytes(), 5 * 1500);
        while let Poll::Ready(_) = q.poll(0) {}
        assert_eq!(q.pkts(), 0);
        assert_eq!(q.bytes(), 0);
    }
}
