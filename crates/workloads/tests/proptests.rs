//! Property-based tests on workload generation, implemented as seeded-loop
//! fuzzing over [`SimRng`] so the workspace carries no external
//! property-testing dependency.

use aeolus_sim::{NodeId, Rate, SimRng};
use aeolus_workloads::{poisson_flows, EmpiricalDist, PoissonConfig, Workload};

/// Sampled flow sizes land within the distribution's support and the
/// empirical bucket fractions track the analytic CDF.
#[test]
fn samples_respect_support_and_cdf() {
    for seed in 0..40u64 {
        for w in Workload::ALL {
            let d = w.dist();
            let mut rng = SimRng::seed_from_u64(seed);
            let n = 3_000;
            let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let max = d.max_size();
            assert!(samples.iter().all(|&s| s >= 1 && s <= max), "seed {seed}");
            // Check one probe point: P(size <= 100KB).
            let analytic = d.fraction_below(100_000.0);
            let empirical = samples.iter().filter(|&&s| s <= 100_000).count() as f64 / n as f64;
            assert!(
                (analytic - empirical).abs() < 0.05,
                "{} seed {seed}: analytic {analytic:.3} vs empirical {empirical:.3}",
                w.name()
            );
        }
    }
}

/// The quantile function is the inverse of the CDF up to interpolation.
#[test]
fn quantile_inverts_cdf() {
    let mut rng = SimRng::seed_from_u64(0x0a11);
    for case in 0..500 {
        let u = 0.001 + rng.next_f64() * 0.998;
        for w in Workload::ALL {
            let d = w.dist();
            let size = d.quantile(u);
            let back = d.fraction_below(size as f64);
            assert!(
                (back - u).abs() < 0.02,
                "{} case {case}: u={u:.4} -> size {size} -> cdf {back:.4}",
                w.name()
            );
        }
    }
}

/// Poisson generation is monotone in time, hits the requested count, and
/// never produces self-flows, regardless of seed/load/host count.
#[test]
fn poisson_invariants() {
    let mut rng = SimRng::seed_from_u64(0x90155);
    for case in 0..150 {
        let seed = rng.below(10_000);
        let load = 0.05 + rng.next_f64() * 0.95;
        let hosts = 2 + rng.index(30);
        let flows = 1 + rng.index(199);
        let ids: Vec<NodeId> = (0..hosts as u32).map(NodeId).collect();
        let dist = EmpiricalDist::new(vec![(100.0, 0.0), (10_000.0, 1.0)]);
        let cfg = PoissonConfig {
            load,
            host_rate: Rate::gbps(10),
            flows,
            seed,
            first_id: 7,
            start: 1_000,
        };
        let out = poisson_flows(&cfg, &ids, &dist);
        assert_eq!(out.len(), flows, "case {case}");
        assert!(out[0].start >= 1_000, "case {case}");
        for w in out.windows(2) {
            assert!(w[0].start <= w[1].start, "case {case}");
            assert_eq!(w[1].id.0, w[0].id.0 + 1, "case {case}");
        }
        assert!(out.iter().all(|f| f.src != f.dst), "case {case}");
        assert!(out.iter().all(|f| f.size >= 100 && f.size <= 10_000), "case {case}");
    }
}
