//! Generic experiment runner: scheme × topology × workload → FCT statistics.

use aeolus_sim::units::{ms, Time, PS_PER_SEC};
use aeolus_sim::FlowDesc;
use aeolus_stats::{FctAggregator, FctSample};
use aeolus_transport::{Harness, Scheme, SchemeParams, TopoSpec};
use aeolus_workloads::{poisson_flows, PoissonConfig, Workload};

/// One simulation run's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Transport scheme.
    pub scheme: Scheme,
    /// Topology.
    pub spec: TopoSpec,
    /// Scheme parameters (`SchemeParams::new(0)` lets the harness derive the
    /// base RTT from the topology).
    pub params: SchemeParams,
    /// Workload distribution.
    pub workload: Workload,
    /// Offered load as a fraction of aggregate *host* capacity.
    pub load: f64,
    /// Number of flows.
    pub n_flows: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Extra time after the last arrival to let stragglers drain.
    pub drain: Time,
}

impl RunConfig {
    /// Sensible defaults for the given scheme/topology/workload.
    pub fn new(scheme: Scheme, spec: TopoSpec, workload: Workload) -> RunConfig {
        RunConfig {
            scheme,
            spec,
            params: SchemeParams::new(0),
            workload,
            load: 0.4,
            n_flows: 2_000,
            seed: 1,
            drain: ms(400),
        }
    }
}

/// Outcome of one run.
pub struct RunOutput {
    /// FCT samples of completed flows (with per-size ideal FCTs).
    pub agg: FctAggregator,
    /// Transfer efficiency (delivered unique / sent payload).
    pub efficiency: f64,
    /// Flows that suffered ≥1 timeout.
    pub flows_with_timeouts: usize,
    /// Completed / scheduled flows.
    pub completed: usize,
    /// Scheduled flows.
    pub scheduled: usize,
    /// Normalized goodput: unique delivered bits over (hosts × rate × span).
    pub goodput: f64,
    /// Simulated span (first arrival → last event processed).
    pub span: Time,
}

impl RunOutput {
    /// Completion fraction (1.0 = every flow finished before the horizon).
    pub fn completion(&self) -> f64 {
        if self.scheduled == 0 {
            1.0
        } else {
            self.completed as f64 / self.scheduled as f64
        }
    }
}

/// Homa computes its unscheduled-priority cutoffs from the observed message
/// size distribution; derive them from the workload's quantiles (one cutoff
/// per boundary between the `unsched_levels` priority bands).
pub fn homa_cutoffs_for(workload: Workload) -> Vec<u64> {
    let d = workload.dist();
    vec![d.quantile(0.4), d.quantile(0.7), d.quantile(0.9)]
}

/// Run a Poisson-workload experiment.
pub fn run_workload(cfg: &RunConfig) -> RunOutput {
    let mut params = cfg.params.clone();
    // Workload-derived Homa cutoffs unless the caller overrode them.
    if params.homa_cutoffs == SchemeParams::new(0).homa_cutoffs {
        params.homa_cutoffs = homa_cutoffs_for(cfg.workload);
    }
    let mut h = Harness::new(cfg.scheme, params, cfg.spec);
    let hosts = h.hosts().to_vec();
    let flows = poisson_flows(
        &PoissonConfig {
            load: cfg.load,
            host_rate: h.topo.host_rate,
            flows: cfg.n_flows,
            seed: cfg.seed,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &cfg.workload.dist(),
    );
    run_flows(&mut h, &flows, cfg.drain)
}

/// Run an arbitrary flow list on a prepared harness.
pub fn run_flows(h: &mut Harness, flows: &[FlowDesc], drain: Time) -> RunOutput {
    h.schedule(flows);
    let last_arrival = flows.iter().map(|f| f.start).max().unwrap_or(0);
    let horizon = last_arrival + drain;
    h.run(horizon);
    collect(h)
}

/// Collect statistics from a finished harness.
pub fn collect(h: &Harness) -> RunOutput {
    let m = h.metrics();
    let mut agg = FctAggregator::new();
    for rec in m.flows() {
        if let Some(fct) = rec.fct() {
            agg.push(FctSample {
                size: rec.desc.size,
                fct_ps: fct,
                ideal_ps: h.ideal_fct(rec.desc.size),
            });
        }
    }
    let span = h.topo.net.now().max(1);
    let capacity_bits =
        h.hosts().len() as f64 * h.topo.host_rate.bps() as f64 * span as f64 / PS_PER_SEC as f64;
    RunOutput {
        efficiency: m.transfer_efficiency(),
        flows_with_timeouts: m.flows_with_timeouts(),
        completed: m.completed_count(),
        scheduled: m.flow_count(),
        goodput: m.payload_delivered as f64 * 8.0 / capacity_bits,
        span,
        agg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topos::testbed;

    #[test]
    fn workload_run_produces_samples() {
        let mut cfg = RunConfig::new(Scheme::ExpressPassAeolus, testbed(), Workload::WebServer);
        cfg.n_flows = 40;
        cfg.load = 0.3;
        let out = run_workload(&cfg);
        assert!(out.completion() > 0.9, "completion {}", out.completion());
        assert!(out.agg.len() >= 36);
        assert!(out.efficiency > 0.5);
        assert!(out.goodput > 0.0 && out.goodput < 1.0);
        // Slowdowns must be causal.
        for s in out.agg.samples() {
            assert!(s.slowdown() >= 0.99, "slowdown {} for size {}", s.slowdown(), s.size);
        }
    }
}
