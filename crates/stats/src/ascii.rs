//! ASCII chart rendering — the paper's figures are CDFs and line series;
//! the experiment runners render them as terminal plots so the *shape*
//! (crossovers, tails) is visible without leaving the shell.

use crate::cdf::Cdf;

/// Marker characters assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Plot one or more CDFs on a shared axis (log-x when the value range spans
/// more than two decades). Returns a multi-line string.
pub fn plot_cdfs(series: &[(String, &Cdf)], width: usize, height: usize) -> String {
    let width = width.clamp(20, 200);
    let height = height.clamp(5, 60);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, cdf) in series {
        for p in cdf.points() {
            lo = lo.min(p.value);
            hi = hi.max(p.value);
        }
    }
    if !lo.is_finite() || !hi.is_finite() || series.is_empty() {
        return String::from("(no data)\n");
    }
    let lo = lo.max(1e-9);
    let hi = hi.max(lo * 1.0001);
    let log_x = hi / lo > 100.0;
    let x_of = |v: f64| -> usize {
        let v = v.max(lo);
        let frac = if log_x {
            (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
        } else {
            (v - lo) / (hi - lo)
        };
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let y_of = |f: f64| -> usize {
        // Row 0 is the top (fraction 1.0).
        let r = ((1.0 - f) * (height - 1) as f64).round() as usize;
        r.min(height - 1)
    };
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, cdf)) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        // March along x; for each column find the CDF fraction there.
        #[allow(clippy::needless_range_loop)] // col drives both v and grid
        for col in 0..width {
            let v = if log_x {
                (lo.ln() + (hi.ln() - lo.ln()) * col as f64 / (width - 1) as f64).exp()
            } else {
                lo + (hi - lo) * col as f64 / (width - 1) as f64
            };
            let f = cdf.fraction_at(v);
            if f > 0.0 {
                grid[y_of(f)][col] = marker;
            }
        }
        // Ensure every actual point lands on the grid too (sparse tails).
        for p in cdf.points() {
            grid[y_of(p.fraction)][x_of(p.value)] = marker;
        }
    }
    let mut out = String::new();
    for (row, line) in grid.iter().enumerate() {
        let frac = 1.0 - row as f64 / (height - 1) as f64;
        out.push_str(&format!("{frac:5.2} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("      +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "       {:<w$.4}{:>r$.4}{}\n",
        lo,
        hi,
        if log_x { "  (log x)" } else { "" },
        w = width / 2,
        r = width - width / 2,
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("       {} {}\n", MARKERS[si % MARKERS.len()], name));
    }
    out
}

/// Intensity ramp for [`sparkline`]: space = empty, '@' = the series max.
const SPARK_RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];

/// Render a compact one-line sparkline of `values`, rescaled to `width`
/// columns (each column shows the maximum of the values it covers, so
/// short spikes stay visible). All-zero input renders as spaces; empty
/// input as the empty string.
pub fn sparkline(values: &[u64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let width = width.min(values.len()).max(1);
    let max = values.iter().copied().max().unwrap_or(0);
    let mut out = String::with_capacity(width);
    for col in 0..width {
        let lo = col * values.len() / width;
        let hi = ((col + 1) * values.len() / width).max(lo + 1);
        let v = values[lo..hi].iter().copied().max().unwrap_or(0);
        let level = if max == 0 {
            0
        } else {
            // Nonzero values never map to the blank level.
            let scaled = (v as u128 * (SPARK_RAMP.len() - 1) as u128).div_ceil(max as u128);
            scaled as usize
        };
        out.push(SPARK_RAMP[level]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::Samples;

    fn cdf_of(values: Vec<f64>) -> Cdf {
        Cdf::from_samples(&mut Samples::from_vec(values))
    }

    #[test]
    fn plot_contains_markers_and_legend() {
        let a = cdf_of((1..=100).map(|v| v as f64).collect());
        let b = cdf_of((1..=100).map(|v| (v * 3) as f64).collect());
        let s = plot_cdfs(&[("fast".into(), &a), ("slow".into(), &b)], 60, 12);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("fast"));
        assert!(s.contains("slow"));
        assert!(s.lines().count() >= 14, "grid + axis + legend");
    }

    #[test]
    fn log_axis_kicks_in_for_wide_ranges() {
        let wide = cdf_of(vec![1.0, 10.0, 100.0, 10_000.0]);
        let s = plot_cdfs(&[("wide".into(), &wide)], 40, 8);
        assert!(s.contains("(log x)"));
        let narrow = cdf_of(vec![1.0, 2.0, 3.0]);
        let s = plot_cdfs(&[("narrow".into(), &narrow)], 40, 8);
        assert!(!s.contains("(log x)"));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(plot_cdfs(&[], 40, 10), "(no data)\n");
    }

    #[test]
    fn single_value_cdf_renders() {
        let c = cdf_of(vec![5.0]);
        let s = plot_cdfs(&[("point".into(), &c)], 30, 6);
        assert!(s.contains('*'));
    }

    #[test]
    fn sparkline_scales_and_preserves_spikes() {
        let mut v = vec![0u64; 100];
        v[50] = 1000; // a one-sample spike must survive downsampling
        let s = sparkline(&v, 20);
        assert_eq!(s.chars().count(), 20);
        assert!(s.contains('@'), "max maps to the top ramp char: {s:?}");
        let zeros = sparkline(&[0, 0, 0], 3);
        assert_eq!(zeros, "   ");
        assert_eq!(sparkline(&[], 10), "");
        // Nonzero values never render blank, however small.
        let tiny = sparkline(&[1, 1_000_000], 2);
        assert!(!tiny.starts_with(' '), "small nonzero visible: {tiny:?}");
    }
}
