//! Allocation benchmarks for the pooled packet path: recycling-pool churn
//! vs the old boxed-per-packet churn, plus an allocation count over a
//! steady-state incast window. Plain `main` under the in-tree harness
//! (`cargo bench --bench alloc`).

use aeolus_bench::alloc_counter::{allocations, CountingAlloc};
use aeolus_bench::harness::Suite;
use aeolus_bench::{boxed_churn, pool_churn, steady_incast_alloc_window};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const CHURN_OPS: u64 = 1_000_000;
const WORKING_SET: usize = 64;

fn main() {
    let mut suite = Suite::new("alloc");

    suite.bench("pool_churn_64x1m", || pool_churn(CHURN_OPS, WORKING_SET));
    suite.bench("boxed_churn_64x1m", || boxed_churn(CHURN_OPS, WORKING_SET));

    // Allocator hits during one warmed-up pooled churn round: the pool
    // reaches its high-water mark while filling the working set, then every
    // cycle reuses a recycled slot.
    let before = allocations();
    pool_churn(CHURN_OPS, WORKING_SET);
    let pool_allocs = allocations() - before;

    let before = allocations();
    boxed_churn(CHURN_OPS, WORKING_SET);
    let boxed_allocs = allocations() - before;

    suite.bench("steady_incast_window", steady_incast_alloc_window);

    let pool = suite.sample("pool_churn_64x1m").unwrap().units_per_sec();
    let boxed = suite.sample("boxed_churn_64x1m").unwrap().units_per_sec();
    let steady = suite.sample("steady_incast_window").unwrap().units;
    println!();
    println!("packet churn: pool is {:.2}x boxed alloc/free (ops/s)", pool / boxed);
    println!(
        "allocator hits per {CHURN_OPS} cycles: pool {pool_allocs}, boxed {boxed_allocs} \
         ({:.4} vs {:.4} per packet)",
        pool_allocs as f64 / CHURN_OPS as f64,
        boxed_allocs as f64 / CHURN_OPS as f64,
    );
    println!("steady-state incast window: {steady} allocations (pooled engine target: 0)");
}
