//! Bench-sized scenario builders shared by the Criterion benchmarks.
//!
//! Each paper table/figure gets a miniature, fixed-seed configuration of its
//! experiment kernel — small enough for Criterion's repeated sampling, large
//! enough to exercise the same code paths as the full runner in
//! `aeolus-experiments`.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Rate};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Harness, Scheme, SchemeParams, TopoSpec};
use aeolus_workloads::{incast_rounds, poisson_flows, PoissonConfig, Workload};

/// The bench testbed: 8 hosts on one 10 G switch.
pub fn bench_testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

/// A small two-tier fabric.
pub fn bench_fabric() -> TopoSpec {
    TopoSpec::LeafSpine {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 4,
        link: LinkParams::uniform(Rate::gbps(100), us(1)),
    }
}

/// Run `n_flows` Poisson flows of `workload` under `scheme`; returns the
/// completed-flow count (a black-box-able result).
pub fn bench_workload(scheme: Scheme, spec: TopoSpec, workload: Workload, n_flows: usize) -> usize {
    let mut h = Harness::new(scheme, SchemeParams::new(0), spec);
    let hosts = h.hosts().to_vec();
    let flows = poisson_flows(
        &PoissonConfig {
            load: 0.4,
            host_rate: h.topo.host_rate,
            flows: n_flows,
            seed: 42,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &workload.dist(),
    );
    h.schedule(&flows);
    h.run(flows.last().unwrap().start + ms(400));
    h.metrics().completed_count()
}

/// Run a 7:1 incast of `rounds` rounds; returns the completed count.
pub fn bench_incast(scheme: Scheme, msg: u64, rounds: usize) -> usize {
    let mut h = Harness::new(scheme, SchemeParams::new(0), bench_testbed());
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    h.run(ms(1000));
    h.metrics().completed_count()
}

/// Run an N:1 single-shot incast on a 100 G switch; returns completed count.
pub fn bench_many_to_one(scheme: Scheme, n: usize, msg: u64) -> usize {
    let spec =
        TopoSpec::SingleSwitch { hosts: n + 1, link: LinkParams::uniform(Rate::gbps(100), us(1)) };
    let mut params = SchemeParams::new(0);
    params.port_buffer = 500_000;
    let mut h = Harness::new(scheme, params, spec);
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..n)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i + 1],
            dst: hosts[0],
            size: msg,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    h.run(ms(1000));
    h.metrics().completed_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_kernels_complete() {
        assert_eq!(bench_incast(Scheme::ExpressPassAeolus, 30_000, 2), 14);
        assert_eq!(bench_many_to_one(Scheme::HomaAeolus, 4, 64_000), 4);
        assert!(bench_workload(Scheme::NdpAeolus, bench_fabric(), Workload::WebServer, 20) >= 19);
    }
}
