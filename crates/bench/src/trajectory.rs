//! BENCH trajectory: the repo-root `BENCH_<n>.json` snapshot history.
//!
//! Each PR that moves performance commits an immutable snapshot of the
//! bench report as `BENCH_<n>.json` at the repository root (next to
//! README.md, where it is discoverable), while `results/bench.json` stays
//! the rolling "current baseline" the CI gates compare against. This module
//! finds those snapshots, parses them (the hand-rolled [`to_json`] format —
//! no serde offline) and renders the full per-bench trajectory
//! `BENCH_5 -> BENCH_6 -> ... -> current run` with deltas, so a regression
//! introduced across a re-anchor is visible in one glance of the bench
//! output instead of requiring a manual diff of two JSON files.
//!
//! [`to_json`]: crate::harness::to_json

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::harness::{fmt_ns, Suite};

/// One bench's numbers as recorded in a report: `(median_ns, units,
/// units_per_sec)`.
pub type BenchPoint = (u64, u64, f64);

/// One parsed `BENCH_<n>.json` snapshot.
pub struct Snapshot {
    /// The PR number `n` from the file name.
    pub n: u32,
    /// Where the snapshot was found.
    pub path: PathBuf,
    /// `"suite/bench"` → numbers.
    pub benches: BTreeMap<String, BenchPoint>,
}

/// Scan `dir` (non-recursively) for `BENCH_<n>.json` files and parse them,
/// sorted by `n`. Unreadable or unparsable files are skipped — a truncated
/// snapshot must not break the bench run that is trying to report on it.
pub fn find_snapshots(dir: &Path) -> Vec<Snapshot> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(n) = snapshot_number(name) else { continue };
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let benches = parse_report(&text);
        if !benches.is_empty() {
            out.push(Snapshot { n, path: entry.path(), benches });
        }
    }
    out.sort_by_key(|s| s.n);
    out
}

/// `BENCH_<n>.json` → `Some(n)`, anything else → `None`.
fn snapshot_number(file_name: &str) -> Option<u32> {
    file_name.strip_prefix("BENCH_")?.strip_suffix(".json")?.parse().ok()
}

/// Parse a bench report produced by [`crate::harness::to_json`] into
/// `"suite/bench"` → [`BenchPoint`].
///
/// The format is line-regular by construction (one bench object per line,
/// suite names on their own lines), so a line scanner is an exact parser
/// for every report this repo has ever written — and degrades to "empty"
/// rather than panicking on anything else.
pub fn parse_report(text: &str) -> BTreeMap<String, BenchPoint> {
    let mut out = BTreeMap::new();
    let mut suite = String::new();
    for line in text.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("\"name\": \"") {
            // A suite header line: `"name": "engine",`
            if let Some(end) = rest.find('"') {
                suite = rest[..end].to_string();
            }
        } else if t.starts_with("{\"name\":") {
            // A bench line: `{"name": "...", ..., "units_per_sec": 1.0}`
            let Some(name) = str_field(t, "name") else { continue };
            let median = num_field(t, "median_ns").unwrap_or(0.0) as u64;
            let units = num_field(t, "units").unwrap_or(0.0) as u64;
            let rate = num_field(t, "units_per_sec").unwrap_or(0.0);
            out.insert(format!("{suite}/{name}"), (median, units, rate));
        }
    }
    out
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let at = line.find(&format!("\"{key}\": \""))? + key.len() + 5;
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
    let rest = &line[at..];
    let end = rest.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M/s", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k/s", v / 1e3)
    } else {
        format!("{v:.0}/s")
    }
}

fn pct(prev: f64, next: f64) -> String {
    if prev <= 0.0 {
        return String::from("(n/a)");
    }
    format!("({:+.1}%)", (next - prev) / prev * 100.0)
}

/// Render the full trajectory: one line per bench of the current run,
/// chaining every snapshot that measured it (oldest first) into the
/// current value, with a percentage delta at each hop. Benches no snapshot
/// has seen are marked new; throughput benches compare `units_per_sec`
/// (higher is better), pure-wall-time benches compare `median_ns` (lower
/// is better, flagged as such).
pub fn trajectory_delta(snapshots: &[Snapshot], current: &[&Suite]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if snapshots.is_empty() {
        out.push_str(
            "BENCH trajectory: no repo-root BENCH_<n>.json snapshots found — \
             run with --snapshot BENCH_<pr>.json to start one\n",
        );
        return out;
    }
    let names: Vec<String> =
        snapshots.iter().map(|s| format!("BENCH_{}", s.n)).collect();
    let _ = writeln!(out, "BENCH trajectory ({} + current run):", names.join(", "));
    for suite in current {
        for s in &suite.samples {
            let key = format!("{}/{}", suite.name, s.name);
            let by_rate = s.units > 1;
            let mut line = format!("  {key:<40}");
            let mut prev: Option<f64> = None;
            let mut seen = false;
            for snap in snapshots {
                let Some(&(median, _, rate)) = snap.benches.get(&key) else { continue };
                seen = true;
                let v = if by_rate { rate } else { median as f64 };
                let shown = if by_rate { fmt_rate(rate) } else { fmt_ns(median) };
                match prev {
                    None => {
                        let _ = write!(line, " {shown} [{}]", snap.n);
                    }
                    Some(p) => {
                        let _ = write!(line, " -> {shown} [{}] {}", snap.n, pct(p, v));
                    }
                }
                prev = Some(v);
            }
            let cur = if by_rate { s.units_per_sec() } else { s.median_ns as f64 };
            let shown = if by_rate { fmt_rate(s.units_per_sec()) } else { fmt_ns(s.median_ns) };
            if !seen {
                let _ = write!(line, " {shown} now (new bench — no snapshot history)");
            } else {
                let _ = write!(line, " -> {shown} now {}", pct(prev.unwrap_or(0.0), cur));
            }
            if !by_rate {
                line.push_str("  [wall time: lower is better]");
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// The directories to search for snapshots: the working directory (the
/// repo root when run via `cargo run`/`cargo bench`) and, as a fallback
/// for invocations from elsewhere, the workspace root derived from this
/// crate's manifest location.
pub fn snapshot_dirs() -> Vec<PathBuf> {
    let mut dirs = vec![PathBuf::from(".")];
    let manifest_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let (Ok(cwd), Ok(root)) = (std::fs::canonicalize("."), std::fs::canonicalize(&manifest_root))
    {
        if cwd != root {
            dirs.push(manifest_root);
        }
    }
    dirs
}

/// Find snapshots across [`snapshot_dirs`], de-duplicated by number (the
/// working directory wins).
pub fn find_all_snapshots() -> Vec<Snapshot> {
    let mut seen = std::collections::BTreeSet::new();
    let mut all = Vec::new();
    for dir in snapshot_dirs() {
        for snap in find_snapshots(&dir) {
            if seen.insert(snap.n) {
                all.push(snap);
            }
        }
    }
    all.sort_by_key(|s| s.n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{to_json, BenchConfig};

    fn suite_with(name: &str, benches: &[(&str, u64)]) -> Suite {
        let mut s = Suite::with_config(name, BenchConfig { warmup: 0, iters: 1 });
        for &(bench, units) in benches {
            s.bench(bench, || units);
        }
        s
    }

    #[test]
    fn parse_report_round_trips_to_json() {
        let a = suite_with("engine", &[("fast", 1_000_000), ("slow", 10)]);
        let b = suite_with("alloc", &[("window", 0)]);
        let parsed = parse_report(&to_json(&[&a, &b]));
        assert_eq!(parsed.len(), 3);
        let (median, units, rate) = parsed["engine/fast"];
        assert_eq!(median, a.sample("fast").unwrap().median_ns);
        assert_eq!(units, 1_000_000);
        assert!((rate - a.sample("fast").unwrap().units_per_sec()).abs() < 1.0);
        assert!(parsed.contains_key("alloc/window"));
    }

    #[test]
    fn parse_report_tolerates_garbage() {
        assert!(parse_report("").is_empty());
        assert!(parse_report("not json at all").is_empty());
        assert!(parse_report("{\"suites\": []}").is_empty());
    }

    #[test]
    fn snapshot_numbers_come_from_the_file_name() {
        assert_eq!(snapshot_number("BENCH_6.json"), Some(6));
        assert_eq!(snapshot_number("BENCH_12.json"), Some(12));
        assert_eq!(snapshot_number("bench.json"), None);
        assert_eq!(snapshot_number("BENCH_x.json"), None);
        assert_eq!(snapshot_number("BENCH_6.json.bak"), None);
    }

    #[test]
    fn trajectory_chains_snapshots_in_order_with_deltas() {
        let current = suite_with("engine", &[("kernel", 2_000_000)]);
        let mk = |n: u32, rate: f64| Snapshot {
            n,
            path: PathBuf::from(format!("BENCH_{n}.json")),
            benches: BTreeMap::from([(
                "engine/kernel".to_string(),
                (1_000_000u64, 2_000_000u64, rate),
            )]),
        };
        let snaps = vec![mk(5, 1e6), mk(6, 2e6)];
        let text = trajectory_delta(&snaps, &[&current]);
        assert!(text.contains("BENCH trajectory (BENCH_5, BENCH_6 + current run):"), "{text}");
        assert!(text.contains("1.00M/s [5]"), "{text}");
        assert!(text.contains("-> 2.00M/s [6] (+100.0%)"), "{text}");
        assert!(text.contains("now"), "{text}");
    }

    #[test]
    fn trajectory_marks_new_benches_and_empty_history() {
        let current = suite_with("hotpath", &[("brand_new", 5)]);
        assert!(trajectory_delta(&[], &[&current]).contains("no repo-root BENCH_<n>.json"));
        let snap = Snapshot { n: 6, path: PathBuf::from("BENCH_6.json"), benches: BTreeMap::new() };
        // A snapshot with no benches parses to empty and is filtered by
        // find_snapshots, but trajectory_delta must still cope.
        let text = trajectory_delta(&[snap], &[&current]);
        assert!(text.contains("new bench — no snapshot history"), "{text}");
    }

    #[test]
    fn real_snapshot_on_disk_parses_if_present() {
        // The committed repo-root snapshots must stay parsable; this guards
        // the format contract between write_json and parse_report.
        for snap in find_all_snapshots() {
            assert!(
                snap.benches.contains_key("engine/incast_sim_wheel"),
                "{}: missing the engine incast kernel",
                snap.path.display()
            );
        }
    }
}
