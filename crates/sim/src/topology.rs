//! Topology builders for the paper's experiments.
//!
//! Three shapes cover every evaluation scenario:
//!
//! * [`single_switch`] — the 8-server 10 Gbps testbed (Figs 8, 11), the
//!   many-to-one microbenchmarks (Figs 15, 16) and the 20:1 shared-buffer
//!   incast (Table 5);
//! * [`leaf_spine`] — the two-tier trees: Homa/NDP's 8×8×64 @100 G and the
//!   heavy-incast 4×9×144 with 400 G core links (Fig 17, Fig 18);
//! * [`fat_tree`] — ExpressPass' oversubscribed three-tier topology with
//!   8 spines, 16 aggregation (leaf) switches, 32 ToRs and 192 servers.
//!
//! Hosts are numbered ToR-/leaf-major: `hosts[i]` sits under edge switch
//! `i / hosts_per_edge`.

use crate::network::Network;
use crate::packet::{NodeId, PortId};
use crate::queues::QueueDisc;
use crate::routing::RoutePolicy;
use crate::telemetry::{NullTracer, Tracer};
use crate::units::{Rate, Time};

/// Where a port sits in the topology — queue factories pick disciplines by
/// role (e.g. ExpressPass throttles credits on every switch egress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// Host NIC egress.
    HostNic,
    /// Switch egress towards a host (last hop).
    DownToHost,
    /// Switch egress towards another switch.
    SwitchToSwitch,
}

/// Factory producing an egress queue for a port of the given rate and role.
pub type QueueFactory<'a> = dyn Fn(Rate, PortRole) -> Box<dyn QueueDisc> + 'a;

impl<T: Tracer> Topology<T> {
    /// Validate routing: every switch must know a next hop for every host,
    /// and following first-choice next hops from any host must reach any
    /// other host within a hop budget. Panics with a description on failure
    /// — call from tests and after hand-built wiring.
    pub fn validate_routes(&self) {
        use crate::node::NodeKind;
        for &sw in &self.switches {
            let node = self.net.node(sw);
            let table = match &node.kind {
                NodeKind::Switch { table } => table,
                NodeKind::Host { .. } => panic!("{sw:?} listed as switch but is a host"),
            };
            for &h in &self.hosts {
                assert!(
                    !table.group(h).is_empty(),
                    "switch {sw:?} has no route towards host {h:?}"
                );
                for &port in table.group(h) {
                    assert!(
                        (port.0 as usize) < node.ports.len(),
                        "switch {sw:?} routes {h:?} via nonexistent port {port:?}"
                    );
                }
            }
        }
        // Walk first-choice next hops host→host.
        let budget = 16;
        for &src in &self.hosts {
            for &dst in &self.hosts {
                if src == dst {
                    continue;
                }
                let mut at = self.net.node(src).ports[0].link.to;
                let mut hops = 0;
                while at != dst {
                    hops += 1;
                    assert!(hops < budget, "route walk {src:?}->{dst:?} exceeded {budget} hops");
                    let node = self.net.node(at);
                    match &node.kind {
                        NodeKind::Switch { table } => {
                            let group = table.group(dst);
                            assert!(!group.is_empty(), "{at:?} dead-ends {src:?}->{dst:?}");
                            at = node.ports[group[0].0 as usize].link.to;
                        }
                        NodeKind::Host { .. } => {
                            panic!("route walk {src:?}->{dst:?} hit foreign host {at:?}")
                        }
                    }
                }
            }
        }
    }
}

/// A built topology: the network plus handles the experiments need.
///
/// Generic over the network's [`Tracer`]; the default [`NullTracer`] keeps
/// untraced call sites unchanged.
pub struct Topology<T: Tracer = NullTracer> {
    /// The wired network (endpoints not yet installed).
    pub net: Network<T>,
    /// All host node ids, edge-switch-major order.
    pub hosts: Vec<NodeId>,
    /// All switch node ids.
    pub switches: Vec<NodeId>,
    /// For each host (by index), the last-hop switch egress port feeding it —
    /// the canonical congestion point for incast experiments.
    pub host_ingress: Vec<(NodeId, PortId)>,
    /// Base (unloaded, zero-serialization) round-trip time across the
    /// longest shortest path.
    pub base_rtt: Time,
    /// Host NIC rate.
    pub host_rate: Rate,
}

/// Parameters shared by all builders.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Host link rate.
    pub host_rate: Rate,
    /// Switch-to-switch link rate.
    pub core_rate: Rate,
    /// Per-link propagation delay.
    pub prop_delay: Time,
    /// Per-switch ingress (switching) delay.
    pub switch_delay: Time,
    /// Per-host ingress (stack) delay.
    pub host_delay: Time,
    /// Path selection policy at switches.
    pub policy: RoutePolicy,
    /// Base seed for switch RNGs (spraying).
    pub seed: u64,
}

impl LinkParams {
    /// Uniform-rate parameters with ECMP hashing, zero switch/host delays.
    pub fn uniform(rate: Rate, prop_delay: Time) -> LinkParams {
        LinkParams {
            host_rate: rate,
            core_rate: rate,
            prop_delay,
            switch_delay: 0,
            host_delay: 0,
            policy: RoutePolicy::EcmpHash,
            seed: 0xae01,
        }
    }
}

/// `n_hosts` hosts on one switch.
pub fn single_switch(n_hosts: usize, p: LinkParams, qf: &QueueFactory<'_>) -> Topology {
    single_switch_with(NullTracer, n_hosts, p, qf)
}

/// [`single_switch`] with a telemetry tracer installed on the network.
pub fn single_switch_with<T: Tracer>(
    tracer: T,
    n_hosts: usize,
    p: LinkParams,
    qf: &QueueFactory<'_>,
) -> Topology<T> {
    let mut net = Network::with_tracer(tracer);
    let sw = net.add_switch(p.policy, p.seed, p.switch_delay);
    let mut hosts = Vec::with_capacity(n_hosts);
    let mut host_ingress = Vec::with_capacity(n_hosts);
    for _ in 0..n_hosts {
        let h = net.add_host(p.host_delay);
        net.connect(h, sw, p.host_rate, p.prop_delay, qf(p.host_rate, PortRole::HostNic));
        let down =
            net.connect(sw, h, p.host_rate, p.prop_delay, qf(p.host_rate, PortRole::DownToHost));
        net.add_route(sw, h, down);
        hosts.push(h);
        host_ingress.push((sw, down));
    }
    // Path: host -> switch -> host, 2 links each way.
    let base_rtt = 2 * (2 * p.prop_delay + p.switch_delay + p.host_delay);
    Topology { net, hosts, switches: vec![sw], host_ingress, base_rtt, host_rate: p.host_rate }
}

/// Two-tier leaf-spine: every leaf connects to every spine.
pub fn leaf_spine(
    spines: usize,
    leaves: usize,
    hosts_per_leaf: usize,
    p: LinkParams,
    qf: &QueueFactory<'_>,
) -> Topology {
    leaf_spine_with(NullTracer, spines, leaves, hosts_per_leaf, p, qf)
}

/// [`leaf_spine`] with a telemetry tracer installed on the network.
pub fn leaf_spine_with<T: Tracer>(
    tracer: T,
    spines: usize,
    leaves: usize,
    hosts_per_leaf: usize,
    p: LinkParams,
    qf: &QueueFactory<'_>,
) -> Topology<T> {
    let mut net = Network::with_tracer(tracer);
    let spine_ids: Vec<NodeId> =
        (0..spines).map(|i| net.add_switch(p.policy, p.seed + 1 + i as u64, p.switch_delay)).collect();
    let leaf_ids: Vec<NodeId> = (0..leaves)
        .map(|i| net.add_switch(p.policy, p.seed + 1000 + i as u64, p.switch_delay))
        .collect();

    // Leaf <-> spine full bipartite wiring.
    // leaf_up[l][s] = port on leaf l towards spine s; spine_down[s][l] likewise.
    let mut leaf_up = vec![Vec::with_capacity(spines); leaves];
    let mut spine_down = vec![Vec::with_capacity(leaves); spines];
    for (l, &leaf) in leaf_ids.iter().enumerate() {
        for (s, &spine) in spine_ids.iter().enumerate() {
            let up = net.connect(
                leaf,
                spine,
                p.core_rate,
                p.prop_delay,
                qf(p.core_rate, PortRole::SwitchToSwitch),
            );
            leaf_up[l].push(up);
            let down = net.connect(
                spine,
                leaf,
                p.core_rate,
                p.prop_delay,
                qf(p.core_rate, PortRole::SwitchToSwitch),
            );
            spine_down[s].push(down);
        }
    }

    let mut hosts = Vec::new();
    let mut host_ingress = Vec::new();
    for (l, &leaf) in leaf_ids.iter().enumerate() {
        for _ in 0..hosts_per_leaf {
            let h = net.add_host(p.host_delay);
            net.connect(h, leaf, p.host_rate, p.prop_delay, qf(p.host_rate, PortRole::HostNic));
            let down =
                net.connect(leaf, h, p.host_rate, p.prop_delay, qf(p.host_rate, PortRole::DownToHost));
            // Routes: own leaf delivers directly; other leaves go up to any
            // spine; spines come back down to this leaf.
            net.add_route(leaf, h, down);
            for (ol, &other_leaf) in leaf_ids.iter().enumerate() {
                if ol != l {
                    for &up in &leaf_up[ol] {
                        net.add_route(other_leaf, h, up);
                    }
                }
            }
            for (s, &spine) in spine_ids.iter().enumerate() {
                net.add_route(spine, h, spine_down[s][l]);
            }
            hosts.push(h);
            host_ingress.push((leaf, down));
        }
    }
    // Longest path: host -> leaf -> spine -> leaf -> host = 4 links,
    // 3 switches and the destination host stack.
    let base_rtt = 2 * (4 * p.prop_delay + 3 * p.switch_delay + p.host_delay);
    let mut switches = spine_ids;
    switches.extend(leaf_ids);
    Topology { net, hosts, switches, host_ingress, base_rtt, host_rate: p.host_rate }
}

/// Three-tier oversubscribed fat-tree, shaped like the ExpressPass paper's:
/// `pods` pods, each with `tors_per_pod` ToRs and `aggs_per_pod` aggregation
/// switches; every aggregation switch connects to all `spines` spines; every
/// ToR hosts `hosts_per_tor` servers. The paper's instance is
/// `fat_tree(8, 4, 2, 8, 6, …)` = 8 spines, 16 aggs, 32 ToRs, 192 servers.
pub fn fat_tree(
    spines: usize,
    pods: usize,
    tors_per_pod: usize,
    aggs_per_pod: usize,
    hosts_per_tor: usize,
    p: LinkParams,
    qf: &QueueFactory<'_>,
) -> Topology {
    fat_tree_with(NullTracer, spines, pods, tors_per_pod, aggs_per_pod, hosts_per_tor, p, qf)
}

/// [`fat_tree`] with a telemetry tracer installed on the network.
#[allow(clippy::too_many_arguments)]
pub fn fat_tree_with<T: Tracer>(
    tracer: T,
    spines: usize,
    pods: usize,
    tors_per_pod: usize,
    aggs_per_pod: usize,
    hosts_per_tor: usize,
    p: LinkParams,
    qf: &QueueFactory<'_>,
) -> Topology<T> {
    let mut net = Network::with_tracer(tracer);
    let spine_ids: Vec<NodeId> =
        (0..spines).map(|i| net.add_switch(p.policy, p.seed + 1 + i as u64, p.switch_delay)).collect();
    // agg_ids[pod][a], tor_ids[pod][t]
    let agg_ids: Vec<Vec<NodeId>> = (0..pods)
        .map(|pd| {
            (0..aggs_per_pod)
                .map(|a| net.add_switch(p.policy, p.seed + 500 + (pd * 16 + a) as u64, p.switch_delay))
                .collect()
        })
        .collect();
    let tor_ids: Vec<Vec<NodeId>> = (0..pods)
        .map(|pd| {
            (0..tors_per_pod)
                .map(|t| net.add_switch(p.policy, p.seed + 9000 + (pd * 64 + t) as u64, p.switch_delay))
                .collect()
        })
        .collect();

    // Agg <-> spine (full bipartite): agg_up[pod][a][s], spine_down[s] -> port per (pod, a).
    let mut agg_up = vec![vec![Vec::with_capacity(spines); aggs_per_pod]; pods];
    let mut spine_down = vec![vec![vec![PortId(0); aggs_per_pod]; pods]; spines];
    for pd in 0..pods {
        for a in 0..aggs_per_pod {
            for (s, &spine) in spine_ids.iter().enumerate() {
                let up = net.connect(
                    agg_ids[pd][a],
                    spine,
                    p.core_rate,
                    p.prop_delay,
                    qf(p.core_rate, PortRole::SwitchToSwitch),
                );
                agg_up[pd][a].push(up);
                let down = net.connect(
                    spine,
                    agg_ids[pd][a],
                    p.core_rate,
                    p.prop_delay,
                    qf(p.core_rate, PortRole::SwitchToSwitch),
                );
                spine_down[s][pd][a] = down;
            }
        }
    }

    // ToR <-> agg within a pod: tor_up[pod][t][a], agg_down[pod][a][t].
    let mut tor_up = vec![vec![Vec::with_capacity(aggs_per_pod); tors_per_pod]; pods];
    let mut agg_down = vec![vec![vec![PortId(0); tors_per_pod]; aggs_per_pod]; pods];
    for pd in 0..pods {
        for t in 0..tors_per_pod {
            for a in 0..aggs_per_pod {
                let up = net.connect(
                    tor_ids[pd][t],
                    agg_ids[pd][a],
                    p.core_rate,
                    p.prop_delay,
                    qf(p.core_rate, PortRole::SwitchToSwitch),
                );
                tor_up[pd][t].push(up);
                let down = net.connect(
                    agg_ids[pd][a],
                    tor_ids[pd][t],
                    p.core_rate,
                    p.prop_delay,
                    qf(p.core_rate, PortRole::SwitchToSwitch),
                );
                agg_down[pd][a][t] = down;
            }
        }
    }

    let mut hosts = Vec::new();
    let mut host_ingress = Vec::new();
    for pd in 0..pods {
        for t in 0..tors_per_pod {
            for _ in 0..hosts_per_tor {
                let h = net.add_host(p.host_delay);
                net.connect(h, tor_ids[pd][t], p.host_rate, p.prop_delay, qf(p.host_rate, PortRole::HostNic));
                let down = net.connect(
                    tor_ids[pd][t],
                    h,
                    p.host_rate,
                    p.prop_delay,
                    qf(p.host_rate, PortRole::DownToHost),
                );
                // Routes:
                // * own ToR: direct.
                net.add_route(tor_ids[pd][t], h, down);
                // * other ToRs in any pod: up to their aggs.
                for opd in 0..pods {
                    for ot in 0..tors_per_pod {
                        if opd == pd && ot == t {
                            continue;
                        }
                        for &up in &tor_up[opd][ot] {
                            net.add_route(tor_ids[opd][ot], h, up);
                        }
                    }
                }
                // * aggs in this pod: down to this ToR. Aggs in other pods:
                //   up to any spine.
                for a in 0..aggs_per_pod {
                    net.add_route(agg_ids[pd][a], h, agg_down[pd][a][t]);
                }
                for opd in 0..pods {
                    if opd == pd {
                        continue;
                    }
                    for a in 0..aggs_per_pod {
                        for &up in &agg_up[opd][a] {
                            net.add_route(agg_ids[opd][a], h, up);
                        }
                    }
                }
                // * spines: down to any agg of this pod.
                for (s, &spine) in spine_ids.iter().enumerate() {
                    for &down in spine_down[s][pd].iter().take(aggs_per_pod) {
                        net.add_route(spine, h, down);
                    }
                }
                hosts.push(h);
                host_ingress.push((tor_ids[pd][t], down));
            }
        }
    }

    // Longest path: host-ToR-agg-spine-agg-ToR-host = 6 links, 5 switches.
    let base_rtt = 2 * (6 * p.prop_delay + 5 * p.switch_delay + p.host_delay);
    let mut switches = spine_ids;
    switches.extend(agg_ids.into_iter().flatten());
    switches.extend(tor_ids.into_iter().flatten());
    Topology { net, hosts, switches, host_ingress, base_rtt, host_rate: p.host_rate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Ctx, Endpoint};
    use crate::packet::{FlowDesc, FlowId, Packet, TrafficClass};
    use crate::queues::DropTailQueue;
    use crate::units::us;

    fn qf(_r: Rate, _role: PortRole) -> Box<dyn QueueDisc> {
        Box::new(DropTailQueue::new(1 << 30))
    }

    struct Echoless;
    impl Endpoint for Echoless {
        fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
            ctx.send(Packet::data(
                flow.id,
                flow.src,
                flow.dst,
                0,
                flow.size as u32,
                TrafficClass::Scheduled,
                flow.size,
            ));
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                ctx.metrics.deliver(pkt.flow, pkt.payload as u64, ctx.now);
            }
        }
        fn on_timer(&mut self, _t: u64, _ctx: &mut Ctx<'_>) {}
    }

    fn all_pairs_complete(mut topo: Topology, horizon: crate::units::Time) {
        let hosts = topo.hosts.clone();
        for &h in &hosts {
            topo.net.set_endpoint(h, Box::new(Echoless));
        }
        let mut id = 0u64;
        for &a in &hosts {
            for &b in &hosts {
                if a != b {
                    id += 1;
                    topo.net.schedule_flow(FlowDesc {
                        id: FlowId(id),
                        src: a,
                        dst: b,
                        size: 1000,
                        start: 0,
                    });
                }
            }
        }
        assert!(
            topo.net.run_to_completion(horizon),
            "not all pairs delivered: {}/{}",
            topo.net.metrics.completed_count(),
            topo.net.metrics.flow_count()
        );
    }

    #[test]
    fn single_switch_all_pairs_reachable() {
        let topo = single_switch(8, LinkParams::uniform(Rate::gbps(10), us(1)), &qf);
        assert_eq!(topo.hosts.len(), 8);
        all_pairs_complete(topo, us(100_000));
    }

    #[test]
    fn leaf_spine_all_pairs_reachable() {
        let topo = leaf_spine(4, 4, 4, LinkParams::uniform(Rate::gbps(100), us(1)), &qf);
        assert_eq!(topo.hosts.len(), 16);
        assert_eq!(topo.switches.len(), 8);
        all_pairs_complete(topo, us(100_000));
    }

    #[test]
    fn leaf_spine_spray_all_pairs_reachable() {
        let mut p = LinkParams::uniform(Rate::gbps(100), us(1));
        p.policy = RoutePolicy::Spray;
        let topo = leaf_spine(4, 4, 2, p, &qf);
        all_pairs_complete(topo, us(100_000));
    }

    #[test]
    fn fat_tree_paper_shape() {
        let topo =
            fat_tree(8, 8, 4, 2, 6, LinkParams::uniform(Rate::gbps(100), us(4)), &qf);
        assert_eq!(topo.hosts.len(), 192);
        // 8 spines + 16 aggs + 32 ToRs.
        assert_eq!(topo.switches.len(), 56);
    }

    #[test]
    fn fat_tree_small_all_pairs_reachable() {
        let topo = fat_tree(2, 2, 2, 2, 2, LinkParams::uniform(Rate::gbps(100), us(1)), &qf);
        assert_eq!(topo.hosts.len(), 8);
        all_pairs_complete(topo, us(100_000));
    }

    #[test]
    fn validate_routes_accepts_all_builders() {
        single_switch(8, LinkParams::uniform(Rate::gbps(10), us(1)), &qf).validate_routes();
        leaf_spine(4, 4, 4, LinkParams::uniform(Rate::gbps(100), us(1)), &qf).validate_routes();
        fat_tree(4, 4, 2, 2, 3, LinkParams::uniform(Rate::gbps(100), us(1)), &qf)
            .validate_routes();
    }

    #[test]
    fn base_rtt_formulas() {
        let mut p = LinkParams::uniform(Rate::gbps(100), us(1));
        p.switch_delay = 100; // 0.1 ns — just to see it counted
        p.host_delay = 50;
        let t1 = single_switch(2, p, &qf);
        assert_eq!(t1.base_rtt, 2 * (2 * us(1) + 100 + 50));
        let t2 = leaf_spine(2, 2, 2, p, &qf);
        assert_eq!(t2.base_rtt, 2 * (4 * us(1) + 3 * 100 + 50));
        let t3 = fat_tree(2, 2, 2, 2, 2, p, &qf);
        assert_eq!(t3.base_rtt, 2 * (6 * us(1) + 5 * 100 + 50));
    }

    #[test]
    fn host_ingress_ports_point_at_hosts() {
        let topo = leaf_spine(2, 2, 2, LinkParams::uniform(Rate::gbps(100), us(1)), &qf);
        for (i, &(sw, port)) in topo.host_ingress.iter().enumerate() {
            let p = topo.net.port(sw, port);
            assert_eq!(p.link.to, topo.hosts[i]);
        }
    }
}
