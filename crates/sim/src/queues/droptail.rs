//! Plain drop-tail FIFO, optionally drawing buffer from a shared pool.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, PoolHandle, QueueDisc};
use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// FIFO queue that tail-drops when its byte cap (or the switch shared buffer
/// pool) is exhausted.
pub struct DropTailQueue {
    fifo: ByteFifo,
    cap_bytes: u64,
    pool: Option<PoolHandle>,
}

impl DropTailQueue {
    /// A drop-tail queue holding at most `cap_bytes` of packets.
    pub fn new(cap_bytes: u64) -> DropTailQueue {
        DropTailQueue { fifo: ByteFifo::new(), cap_bytes, pool: None }
    }

    /// Attach a switch-wide shared buffer pool; enqueues must also reserve
    /// from the pool, and dequeues release back to it.
    pub fn with_pool(mut self, pool: PoolHandle) -> DropTailQueue {
        self.pool = Some(pool);
        self
    }
}

impl QueueDisc for DropTailQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, _now: Time) -> EnqueueOutcome {
        let sz = pool.get(pkt).size;
        if self.fifo.bytes() + sz as u64 > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
        }
        if let Some(shared) = &self.pool {
            if !shared.borrow_mut().try_alloc(sz as u64) {
                return EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, pkt };
            }
        }
        self.fifo.push(pkt, sz);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _pool: &mut PacketPool, _now: Time) -> Poll {
        match self.fifo.pop() {
            // The fifo caches the wire size, so even the shared-buffer
            // accounting on dequeue stays out of the packet pool.
            Some((pkt, sz)) => {
                if let Some(shared) = &self.pool {
                    shared.borrow_mut().free(sz as u64);
                }
                Poll::Ready(pkt)
            }
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn pkts(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_ref;
    use super::super::SharedPool;
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn accepts_until_cap_then_tail_drops() {
        let mut pool = PacketPool::new();
        let mut q = DropTailQueue::new(3000);
        for i in 0..2 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i * 1460);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let r = data_ref(&mut pool, TrafficClass::Scheduled, 2 * 1460);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt } => {
                assert_eq!(pool.get(pkt).seq, 2 * 1460)
            }
            other => panic!("expected tail drop, got {other:?}"),
        }
        assert_eq!(q.bytes(), 3000);
        assert_eq!(q.pkts(), 2);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = PacketPool::new();
        let mut q = DropTailQueue::new(1 << 20);
        for i in 0..10u64 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        for i in 0..10u64 {
            match q.poll(&mut pool, 0) {
                Poll::Ready(p) => assert_eq!(pool.get(p).seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(q.poll(&mut pool, 0), Poll::Empty));
    }

    #[test]
    fn shared_pool_exhaustion_drops_even_below_port_cap() {
        let mut pool = PacketPool::new();
        let shared = SharedPool::new(1500);
        let mut q1 = DropTailQueue::new(1 << 20).with_pool(shared.clone());
        let mut q2 = DropTailQueue::new(1 << 20).with_pool(shared.clone());
        let r0 = data_ref(&mut pool, TrafficClass::Scheduled, 0);
        assert!(matches!(q1.enqueue(r0, &mut pool, 0), EnqueueOutcome::Queued));
        // q2 has plenty of per-port headroom but the pool is gone.
        let r1 = data_ref(&mut pool, TrafficClass::Scheduled, 1);
        match q2.enqueue(r1, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, .. } => {}
            other => panic!("expected shared-buffer drop, got {other:?}"),
        }
        // Draining q1 frees pool space for q2.
        assert!(matches!(q1.poll(&mut pool, 0), Poll::Ready(_)));
        let r2 = data_ref(&mut pool, TrafficClass::Scheduled, 2);
        assert!(matches!(q2.enqueue(r2, &mut pool, 0), EnqueueOutcome::Queued));
        assert_eq!(shared.borrow().used(), 1500);
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(|| Box::new(DropTailQueue::new(8_000)), seed, 600);
        }
    }

    #[test]
    fn conforms_to_oracle_ledger_with_shared_pool() {
        for seed in 0..4 {
            let shared = SharedPool::new(6_000);
            crate::queues::testutil::oracle_audit(
                || Box::new(DropTailQueue::new(16_000).with_pool(shared.clone())),
                seed,
                600,
            );
            assert_eq!(shared.borrow().used(), 0, "drained queue still holds shared buffer");
        }
    }
}
