//! Extension — Fastpass vs Fastpass+Aeolus: the centralized-arbiter branch
//! of proactive transport (§2.1). The pre-credit phase is the arbiter round
//! trip, so the Aeolus building block applies unchanged: sub-BDP messages
//! finish before their timeslot schedule even arrives.

use aeolus_sim::units::{ms, us};
use aeolus_stats::TextTable;
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder};

use crate::report::{fct_header, fct_row, Report};
use crate::runner::run_flows;
use crate::scale::Scale;
use crate::topos::testbed;

/// Message sizes swept (sub-BDP through multi-BDP on the 10 G testbed).
const SIZES: [u64; 4] = [8_000, 20_000, 60_000, 200_000];

fn mct(scheme: Scheme, size: u64, rounds: usize) -> crate::runner::RunOutput {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    // Sequential request/response rounds with rotating endpoints: the
    // spare-bandwidth case where the pre-credit burst shines (the incast
    // case is covered by the e2e tests — there Aeolus cannot help anyone
    // but the queue-front winner).
    let mut flows = Vec::new();
    for r in 0..rounds {
        let src = hosts[1 + r % (hosts.len() - 1)];
        let dst = hosts[(r + 3) % hosts.len()];
        if src == dst {
            continue;
        }
        flows.push(FlowDesc {
            id: FlowId(r as u64 + 1),
            src,
            dst,
            size,
            start: r as u64 * ms(1),
        });
    }
    let _ = us(1);
    run_flows(&mut h, &flows, ms(200))
}

/// Run the Fastpass extension comparison.
pub fn run(scale: Scale) -> Report {
    let rounds = scale.count(2, 15, 60);
    let mut r = Report::new();
    for &size in &SIZES {
        let mut table = TextTable::new(fct_header());
        for scheme in [Scheme::Fastpass, Scheme::FastpassAeolus] {
            let out = mct(scheme, size, rounds);
            let mut row = fct_row(&scheme.label(), &out.agg);
            row[0] = format!("{} [done {}/{}]", scheme.label(), out.completed, out.scheduled);
            table.row(row);
        }
        r.section(format!("Extension: Fastpass — {} B messages", size), table);
    }
    r.note("expected: Aeolus removes the arbiter round trip for sub-BDP messages; the gain shrinks as messages grow past one BDP (~17.5 KB here)");
    r
}
