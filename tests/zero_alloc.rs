//! Steady-state allocation proof for the pooled packet path.
//!
//! The simulator recycles packet storage through [`PacketPool`]: after the
//! pool, the timing wheel and the per-node state reach their high-water
//! marks, forwarding traffic must not touch the global allocator at all.
//! This test wires a counting allocator in front of the system allocator,
//! warms an ExpressPass+Aeolus incast up past its transient, then asserts
//! that a long steady-state window performs *zero* heap allocations and
//! that the packet pool never grows again.
//!
//! Kept as its own integration-test binary on purpose: the allocation
//! counter is process-global, so no other test may run concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

static TRAP: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.load(Ordering::Relaxed) == 1 {
            TRAP.store(0, Ordering::Relaxed);
            panic!("TRAPPED alloc of {} bytes", layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.load(Ordering::Relaxed) == 1 {
            TRAP.store(0, Ordering::Relaxed);
            panic!("TRAPPED realloc to {new_size} bytes");
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if TRAP.load(Ordering::Relaxed) == 1 {
            TRAP.store(0, Ordering::Relaxed);
            panic!("TRAPPED alloc_zeroed of {} bytes", layout.size());
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_forwarding_allocates_nothing() {
    // 7-to-1 incast of elephants over a single 10G switch: every link and
    // queue stays busy for the whole run, and no flow completes inside the
    // measurement window (1 GiB at ~10G is ≫ the 300 ms horizon).
    let spec =
        TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) };
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (1..hosts.len())
        .map(|i| FlowDesc {
            id: FlowId(i as u64),
            src: hosts[i],
            dst: hosts[0],
            size: 1 << 30,
            start: 0,
        })
        .collect();
    h.schedule(&flows);

    // Warm-up: lets the packet pool, wheel buckets, scratch buffers and
    // per-flow maps grow to their high-water marks.
    h.network_mut().run_until(ms(150));
    let grows_after_warmup = h.network().pool().grows();
    assert!(h.network().pool().live() > 0, "warm-up produced no in-flight packets");

    let before = allocations();
    if std::env::var_os("AEOLUS_ALLOC_TRAP").is_some() {
        TRAP.store(1, Ordering::Relaxed);
    }
    h.network_mut().run_until(ms(600));
    TRAP.store(0, Ordering::Relaxed);
    let delta = allocations() - before;

    let m = h.metrics();
    assert!(
        m.payload_delivered > 100 << 20,
        "window moved too little traffic to be a meaningful steady state: {} B",
        m.payload_delivered
    );
    assert_eq!(
        delta, 0,
        "steady-state forwarding hit the allocator {delta} time(s) in the measurement window of simulated traffic"
    );
    assert_eq!(
        h.network().pool().grows(),
        grows_after_warmup,
        "packet pool grew after warm-up instead of recycling"
    );
}

#[test]
fn pool_reports_recycling_stats() {
    // Sanity on the observability surface the benches and docs rely on:
    // after a completed run every packet is back in the pool.
    let spec =
        TopoSpec::SingleSwitch { hosts: 4, link: LinkParams::uniform(Rate::gbps(10), us(3)) };
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 500_000, start: 0 }]);
    assert!(h.run(ms(2000)));
    let pool = h.network().pool();
    // The run halts the moment the last flow completes, so a handful of
    // credits can still be in flight — but the bulk of the pool is free.
    assert!(
        pool.live() < 32,
        "{} packets live after completion — pool handles are leaking",
        pool.live()
    );
    assert!(pool.high_water() > 0);
    assert_eq!(pool.capacity(), pool.high_water());
}
