#![warn(missing_docs)]
//! # aeolus-stats — measurement & reporting
//!
//! Simulator-agnostic statistics for the Aeolus reproduction: FCT/MCT
//! aggregation with size banding, slowdown, nearest-rank percentiles,
//! empirical CDFs and text/CSV table rendering. Every experiment runner in
//! `aeolus-experiments` reports through these types so numbers are computed
//! exactly one way.

pub mod ascii;
pub mod cdf;
pub mod fct;
pub mod percentile;
pub mod table;

pub use ascii::{plot_cdfs, sparkline};
pub use cdf::{Cdf, CdfPoint};
pub use fct::{FctAggregator, FctSample, FctSummary};
pub use percentile::Samples;
pub use table::{f2, f3, TextTable};
