//! Table 3 — average FCT of ALL flows under eager Homa (20 µs RTO) vs
//! Homa+Aeolus across the four workloads (two-tier tree, 54% load).

use aeolus_sim::units::us;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::runner::{run_many, RunConfig};
use crate::scale::Scale;
use crate::topos::homa_two_tier;

/// Run Table 3.
pub fn run(scale: Scale) -> Report {
    let arms =
        [(Scheme::HomaEager { rto: us(20) }, "Eager Homa"), (Scheme::HomaAeolus, "Homa + Aeolus")];
    // One run per scheme × workload, fanned out across cores.
    let mut cfgs = Vec::new();
    for (scheme, _) in arms {
        for w in Workload::ALL {
            let mut cfg = RunConfig::new(scheme, homa_two_tier(scale), w);
            cfg.load = 0.54;
            cfg.n_flows = scale.flows(50, 600, 3000);
            cfg.seed = 33;
            cfgs.push(cfg);
        }
    }
    let outs = run_many(&cfgs);
    let mut outs = outs.iter();
    let mut table = TextTable::new(vec![
        "scheme",
        "Web Server (us)",
        "Cache Follower (us)",
        "Web Search (us)",
        "Data Mining (us)",
    ]);
    for (_, name) in arms {
        let mut row = vec![name.to_string()];
        for _ in Workload::ALL {
            let out = outs.next().expect("one output per config");
            row.push(f2(out.agg.fct_us().mean()));
        }
        table.row(row);
    }
    let mut r = Report::new();
    r.section("Table 3: average FCT, eager Homa vs Homa+Aeolus", table);
    r.note("paper: 13.59/141.82/281.62/25.86 vs 6.93/35.34/107.47/24.22 us");
    r
}
