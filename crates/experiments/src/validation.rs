//! Simulator validation suite (`repro validate`): calibration checks that
//! the substrate behaves as its analytic model predicts, run before trusting
//! any reproduction number. Real simulators ship the same kind of checks.
//!
//! 1. **RTT calibration** — a 1-byte echo flow's FCT matches the topology's
//!    configured base RTT plus serialization, per topology family.
//! 2. **Throughput calibration** — a single elephant approaches line rate
//!    under every scheme (proactive schemes after their ramp).
//! 3. **Fairness** — concurrent equal elephants share a bottleneck with a
//!    high Jain index under the receiver-driven schemes.
//!
//! Unlike the figure experiments, this suite **gates**: every checked
//! quantity has an explicit tolerance, a breach is recorded as a
//! [`Report`] violation, and `repro validate` exits non-zero when any
//! check lands outside its band.

use aeolus_sim::units::{ms, PS_PER_SEC};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_stats::{f2, f3, Samples, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder, TopoSpec};

use crate::report::Report;
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, heavy_spine_leaf, homa_two_tier, testbed};

/// Accepted band for measured-FCT / expected-one-way-RTT. Below 0.9 the
/// substrate is faster than physics allows (a modelling bug); above 1.5
/// serialization and scheduling overhead dominate propagation, i.e. the
/// topology's configured base RTT no longer predicts its behaviour.
pub const RTT_RATIO_BOUNDS: (f64, f64) = (0.9, 1.5);

/// A lone elephant on an idle 10 G path must reach at least this fraction
/// of line rate under every scheme, ramp included.
pub const MIN_LINE_RATE_FRACTION: f64 = 0.9;

/// Minimum Jain index for schemes whose design targets per-flow fairness.
/// (Homa's SRPT scheduler intentionally serializes equal elephants, so it
/// is reported but not gated.)
pub const MIN_JAIN: f64 = 0.95;

fn rtt_check(spec: TopoSpec, name: &str, table: &mut TextTable, report: &mut Report) {
    let mut h = SchemeBuilder::new(Scheme::NdpAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    // Longest path: first host to last host.
    let (src, dst) = (hosts[0], *hosts.last().unwrap());
    h.schedule(&[FlowDesc { id: FlowId(1), src, dst, size: 1, start: 0 }]);
    assert!(h.run(ms(100)));
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    // One-way delivery ≈ base_rtt/2 plus a few serializations.
    let expect = h.topo.base_rtt / 2;
    let ratio = fct as f64 / expect.max(1) as f64;
    table.row(vec![
        name.to_string(),
        f2(expect as f64 / 1e6),
        f2(fct as f64 / 1e6),
        f3(ratio),
    ]);
    let (lo, hi) = RTT_RATIO_BOUNDS;
    if !(lo..=hi).contains(&ratio) {
        report.violation(format!(
            "RTT calibration: {name} measured/expected ratio {ratio:.3} outside [{lo}, {hi}] \
             (expected {:.2} us one-way, measured FCT {:.2} us)",
            expect as f64 / 1e6,
            fct as f64 / 1e6,
        ));
    }
}

fn throughput_check(scheme: Scheme, table: &mut TextTable, report: &mut Report) {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let size = 4_000_000u64;
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
    assert!(h.run(ms(500)), "{} elephant incomplete", scheme.name());
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    let gbps = size as f64 * 8.0 / (fct as f64 / PS_PER_SEC as f64) / 1e9;
    let fraction = gbps / 10.0;
    table.row(vec![scheme.label(), f2(gbps), f3(fraction)]);
    if fraction < MIN_LINE_RATE_FRACTION {
        report.violation(format!(
            "throughput calibration: {} elephant reached {gbps:.2} Gbps = {fraction:.3} of the \
             10 G line rate, below the {MIN_LINE_RATE_FRACTION} floor",
            scheme.label(),
        ));
    }
}

fn fairness_check(scheme: Scheme, gate: bool, table: &mut TextTable, report: &mut Report) {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..4)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 1_000_000,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    assert!(h.run(ms(2000)), "{} fairness run incomplete", scheme.name());
    // Throughput share approximated by inverse FCT.
    let rates: Vec<f64> =
        h.metrics().flows().map(|r| 1e9 / r.fct().unwrap() as f64).collect();
    let jain = Samples::from_vec(rates).jain_fairness();
    let label =
        if gate { scheme.label() } else { format!("{} (informational)", scheme.label()) };
    table.row(vec![label, f3(jain)]);
    if gate && jain < MIN_JAIN {
        report.violation(format!(
            "fairness calibration: {} Jain index {jain:.3} below the {MIN_JAIN} floor for \
             4 equal elephants",
            scheme.label(),
        ));
    }
}

/// Run the validation suite.
pub fn run(_scale: Scale) -> Report {
    let mut r = Report::new();

    let mut rtt = TextTable::new(vec!["topology", "expected 1-way (us)", "measured FCT (us)", "ratio"]);
    rtt_check(testbed(), "testbed 8x10G", &mut rtt, &mut r);
    rtt_check(homa_two_tier(Scale::Smoke), "two-tier 100G", &mut rtt, &mut r);
    rtt_check(ep_fat_tree(Scale::Smoke), "fat-tree 100G", &mut rtt, &mut r);
    rtt_check(heavy_spine_leaf(Scale::Smoke), "heavy spine-leaf", &mut rtt, &mut r);
    r.section("Validation 1: base-RTT calibration (1-byte flow)", rtt);

    let mut tp = TextTable::new(vec!["scheme", "elephant Gbps (of 10)", "fraction"]);
    for scheme in [
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::Ndp,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
    ] {
        throughput_check(scheme, &mut tp, &mut r);
    }
    r.section("Validation 2: single-flow throughput (4MB on idle 10G)", tp);

    let mut fair = TextTable::new(vec!["scheme", "Jain index (4 equal elephants)"]);
    // Homa is reported but not gated: SRPT intentionally serializes equal
    // elephants instead of sharing the bottleneck.
    for (scheme, gate) in [
        (Scheme::ExpressPass, true),
        (Scheme::HomaAeolus, false),
        (Scheme::Ndp, true),
        (Scheme::Dctcp { rto: ms(10) }, true),
    ] {
        fairness_check(scheme, gate, &mut fair, &mut r);
    }
    r.section("Validation 3: bottleneck fairness", fair);

    r.note(format!(
        "gates: RTT ratio in [{}, {}], elephant >= {} of line rate, Jain >= {} \
         (gated schemes); violations exit non-zero",
        RTT_RATIO_BOUNDS.0, RTT_RATIO_BOUNDS.1, MIN_LINE_RATE_FRACTION, MIN_JAIN
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::topology::LinkParams;
    use aeolus_sim::units::{ns, Rate};

    #[test]
    fn validation_suite_runs_and_is_calibrated() {
        let r = run(Scale::Smoke);
        assert_eq!(r.sections.len(), 3);
        // The stock topologies must pass the gate with zero violations.
        assert!(r.passed(), "stock validation violated tolerances: {:?}", r.violations);
        // RTT ratios live in the last column of section 1.
        let csv = r.sections[0].1.to_csv();
        for line in csv.lines().skip(1) {
            let ratio: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(
                (0.9..1.5).contains(&ratio),
                "RTT ratio {ratio} out of calibration: {line}"
            );
        }
    }

    #[test]
    fn miscalibrated_topology_fails_the_gate() {
        // 1 ns of propagation on a 1 G link: the topology's base RTT claims
        // the path is essentially free, but serialization dominates by
        // orders of magnitude — the analytic model no longer predicts the
        // measured echo, which is exactly what the gate must catch.
        let bad = TopoSpec::SingleSwitch {
            hosts: 2,
            link: LinkParams::uniform(Rate::gbps(1), ns(1)),
        };
        let mut table = TextTable::new(vec!["topology", "expected", "measured", "ratio"]);
        let mut report = Report::new();
        rtt_check(bad, "miscalibrated", &mut table, &mut report);
        assert!(!report.passed(), "miscalibrated topology slipped through the RTT gate");
        assert!(
            report.violations[0].contains("RTT calibration: miscalibrated"),
            "unexpected violation text: {}",
            report.violations[0]
        );
        assert!(report.render().contains("VIOLATION: RTT calibration"));
    }
}
