//! Corpus-guided fuzzing: novelty signatures, a persistent on-disk corpus
//! of interesting [`Scenario`] specs, mutation operators over it, and the
//! batched campaign driver behind `repro fuzz --corpus`.
//!
//! The blind fuzzer ([`crate::fuzz::fuzz`]) samples scenarios uniformly and
//! stops at the first failure. This module steers instead: every run is
//! condensed into a deterministic **novelty signature** — a behavioral
//! fingerprint over the signals the conformance oracle and the metrics
//! already produce (drop-taxonomy cells, queue-depth extremes, retransmit
//! causes, restart/abort/timeout outcomes, and how close the run came to
//! each oracle check's boundary), all log2- or decile-bucketed so noise
//! collapses but regimes stay distinct. A scenario whose signature was
//! never seen before is *interesting*: it is persisted to the corpus
//! (failures are shrunk first), and later campaigns replay and mutate the
//! corpus instead of starting from nothing.
//!
//! Everything is deterministic in (seed, corpus contents): scenario
//! generation and corpus folding happen sequentially per batch, only the
//! embarrassingly-parallel `check_signed` runs fan out, and results are
//! folded in batch order — so a campaign's outcome is bit-identical across
//! `--jobs` counts.
//!
//! On-disk format: `results/corpus/<fingerprint>.spec`, where the stem is
//! the 16-hex-digit signature fingerprint. Lines starting with `#` are
//! annotations (the signature text, the failure that produced the spec);
//! the first other line is the one-line [`Scenario`] spec, parsed back via
//! its `FromStr`.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aeolus_sim::units::us;
use aeolus_sim::{LinkFilter, SimRng, LOSS_CAUSE_LABELS};

use crate::fuzz::{scheme_pool, shrink, CheckedRun, RunSignals, Scenario};

/// A deterministic behavioral fingerprint of one checked run.
///
/// Two runs share a signature exactly when they land in the same behavioral
/// regime: same scheme, same verdict class, same bucketed drop taxonomy,
/// queue-depth extremes, retransmit-cause mix, flow outcomes and oracle
/// check proximity. The human-readable `text` is canonical; `fingerprint`
/// is its FNV-1a hash, used as the corpus filename and the novelty key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    text: String,
    fingerprint: u64,
}

impl Signature {
    /// Condense a checked run into its signature.
    pub fn of(scenario: &Scenario, run: &CheckedRun) -> Signature {
        let mut text = format!("scheme={}", scenario.scheme.name());
        match &run.failure {
            None => text.push_str(" verdict=pass"),
            Some(msg) => {
                text.push_str(" verdict=");
                text.push_str(&failure_class(msg));
            }
        }
        if let Some(sig) = &run.signals {
            fold_signals(&mut text, sig);
        }
        let fingerprint = fnv1a64(text.as_bytes());
        Signature { text, fingerprint }
    }

    /// The canonical human-readable form.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// 64-bit FNV-1a hash of [`Signature::text`] — the novelty key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x} {}", self.fingerprint, self.text)
    }
}

/// Append the bucketed signal fields to a signature's canonical text.
///
/// Bucketing is deliberately coarse (AFL-style): a signature should name a
/// behavioral *regime* — which checks were grazed, which drop taxonomy
/// cells fired, whether flows hung/aborted/retransmitted — not a single
/// run. Too fine and every random case mints a "new" signature, which
/// makes novelty meaningless (blind sampling would trivially tie guided
/// search); too coarse and real regressions collapse into old regimes.
fn fold_signals(text: &mut String, sig: &RunSignals) {
    use fmt::Write;
    // Completion as a class, not a count: all / partial / none.
    let done = if sig.flow_count == 0 {
        "empty"
    } else if sig.completed == sig.flow_count {
        "all"
    } else if sig.completed == 0 {
        "none"
    } else {
        "partial"
    };
    let _ = write!(
        text,
        " done={done} ab={} rtx={} q=b{}",
        (sig.aborted > 0) as u8,
        (sig.retransmitting_flows > 0) as u8,
        bucket(sig.oracle.max_queue_bytes) / 2,
    );
    let _ = write!(text, " rst=b{} to=b{}", bucket(sig.restarts) / 2, bucket(sig.timeouts) / 2);
    // Oracle-check proximity in halves of the boundary: 0 = never
    // exercised, 1 = below half, 2 = grazed (50–100%), 3+ = past it
    // (possible only where the profile leaves the check off).
    let _ = write!(
        text,
        " fill={}/{}/{}",
        (sig.oracle.burst_fill_pct / 50).min(3),
        (sig.oracle.credit_fill_pct / 50).min(3),
        (sig.oracle.retransmit_fill_pct / 50).min(3)
    );
    text.push_str(" causes=");
    let mut any = false;
    for (i, label) in LOSS_CAUSE_LABELS.iter().enumerate() {
        let n = sig.oracle.retransmits_by_cause[i];
        if n > 0 {
            if any {
                text.push(',');
            }
            let _ = write!(text, "{label}:b{}", bucket(n) / 2);
            any = true;
        }
    }
    if !any {
        text.push_str("none");
    }
    text.push_str(" drops=");
    let mut any = false;
    for (reason, class, n) in &sig.drops {
        if any {
            text.push(',');
        }
        let _ = write!(text, "{reason}/{class}:b{}", bucket(*n) / 2);
        any = true;
    }
    if !any {
        text.push_str("none");
    }
}

/// Log2 bucket: 0 for 0, else `1 + floor(log2(x))` — collapses counts into
/// orders of magnitude so one extra drop does not mint a "new" signature.
/// Callers halve or clamp this further where regimes, not magnitudes, are
/// the point.
fn bucket(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Classify a failure message into a stable signature token: the oracle's
/// check name when present, one of the fuzzer's own verdicts otherwise,
/// `panic` as the catch-all.
fn failure_class(msg: &str) -> String {
    if let Some(rest) = msg.split("conformance violation [").nth(1) {
        if let Some(check) = rest.split(']').next() {
            return format!("violation:{check}");
        }
    }
    if msg.contains("incomplete on a clean network") {
        "incomplete".to_string()
    } else if msg.contains("on a clean network") {
        "short-delivery".to_string()
    } else if msg.contains("hung") {
        "hung".to_string()
    } else {
        "panic".to_string()
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The corpus: scenarios worth keeping, keyed by signature fingerprint.
///
/// Backed by a directory when opened with [`Corpus::open`] (one `.spec`
/// file per signature) or purely in-memory for blind baselines and tests.
#[derive(Debug)]
pub struct Corpus {
    dir: Option<PathBuf>,
    seen: BTreeSet<u64>,
    entries: Vec<Scenario>,
}

impl Corpus {
    /// An empty corpus with no backing directory (nothing persists).
    pub fn in_memory() -> Corpus {
        Corpus { dir: None, seen: BTreeSet::new(), entries: Vec::new() }
    }

    /// Open (creating if needed) an on-disk corpus directory and load every
    /// parseable `.spec` entry, in sorted filename order so iteration is
    /// deterministic regardless of directory enumeration order.
    pub fn open(dir: &Path) -> io::Result<Corpus> {
        fs::create_dir_all(dir)?;
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "spec"))
            .collect();
        names.sort();
        let mut corpus =
            Corpus { dir: Some(dir.to_path_buf()), seen: BTreeSet::new(), entries: Vec::new() };
        for path in names {
            let text = fs::read_to_string(&path)?;
            let Some(line) = text.lines().find(|l| !l.trim().is_empty() && !l.starts_with('#'))
            else {
                continue;
            };
            let scenario: Scenario = line.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: bad corpus spec: {e}", path.display()),
                )
            })?;
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                if let Ok(fp) = u64::from_str_radix(stem, 16) {
                    corpus.seen.insert(fp);
                }
            }
            corpus.entries.push(scenario);
        }
        Ok(corpus)
    }

    /// Entries in deterministic (load + insertion) order.
    pub fn entries(&self) -> &[Scenario] {
        &self.entries
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record `scenario` under `sig` if the signature is new: remembers it
    /// in-memory and, for a directory-backed corpus, writes
    /// `<fingerprint>.spec` annotated with the signature text and the
    /// failure (if any). Returns whether the signature was new.
    pub fn admit(
        &mut self,
        sig: &Signature,
        scenario: &Scenario,
        failure: Option<&str>,
    ) -> io::Result<bool> {
        if !self.seen.insert(sig.fingerprint) {
            return Ok(false);
        }
        self.entries.push(scenario.clone());
        if let Some(dir) = &self.dir {
            let mut body = format!("# sig {}\n", sig.text);
            if let Some(msg) = failure {
                for line in msg.lines() {
                    body.push_str("# failure ");
                    body.push_str(line);
                    body.push('\n');
                }
            }
            body.push_str(&scenario.to_string());
            body.push('\n');
            fs::write(dir.join(format!("{:016x}.spec", sig.fingerprint)), body)?;
        }
        Ok(true)
    }
}

/// Mutate `a` (with `b` as a splice donor) into a nearby scenario: splice
/// fault plans between specs, perturb flow sizes/starts and fault windows,
/// add/remove flows, swap the scheme, resize the topology. Deterministic in
/// the RNG state.
pub fn mutate(rng: &mut SimRng, a: &Scenario, b: &Scenario) -> Scenario {
    let mut m = a.clone();
    match rng.index(8) {
        // Splice: a's workload under b's fault plan — the cross-pollination
        // operator that moves a fault regime onto a workload shape that
        // never drew it.
        0 => m.faults = b.faults.clone(),
        // Perturb flow sizes: double or halve one flow.
        1 => {
            if !m.flows.is_empty() {
                let i = rng.index(m.flows.len());
                let f = &mut m.flows[i];
                f.size = if rng.chance(0.5) { (f.size * 2).min(1 << 22) } else { (f.size / 2).max(1) };
            }
        }
        // Perturb start times: re-draw one flow's start.
        2 => {
            if !m.flows.is_empty() {
                let i = rng.index(m.flows.len());
                m.flows[i].start_us = rng.below(50);
            }
        }
        // Perturb fault windows: shift every wire-fault window later and
        // halve-or-double its duration.
        3 => {
            for w in &mut m.faults.windows {
                let dur = (w.until - w.from).max(1);
                let dur = if rng.chance(0.5) { dur * 2 } else { (dur / 2).max(1) };
                w.from += us(rng.below(100));
                w.until = w.from + dur;
            }
        }
        // Swap the scheme, keeping workload and faults.
        4 => {
            let pool = scheme_pool();
            m.scheme = pool[rng.index(pool.len())];
        }
        // Graft one of b's flows in.
        5 => {
            if let Some(f) = b.flows.first() {
                if m.flows.len() < 8 {
                    m.flows.push(f.clone());
                }
            }
        }
        // Drop a flow.
        6 => {
            if m.flows.len() > 1 {
                let i = rng.index(m.flows.len());
                m.flows.remove(i);
            }
        }
        // Resize the topology.
        _ => {
            m.hosts = if rng.chance(0.5) { (m.hosts + 1).min(10) } else { m.hosts.saturating_sub(1).max(3) };
        }
    }
    // A mutation may strand a fault plan with a down window and no rules —
    // that is fine; but keep a window's link filter meaningful after host
    // resizing by pinning it to All (index-targeted filters are not in the
    // generator's grammar today).
    for w in &mut m.faults.windows {
        w.links = LinkFilter::All;
    }
    m
}

/// How a campaign case was produced — reported in `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaseOrigin {
    Replay,
    Mutation,
    Random,
}

/// Configuration of one guided (or blind) campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total case budget, corpus replays included.
    pub cases: usize,
    /// Campaign seed (drives generation and mutation draws).
    pub seed: u64,
    /// Fraction of post-replay cases produced by mutating corpus entries
    /// (the rest are fresh random scenarios). `0.0` — together with an
    /// empty corpus — is the blind baseline.
    pub mutate_fraction: f64,
    /// Worker threads for the parallel check phase.
    pub jobs: usize,
    /// Shrink each distinct failure to its minimal spec (set false to
    /// cheapen pure signature-counting runs).
    pub shrink_failures: bool,
}

/// One distinct failure a campaign found, minimized.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The scenario as generated.
    pub scenario: Scenario,
    /// Its failure message.
    pub failure: String,
    /// The shrunk scenario (equal to `scenario` when shrinking is off).
    pub minimized: Scenario,
    /// The shrunk scenario's failure message.
    pub minimized_failure: String,
    /// The failing run's novelty signature.
    pub signature: Signature,
}

/// What a campaign did and found.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Cases actually run (== the configured budget).
    pub cases_run: usize,
    /// Distinct novelty signatures observed *during this campaign*.
    pub distinct_signatures: usize,
    /// Signatures that were new to the corpus and persisted.
    pub new_signatures: usize,
    /// Cases that replayed corpus entries verbatim.
    pub replayed: usize,
    /// Cases produced by mutation.
    pub mutated: usize,
    /// Fresh random cases.
    pub random: usize,
    /// Distinct failures (one per failing signature), minimized.
    pub failures: Vec<CampaignFailure>,
}

/// Batch size of the generate → check → fold loop. Fixed (not derived from
/// `jobs`) so the generation schedule — and therefore the whole campaign —
/// is identical across worker counts.
const BATCH: usize = 32;

/// Run a guided campaign: replay the corpus first (re-deriving its
/// signatures), then alternate corpus mutations with fresh random
/// scenarios, admitting every new signature into the corpus (failures
/// shrunk first). Returns the campaign's stats and distinct failures.
///
/// Deterministic in (`cfg.seed`, corpus contents): identical outcomes for
/// any `cfg.jobs`.
pub fn run_campaign(cfg: &CampaignConfig, corpus: &mut Corpus) -> io::Result<CampaignOutcome> {
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xc0_7b05);
    let mut outcome = CampaignOutcome {
        cases_run: 0,
        distinct_signatures: 0,
        new_signatures: 0,
        replayed: 0,
        mutated: 0,
        random: 0,
        failures: Vec::new(),
    };
    let mut campaign_sigs: BTreeSet<u64> = BTreeSet::new();
    let mut failed_sigs: BTreeSet<u64> = BTreeSet::new();
    // Replay only what the corpus held at campaign start: entries admitted
    // *by this campaign* were just run — replaying them is pure waste (a
    // deterministic re-run reproduces the signature it was admitted for).
    let replay_limit = corpus.len();
    let mut replay_next = 0usize;
    while outcome.cases_run < cfg.cases {
        let n = BATCH.min(cfg.cases - outcome.cases_run);
        // Generation is sequential and draws on the corpus snapshot at
        // batch start; this keeps the schedule independent of how fast the
        // parallel phase below finishes.
        let mut batch: Vec<(Scenario, CaseOrigin)> = Vec::with_capacity(n);
        for _ in 0..n {
            if replay_next < replay_limit {
                batch.push((corpus.entries()[replay_next].clone(), CaseOrigin::Replay));
                replay_next += 1;
            } else if !corpus.is_empty() && rng.chance(cfg.mutate_fraction) {
                let a = corpus.entries()[rng.index(corpus.len())].clone();
                let b = corpus.entries()[rng.index(corpus.len())].clone();
                batch.push((mutate(&mut rng, &a, &b), CaseOrigin::Mutation));
            } else {
                batch.push((Scenario::random(rng.next_u64()), CaseOrigin::Random));
            }
        }
        let runs = par_check(&batch, cfg.jobs);
        // Fold in batch order: corpus admission and failure dedup see
        // results in a deterministic sequence.
        for ((scenario, origin), run) in batch.iter().zip(runs) {
            outcome.cases_run += 1;
            match origin {
                CaseOrigin::Replay => outcome.replayed += 1,
                CaseOrigin::Mutation => outcome.mutated += 1,
                CaseOrigin::Random => outcome.random += 1,
            }
            let sig = Signature::of(scenario, &run);
            campaign_sigs.insert(sig.fingerprint());
            let novel = !corpusknown(corpus, &sig);
            if let Some(failure) = &run.failure {
                if failed_sigs.insert(sig.fingerprint()) {
                    let (minimized, minimized_failure) = if cfg.shrink_failures {
                        shrink(scenario.clone(), &|s| s.check())
                    } else {
                        (scenario.clone(), failure.clone())
                    };
                    if novel {
                        corpus.admit(&sig, &minimized, Some(failure))?;
                        outcome.new_signatures += 1;
                    }
                    outcome.failures.push(CampaignFailure {
                        scenario: scenario.clone(),
                        failure: failure.clone(),
                        minimized,
                        minimized_failure,
                        signature: sig,
                    });
                }
            } else if novel {
                corpus.admit(&sig, scenario, None)?;
                outcome.new_signatures += 1;
            }
        }
    }
    outcome.distinct_signatures = campaign_sigs.len();
    Ok(outcome)
}

/// Whether the corpus has already seen this signature.
fn corpusknown(corpus: &Corpus, sig: &Signature) -> bool {
    corpus.seen.contains(&sig.fingerprint)
}

/// Ordered parallel map over the batch: a shared atomic cursor hands out
/// indices, each worker writes its slot, and the result vector comes back
/// in input order — so folding is deterministic for any worker count.
fn par_check(batch: &[(Scenario, CaseOrigin)], jobs: usize) -> Vec<CheckedRun> {
    let jobs = jobs.max(1).min(batch.len().max(1));
    if jobs <= 1 {
        return batch.iter().map(|(s, _)| s.check_signed()).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CheckedRun>>> =
        Mutex::new((0..batch.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                let run = batch[i].0.check_signed();
                slots.lock().unwrap()[i] = Some(run);
            });
        }
    });
    slots.into_inner().unwrap().into_iter().map(|o| o.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Scheme;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("aeolus-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn signature_is_deterministic_and_scheme_sensitive() {
        let s: Scenario =
            "scheme=homa-aeolus hosts=4 flows=1-0:30000@0 faults=".parse().unwrap();
        let a = Signature::of(&s, &s.check_signed());
        let b = Signature::of(&s, &s.check_signed());
        assert_eq!(a, b, "same scenario, same signature");
        let mut other = s.clone();
        other.scheme = Scheme::Ndp;
        let c = Signature::of(&other, &other.check_signed());
        assert_ne!(a.fingerprint(), c.fingerprint(), "{a} vs {c}");
        assert!(a.text().contains("verdict=pass"), "{a}");
    }

    #[test]
    fn signature_buckets_absorb_small_count_changes() {
        // Two runs whose only difference is a within-bucket count must
        // collapse to one signature: build signals by hand.
        use crate::fuzz::RunSignals;
        let base = RunSignals {
            drops: vec![("buffer_full", "sched", 130)],
            flow_count: 2,
            completed: 2,
            ..RunSignals::default()
        };
        let mut close = base.clone();
        close.drops = vec![("buffer_full", "sched", 140)]; // same log2 bucket
        let s: Scenario = "scheme=ndp hosts=4 flows=none faults=".parse().unwrap();
        let run =
            |sig: RunSignals| CheckedRun { failure: None, signals: Some(sig) };
        assert_eq!(
            Signature::of(&s, &run(base.clone())).fingerprint(),
            Signature::of(&s, &run(close)).fingerprint()
        );
        let mut far = base;
        far.drops = vec![("buffer_full", "sched", 1300)]; // different bucket
        let s2 = Signature::of(&s, &run(far));
        assert_ne!(
            Signature::of(
                &s,
                &CheckedRun {
                    failure: None,
                    signals: Some(RunSignals {
                        drops: vec![("buffer_full", "sched", 130)],
                        flow_count: 2,
                        completed: 2,
                        ..RunSignals::default()
                    })
                }
            )
            .fingerprint(),
            s2.fingerprint()
        );
    }

    #[test]
    fn failure_classes_extract_the_oracle_check_name() {
        assert_eq!(
            failure_class("conformance violation [queue-ledger] at 5 ps: …"),
            "violation:queue-ledger"
        );
        assert_eq!(failure_class("incomplete on a clean network: 0/1 …"), "incomplete");
        assert_eq!(failure_class("flow 1 delivered 5 of 9 bytes on a clean network"), "short-delivery");
        assert_eq!(failure_class("1 of 2 flows hung (neither completed …"), "hung");
        assert_eq!(failure_class("index out of bounds"), "panic");
    }

    #[test]
    fn corpus_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let s: Scenario =
            "scheme=homa-aeolus hosts=4 flows=1-0:30000@0 faults=".parse().unwrap();
        let sig = Signature::of(&s, &s.check_signed());
        {
            let mut c = Corpus::open(&dir).unwrap();
            assert!(c.is_empty());
            assert!(c.admit(&sig, &s, Some("two-line\nfailure")).unwrap());
            assert!(!c.admit(&sig, &s, None).unwrap(), "duplicate signature rejected");
            assert_eq!(c.len(), 1);
        }
        // Reload: same entry, same novelty knowledge, deterministic order.
        let mut c = Corpus::open(&dir).unwrap();
        assert_eq!(c.entries(), &[s.clone()]);
        assert!(!c.admit(&sig, &s, None).unwrap(), "novelty survives reload");
        // The file is annotated and its stem is the fingerprint.
        let path = dir.join(format!("{:016x}.spec", sig.fingerprint()));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# sig "), "{text}");
        assert!(text.contains("# failure two-line\n# failure failure\n"), "{text}");
        assert!(text.ends_with(&format!("{s}\n")), "{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutations_stay_parseable_and_vary() {
        let mut rng = SimRng::seed_from_u64(99);
        let a = Scenario::random(1);
        let b = Scenario::random(2);
        let mut changed = 0;
        for _ in 0..64 {
            let m = mutate(&mut rng, &a, &b);
            let line = m.to_string();
            let back: Scenario = line.parse().unwrap_or_else(|e| panic!("'{line}': {e}"));
            assert_eq!(back, m, "mutant round-trips");
            assert!(m.hosts >= 3 && m.hosts <= 10, "{m}");
            if m != a {
                changed += 1;
            }
        }
        assert!(changed > 32, "mutations mostly change something ({changed}/64)");
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let cfg = |jobs| CampaignConfig {
            cases: 12,
            seed: 7,
            mutate_fraction: 0.5,
            jobs,
            shrink_failures: false,
        };
        let mut c1 = Corpus::in_memory();
        let o1 = run_campaign(&cfg(1), &mut c1).unwrap();
        let mut c4 = Corpus::in_memory();
        let o4 = run_campaign(&cfg(4), &mut c4).unwrap();
        assert_eq!(o1.distinct_signatures, o4.distinct_signatures);
        assert_eq!(o1.new_signatures, o4.new_signatures);
        assert_eq!(o1.replayed, o4.replayed);
        assert_eq!(o1.mutated, o4.mutated);
        assert_eq!(o1.random, o4.random);
        assert_eq!(
            c1.entries().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            c4.entries().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            "corpus contents identical across --jobs 1/4"
        );
        assert_eq!(o1.cases_run, 12);
    }

    #[test]
    fn campaign_replays_corpus_before_generating() {
        let mut corpus = Corpus::in_memory();
        let s: Scenario =
            "scheme=homa-aeolus hosts=4 flows=1-0:30000@0 faults=".parse().unwrap();
        let sig = Signature::of(&s, &s.check_signed());
        corpus.admit(&sig, &s, None).unwrap();
        let cfg = CampaignConfig {
            cases: 3,
            seed: 1,
            mutate_fraction: 0.0,
            jobs: 2,
            shrink_failures: false,
        };
        let o = run_campaign(&cfg, &mut corpus).unwrap();
        assert_eq!(o.replayed, 1, "the stored entry replays first");
        assert_eq!(o.replayed + o.mutated + o.random, 3);
        // The replayed entry's signature is already known to the corpus, so
        // it must not be admitted (or persisted) again.
        assert!(o.new_signatures <= 2);
    }

    #[test]
    fn guided_campaign_reaches_more_signatures_than_blind_on_equal_budgets() {
        // Build a seed corpus from a cheap wide scan: distilled distinct
        // behaviors at one case each. On a fresh equal budget, replaying
        // that distillate plus mutations must reach strictly more distinct
        // signatures than blind sampling alone — the acceptance criterion
        // behind `repro fuzz --stats`.
        let scan = CampaignConfig {
            cases: 48,
            seed: 1000,
            mutate_fraction: 0.0,
            jobs: 4,
            shrink_failures: false,
        };
        let mut seeded = Corpus::in_memory();
        run_campaign(&scan, &mut seeded).unwrap();
        let budget = 24;
        let guided_cfg = CampaignConfig {
            cases: budget,
            seed: 2000,
            mutate_fraction: 0.6,
            jobs: 4,
            shrink_failures: false,
        };
        let guided = run_campaign(&guided_cfg, &mut seeded).unwrap();
        let mut blind_corpus = Corpus::in_memory();
        let blind_cfg = CampaignConfig {
            cases: budget,
            seed: 2000,
            mutate_fraction: 0.0,
            jobs: 4,
            shrink_failures: false,
        };
        let blind = run_campaign(&blind_cfg, &mut blind_corpus).unwrap();
        assert!(
            guided.distinct_signatures > blind.distinct_signatures,
            "guided {} vs blind {} distinct signatures on a {budget}-case budget",
            guided.distinct_signatures,
            blind.distinct_signatures
        );
    }

    #[test]
    fn campaign_dedupes_failures_by_signature() {
        // Plant a failing spec in the corpus twice the budget over: the
        // campaign replays it, sees one failing signature, reports exactly
        // one failure (minimized = original since shrinking is off).
        let mut corpus = Corpus::in_memory();
        let fail: Scenario = format!(
            "scheme=ndp hosts=4 flows=1-0:2000@{} faults=",
            8_000_000u64 // far past the horizon → clean-network incompleteness
        )
        .parse()
        .unwrap();
        let run = fail.check_signed();
        assert!(run.failure.is_some(), "planted spec must fail");
        let sig = Signature::of(&fail, &run);
        corpus.admit(&sig, &fail, run.failure.as_deref()).unwrap();
        let cfg = CampaignConfig {
            cases: 2,
            seed: 5,
            mutate_fraction: 1.0,
            jobs: 1,
            shrink_failures: false,
        };
        let o = run_campaign(&cfg, &mut corpus).unwrap();
        let same: Vec<_> =
            o.failures.iter().filter(|f| f.signature.fingerprint() == sig.fingerprint()).collect();
        assert_eq!(same.len(), 1, "one failure per signature");
        assert!(same[0].failure.contains("incomplete"), "{}", same[0].failure);
    }
}
