//! Property-based tests on the simulator's core data structures.

use aeolus_sim::event::{Event, EventQueue};
use aeolus_sim::{
    DropReason, EnqueueOutcome, FlowId, NodeId, Packet, Poll, PriorityBank, QueueDisc, RangeSet,
    RedEcnQueue, TrafficClass,
};
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// non-decreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, Event::Timer { node: NodeId(0), token: i as u64 });
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some((t, Event::Timer { token, .. })) = q.pop() {
            popped.push((t, token));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// RangeSet agrees with a naive boolean-vector model.
    #[test]
    fn rangeset_matches_naive_model(ops in prop::collection::vec((0u64..500, 1u64..60), 1..60)) {
        let mut rs = RangeSet::new();
        let mut model = vec![false; 600];
        for &(start, len) in &ops {
            let end = (start + len).min(600);
            let added = rs.insert(start, end);
            let mut model_added = 0;
            for b in model.iter_mut().take(end as usize).skip(start as usize) {
                if !*b {
                    *b = true;
                    model_added += 1;
                }
            }
            prop_assert_eq!(added, model_added as u64);
        }
        let covered = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(rs.covered(), covered);
        // Gap structure agrees.
        let gaps = rs.gaps(600);
        let mut naive_gaps = Vec::new();
        let mut i = 0usize;
        while i < 600 {
            if !model[i] {
                let s = i;
                while i < 600 && !model[i] {
                    i += 1;
                }
                naive_gaps.push((s as u64, i as u64));
            } else {
                i += 1;
            }
        }
        prop_assert_eq!(gaps, naive_gaps);
        // contiguous_prefix agrees.
        let prefix = model.iter().take_while(|&&b| b).count() as u64;
        prop_assert_eq!(rs.contiguous_prefix(), prefix);
    }

    /// With only droppable (unscheduled) traffic, a selective-dropping queue
    /// never holds more than threshold + one packet.
    #[test]
    fn selective_queue_bounded_by_threshold(
        threshold in 1_500u64..50_000,
        n in 1usize..200,
    ) {
        let mut q = RedEcnQueue::new(threshold, 1 << 30);
        let mut dropped = 0u64;
        for i in 0..n as u64 {
            let pkt = Packet::data(
                FlowId(1), NodeId(0), NodeId(1), i * 1460, 1460,
                TrafficClass::Unscheduled, 1 << 20,
            );
            if let EnqueueOutcome::Dropped { reason, .. } = q.enqueue(pkt, 0) {
                prop_assert_eq!(reason, DropReason::SelectiveDrop);
                dropped += 1;
            }
            prop_assert!(q.bytes() < threshold + 1500, "queue {} vs threshold {}", q.bytes(), threshold);
        }
        // Conservation: everything is queued or dropped.
        prop_assert_eq!(q.pkts() as u64 + dropped, n as u64);
    }

    /// A priority bank drains packets of each priority level in FIFO order
    /// and never inverts priorities present simultaneously.
    #[test]
    fn priority_bank_respects_strict_priority(prios in prop::collection::vec(0u8..8, 1..100)) {
        let mut q = PriorityBank::new(8, 1 << 30);
        for (i, &p) in prios.iter().enumerate() {
            let mut pkt = Packet::data(
                FlowId(1), NodeId(0), NodeId(1), i as u64, 1460,
                TrafficClass::Scheduled, 1 << 20,
            );
            pkt.priority = p;
            let _ = q.enqueue(pkt, 0);
        }
        // Drain fully: output must be sorted by (priority, arrival order).
        let mut out = Vec::new();
        while let Poll::Ready(pkt) = q.poll(0) {
            out.push((pkt.priority, pkt.seq));
        }
        prop_assert_eq!(out.len(), prios.len());
        let mut expected: Vec<(u8, u64)> =
            prios.iter().enumerate().map(|(i, &p)| (p, i as u64)).collect();
        expected.sort();
        prop_assert_eq!(out, expected);
    }
}

proptest! {
    /// WRED (color-based) and RED/ECN (marking-based) selective dropping
    /// make identical drop decisions for any threshold and traffic mix —
    /// the §4.1 deployment-equivalence claim, fuzzed.
    #[test]
    fn wred_equals_red_ecn_for_any_mix(
        threshold in 1_500u64..60_000,
        ops in prop::collection::vec((0u8..3, any::<bool>()), 1..300),
    ) {
        use aeolus_sim::{WredProfile, WredQueue};
        let cap = 200_000u64;
        let mut wred = WredQueue::new(WredProfile::aeolus(threshold, cap), cap);
        let mut red = RedEcnQueue::new(threshold, cap);
        for (i, &(kind, dequeue)) in ops.iter().enumerate() {
            if dequeue {
                let a = matches!(wred.poll(0), Poll::Ready(_));
                let b = matches!(red.poll(0), Poll::Ready(_));
                prop_assert_eq!(a, b);
            } else {
                let class = match kind {
                    0 => TrafficClass::Unscheduled,
                    1 => TrafficClass::Scheduled,
                    _ => TrafficClass::Control,
                };
                let mut pkt = Packet::data(
                    FlowId(1), NodeId(0), NodeId(1), i as u64, 1460, class, 1 << 20,
                );
                if class == TrafficClass::Control {
                    pkt.class = TrafficClass::Control;
                    pkt.ecn = aeolus_sim::Ecn::Ect0;
                }
                let a = matches!(wred.enqueue(pkt.clone(), 0), EnqueueOutcome::Dropped { .. });
                let b = matches!(red.enqueue(pkt, 0), EnqueueOutcome::Dropped { .. });
                prop_assert_eq!(a, b, "divergence at op {}", i);
            }
            prop_assert_eq!(wred.bytes(), red.bytes());
        }
    }
}
