//! Homa (SIGCOMM'18) — receiver-driven transport using network priorities —
//! with pluggable first-RTT handling:
//!
//! * [`FirstRttMode::Blind`]: original Homa — RTT-bytes of unscheduled
//!   packets burst at high priorities (by message-size cutoff), *protected*
//!   from dropping but subject to buffer overflow; timeout-based recovery
//!   (receiver RESENDs + sender RTO).
//! * [`FirstRttMode::Aeolus`]: the burst is droppable/unscheduled, probes
//!   and per-packet ACKs detect first-RTT losses, and retransmissions ride
//!   the guaranteed scheduled (grant-induced) packets.
//! * [`FirstRttMode::Oracle`]: §2.3's hypothetical Homa (zero interference).
//!
//! Receivers grant in SRPT order with an overcommitment degree (default 6),
//! keeping one RTT-bytes window per granted message, and assign scheduled
//! priorities by SRPT rank below the unscheduled levels.

use aeolus_core::PreCreditSender;
use aeolus_sim::units::Time;
use aeolus_sim::{
    Ctx, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, NodeId, Packet, PacketKind, TimerTable,
    TrafficClass, TransportEvent,
};

use crate::common::{
    abort_peer_silent, ack_packet, data_packet, probe_ack_packet, probe_packet, BaseConfig,
    FirstRttMode, Tombstones,
};
use crate::receiver_table::RecvBook;

/// Homa tunables.
#[derive(Debug, Clone)]
pub struct HomaConfig {
    /// Shared transport parameters.
    pub base: BaseConfig,
    /// Total switch priority levels (commodity: 8).
    pub levels: u8,
    /// How many (top) levels unscheduled packets use; scheduled packets use
    /// the rest, ranked by SRPT.
    pub unsched_levels: u8,
    /// Message-size cutoffs for unscheduled priorities: a message of size ≤
    /// `cutoffs[i]` bursts at priority `i`. Must have `unsched_levels - 1`
    /// entries (everything larger uses the last unscheduled level).
    pub cutoffs: Vec<u64>,
    /// Overcommitment degree: how many messages a receiver grants at once.
    pub overcommit: usize,
    /// Retransmission timeout (paper experiments: 10 ms, 20 µs, 40 µs).
    pub rto: Time,
    /// "Eager Homa" (§2.3 / Table 1): the RTO is a naive per-message
    /// deadline that is *not* reset by receiver progress, and every fire
    /// blindly resends the whole burst region — the premature-retransmission
    /// behaviour whose transfer-efficiency collapse the paper measures.
    pub naive_rto: bool,
}

impl HomaConfig {
    /// Defaults matching the paper's setup (8 levels, overcommitment 6),
    /// with generic cutoffs suitable for the Table 2 workloads.
    pub fn new(base: BaseConfig, rto: Time) -> HomaConfig {
        HomaConfig {
            base,
            levels: 8,
            unsched_levels: 4,
            cutoffs: vec![3_000, 30_000, 300_000],
            overcommit: 6,
            rto,
            naive_rto: false,
        }
    }

    /// Unscheduled priority for a message of `size` bytes (smaller = higher).
    pub fn unsched_prio(&self, size: u64) -> u8 {
        for (i, &c) in self.cutoffs.iter().enumerate() {
            if size <= c {
                return i as u8;
            }
        }
        self.unsched_levels - 1
    }

    /// Scheduled priority for the SRPT rank of a granted message.
    pub fn sched_prio(&self, rank: usize) -> u8 {
        let lo = self.unsched_levels;
        let span = self.levels - lo;
        lo + (rank as u8).min(span - 1)
    }
}

/// A batch of missing ranges to re-request from one sender.
type ResendBatch = (FlowId, NodeId, Vec<(u64, u64)>);

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// Sender-side RTO for one flow (Blind mode).
    SenderRto(FlowId),
    /// §6 probe-retry for probe-recovery modes: total silence means even
    /// the probe was lost — resend it.
    ProbeRetry(FlowId),
    /// Receiver-side scan for stalled incomplete messages (Blind mode).
    ResendScan,
}

struct SendFlow {
    desc: FlowDesc,
    core: PreCreditSender,
    /// Consecutive sender-RTO fires (exponential backoff shift).
    rto_fires: u32,
    /// Last time the receiver showed signs of life for this flow (grant,
    /// resend request, ACK): the RTO clock restarts from here.
    last_progress: Time,
    /// Highest grant offset received.
    granted: u64,
    /// Scheduled bytes sent against grants.
    sent_sched: u64,
    grant_prio: u8,
    /// Set when the receiver's completion ACK arrives.
    completed: bool,
    /// Set once anything (grant, RESEND, ACK) has been heard from the
    /// receiver — from then on the receiver's targeted RESEND scan owns
    /// recovery and the sender's blind RTO stands down.
    heard_from_receiver: bool,
    native_prio: u8,
    /// Most recent loss-detection cause (attributes retransmissions in
    /// telemetry traces).
    last_loss: Option<LossCause>,
}

struct RecvFlow {
    sender: NodeId,
    book: RecvBook,
    /// Cumulative scheduled-byte budget granted to the sender.
    granted: u64,
    /// Scheduled payload bytes received back (duplicates included — each
    /// consumed budget, so each replenishes it).
    sched_bytes_received: u64,
    /// Budget written off by the stall scan (its packets are presumed lost).
    budget_forgiven: u64,
    last_arrival: Time,
    /// Last *real* arrival — never rewound by the stall scan's back-off, so
    /// it measures true peer silence for the death watchdog.
    last_progress: Time,
    /// When the last grant was issued (a freshly granted flow is not stale).
    last_granted: Time,
}

/// The per-host Homa endpoint.
pub struct HomaEndpoint {
    cfg: HomaConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<TimerKind>,
    scan_armed: bool,
    /// Reusable SRPT scratch for `regrant` (runs per data packet — a fresh
    /// `Vec` each call would churn the allocator on the hot path).
    srpt_scratch: Vec<(u64, FlowId)>,
    dead: Tombstones,
}

impl HomaEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: HomaConfig) -> HomaEndpoint {
        HomaEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            scan_armed: false,
            srpt_scratch: Vec::new(),
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort (either role): drop local state, bury the id and
    /// record the abort.
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
    }

    fn rtt_bytes(&self, ctx: &Ctx<'_>) -> u64 {
        self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt)
    }

    /// Recompute grants after any receive-side event: SRPT-sorted incomplete
    /// messages, top `overcommit` granted one RTT-bytes past what arrived.
    fn regrant(&mut self, ctx: &mut Ctx<'_>) {
        let rtt_bytes = self.rtt_bytes(ctx);
        // Sorting (remaining, id) makes the SRPT ranking independent of map
        // iteration order; the scratch is reused so this allocates nothing
        // in steady state.
        let mut active = std::mem::take(&mut self.srpt_scratch);
        active.clear();
        active.extend(self.recv_flows.iter().filter_map(|(id, rf)| {
            if rf.book.is_complete() {
                return None;
            }
            rf.book.remaining().map(|rem| (rem, id))
        }));
        active.sort_unstable();
        for (rank, &(_, id)) in active.iter().take(self.cfg.overcommit).enumerate() {
            let prio = self.cfg.sched_prio(rank);
            let rf = self.recv_flows.get_mut(id).expect("active flow");
            // Grants are a cumulative *scheduled-byte budget*, managed by
            // outstanding-bytes accounting: keep
            //   outstanding = granted − received-back (− written-off)
            // topped up to min(remaining, RTTbytes). Counting received-back
            // bytes (duplicates included — each consumed budget) makes the
            // accounting self-correcting under reordering and duplicate
            // retransmissions, and caps scheduled in-flight at one RTT.
            let remaining = rf.book.remaining().unwrap_or(0);
            let outstanding =
                rf.granted.saturating_sub(rf.sched_bytes_received + rf.budget_forgiven);
            // Fund whole packets: a sub-MTU remainder still needs a full
            // packet's worth of budget when retransmissions fragment.
            let mtu = self.cfg.base.mtu_payload as u64;
            let want_outstanding = (remaining.div_ceil(mtu) * mtu).min(rtt_bytes);
            let deficit = want_outstanding.saturating_sub(outstanding);
            // Release arrival-clocked (real Homa grants per received packet):
            // an initial kick when a message first gets scheduled, then a
            // couple of MTUs per regrant — dumping whole windows for several
            // messages at once would overflow the downlink buffer.
            let step = if rf.granted == 0 { 8 * mtu } else { 2 * mtu };
            let increment = deficit.min(step);
            if increment > 0 {
                rf.granted += increment;
                rf.last_granted = ctx.now;
                ctx.emit(TransportEvent::CreditIssue { flow: id, bytes: increment });
                let mut g = Packet::control(
                    id,
                    ctx.host,
                    rf.sender,
                    rf.granted,
                    PacketKind::Grant { grant_prio: prio },
                );
                g.priority = 0;
                ctx.send(g);
            }
        }
        self.srpt_scratch = active;
    }

    /// Send scheduled data against the grant budget.
    fn pump_scheduled(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload;
        if let Some(sf) = self.send_flows.get_mut(flow) {
            while sf.sent_sched < sf.granted {
                match sf.core.next_scheduled_chunk(mtu) {
                    Some(chunk) => {
                        let mut pkt = data_packet(
                            &sf.desc,
                            chunk.seq,
                            chunk.len,
                            TrafficClass::Scheduled,
                            chunk.retransmit,
                        );
                        pkt.priority = sf.grant_prio;
                        if chunk.retransmit {
                            let cause = if chunk.last_resort {
                                LossCause::LastResort
                            } else {
                                sf.last_loss.unwrap_or(LossCause::Probe)
                            };
                            ctx.emit(TransportEvent::Retransmit {
                                flow,
                                bytes: chunk.len as u64,
                                cause,
                            });
                        }
                        ctx.send(pkt);
                        sf.sent_sched += chunk.len as u64;
                    }
                    None => break,
                }
            }
        }
    }

    /// Staleness threshold before recovery kicks in: the RTO in Blind mode,
    /// several RTTs in the probe-recovery modes (where it is only a backstop
    /// against lost *scheduled* packets under extreme buffer pressure).
    fn stale_after(&self) -> Time {
        match self.cfg.base.mode {
            FirstRttMode::Blind => self.cfg.rto,
            // Gated on outstanding budget (below), so this only needs to
            // exceed worst-case in-flight drain time — 1 ms is generous.
            _ => (20 * self.cfg.base.base_rtt).max(aeolus_sim::units::ms(1)),
        }
    }

    fn arm_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.base.mode == FirstRttMode::Hold || self.scan_armed {
            return;
        }
        self.scan_armed = true;
        let delay = self.stale_after() / 2;
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::ResendScan));
    }

    fn on_resend_scan(&mut self, ctx: &mut Ctx<'_>) {
        self.scan_armed = false;
        let stale_after = self.stale_after();
        let probe_mode = self.cfg.base.mode.probe_recovery();
        let rtt_bytes = self.rtt_bytes(ctx);
        let mut any_incomplete = false;
        let mut resends: Vec<ResendBatch> = Vec::new();
        let mut give_ups: Vec<FlowId> = Vec::new();
        for (id, rf) in self.recv_flows.iter_mut() {
            if rf.book.is_complete() {
                continue;
            }
            if self.cfg.base.peer_silent(rf.last_progress, ctx.now) {
                // The sender has been dead past the death threshold despite
                // backed-off RESENDs: abort instead of re-requesting forever.
                give_ups.push(id);
                continue;
            }
            any_incomplete = true;
            // Only a flow whose granted budget is *outstanding* (packets in
            // flight that never returned) can be loss-stalled; zero
            // outstanding means it is waiting on grants/SRPT, not on the
            // network. In-flight packets drain within a buffer-drain time,
            // so a stale outstanding balance is a loss.
            if probe_mode {
                let outstanding =
                    rf.granted.saturating_sub(rf.sched_bytes_received + rf.budget_forgiven);
                if outstanding == 0 {
                    continue;
                }
            }
            // Staleness is arrival-based: outstanding in-flight packets
            // drain within a buffer-drain time, far below the 1 ms floor
            // (grant timestamps are irrelevant — the periodic grant kick
            // would otherwise mask a genuine stall indefinitely).
            if ctx.now.saturating_sub(rf.last_arrival) < stale_after {
                continue;
            }
            // Expected extent: whatever was granted plus the unscheduled
            // region the sender must have burst.
            let size = match rf.book.core.size() {
                Some(s) => s,
                None => continue, // know nothing yet; sender RTO covers this
            };
            // Request anything missing below the full message: the sender
            // clamps requeues to what it actually transmitted, and resending
            // not-yet-sent bytes early is harmless (grants are a cumulative
            // byte budget, so the receiver cannot reconstruct which offsets
            // were authorized).
            let upto = size;
            let _ = rtt_bytes;
            // Blind mode requests at most one bounded range per flow per
            // scan: premature resends of merely-queued data are the known
            // waste of timeout recovery, but unbounded re-requests at RTO
            // cadence would melt an incast fabric outright.
            let missing: Vec<(u64, u64)> = if probe_mode {
                rf.book.core.missing_below(upto).into_iter().take(8).collect()
            } else {
                let window = 8 * self.cfg.base.mtu_payload as u64;
                rf.book
                    .core
                    .missing_below(upto)
                    .into_iter()
                    .take(1)
                    .map(|(s, e)| (s, e.min(s + window)))
                    .collect()
            };
            if !missing.is_empty() {
                ctx.metrics.note_timeout(id);
                rf.last_arrival = ctx.now; // back off until the next scan
                // The stalled budget's packets are presumed gone: write
                // them off so fresh grants flow for the retransmissions.
                let outstanding = rf
                    .granted
                    .saturating_sub(rf.sched_bytes_received + rf.budget_forgiven);
                rf.budget_forgiven += outstanding;
                resends.push((id, rf.sender, missing));
            }
        }
        // Always re-evaluate grants while anything is incomplete: grants are
        // otherwise arrival-clocked, and a receiver whose last arrival
        // predates a flow's turn in the SRPT order would strand it.
        let regrant_needed = any_incomplete;
        let _ = probe_mode;
        give_ups.sort_unstable();
        for id in give_ups {
            self.give_up_on(id, ctx);
        }
        // Slot order is not key order: sort so resend emission matches the
        // seed's BTreeMap scan order exactly.
        resends.sort_unstable_by_key(|&(id, _, _)| id);
        for (id, sender, missing) in resends {
            for (s, e) in missing {
                let mut r =
                    Packet::control(id, ctx.host, sender, s, PacketKind::Resend { end: e });
                r.priority = 0;
                ctx.send(r);
            }
        }
        if regrant_needed {
            self.regrant(ctx);
        }
        if any_incomplete {
            ctx.set_timer_in_with(stale_after / 2, self.timers.arm(TimerKind::ResendScan));
            self.scan_armed = true;
        }
    }

    fn on_sender_rto(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload;
        let rto = self.cfg.rto;
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let fires = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.completed {
                None
            } else if pcfg.peer_silent(sf.last_progress, ctx.now) {
                give_up = true;
                None
            } else if !self.cfg.naive_rto && ctx.now.saturating_sub(sf.last_progress) < rto {
                // The receiver is alive (grants flowing): not a timeout,
                // just re-arm from the last progress point.
                Some(sf.rto_fires)
            } else if self.cfg.naive_rto {
                // Eager Homa: premature full-burst retransmission on a
                // naive deadline — the Table 1 efficiency collapse.
                ctx.metrics.note_timeout(flow);
                sf.rto_fires += 1;
                sf.last_loss = Some(LossCause::Timeout);
                let burst_end = sf.desc.size.min(
                    self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt),
                );
                let mut seq = 0u64;
                while seq < burst_end {
                    let len = mtu.min((burst_end - seq) as u32);
                    let mut pkt =
                        data_packet(&sf.desc, seq, len, TrafficClass::Unscheduled, true);
                    self.cfg.base.mode.stamp_unscheduled(
                        &mut pkt,
                        sf.native_prio,
                        self.cfg.levels - 1,
                    );
                    ctx.emit(TransportEvent::Retransmit {
                        flow,
                        bytes: len as u64,
                        cause: LossCause::Timeout,
                    });
                    ctx.send(pkt);
                    seq += len as u64;
                }
                Some(sf.rto_fires)
            } else {
                // No completion and no receiver feedback for a full RTO:
                // re-poll with the first burst packet (it carries the
                // message size, so a receiver that lost the whole burst
                // learns of the flow); the receiver's RESEND machinery
                // drives range recovery.
                ctx.metrics.note_timeout(flow);
                sf.rto_fires += 1;
                sf.last_loss = Some(LossCause::Timeout);
                let len = mtu.min(sf.desc.size as u32);
                let mut pkt = data_packet(&sf.desc, 0, len, TrafficClass::Unscheduled, true);
                self.cfg.base.mode.stamp_unscheduled(
                    &mut pkt,
                    sf.native_prio,
                    self.cfg.levels - 1,
                );
                ctx.emit(TransportEvent::Retransmit {
                    flow,
                    bytes: len as u64,
                    cause: LossCause::Timeout,
                });
                ctx.send(pkt);
                Some(sf.rto_fires)
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if let Some(fires) = fires {
            // Naive mode keeps firing at a fixed cadence for a while (the
            // measured waste); both modes back off exponentially eventually
            // so a stuck flow cannot melt the run.
            let shift = if self.cfg.naive_rto { (fires / 16).min(6) } else { (fires / 2).min(8) };
            ctx.set_timer_in_with(rto << shift, self.timers.arm(TimerKind::SenderRto(flow)));
        }
    }

    fn on_probe_retry(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let retry_rtts = self.cfg.base.aeolus.probe_retry_rtts;
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let fires = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.heard_from_receiver || sf.completed {
                None
            } else if pcfg.peer_silent(sf.last_progress, ctx.now) {
                give_up = true;
                None
            } else {
                ctx.metrics.note_timeout(flow);
                let burst_end = sf.desc.size.min(
                    self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt),
                );
                let mut probe = probe_packet(&sf.desc, burst_end);
                probe.priority = sf.native_prio;
                ctx.send(probe);
                // Reuse `rto_fires` as the retry counter: Blind mode (the
                // only other user) never arms ProbeRetry.
                sf.rto_fires += 1;
                Some(sf.rto_fires)
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if let Some(fires) = fires {
            if retry_rtts > 0 {
                // Capped exponential backoff: each fruitless retry doubles
                // the interval, up to 64×, so a long outage never seeds a
                // storm.
                let base = (retry_rtts as Time * self.cfg.base.base_rtt.max(1))
                    .max(aeolus_sim::units::ms(2));
                let token = self.timers.arm(TimerKind::ProbeRetry(flow));
                ctx.set_timer_in_with(base << fires.min(6), token);
            }
        }
    }

    fn ensure_recv_flow(&mut self, pkt: &Packet, now: Time) -> &mut RecvFlow {
        let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
            sender: pkt.src,
            book: RecvBook::new(),
            granted: 0,
            sched_bytes_received: 0,
            budget_forgiven: 0,
            last_arrival: now,
            last_progress: now,
            last_granted: 0,
        });
        rf.book.learn_size(pkt.flow_size);
        rf.last_arrival = now;
        rf.last_progress = now;
        rf
    }
}

impl Endpoint for HomaEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mode = self.cfg.base.mode;
        let budget = if mode.bursts() { self.rtt_bytes(ctx).min(flow.size) } else { 0 };
        let mut core = PreCreditSender::new(flow.size, budget);
        let native_prio = self.cfg.unsched_prio(flow.size);
        let mtu = self.cfg.base.mtu_payload;
        let mut burst_sent = 0u64;
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStart { flow: flow.id, bytes: budget });
        }
        while let Some(chunk) = core.next_burst_chunk(mtu) {
            let mut pkt = data_packet(&flow, chunk.seq, chunk.len, TrafficClass::Unscheduled, false);
            mode.stamp_unscheduled(&mut pkt, native_prio, self.cfg.levels - 1);
            burst_sent += chunk.len as u64;
            ctx.send(pkt);
        }
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStop { flow: flow.id, sent: burst_sent });
        }
        if let Some(probe_seq) = core.end_burst() {
            if mode.probe_recovery() {
                // The probe must trail the burst through every queue: give it
                // the *same* priority as the unscheduled data (it stays
                // protected from selective dropping via its ECT mark).
                let mut probe = probe_packet(&flow, probe_seq);
                probe.priority = native_prio;
                ctx.send(probe);
            }
        }
        if mode == FirstRttMode::Blind {
            ctx.set_timer_in_with(self.cfg.rto, self.timers.arm(TimerKind::SenderRto(flow.id)));
        } else if mode.probe_recovery() && self.cfg.base.aeolus.probe_retry_rtts > 0 {
            let delay =
                (self.cfg.base.aeolus.probe_retry_rtts as Time * self.cfg.base.base_rtt.max(1))
                    .max(aeolus_sim::units::ms(2));
            ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::ProbeRetry(flow.id)));
        }
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                core,
                rto_fires: 0,
                last_progress: ctx.now,
                granted: 0,
                sent_sched: 0,
                grant_prio: self.cfg.sched_prio(0),
                completed: false,
                heard_from_receiver: false,
                native_prio,
                last_loss: None,
            },
        );
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Data => {
                let mode = self.cfg.base.mode;
                let rf = self.ensure_recv_flow(&pkt, ctx.now);
                let unscheduled = pkt.class == TrafficClass::Unscheduled;
                if !unscheduled {
                    rf.sched_bytes_received += pkt.payload as u64;
                }
                let v = rf.book.on_data(&pkt, ctx);
                let sender = rf.sender;
                // Aeolus per-packet ACKs for unscheduled data.
                if mode.probe_recovery() && unscheduled {
                    if let Some((s, e)) = v.acked_range {
                        let mut a = ack_packet(pkt.flow, ctx.host, sender, s, e);
                        a.priority = 0;
                        ctx.send(a);
                    }
                }
                // Completion ACK (the RPC-reply analogue) in every mode so
                // senders can retire state and stop RTO timers.
                if v.completed {
                    let size = pkt.flow_size;
                    let mut done = ack_packet(pkt.flow, ctx.host, sender, 0, size);
                    done.priority = 0;
                    ctx.send(done);
                }
                self.regrant(ctx);
                self.arm_scan(ctx);
            }
            PacketKind::Probe => {
                let rf = self.ensure_recv_flow(&pkt, ctx.now);
                rf.book.core.on_probe(pkt.seq, pkt.flow_size);
                let sender = rf.sender;
                let mut pa = probe_ack_packet(pkt.flow, ctx.host, sender, pkt.seq);
                pa.priority = 0;
                ctx.send(pa);
                self.regrant(ctx);
                self.arm_scan(ctx);
            }
            PacketKind::Grant { grant_prio } => {
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_from_receiver = true;
                    sf.last_progress = ctx.now;
                    sf.grant_prio = grant_prio;
                    if pkt.seq > sf.granted {
                        ctx.emit(TransportEvent::CreditReceipt {
                            flow: pkt.flow,
                            bytes: pkt.seq - sf.granted,
                        });
                        sf.granted = pkt.seq;
                    }
                    sf.core.end_burst();
                }
                self.pump_scheduled(pkt.flow, ctx);
            }
            PacketKind::Resend { end } => {
                let mtu = self.cfg.base.mtu_payload;
                let levels = self.cfg.levels;
                let mode = self.cfg.base.mode;
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_from_receiver = true;
                    sf.last_progress = ctx.now;
                    if mode.probe_recovery() {
                        // Backstop path: requeue and let the (inflated)
                        // grant budget clock the retransmission out as a
                        // guaranteed scheduled packet.
                        let lost = sf.core.requeue_lost(pkt.seq, end.min(sf.desc.size));
                        if lost > 0 {
                            sf.last_loss = Some(LossCause::Stall);
                            ctx.emit(TransportEvent::LossDetected {
                                flow: pkt.flow,
                                bytes: lost,
                                cause: LossCause::Stall,
                            });
                        }
                    } else {
                        // Blind mode: resend immediately as unscheduled.
                        sf.last_loss = Some(LossCause::Stall);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: end.min(sf.desc.size).saturating_sub(pkt.seq),
                            cause: LossCause::Stall,
                        });
                        let mut seq = pkt.seq;
                        while seq < end.min(sf.desc.size) {
                            let len = mtu.min((end.min(sf.desc.size) - seq) as u32);
                            let mut p =
                                data_packet(&sf.desc, seq, len, TrafficClass::Unscheduled, true);
                            mode.stamp_unscheduled(&mut p, sf.native_prio, levels - 1);
                            ctx.emit(TransportEvent::Retransmit {
                                flow: pkt.flow,
                                bytes: len as u64,
                                cause: LossCause::Stall,
                            });
                            ctx.send(p);
                            seq += len as u64;
                        }
                    }
                }
                if mode.probe_recovery() {
                    self.pump_scheduled(pkt.flow, ctx);
                }
            }
            PacketKind::Ack { of_probe, end } => {
                let infer = self.cfg.base.sack_inference();
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_from_receiver = true;
                    sf.last_progress = ctx.now;
                    let (lost, cause) = if of_probe {
                        // Newly detected losses may fit the open grant window.
                        (sf.core.on_probe_ack(), LossCause::Probe)
                    } else if pkt.seq == 0 && end >= sf.desc.size {
                        sf.completed = true;
                        sf.core.on_ack_no_infer(0, end);
                        (0, LossCause::SackGap)
                    } else if infer {
                        (sf.core.on_ack(pkt.seq, end), LossCause::SackGap)
                    } else {
                        sf.core.on_ack_no_infer(pkt.seq, end);
                        (0, LossCause::SackGap)
                    };
                    if lost > 0 {
                        sf.last_loss = Some(cause);
                        ctx.emit(TransportEvent::LossDetected { flow: pkt.flow, bytes: lost, cause });
                    }
                }
                self.pump_scheduled(pkt.flow, ctx);
            }
            other => {
                debug_assert!(false, "unexpected packet kind for Homa: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match self.timers.fire(token) {
            Some(TimerKind::SenderRto(f)) => self.on_sender_rto(f, ctx),
            Some(TimerKind::ProbeRetry(f)) => self.on_probe_retry(f, ctx),
            Some(TimerKind::ResendScan) => self.on_resend_scan(ctx),
            None => {}
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state; the timer
        // generation bump makes all queued tokens stale.
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.scan_armed = false;
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_core::AeolusConfig;
    use aeolus_sim::units::us;

    fn cfg() -> HomaConfig {
        HomaConfig::new(
            BaseConfig {
                mtu_payload: 1460,
                base_rtt: us(5),
                aeolus: AeolusConfig::default(),
                mode: FirstRttMode::Blind,
                disable_sack: false,
                peer_silence: 0,
            },
            us(10_000),
        )
    }

    #[test]
    fn unscheduled_priority_cutoffs() {
        let c = cfg();
        assert_eq!(c.unsched_prio(100), 0);
        assert_eq!(c.unsched_prio(3_000), 0);
        assert_eq!(c.unsched_prio(10_000), 1);
        assert_eq!(c.unsched_prio(100_000), 2);
        assert_eq!(c.unsched_prio(10_000_000), 3);
    }

    #[test]
    fn scheduled_priorities_sit_below_unscheduled() {
        let c = cfg();
        assert_eq!(c.sched_prio(0), 4);
        assert_eq!(c.sched_prio(1), 5);
        assert_eq!(c.sched_prio(5), 7, "ranks beyond the span share the lowest level");
        assert!(c.sched_prio(0) > c.unsched_prio(u64::MAX));
    }
}
