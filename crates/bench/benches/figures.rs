//! One Criterion group per paper *figure*: each benchmarks a miniature,
//! fixed-seed configuration of the same kernel the corresponding
//! `aeolus-experiments` runner uses, so regressions in any figure's code
//! path show up as a bench regression. (Figures 6 and 7 are architecture
//! diagrams — no experiment, no bench.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aeolus_bench::{bench_fabric, bench_incast, bench_many_to_one, bench_workload};
use aeolus_experiments::fig15::queue_stats;
use aeolus_experiments::fig16::first_rtt_utilization;
use aeolus_experiments::fig18::goodput;
use aeolus_experiments::{fig02, fig05, Scale};
use aeolus_sim::units::{ms, us};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

fn motivation_figures(c: &mut Criterion) {
    // Fig 1/3: ExpressPass vs its oracle on a workload.
    c.bench_function("fig01_fig03_ep_vs_oracle", |b| {
        b.iter(|| {
            let a = bench_workload(Scheme::ExpressPass, bench_fabric(), Workload::CacheFollower, 30);
            let o = bench_workload(
                Scheme::ExpressPassOracle,
                bench_fabric(),
                Workload::CacheFollower,
                30,
            );
            black_box(a + o)
        })
    });
    // Fig 2 is closed-form.
    c.bench_function("fig02_first_rtt_fractions", |b| {
        b.iter(|| black_box(fig02::run(Scale::Smoke).sections.len()))
    });
    // Fig 4 / Table 1: Homa vs its oracle.
    c.bench_function("fig04_homa_vs_oracle", |b| {
        b.iter(|| {
            let a = bench_workload(Scheme::Homa { rto: ms(10) }, bench_fabric(), Workload::WebServer, 30);
            let o = bench_workload(Scheme::HomaOracle, bench_fabric(), Workload::WebServer, 30);
            black_box(a + o)
        })
    });
    // Fig 5: the cascade micro-experiment.
    c.bench_function("fig05_cascade", |b| {
        b.iter(|| black_box(fig05::run(Scale::Smoke).sections.len()))
    });
}

fn testbed_figures(c: &mut Criterion) {
    // Fig 8: EP incast MCT.
    c.bench_function("fig08_ep_incast", |b| {
        b.iter(|| black_box(bench_incast(Scheme::ExpressPassAeolus, 30_000, 3)))
    });
    // Fig 11: Homa incast MCT.
    c.bench_function("fig11_homa_incast", |b| {
        b.iter(|| black_box(bench_incast(Scheme::HomaAeolus, 30_000, 3)))
    });
}

fn workload_figures(c: &mut Criterion) {
    // Fig 9/10: EP+Aeolus under a production workload.
    c.bench_function("fig09_fig10_ep_aeolus_workload", |b| {
        b.iter(|| black_box(bench_workload(Scheme::ExpressPassAeolus, bench_fabric(), Workload::WebServer, 30)))
    });
    // Fig 12/13: Homa+Aeolus under a production workload.
    c.bench_function("fig12_fig13_homa_aeolus_workload", |b| {
        b.iter(|| black_box(bench_workload(Scheme::HomaAeolus, bench_fabric(), Workload::WebServer, 30)))
    });
    // Fig 14: NDP+Aeolus under a production workload.
    c.bench_function("fig14_ndp_aeolus_workload", |b| {
        b.iter(|| black_box(bench_workload(Scheme::NdpAeolus, bench_fabric(), Workload::WebServer, 30)))
    });
}

fn parameter_figures(c: &mut Criterion) {
    // Fig 15: queue length vs threshold.
    c.bench_function("fig15_queue_vs_threshold", |b| {
        b.iter(|| black_box(queue_stats(6_000, 4)))
    });
    // Fig 16: first-RTT utilization.
    c.bench_function("fig16_first_rtt_utilization", |b| {
        b.iter(|| black_box(first_rtt_utilization(6_000, 4)))
    });
    // Fig 17: heavy incast slowdown.
    c.bench_function("fig17_heavy_incast", |b| {
        b.iter(|| black_box(bench_many_to_one(Scheme::HomaAeolus, 16, 64_000)))
    });
    // Fig 18: goodput under mixed load.
    c.bench_function("fig18_goodput_mix", |b| {
        b.iter(|| black_box(goodput(Scheme::NdpAeolus, Scale::Smoke, 0.5)))
    });
    let _ = us(1);
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = motivation_figures, testbed_figures, workload_figures, parameter_figures
}
criterion_main!(benches);
