//! Shrinking scenario fuzzer: random (scheme × topology × workload ×
//! faults) scenarios run end-to-end under the conformance oracle
//! ([`aeolus_sim::CheckedTracer`]), with failures greedily minimized to a
//! one-line repro spec.
//!
//! A [`Scenario`] is plain data with a textual round-trip: [`fmt::Display`]
//! emits `scheme=<slug[:rto_us]> hosts=<n> flows=<src>-<dst>:<size>@<us>,...
//! faults=<plan>` and [`std::str::FromStr`] parses it back, so a failing
//! case travels as one copy-pastable line. [`fuzz`] drives N seeded cases
//! through [`Scenario::check`]; on the first failure [`shrink`] deletes
//! flows, fault rules and windows, halves sizes and durations, and trims
//! the topology until nothing more can be removed without losing the
//! failure, then reports the minimal spec.
//!
//! What counts as a failure:
//!
//! - any conformance-oracle panic (queue ledgers, drop legality, transmit
//!   causality, byte/credit conservation, burst budget, retransmit
//!   pairing) — unconditionally;
//! - on a *clean* network (empty [`FaultPlan`]) additionally: flows not
//!   completing within the horizon, or app-level delivery differing from
//!   the flow size. Under injected faults liveness is best-effort (a link
//!   that is down is allowed to cost time), so only conformance counts;
//! - under *node faults* (crash / arbiter-outage / partition directives)
//!   additionally: any flow neither completed nor aborted-with-cause at
//!   the horizon — the graceful-degradation guarantee says faults may cost
//!   time or abort flows, but never hang them.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;

use aeolus_sim::telemetry::{class_str, reason_str};
use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Time};
use aeolus_sim::{
    FaultPlan, FlowDesc, FlowId, LinkFilter, OracleSignals, PacketFilter, Rate, SimRng,
};

use crate::builder::SchemeBuilder;
use crate::harness::TopoSpec;
use crate::registry::Scheme;

/// One flow in a [`Scenario`]: host *indices* (resolved against the built
/// topology's host list modulo its length, so a spec survives topology
/// shrinking), byte size, and start time in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source host index.
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time in microseconds.
    pub start_us: u64,
}

/// A self-contained fuzz case: everything needed to rebuild and re-run it.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Transport scheme under test.
    pub scheme: Scheme,
    /// Host count for the single-switch topology.
    pub hosts: usize,
    /// The workload.
    pub flows: Vec<FlowSpec>,
    /// Injected wire faults (empty plan = clean network).
    pub faults: FaultPlan,
}

/// Horizon every fuzz case runs under — generous against the microsecond
/// workloads and millisecond RTOs the generator emits.
const HORIZON: Time = ms(2000);

/// Smallest topology the shrinker will try: two hosts plus slack for the
/// Fastpass arbiter reservation.
const MIN_HOSTS: usize = 3;

/// Scheme spec string that [`Scheme::from_str`] accepts: the slug, plus the
/// `:<rto_us>` suffix for RTO-carrying variants (which [`Scheme::name`]
/// alone would lose).
fn scheme_spec(scheme: &Scheme) -> String {
    match scheme {
        Scheme::ExpressPassPrioQueue { rto }
        | Scheme::Homa { rto }
        | Scheme::HomaEager { rto }
        | Scheme::PHost { rto }
        | Scheme::Dctcp { rto } => format!("{}:{}", scheme.name(), *rto / us(1)),
        _ => scheme.name().to_string(),
    }
}

impl fmt::Display for Scenario {
    /// One-line repro spec; parses back via [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheme={} hosts={} flows=", scheme_spec(&self.scheme), self.hosts)?;
        if self.flows.is_empty() {
            f.write_str("none")?;
        }
        for (i, fl) in self.flows.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}-{}:{}@{}", fl.src, fl.dst, fl.size, fl.start_us)?;
        }
        // Last field on purpose: the fault grammar contains ", " separators,
        // so the parser treats everything after `faults=` as the plan.
        write!(f, " faults={}", self.faults)
    }
}

impl FromStr for Scenario {
    type Err = String;

    /// Parse the [`fmt::Display`] spec back. Errors name the offending
    /// token so a hand-edited repro line fails loudly, not mysteriously.
    fn from_str(s: &str) -> Result<Scenario, String> {
        let s = s.trim();
        let (head, faults_spec) = match s.split_once("faults=") {
            Some((head, rest)) => (head, rest.trim()),
            None => (s, ""),
        };
        let mut scheme = None;
        let mut hosts = None;
        let mut flows = Vec::new();
        for tok in head.split_whitespace() {
            let (key, val) =
                tok.split_once('=').ok_or_else(|| format!("scenario token '{tok}' is not KEY=VALUE"))?;
            match key {
                "scheme" => {
                    scheme = Some(Scheme::from_str(val).map_err(|e| e.to_string())?);
                }
                "hosts" => {
                    hosts = Some(
                        val.parse::<usize>().map_err(|_| format!("bad host count '{val}'"))?,
                    );
                }
                "flows" => {
                    if val == "none" {
                        continue;
                    }
                    for part in val.split(',') {
                        flows.push(parse_flow(part)?);
                    }
                }
                other => return Err(format!("unknown scenario key '{other}'")),
            }
        }
        let scheme = scheme.ok_or("spec is missing scheme=")?;
        let hosts = hosts.ok_or("spec is missing hosts=")?;
        let faults = faults_spec.parse::<FaultPlan>()?;
        Ok(Scenario { scheme, hosts, flows, faults })
    }
}

/// Parse one `src-dst:size@start_us` flow token.
fn parse_flow(part: &str) -> Result<FlowSpec, String> {
    let bad = || format!("bad flow '{part}' (expected SRC-DST:SIZE@START_US)");
    let (ends, rest) = part.split_once(':').ok_or_else(bad)?;
    let (src, dst) = ends.split_once('-').ok_or_else(bad)?;
    let (size, start) = rest.split_once('@').ok_or_else(bad)?;
    Ok(FlowSpec {
        src: src.parse().map_err(|_| bad())?,
        dst: dst.parse().map_err(|_| bad())?,
        size: size.parse().map_err(|_| bad())?,
        start_us: start.parse().map_err(|_| bad())?,
    })
}

/// The scheme pool the generator draws from — every registry scheme,
/// RTO-carrying variants at their paper defaults.
pub(crate) fn scheme_pool() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::ExpressPassOracle,
        Scheme::ExpressPassPrioQueue { rto: ms(10) },
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::HomaOracle,
        Scheme::Ndp,
        Scheme::NdpAeolus,
        Scheme::PHost { rto: ms(10) },
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
        Scheme::Fastpass,
        Scheme::FastpassAeolus,
    ]
}

impl Scenario {
    /// Generate a random scenario from `seed` (fully deterministic).
    ///
    /// Shape: 4–8 hosts behind one 10 Gbps switch, 1–6 flows up to 200 KB
    /// starting inside the first 50 µs, and — half the time — a small
    /// fault plan (≤ 2% corruption loss and/or one sub-millisecond
    /// down/degraded window, sometimes plus one node fault: a host
    /// crash/restart, an arbiter outage or a pod partition, all short and
    /// early so the post-restart tail fits well inside the horizon).
    pub fn random(seed: u64) -> Scenario {
        let mut rng = SimRng::seed_from_u64(seed);
        let pool = scheme_pool();
        let scheme = pool[rng.index(pool.len())];
        let hosts = 4 + rng.index(5);
        let n_flows = 1 + rng.index(6);
        let flows = (0..n_flows)
            .map(|_| {
                let src = rng.index(hosts);
                let dst = (src + 1 + rng.index(hosts - 1)) % hosts;
                FlowSpec { src, dst, size: 1 + rng.below(200_000), start_us: rng.below(50) }
            })
            .collect();
        let faults = if rng.chance(0.5) {
            FaultPlan::default()
        } else {
            let mut plan = FaultPlan::new(1 + rng.below(1_000));
            if rng.chance(0.6) {
                let filters = [
                    PacketFilter::Any,
                    PacketFilter::Data,
                    PacketFilter::Control,
                    PacketFilter::Credit,
                    PacketFilter::Unscheduled,
                ];
                let prob = 0.001 + 0.019 * rng.next_f64();
                plan = plan.with_loss(prob, filters[rng.index(filters.len())], LinkFilter::All);
            }
            if rng.chance(0.4) || plan.is_empty() {
                let from = us(rng.below(200));
                let until = from + us(1 + rng.below(400));
                if rng.chance(0.5) {
                    plan = plan.with_down(from, until, LinkFilter::All);
                } else {
                    let slowdown = 2 + rng.below(6) as u32;
                    plan = plan.with_degraded(from, until, slowdown, LinkFilter::All);
                }
            }
            if rng.chance(0.35) {
                // One node / control-plane fault: early and sub-millisecond,
                // so restarts and the retransmission tail finish long before
                // the horizon and a non-settled flow is a genuine hang.
                let from = us(rng.below(300));
                let until = from + us(50 + rng.below(700));
                plan = match rng.index(3) {
                    0 => plan.with_crash(from, until, rng.index(hosts)),
                    1 => plan.with_arbiter_outage(from, until),
                    _ => plan.with_partition(from, until),
                };
            }
            plan
        };
        Scenario { scheme, hosts, flows, faults }
    }

    /// Build and run this scenario under the full conformance oracle.
    ///
    /// Returns `None` if the run conforms, or `Some(message)` describing
    /// the first failure: the oracle's panic message (first violating
    /// event, with flow/port context), or — on a clean network only — an
    /// incomplete run or an app-level delivery mismatch.
    pub fn check(&self) -> Option<String> {
        self.check_signed().failure
    }

    /// [`Scenario::check`], plus the behavioral signals the run left behind
    /// — the raw material for the guided fuzzer's novelty signature
    /// ([`crate::corpus::Signature`]).
    ///
    /// `signals` is `None` exactly when the run panicked: the harness is
    /// consumed by the unwind, so the panic message itself (carried in
    /// `failure`) is the only signal a panicking run produces.
    pub fn check_signed(&self) -> CheckedRun {
        let scenario = self.clone();
        let outcome = catch_unwind(AssertUnwindSafe(move || scenario.run_signed()));
        match outcome {
            Ok((failure, signals)) => CheckedRun { failure, signals: Some(signals) },
            Err(payload) => CheckedRun { failure: Some(panic_message(&payload)), signals: None },
        }
    }

    /// The body [`Scenario::check_signed`] guards with `catch_unwind`: any
    /// panic in here (the oracle's, or a defensive assert anywhere in the
    /// stack) is a reportable failure.
    fn run_signed(&self) -> (Option<String>, RunSignals) {
        let spec = TopoSpec::SingleSwitch {
            hosts: self.hosts,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        };
        let mut h = SchemeBuilder::new(self.scheme)
            .topology(spec)
            .faults(self.faults.clone())
            .build_checked();
        let hosts = h.hosts().to_vec();
        if hosts.len() < 2 {
            // Degenerate topology (e.g. all hosts reserved): nothing to
            // check, and the shrinker must not mistake this for a failure.
            return (None, RunSignals::default());
        }
        let n = hosts.len();
        let flows: Vec<FlowDesc> = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let src = f.src % n;
                // Keep flows meaningful after topology shrinking: a
                // collision post-modulo moves the destination over by one.
                let dst = if f.dst % n == src { (src + 1) % n } else { f.dst % n };
                FlowDesc {
                    id: FlowId(i as u64 + 1),
                    src: hosts[src],
                    dst: hosts[dst],
                    size: f.size,
                    start: us(f.start_us),
                }
            })
            .collect();
        h.schedule(&flows);
        let done = h.run(HORIZON);
        let clean = self.faults.is_empty();
        let m = h.metrics();
        let signals = RunSignals::gather(h.topo.net.tracer().signals(), m);
        if clean && !done {
            let failure = format!(
                "incomplete on a clean network: {}/{} flows finished by {HORIZON} ps",
                m.completed_count(),
                m.flow_count()
            );
            return (Some(failure), signals);
        }
        if clean {
            for r in m.flows() {
                if r.delivered != r.desc.size {
                    let failure = format!(
                        "flow {} delivered {} of {} bytes on a clean network",
                        r.desc.id.0, r.delivered, r.desc.size
                    );
                    return (Some(failure), signals);
                }
            }
        }
        if self.faults.has_node_faults() && !m.all_settled() {
            // Graceful degradation: node faults may slow flows down or abort
            // them with a cause, but a flow that is neither completed nor
            // aborted at a 2 s horizon is a hung recovery loop.
            let hung = m.flow_count() - m.completed_count() - m.aborted_count();
            let failure = format!(
                "{hung} of {} flows hung (neither completed nor aborted) under node faults",
                m.flow_count()
            );
            return (Some(failure), signals);
        }
        // Wire-level exactness for whatever did complete (faulty or not):
        // panics through the oracle on any mismatch.
        h.topo.net.tracer().assert_flows_complete(m);
        (None, signals)
    }
}

/// Verdict plus signals from one [`Scenario::check_signed`] run.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// `None` if the run conformed; otherwise the first failure message.
    pub failure: Option<String>,
    /// Behavioral signals, `None` exactly when the run panicked.
    pub signals: Option<RunSignals>,
}

/// Everything a run leaves behind that the novelty signature is built from:
/// the oracle's check-side signals plus the metrics' drop taxonomy and flow
/// outcomes. Deterministic per scenario — the simulation is single-threaded
/// and fully seeded — so identical scenarios produce identical signals on
/// any worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSignals {
    /// Queue-depth extremes, retransmit-cause mix and check proximity from
    /// the conformance oracle.
    pub oracle: OracleSignals,
    /// Non-zero drop-matrix cells as (reason, class, count), in the
    /// metrics' fixed reason-major order.
    pub drops: Vec<(&'static str, &'static str, u64)>,
    /// Flows scheduled.
    pub flow_count: usize,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Flows left aborted at the horizon.
    pub aborted: usize,
    /// Total crash/abort restarts across all flows.
    pub restarts: u64,
    /// Total retransmission timeouts across all flows.
    pub timeouts: u64,
    /// Flows that retransmitted at least one payload byte.
    pub retransmitting_flows: usize,
}

impl RunSignals {
    /// Condense a finished run's oracle signals and metrics.
    fn gather(oracle: OracleSignals, m: &aeolus_sim::Metrics) -> RunSignals {
        let mut s = RunSignals {
            oracle,
            drops: Vec::new(),
            flow_count: m.flow_count(),
            completed: m.completed_count(),
            aborted: m.aborted_count(),
            restarts: 0,
            timeouts: 0,
            retransmitting_flows: 0,
        };
        for ((reason, class), n) in m.drops() {
            if n > 0 {
                s.drops.push((reason_str(reason), class_str(class), n));
            }
        }
        for r in m.flows() {
            s.restarts += r.restarts as u64;
            s.timeouts += r.timeouts as u64;
            if r.retransmitted > 0 {
                s.retransmitting_flows += 1;
            }
        }
        s
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Greedily shrink a failing scenario while `fails` keeps returning
/// `Some(_)`. Passes, iterated to a fixpoint: drop flows, drop corruption
/// rules, drop fault windows, drop node-fault directives (crashes, arbiter
/// outages, partitions), halve window and outage durations, halve flow
/// sizes, zero start times, shrink the topology. Returns the minimal
/// scenario and its failure message.
///
/// Generic over the failure predicate so shrinking itself is testable
/// without running a simulation; the fuzzer passes `|s| s.check()`.
///
/// Panics if `scenario` does not fail under `fails` — shrinking a passing
/// case is a caller bug.
pub fn shrink(
    mut scenario: Scenario,
    fails: &dyn Fn(&Scenario) -> Option<String>,
) -> (Scenario, String) {
    let mut msg = fails(&scenario).expect("shrink() requires a failing scenario");
    // Try one mutation; keep it (and the fresh failure message) iff the
    // failure survives.
    let attempt = |scenario: &mut Scenario, msg: &mut String, cand: Scenario| -> bool {
        if let Some(m) = fails(&cand) {
            *scenario = cand;
            *msg = m;
            true
        } else {
            false
        }
    };
    loop {
        let mut progressed = false;

        // Drop whole flows, re-testing the same index after a removal.
        let mut i = 0;
        while i < scenario.flows.len() {
            let mut cand = scenario.clone();
            cand.flows.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop corruption rules and fault windows.
        let mut i = 0;
        while i < scenario.faults.corruption.len() {
            let mut cand = scenario.clone();
            cand.faults.corruption.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < scenario.faults.windows.len() {
            let mut cand = scenario.clone();
            cand.faults.windows.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop node-fault directives: crash windows, arbiter outages,
        // partitions.
        let mut i = 0;
        while i < scenario.faults.node_windows.len() {
            let mut cand = scenario.clone();
            cand.faults.node_windows.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < scenario.faults.arbiter_outages.len() {
            let mut cand = scenario.clone();
            cand.faults.arbiter_outages.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < scenario.faults.partitions.len() {
            let mut cand = scenario.clone();
            cand.faults.partitions.remove(i);
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Halve remaining window durations (keeping them non-empty).
        for i in 0..scenario.faults.windows.len() {
            let w = &scenario.faults.windows[i];
            let dur = w.until - w.from;
            if dur >= 2 {
                let mut cand = scenario.clone();
                cand.faults.windows[i].until = w.from + dur / 2;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
        }
        for i in 0..scenario.faults.node_windows.len() {
            let w = &scenario.faults.node_windows[i];
            let dur = w.until - w.from;
            if dur >= 2 {
                let mut cand = scenario.clone();
                cand.faults.node_windows[i].until = w.from + dur / 2;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
        }
        for i in 0..scenario.faults.arbiter_outages.len() {
            let (from, until) = scenario.faults.arbiter_outages[i];
            if until - from >= 2 {
                let mut cand = scenario.clone();
                cand.faults.arbiter_outages[i].1 = from + (until - from) / 2;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
        }
        for i in 0..scenario.faults.partitions.len() {
            let (from, until) = scenario.faults.partitions[i];
            if until - from >= 2 {
                let mut cand = scenario.clone();
                cand.faults.partitions[i].1 = from + (until - from) / 2;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
        }

        // Halve flow sizes and zero start times.
        for i in 0..scenario.flows.len() {
            if scenario.flows[i].size > 1 {
                let mut cand = scenario.clone();
                cand.flows[i].size /= 2;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
            if scenario.flows[i].start_us > 0 {
                let mut cand = scenario.clone();
                cand.flows[i].start_us = 0;
                if attempt(&mut scenario, &mut msg, cand) {
                    progressed = true;
                }
            }
        }

        // Shrink the topology one host at a time.
        if scenario.hosts > MIN_HOSTS {
            let mut cand = scenario.clone();
            cand.hosts -= 1;
            if attempt(&mut scenario, &mut msg, cand) {
                progressed = true;
            }
        }

        if !progressed {
            return (scenario, msg);
        }
    }
}

/// A fuzzing failure, fully minimized: print `minimized` (its `Display`)
/// to get the one-line repro spec.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Index of the failing case within this `fuzz` run.
    pub case: usize,
    /// The per-case seed: `Scenario::random(case_seed)` rebuilds the
    /// original (pre-shrink) scenario.
    pub case_seed: u64,
    /// Failure message of the original scenario.
    pub failure: String,
    /// The shrunken scenario — minimal under the greedy passes.
    pub minimized: Scenario,
    /// Failure message of the minimized scenario (may differ from
    /// `failure`: shrinking keeps *a* failure, not necessarily the same
    /// one).
    pub minimized_failure: String,
}

/// Run `cases` random scenarios under the conformance oracle, stopping at
/// the first failure and shrinking it. Returns `None` when every case
/// conforms. Deterministic in `seed`.
pub fn fuzz(cases: usize, seed: u64) -> Option<FuzzReport> {
    let mut rng = SimRng::seed_from_u64(seed);
    for case in 0..cases {
        let case_seed = rng.next_u64();
        let scenario = Scenario::random(case_seed);
        if let Some(failure) = scenario.check() {
            let (minimized, minimized_failure) = shrink(scenario, &|s| s.check());
            return Some(FuzzReport { case, case_seed, failure, minimized, minimized_failure });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scenarios_round_trip_through_the_spec() {
        let mut node_faulted = 0;
        for seed in 0..64 {
            let s = Scenario::random(seed);
            if s.faults.has_node_faults() {
                node_faulted += 1;
            }
            let line = s.to_string();
            let back: Scenario = line.parse().unwrap_or_else(|e| {
                panic!("seed {seed}: '{line}' failed to parse back: {e}")
            });
            assert_eq!(back, s, "seed {seed}: '{line}'");
            assert_eq!(back.to_string(), line, "seed {seed}: display not a fixpoint");
        }
        // The generator must actually exercise the node-fault grammar, or
        // the round-trip above proves nothing about it.
        assert!(node_faulted > 0, "no seed in 0..64 generated a node fault");
    }

    #[test]
    fn shrink_strips_irrelevant_node_faults_but_keeps_load_bearing_ones() {
        // Failure requires a crash window; the arbiter outage and partition
        // riding along must be stripped, and the crash window's duration
        // must halve down to the 1 ps floor.
        let fails = |s: &Scenario| {
            (!s.faults.node_windows.is_empty()).then(|| "needs a crash".to_string())
        };
        let mut start = Scenario::random(5);
        start.faults = FaultPlan::new(3)
            .with_crash(us(10), us(900), 1)
            .with_arbiter_outage(us(20), us(400))
            .with_partition(us(30), us(500));
        let (min, msg) = shrink(start, &fails);
        assert_eq!(msg, "needs a crash");
        assert_eq!(min.faults.node_windows.len(), 1, "{min}");
        assert!(min.faults.arbiter_outages.is_empty(), "outage was irrelevant: {min}");
        assert!(min.faults.partitions.is_empty(), "partition was irrelevant: {min}");
        let w = &min.faults.node_windows[0];
        assert_eq!(w.until - w.from, 1, "crash window halved to the floor: {min}");
        assert!(min.flows.is_empty(), "flows were irrelevant: {min}");
    }

    #[test]
    fn checked_run_settles_a_crash_scenario() {
        // A mid-transfer receiver crash must yield settled flows (completed
        // after restart, or aborted with a cause) — never a hang; `check`
        // returning None certifies both conformance and settledness.
        let s: Scenario =
            "scheme=homa-aeolus hosts=4 flows=1-0:60000@0,2-0:60000@5 faults=crash=0@20us..600us"
                .parse()
                .unwrap();
        assert!(s.faults.has_node_faults());
        assert_eq!(s.check(), None);
    }

    #[test]
    fn spec_errors_name_the_offending_token() {
        let cases: &[(&str, &str)] = &[
            ("scheme=homa hosts=8 flows=none faults=", ""), // valid baseline
            ("scheme=warp hosts=8 flows=none faults=", "unknown scheme 'warp'"),
            ("scheme=homa hosts=eight flows=none faults=", "bad host count 'eight'"),
            ("scheme=homa hosts=8 flows=1:2 faults=", "bad flow '1:2'"),
            ("scheme=homa hosts=8 flows=1-2:x@0 faults=", "bad flow '1-2:x@0'"),
            ("scheme=homa hosts=8 bogus=1 flows=none faults=", "unknown scenario key 'bogus'"),
            ("scheme=homa hosts=8 oops flows=none faults=", "'oops' is not KEY=VALUE"),
            ("hosts=8 flows=none faults=", "missing scheme="),
            ("scheme=homa flows=none faults=", "missing hosts="),
            ("scheme=homa hosts=8 flows=none faults=loss=2.0", "outside [0, 1]"),
        ];
        for (spec, want) in cases {
            let got = spec.parse::<Scenario>();
            if want.is_empty() {
                assert!(got.is_ok(), "'{spec}' should parse: {:?}", got.err());
            } else {
                let err = got.expect_err(&format!("'{spec}' should fail"));
                assert!(err.contains(want), "'{spec}': error '{err}' lacks '{want}'");
            }
        }
    }

    #[test]
    fn shrink_reaches_a_minimal_scenario_under_a_synthetic_predicate() {
        // Failure predicate: some flow is >= 1000 bytes. The minimum under
        // the greedy passes is one flow in [1000, 1999] at start 0, no
        // faults, smallest topology.
        let fails = |s: &Scenario| {
            s.flows.iter().any(|f| f.size >= 1000).then(|| "big flow".to_string())
        };
        let start = Scenario::random(11); // seed 11 has a flow >= 1000 bytes
        assert!(fails(&start).is_some(), "pick a seed whose scenario trips the predicate");
        let (min, msg) = shrink(start, &fails);
        assert_eq!(msg, "big flow");
        assert_eq!(min.flows.len(), 1, "exactly the one witnessing flow survives: {min}");
        let f = &min.flows[0];
        assert!((1000..2000).contains(&f.size), "size halved to the boundary: {min}");
        assert_eq!(f.start_us, 0, "start zeroed: {min}");
        assert!(min.faults.is_empty(), "irrelevant faults removed: {min}");
        assert_eq!(min.hosts, MIN_HOSTS, "topology shrunk: {min}");
    }

    #[test]
    fn shrink_keeps_load_bearing_faults() {
        // Failure needs BOTH a down window and >= 2 flows: shrinking must
        // not remove either, but must still strip corruption rules.
        let fails = |s: &Scenario| {
            (s.flows.len() >= 2 && !s.faults.windows.is_empty())
                .then(|| "needs window + 2 flows".to_string())
        };
        let mut start = Scenario::random(3);
        start.faults = FaultPlan::new(9)
            .with_loss(0.01, PacketFilter::Any, LinkFilter::All)
            .with_down(us(10), us(500), LinkFilter::All);
        while start.flows.len() < 3 {
            start.flows.push(FlowSpec { src: 0, dst: 1, size: 5000, start_us: 7 });
        }
        let (min, _) = shrink(start, &fails);
        assert_eq!(min.flows.len(), 2, "{min}");
        assert_eq!(min.faults.windows.len(), 1, "{min}");
        assert!(min.faults.corruption.is_empty(), "loss rule was irrelevant: {min}");
        // Window durations halve to the 1 ps floor while the failure holds.
        let w = &min.faults.windows[0];
        assert_eq!(w.until - w.from, 1, "{min}");
    }

    #[test]
    #[should_panic(expected = "requires a failing scenario")]
    fn shrink_rejects_a_passing_scenario() {
        let _ = shrink(Scenario::random(0), &|_| None);
    }

    #[test]
    fn checked_run_passes_on_a_clean_scenario() {
        let s: Scenario = "scheme=homa-aeolus hosts=4 flows=1-0:30000@0 faults="
            .parse()
            .unwrap();
        assert_eq!(s.check(), None);
    }

    #[test]
    fn checked_run_reports_planted_protocol_violations() {
        // An impossibly small RTO makes eager Homa resend entire messages
        // before any loss happened; the oracle's pairing check is off for
        // Homa variants (see Scheme::oracle_profile), so plant the failure
        // one level up: a clean-network flow that cannot complete because
        // every packet is "lost". A 100% data-loss plan is *faulty*, so
        // instead prove the clean-network liveness check fires by giving a
        // flow an unsatisfiable start far beyond the horizon.
        let s: Scenario = format!(
            "scheme=ndp hosts=4 flows=1-0:2000@{} faults=",
            2 * (HORIZON / us(1))
        )
        .parse()
        .unwrap();
        let failure = s.check().expect("a flow starting past the horizon cannot complete");
        assert!(failure.contains("incomplete on a clean network"), "{failure}");
    }

    #[test]
    fn fuzz_conforms_on_a_small_budget() {
        // A handful of end-to-end cases (mixed clean/faulty) must pass the
        // oracle; a failure here is a real conformance regression — print
        // the minimized repro for the log.
        if let Some(r) = fuzz(4, 0xae01) {
            panic!(
                "case {} (seed {}): {}\nminimized: {}\n  -> {}",
                r.case, r.case_seed, r.failure, r.minimized, r.minimized_failure
            );
        }
    }
}
