//! Determinism regression tests: identical seeds must give bit-identical
//! results — run-to-run, serial vs parallel (`run_many`), and timing-wheel
//! vs the reference binary-heap scheduler. This is the contract that makes
//! the fast-path scheduler and the experiment fan-out safe to use for the
//! paper's numbers.

use aeolus_experiments::topos::testbed;
use aeolus_experiments::{run_many, run_workload, set_jobs, RunConfig, RunOutput};
use aeolus_sim::units::{ms, us};
use aeolus_sim::{FaultPlan, LinkFilter, PacketFilter, SchedulerKind};
use aeolus_transport::{Scheme, SchemeBuilder};
use aeolus_workloads::{incast_rounds, Workload};

/// One representative per scheme family (proactive, Aeolus-armed, reactive,
/// arbiter-based).
fn families() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
        Scheme::FastpassAeolus,
    ]
}

fn fixed_cfg(scheme: Scheme) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, testbed(), Workload::WebServer);
    cfg.n_flows = 50;
    cfg.load = 0.3;
    cfg.seed = 7;
    cfg
}

fn assert_identical(a: &RunOutput, b: &RunOutput, what: &str) {
    assert_eq!(a.completed, b.completed, "{what}: completed-flow counts differ");
    assert_eq!(a.scheduled, b.scheduled, "{what}: scheduled-flow counts differ");
    assert_eq!(a.events, b.events, "{what}: engine event counts differ");
    assert_eq!(a.span, b.span, "{what}: simulated spans differ");
    assert_eq!(a.agg.len(), b.agg.len(), "{what}: sample counts differ");
    // Bit-exact across the whole FCT sample set, not just summaries.
    for (x, y) in a.agg.samples().iter().zip(b.agg.samples()) {
        assert_eq!(x.size, y.size, "{what}: sample sizes differ");
        assert_eq!(x.fct_ps, y.fct_ps, "{what}: FCTs differ");
    }
    let (pa, pb) = (a.agg.summary().p99_slowdown, b.agg.summary().p99_slowdown);
    assert!(pa == pb, "{what}: p99 slowdowns differ ({pa} vs {pb})");
}

/// Same fixed-seed config, run twice serially and once through the parallel
/// fan-out: all three must match exactly, per scheme family.
#[test]
fn serial_rerun_and_parallel_runs_are_bit_identical() {
    let cfgs: Vec<RunConfig> = families().into_iter().map(fixed_cfg).collect();
    let first: Vec<RunOutput> = cfgs.iter().map(run_workload).collect();
    let second: Vec<RunOutput> = cfgs.iter().map(run_workload).collect();
    set_jobs(cfgs.len());
    let fanned = run_many(&cfgs);
    set_jobs(0);
    for (i, scheme) in families().into_iter().enumerate() {
        let name = scheme.name();
        assert!(first[i].completed > 0, "{name}: nothing completed");
        assert_identical(&first[i], &second[i], &format!("{name} serial rerun"));
        assert_identical(&first[i], &fanned[i], &format!("{name} run_many"));
    }
}

/// The chaos shape — randomized corruption loss plus a fabric-wide flap —
/// must be just as deterministic as a clean run: reruns and both schedulers
/// bit-identical, per scheme family. This pins the slab-backed per-flow
/// state (`FlowMap`/`TimerTable`) and the fault RNG to one behavior: flow
/// churn under loss exercises slot recycling, timer-token reuse and the
/// sorted stall/backstop scans far harder than a clean incast does.
#[test]
fn faulted_runs_are_bit_identical_across_reruns_and_schedulers() {
    for scheme in families() {
        let run = |kind: SchedulerKind| {
            let plan = FaultPlan::new(0xdead_0007)
                .with_loss(0.005, PacketFilter::Any, LinkFilter::All)
                .with_down(200 * us(1), 500 * us(1), LinkFilter::All);
            let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
            // Scheduler first (it must see an empty queue), then the fault
            // plan (it schedules its window events immediately).
            h.topo.net.set_scheduler(kind);
            h.topo.net.set_fault_plan(plan);
            let hosts = h.hosts().to_vec();
            let flows = incast_rounds(&hosts[1..], hosts[0], 30_000, 3, ms(2), 0, 1);
            h.schedule(&flows);
            assert!(h.run(ms(2000)), "{}: faulted incast did not complete", scheme.name());
            let fcts: Vec<(u64, u64)> = h
                .metrics()
                .flows()
                .map(|r| (r.desc.id.0, r.fct().expect("completed flow has an FCT")))
                .collect();
            (h.topo.net.events_processed(), h.metrics().total_drops(), fcts)
        };
        let first = run(SchedulerKind::TimingWheel);
        let rerun = run(SchedulerKind::TimingWheel);
        let heap = run(SchedulerKind::BinaryHeap);
        assert_eq!(first, rerun, "{}: faulted rerun diverged", scheme.name());
        assert_eq!(first, heap, "{}: faulted wheel vs heap diverged", scheme.name());
        assert!(first.1 > 0, "{}: fault plan injected no drops", scheme.name());
    }
}

/// The timing wheel and the reference binary heap must drive byte-identical
/// simulations: same event counts, same completions, same per-flow FCTs.
#[test]
fn timing_wheel_matches_binary_heap_end_to_end() {
    for scheme in families() {
        let run = |kind: SchedulerKind| {
            let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
            h.topo.net.set_scheduler(kind);
            let hosts = h.hosts().to_vec();
            let flows = incast_rounds(&hosts[1..], hosts[0], 30_000, 3, ms(2), 0, 1);
            h.schedule(&flows);
            assert!(h.run(ms(1000)), "{}: incast did not complete", scheme.name());
            let fcts: Vec<(u64, u64)> = h
                .metrics()
                .flows()
                .map(|r| (r.desc.id.0, r.fct().expect("completed flow has an FCT")))
                .collect();
            (h.topo.net.events_processed(), fcts)
        };
        let (ev_wheel, fct_wheel) = run(SchedulerKind::TimingWheel);
        let (ev_heap, fct_heap) = run(SchedulerKind::BinaryHeap);
        assert_eq!(ev_wheel, ev_heap, "{}: event counts diverge", scheme.name());
        assert_eq!(fct_wheel, fct_heap, "{}: per-flow FCTs diverge", scheme.name());
    }
}
