//! Empirical flow-size distributions (Table 2 of the paper).
//!
//! The paper drives its simulations with four production workloads:
//! Web Server and Cache Follower (Facebook, Roy et al. SIGCOMM'15),
//! Web Search (DCTCP) and Data Mining (VL2). Raw traces are not public, so —
//! as the papers themselves do — we use piecewise-linear empirical CDFs.
//! The Web Search and Data Mining point sets are the ones circulated with the
//! pFabric/ExpressPass simulators; the Facebook ones are reconstructed to hit
//! Table 2's bucket fractions and mean flow sizes (verified by unit tests):
//!
//! | workload       | mean (paper) | mean (ours) | ≤100 KB | 100 KB–1 MB | >1 MB |
//! |----------------|--------------|-------------|---------|-------------|-------|
//! | Web Server     | 64 KB        | 63.1 KB     | 81 %    | 19 %        | 0 %   |
//! | Cache Follower | 701 KB       | 698 KB      | 53 %    | 18 %        | 29 %  |
//! | Web Search     | 1.6 MB       | 1.71 MB     | 54 %    | 16 %        | 30 %  |
//! | Data Mining    | 7.41 MB      | 7.41 MB     | 82 %    | 9 %         | 9 %   |
//!
//! (Table 2's Web Search column sums to 90 %, so an exact match is not
//! attainable; we match the published DCTCP curve instead.)

use aeolus_sim::rng::SimRng;

/// The four production workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Facebook Web Server trace (Roy et al.): small flows, 64 KB mean.
    WebServer,
    /// Facebook Cache Follower trace: mixed, 701 KB mean.
    CacheFollower,
    /// DCTCP Web Search trace: heavy-tailed, 1.6 MB mean.
    WebSearch,
    /// VL2 Data Mining trace: extremely heavy-tailed, 7.41 MB mean.
    DataMining,
}

impl Workload {
    /// All four, in the paper's presentation order.
    pub const ALL: [Workload; 4] =
        [Workload::WebServer, Workload::CacheFollower, Workload::WebSearch, Workload::DataMining];

    /// Human-readable name as used in figure captions.
    pub fn name(self) -> &'static str {
        match self {
            Workload::WebServer => "Web Server",
            Workload::CacheFollower => "Cache Follower",
            Workload::WebSearch => "Web Search",
            Workload::DataMining => "Data Mining",
        }
    }

    /// The flow-size distribution for this workload.
    pub fn dist(self) -> EmpiricalDist {
        let pts: &[(f64, f64)] = match self {
            Workload::WebServer => &[
                (64.0, 0.0),
                (512.0, 0.125),
                (1_000.0, 0.2),
                (2_000.0, 0.3),
                (5_000.0, 0.4),
                (10_000.0, 0.5),
                (30_000.0, 0.63),
                (60_000.0, 0.7),
                (100_000.0, 0.81),
                (250_000.0, 0.96),
                (800_000.0, 1.0),
            ],
            Workload::CacheFollower => &[
                (64.0, 0.0),
                (512.0, 0.15),
                (2_000.0, 0.3),
                (10_000.0, 0.4),
                (50_000.0, 0.5),
                (100_000.0, 0.53),
                (300_000.0, 0.6),
                (700_000.0, 0.68),
                (1_000_000.0, 0.71),
                (1_500_000.0, 0.8),
                (2_500_000.0, 0.92),
                (4_000_000.0, 1.0),
            ],
            Workload::WebSearch => &[
                (0.0, 0.0),
                (10_000.0, 0.15),
                (20_000.0, 0.2),
                (30_000.0, 0.3),
                (50_000.0, 0.4),
                (80_000.0, 0.53),
                (200_000.0, 0.6),
                (1_000_000.0, 0.7),
                (2_000_000.0, 0.8),
                (5_000_000.0, 0.9),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.0),
            ],
            Workload::DataMining => &[
                (100.0, 0.0),
                (180.0, 0.1),
                (250.0, 0.2),
                (560.0, 0.3),
                (900.0, 0.4),
                (1_100.0, 0.5),
                (1_870.0, 0.6),
                (3_160.0, 0.7),
                (10_000.0, 0.8),
                (400_000.0, 0.9),
                (3_160_000.0, 0.95),
                (30_000_000.0, 0.98),
                (650_000_000.0, 1.0),
            ],
        };
        EmpiricalDist::new(pts.to_vec())
    }
}

/// A piecewise-linear empirical distribution over flow sizes in bytes.
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    points: Vec<(f64, f64)>, // (size_bytes, cdf), strictly increasing in both
}

impl EmpiricalDist {
    /// Build from `(size, cdf)` points; the CDF must start at 0, end at 1 and
    /// be strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> EmpiricalDist {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points.first().unwrap().1, 0.0, "CDF must start at 0");
        assert_eq!(points.last().unwrap().1, 1.0, "CDF must end at 1");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "sizes must be non-decreasing");
            assert!(w[0].1 < w[1].1, "CDF must be strictly increasing");
        }
        EmpiricalDist { points }
    }

    /// Analytic mean flow size in bytes.
    pub fn mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) * (w[0].0 + w[1].0) / 2.0)
            .sum()
    }

    /// CDF value at `bytes` (fraction of flows of size ≤ `bytes`).
    pub fn fraction_below(&self, bytes: f64) -> f64 {
        if bytes < self.points[0].0 {
            return 0.0;
        }
        // Absorb every segment ending at or below `bytes` whole — this is
        // what counts a vertical CDF step's mass (a zero-width segment from
        // duplicate size points, allowed by `new`) when `bytes` sits exactly
        // on it, instead of 0/0-interpolating across it.
        let mut below = 0.0;
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if bytes >= s1 {
                below = p1;
                continue;
            }
            // s0 <= bytes < s1 here, so the segment has width and the
            // division is safe.
            return p0 + (p1 - p0) * (bytes - s0) / (s1 - s0);
        }
        below
    }

    /// Inverse-transform sample using uniform `u` in [0, 1).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let size = s0 + (s1 - s0) * (u - p0) / (p1 - p0);
                return (size.round() as u64).max(1);
            }
        }
        (self.points.last().unwrap().0 as u64).max(1)
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        self.quantile(rng.next_f64())
    }

    /// Largest flow size in the support.
    pub fn max_size(&self) -> u64 {
        self.points.last().unwrap().0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_match_table2() {
        // (workload, paper mean, tolerance)
        let cases = [
            (Workload::WebServer, 64e3, 0.1),
            (Workload::CacheFollower, 701e3, 0.05),
            (Workload::WebSearch, 1.6e6, 0.1),
            (Workload::DataMining, 7.41e6, 0.02),
        ];
        for (w, target, tol) in cases {
            let m = w.dist().mean();
            assert!(
                (m - target).abs() / target < tol,
                "{}: mean {m:.0} vs paper {target:.0}",
                w.name()
            );
        }
    }

    #[test]
    fn bucket_fractions_match_table2() {
        // (workload, ≤100KB, 100KB–1MB, >1MB, tolerance in absolute points)
        let cases = [
            (Workload::WebServer, 0.81, 0.19, 0.0, 0.02),
            (Workload::CacheFollower, 0.53, 0.18, 0.29, 0.02),
            (Workload::DataMining, 0.83, 0.08, 0.09, 0.02),
        ];
        for (w, b1, b2, b3, tol) in cases {
            let d = w.dist();
            let f1 = d.fraction_below(100e3);
            let f2 = d.fraction_below(1e6) - f1;
            let f3 = 1.0 - d.fraction_below(1e6);
            assert!((f1 - b1).abs() < tol, "{}: ≤100KB {f1}", w.name());
            assert!((f2 - b2).abs() < tol, "{}: 100KB-1MB {f2}", w.name());
            assert!((f3 - b3).abs() < tol, "{}: >1MB {f3}", w.name());
        }
    }

    #[test]
    fn sampled_mean_converges_to_analytic() {
        let d = Workload::WebServer.dist();
        let mut rng = SimRng::seed_from_u64(7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = total / n as f64;
        let ana = d.mean();
        assert!((emp - ana).abs() / ana < 0.02, "empirical {emp} vs analytic {ana}");
    }

    #[test]
    fn quantile_is_monotone() {
        let d = Workload::CacheFollower.dist();
        let mut prev = 0;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile must be monotone");
            prev = q;
        }
        assert_eq!(prev, d.max_size());
    }

    #[test]
    fn sizes_are_at_least_one_byte() {
        let d = Workload::WebSearch.dist();
        assert!(d.quantile(0.0) >= 1);
    }

    #[test]
    #[should_panic(expected = "CDF must start at 0")]
    fn bad_cdf_rejected() {
        EmpiricalDist::new(vec![(10.0, 0.5), (20.0, 1.0)]);
    }

    #[test]
    fn duplicate_size_points_form_a_vertical_step() {
        // `new` allows non-decreasing sizes, so a duplicate size point is a
        // legal vertical CDF step (30% of flows are exactly 200 B here).
        // `fraction_below` used to interpolate across the zero-width segment
        // and return NaN/inf from the 0/0 division.
        let d = EmpiricalDist::new(vec![
            (100.0, 0.0),
            (200.0, 0.4),
            (200.0, 0.7),
            (300.0, 1.0),
        ]);
        // Below, at, and above the step — all finite, all exact.
        assert_eq!(d.fraction_below(150.0), 0.2);
        assert_eq!(d.fraction_below(200.0), 0.7, "the step's mass counts at its size");
        assert!((d.fraction_below(250.0) - 0.85).abs() < 1e-12);
        assert_eq!(d.fraction_below(50.0), 0.0);
        assert_eq!(d.fraction_below(400.0), 1.0);
        for b in [0.0, 100.0, 199.999, 200.0, 200.001, 300.0] {
            assert!(d.fraction_below(b).is_finite(), "fraction_below({b}) not finite");
        }
        // The step contributes mass × size to the mean: 0.4·150 + 0.3·200 + 0.3·250.
        assert!((d.mean() - 195.0).abs() < 1e-9, "mean {}", d.mean());
        // Quantiles inside the step collapse to the step's size; monotone
        // throughout and never NaN.
        assert_eq!(d.quantile(0.45), 200);
        assert_eq!(d.quantile(0.7), 200);
        let mut prev = 0;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
        // A step at the very first size keeps its mass too.
        let d = EmpiricalDist::new(vec![(64.0, 0.0), (64.0, 0.25), (128.0, 1.0)]);
        assert_eq!(d.fraction_below(64.0), 0.25);
        assert_eq!(d.fraction_below(63.0), 0.0);
        assert!(d.mean().is_finite());
    }
}
