//! Figure 13 — number of flows suffering ≥1 retransmission timeout vs load,
//! Homa vs Homa+Aeolus, four workloads.

use aeolus_sim::units::ms;
use aeolus_stats::TextTable;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::runner::{run_many, RunConfig};
use crate::scale::Scale;
use crate::topos::homa_two_tier;

/// Loads swept.
pub fn loads(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Smoke => vec![0.4],
        Scale::Quick => vec![0.2, 0.4, 0.6],
        Scale::Full => vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    }
}

/// Run Figure 13.
pub fn run(scale: Scale) -> Report {
    let ls = loads(scale);
    let schemes = [Scheme::Homa { rto: ms(10) }, Scheme::HomaAeolus];
    // Full workload × scheme × load matrix, fanned out across cores.
    let mut cfgs = Vec::new();
    for w in Workload::ALL {
        for scheme in schemes {
            for &load in &ls {
                let mut cfg = RunConfig::new(scheme, homa_two_tier(scale), w);
                cfg.load = load;
                cfg.n_flows = scale.flows(40, 400, 2000);
                cfg.seed = 1313;
                cfgs.push(cfg);
            }
        }
    }
    let outs = run_many(&cfgs);
    let mut outs = outs.iter();
    let mut r = Report::new();
    for w in Workload::ALL {
        let mut header = vec!["scheme".to_string()];
        header.extend(ls.iter().map(|l| format!("load {l:.1}")));
        let mut table = TextTable::new(header);
        for scheme in schemes {
            let mut row = vec![scheme.label()];
            for _ in &ls {
                let out = outs.next().expect("one output per config");
                row.push(out.flows_with_timeouts.to_string());
            }
            table.row(row);
        }
        r.section(format!("Figure 13: flows with timeouts vs load — {}", w.name()), table);
    }
    r.note("paper: Homa's timeout count grows with load; Aeolus shows zero timeouts even at 60% load");
    r
}
