//! Figure 11 — testbed 7-to-1 incast MCT, Homa vs Homa+Aeolus: Aeolus cuts
//! the tail from hundreds of ms (RTO-bound) to a few ms.

use aeolus_sim::units::ms;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::Scheme;

use crate::fig08::{incast_run, SIZES};
use crate::report::{fct_header, fct_row, Report};
use crate::scale::Scale;

/// Run Figure 11.
pub fn run(scale: Scale) -> Report {
    let rounds = scale.count(3, 30, 100);
    let schemes = [Scheme::Homa { rto: ms(10) }, Scheme::HomaAeolus];

    let mut dist = TextTable::new(fct_header());
    for scheme in schemes {
        let out = incast_run(scheme, 30_000, rounds);
        dist.row(fct_row(&scheme.name(), &out.agg));
    }

    let mut header = vec!["scheme".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{}KB", s / 1000)));
    let mut means = TextTable::new(header);
    for scheme in schemes {
        let mut row = vec![scheme.name()];
        for &size in &SIZES {
            let out = incast_run(scheme, size, rounds);
            row.push(f2(out.agg.fct_us().mean()));
        }
        means.row(row);
    }

    let mut r = Report::new();
    r.section("Figure 11(a): 7-to-1 incast MCT distribution @30KB (us)", dist);
    r.section("Figure 11(b): mean MCT vs message size (us)", means);
    r.note("paper: tail MCT cut from 141ms to 18ms; average from 100s of ms to a few ms");
    r
}
