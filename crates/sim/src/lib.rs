#![warn(missing_docs)]
//! # aeolus-sim — packet-level datacenter network simulator
//!
//! The discrete-event substrate for the [Aeolus (SIGCOMM 2020)] reproduction.
//! It models hosts, output-queued switches with pluggable queue disciplines,
//! point-to-point links with exact serialization at a picosecond clock, ECMP
//! and packet-spraying routing, and the three topology families used in the
//! paper's evaluation.
//!
//! The engine is deliberately synchronous and single-threaded: discrete-event
//! simulation is CPU-bound, so (per the Tokio guide's own advice) an async
//! runtime has nothing to offer here, and determinism is worth a lot —
//! identical seeds reproduce identical packet traces.
//!
//! Transport protocols are [`endpoint::Endpoint`] implementations installed
//! on hosts; they live in the `aeolus-transport` crate, and the Aeolus
//! building block itself in `aeolus-core`.
//!
//! [Aeolus (SIGCOMM 2020)]: https://doi.org/10.1145/3387514.3405878
//!
//! ## Building a network by hand
//!
//! Transport protocols implement [`Endpoint`]; the engine delivers flow
//! arrivals, packets and timers, and the endpoint replies through its
//! [`Ctx`]. A minimal sender/receiver pair:
//!
//! ```
//! use aeolus_sim::*;
//! use aeolus_sim::units::us;
//!
//! /// Fire-and-forget sender + byte-counting receiver in one endpoint.
//! struct Blast;
//! impl Endpoint for Blast {
//!     fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
//!         let mut off = 0;
//!         while off < flow.size {
//!             let len = 1460.min(flow.size - off) as u32;
//!             ctx.send(Packet::data(
//!                 flow.id, flow.src, flow.dst, off, len,
//!                 TrafficClass::Scheduled, flow.size,
//!             ));
//!             off += len as u64;
//!         }
//!     }
//!     fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
//!         if pkt.is_data() {
//!             ctx.metrics.deliver(pkt.flow, pkt.payload as u64, ctx.now);
//!         }
//!     }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
//! }
//!
//! let mut net = Network::new();
//! let sw = net.add_switch(RoutePolicy::EcmpHash, 7, 0);
//! let a = net.add_host(0);
//! let b = net.add_host(0);
//! let q = || Box::new(DropTailQueue::new(1 << 20)) as Box<dyn QueueDisc>;
//! net.connect(a, sw, Rate::gbps(10), us(1), q());
//! net.connect(b, sw, Rate::gbps(10), us(1), q());
//! let pa = net.connect(sw, a, Rate::gbps(10), us(1), q());
//! let pb = net.connect(sw, b, Rate::gbps(10), us(1), q());
//! net.add_route(sw, a, pa);
//! net.add_route(sw, b, pb);
//! net.set_endpoint(a, Box::new(Blast));
//! net.set_endpoint(b, Box::new(Blast));
//!
//! net.schedule_flow(FlowDesc { id: FlowId(1), src: a, dst: b, size: 14_600, start: 0 });
//! assert!(net.run_to_completion(us(10_000)));
//! let fct = net.metrics.flow(FlowId(1)).unwrap().fct().unwrap();
//! assert!(fct > 0);
//! ```

pub mod endpoint;
pub mod event;
pub mod faults;
pub mod flowmap;
pub mod metrics;
pub mod network;
pub mod node;
pub mod oracle;
pub mod packet;
pub mod pool;
pub mod port;
pub mod queues;
pub mod rangeset;
pub mod rng;
pub mod routing;
pub mod telemetry;
pub mod topology;
pub mod units;

pub use endpoint::{Ctx, Endpoint};
pub use event::{Event, EventQueue, SchedulerKind};
pub use faults::{
    CorruptionRule, FaultPlan, LinkFilter, LinkWindow, NodeFaultKind, NodeSelector, NodeWindow,
    PacketFilter, WindowKind,
};
pub use flowmap::{FlowKey, FlowMap, TimerTable};
pub use metrics::{AbortCause, FlowRecord, Metrics};
pub use network::{Network, TraceEvent, TraceKind};
pub use oracle::{CheckedTracer, OracleProfile, OracleSignals, LOSS_CAUSE_LABELS};
pub use packet::{
    Ecn, FlowDesc, FlowId, NodeId, Packet, PacketKind, PortId, TrafficClass, CREDIT_BYTES,
    HEADER_BYTES, MIN_PACKET_BYTES,
};
pub use pool::{PacketPool, PacketRef};
pub use port::{Link, Port, PortStats};
pub use queues::{
    Color, DropReason, DropTailQueue, EnqueueOutcome, LossyQueue, Poll, PoolHandle, PriorityBank,
    QueueDisc, RedEcnQueue, SharedPool, TrimmingQueue, WredProfile, WredQueue, XPassQueue,
};
pub use rangeset::RangeSet;
pub use rng::SimRng;
pub use routing::{RoutePolicy, RouteTable};
pub use telemetry::{
    FaultEvent, HostEvent, LossCause, NullTracer, QueueEvent, QueueRecord, RecordingConfig,
    RecordingTracer, TraceSink, Tracer, TransportEvent,
};
pub use topology::{
    fat_tree, fat_tree_with, leaf_spine, leaf_spine_with, single_switch, single_switch_with,
    LinkParams, PortRole, QueueFactory, Topology,
};
pub use units::{bdp_bytes, kb, mb, ms, ns, secs, us, Rate, Time};
