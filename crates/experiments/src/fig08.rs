//! Figure 8 — testbed 7-to-1 incast message completion times (MCT),
//! ExpressPass vs ExpressPass+Aeolus: (a) MCT distribution at 30 KB,
//! (b) mean MCT for 30–50 KB messages.

use aeolus_sim::units::ms;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::{Harness, Scheme, SchemeParams};
use aeolus_workloads::incast_rounds;

use crate::report::{fct_header, fct_row, Report};
use crate::runner::{run_flows, RunOutput};
use crate::scale::Scale;
use crate::topos::testbed;

/// Message sizes swept in Figure 8(b).
pub const SIZES: [u64; 5] = [30_000, 35_000, 40_000, 45_000, 50_000];

/// One incast run: `rounds` rounds of 7-to-1 with `msg_size` responses.
pub fn incast_run(scheme: Scheme, msg_size: u64, rounds: usize) -> RunOutput {
    let mut h = Harness::new(scheme, SchemeParams::new(0), testbed());
    let hosts = h.hosts().to_vec();
    // Rounds spaced far enough apart to drain fully (testbed methodology:
    // request, wait for all responses, repeat).
    let flows = incast_rounds(&hosts[1..], hosts[0], msg_size, rounds, ms(2), 0, 1);
    run_flows(&mut h, &flows, ms(100))
}

/// Run Figure 8.
pub fn run(scale: Scale) -> Report {
    let rounds = scale.count(3, 30, 100);
    let schemes = [Scheme::ExpressPass, Scheme::ExpressPassAeolus];

    let mut dist = TextTable::new(fct_header());
    for scheme in schemes {
        let out = incast_run(scheme, 30_000, rounds);
        dist.row(fct_row(&scheme.name(), &out.agg));
    }

    let mut header = vec!["scheme".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{}KB", s / 1000)));
    let mut means = TextTable::new(header);
    for scheme in schemes {
        let mut row = vec![scheme.name()];
        for &size in &SIZES {
            let out = incast_run(scheme, size, rounds);
            row.push(f2(out.agg.fct_us().mean()));
        }
        means.row(row);
    }

    let mut r = Report::new();
    r.section("Figure 8(a): 7-to-1 incast MCT distribution @30KB (us)", dist);
    r.section("Figure 8(b): mean MCT vs message size (us)", means);
    r.note("paper: median MCT improved 43% at 30KB; mean improved 19-33% across sizes");
    r
}
