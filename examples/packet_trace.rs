//! Annotated packet journey of one Aeolus flow.
//!
//! Traces every packet event (arrivals, transmissions, drops) of a single
//! flow competing in a 7:1 incast under ExpressPass+Aeolus, and prints the
//! protocol timeline: request, line-rate unscheduled burst, selective drops
//! at the congested port, probe, per-packet ACKs, credits and the scheduled
//! retransmissions that repair the first RTT.
//!
//! ```text
//! cargo run --release --example packet_trace
//! ```

use aeolus::prelude::*;
use aeolus::sim::{TraceKind, PacketKind};

fn main() {
    let spec =
        TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) };
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    // Six competing bursts plus the traced victim.
    let mut flows: Vec<FlowDesc> = (0..6)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 40_000,
            start: 0,
        })
        .collect();
    let victim = FlowId(7);
    flows.push(FlowDesc { id: victim, src: hosts[7], dst: hosts[0], size: 40_000, start: 0 });
    h.topo.net.trace_flow(victim);
    h.schedule(&flows);
    assert!(h.run(ms(100)));

    println!("packet timeline of flow {victim:?} (40 KB into a 7:1 incast):\n");
    println!("{:>10}  {:<7} {:<22} {:<12} {:>8}", "t (us)", "node", "event", "class", "seq");
    let mut shown = 0;
    for ev in h.topo.net.trace() {
        let what = match ev.what {
            TraceKind::Arrive => "arrive".to_string(),
            TraceKind::Transmit => "transmit".to_string(),
            TraceKind::Drop(r) => format!("DROP ({r:?})"),
        };
        // Compress the middle of the run: show everything interesting.
        let interesting = !matches!(ev.kind, PacketKind::Data | PacketKind::Ack { .. })
            || matches!(ev.what, TraceKind::Drop(_))
            || shown < 40;
        if interesting {
            println!(
                "{:>10.2}  {:<7} {:<22} {:<12} {:>8}",
                ev.at as f64 / 1e6,
                format!("{:?}", ev.node),
                what,
                format!("{:?}", ev.class),
                ev.seq
            );
            shown += 1;
        }
    }
    let fct = h.metrics().flow(victim).unwrap().fct().unwrap();
    println!("\nflow completed in {:.2} us; {} trace events total", fct as f64 / 1e6, h.topo.net.trace().len());
}
