//! One Criterion group per paper *table*, same philosophy as `figures.rs`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aeolus_bench::{bench_fabric, bench_many_to_one, bench_workload};
use aeolus_sim::units::{ms, us};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

fn table_benches(c: &mut Criterion) {
    // Table 1: the Homa recovery dilemma — eager Homa is the stress case.
    c.bench_function("table1_eager_homa", |b| {
        b.iter(|| {
            black_box(bench_workload(
                Scheme::Homa { rto: us(20) },
                bench_fabric(),
                Workload::CacheFollower,
                20,
            ))
        })
    });
    // Table 2 is the workload-distribution table: bench the samplers.
    c.bench_function("table2_workload_sampling", |b| {
        use rand_sampling::sample_all;
        b.iter(|| black_box(sample_all()))
    });
    // Table 3: Homa+Aeolus across workloads.
    c.bench_function("table3_homa_aeolus", |b| {
        b.iter(|| {
            black_box(bench_workload(Scheme::HomaAeolus, bench_fabric(), Workload::DataMining, 20))
        })
    });
    // Table 4: the priority-queueing strawman.
    c.bench_function("table4_prioqueue_strawman", |b| {
        b.iter(|| {
            black_box(bench_workload(
                Scheme::ExpressPassPrioQueue { rto: ms(10) },
                bench_fabric(),
                Workload::CacheFollower,
                20,
            ))
        })
    });
    // Table 5: shared-buffer incast.
    c.bench_function("table5_shared_buffer_incast", |b| {
        b.iter(|| black_box(bench_many_to_one(Scheme::ExpressPassAeolus, 20, 400_000)))
    });
}

/// Tiny helper module so the Table 2 bench has a deterministic kernel.
mod rand_sampling {
    use aeolus_workloads::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub fn sample_all() -> u64 {
        let mut total = 0u64;
        for w in Workload::ALL {
            let d = w.dist();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                total = total.wrapping_add(d.sample(&mut rng));
            }
        }
        total
    }
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = table_benches
}
criterion_main!(benches);
