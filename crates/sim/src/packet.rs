//! Packet model.
//!
//! One `Packet` struct serves every protocol in the reproduction. Protocol
//! semantics live in [`PacketKind`]; the switch only ever looks at wire size,
//! [`TrafficClass`], [`Ecn`] code point and priority — exactly the fields a
//! commodity switch can act on, which is the deployability point of Aeolus.

use crate::units::Time;

/// Identifier of an application flow (message).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifier of a node (host or switch) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an egress port on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

/// Ethernet/IP/transport header bytes accounted on every packet.
pub const HEADER_BYTES: u32 = 40;
/// Minimum Ethernet frame (control packets: requests, credits, ACKs, probes).
pub const MIN_PACKET_BYTES: u32 = 64;
/// Wire size of an ExpressPass credit packet (as in the ExpressPass paper).
pub const CREDIT_BYTES: u32 = 84;

/// ECN code point carried in the IP header.
///
/// Aeolus re-interprets RED/ECN for selective dropping: *unscheduled* packets
/// are sent `NotEct` (so a RED switch drops them above the threshold) while
/// *scheduled* packets are sent `Ect0` (so the same switch only marks them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ecn {
    /// Not ECN-capable: RED drops this packet above the threshold.
    NotEct,
    /// ECN-capable transport (ECT(0)): RED marks instead of dropping.
    Ect0,
    /// Congestion experienced: the packet was marked by a switch.
    Ce,
}

/// Scheduling class of a packet from the proactive-transport viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Credit-induced data whose delivery the transport guarantees.
    Scheduled,
    /// Pre-credit (first-RTT) data sent speculatively.
    Unscheduled,
    /// Protocol control: requests, credits, grants, ACKs, NACKs, pulls,
    /// probes. Aeolus treats these as scheduled in the network.
    Control,
}

/// Protocol-specific meaning of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Application payload bytes `[seq, seq + payload)` of `flow`.
    Data,
    /// Sender's request to start a flow (carries the flow size).
    Request,
    /// ExpressPass credit: allows one MTU data packet. `seq` is the credit
    /// sequence number used for credit-loss feedback.
    Credit,
    /// Homa grant: authorizes transmission up to byte offset `seq` at
    /// priority `grant_prio`.
    Grant {
        /// The switch priority scheduled packets should use.
        grant_prio: u8,
    },
    /// NDP pull: requests one more packet of `flow` from the sender.
    Pull,
    /// Per-packet acknowledgement of the data bytes `[seq, end)`. `of_probe`
    /// marks the ACK of an Aeolus probe (whose `seq` is the byte after the
    /// last unscheduled byte).
    Ack {
        /// True when acknowledging a probe rather than data.
        of_probe: bool,
        /// One past the last acknowledged byte.
        end: u64,
    },
    /// NDP NACK for a trimmed packet; `seq` identifies the lost payload.
    Nack,
    /// Aeolus probe: carries the sequence number (`seq`) *after* the last
    /// unscheduled byte, letting the receiver detect tail losses.
    Probe,
    /// Homa RESEND request: ask the sender to retransmit `[seq, end)`.
    Resend {
        /// One past the last byte to retransmit.
        end: u64,
    },
    /// Fastpass arbiter schedule: transmit `slots` packets, one every
    /// `stride` picoseconds, starting at absolute time `start` (the packet's
    /// `seq` carries the first byte offset the schedule covers).
    Schedule {
        /// Absolute time of the first slot.
        start: Time,
        /// Number of timeslots granted.
        slots: u32,
        /// Spacing between slots.
        stride: Time,
    },
}

/// A simulated packet.
///
/// `size` is the wire size (headers included) used for serialization and
/// buffering; `payload` is the number of application bytes it carries.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique id (assigned by the network, monotonically).
    pub uid: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Byte offset / sequence number (meaning depends on `kind`).
    pub seq: u64,
    /// Wire size in bytes (headers included).
    pub size: u32,
    /// Application payload bytes carried (0 for control packets).
    pub payload: u32,
    /// Protocol meaning.
    pub kind: PacketKind,
    /// Scheduling class (drives Aeolus selective dropping).
    pub class: TrafficClass,
    /// Switch priority: 0 is served first. Commodity switches have 8 levels.
    pub priority: u8,
    /// ECN code point.
    pub ecn: Ecn,
    /// Total size of the flow in bytes, carried by Data/Request/Probe headers
    /// so receivers (e.g. Homa) can learn demand even under loss.
    pub flow_size: u64,
    /// True once a trimming switch has cut this packet's payload (NDP CP).
    pub trimmed: bool,
    /// True if this packet is a retransmission of earlier bytes.
    pub retransmit: bool,
    /// Time the packet left its source host NIC queue entry point.
    pub sent_at: Time,
    /// Path tag chosen by the sender; per-flow ECMP hashes it, and NDP-style
    /// spraying rewrites it per packet.
    pub path_tag: u64,
    /// ECMP hash of `(flow, path_tag)`, stamped once at network injection so
    /// switches reuse it instead of re-hashing per hop. 0 = not stamped
    /// (recomputed on demand); the tag never changes in flight, so the cache
    /// stays valid for the packet's whole lifetime.
    pub route_hash: u64,
    /// ExpressPass: the credit sequence number this data packet consumes
    /// (echoed back so the receiver can measure credit loss). 0 = none.
    pub credit_echo: u64,
    /// Hop count, incremented at each switch traversal.
    pub hops: u8,
    /// Flow incarnation this packet belongs to, stamped by the network at
    /// injection (= the flow's restart count). A packet still in flight
    /// when its flow aborts and relaunches carries the old incarnation and
    /// is rejected at delivery — the sim analogue of a real transport
    /// discarding segments from a dead connection epoch.
    pub incarnation: u32,
}

impl Packet {
    /// A data packet carrying `payload` application bytes at offset `seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        payload: u32,
        class: TrafficClass,
        flow_size: u64,
    ) -> Packet {
        Packet {
            uid: 0,
            flow,
            src,
            dst,
            seq,
            size: payload + HEADER_BYTES,
            payload,
            kind: PacketKind::Data,
            class,
            priority: 0,
            ecn: match class {
                TrafficClass::Unscheduled => Ecn::NotEct,
                _ => Ecn::Ect0,
            },
            flow_size,
            trimmed: false,
            retransmit: false,
            sent_at: 0,
            path_tag: 0,
            route_hash: 0,
            credit_echo: 0,
            hops: 0,
            incarnation: 0,
        }
    }

    /// A minimum-size control packet of the given kind.
    pub fn control(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, kind: PacketKind) -> Packet {
        Packet {
            uid: 0,
            flow,
            src,
            dst,
            seq,
            size: MIN_PACKET_BYTES,
            payload: 0,
            kind,
            class: TrafficClass::Control,
            priority: 0,
            ecn: Ecn::Ect0,
            flow_size: 0,
            trimmed: false,
            retransmit: false,
            sent_at: 0,
            path_tag: 0,
            route_hash: 0,
            credit_echo: 0,
            hops: 0,
            incarnation: 0,
        }
    }

    /// Whether a selective-dropping (RED) switch may drop this packet when
    /// the queue exceeds the threshold. Per the Aeolus marking rule this is
    /// exactly the Non-ECT packets.
    #[inline]
    pub fn droppable(&self) -> bool {
        self.ecn == Ecn::NotEct
    }

    /// Marks congestion experienced if the packet is ECN-capable. Returns
    /// whether the mark was applied.
    #[inline]
    pub fn mark_ce(&mut self) -> bool {
        if self.ecn == Ecn::Ect0 {
            self.ecn = Ecn::Ce;
            true
        } else {
            self.ecn == Ecn::Ce
        }
    }

    /// Trim the payload, leaving only the header (NDP cutting payload).
    pub fn trim(&mut self) {
        self.trimmed = true;
        self.payload = 0;
        self.size = MIN_PACKET_BYTES;
    }

    /// True for packets that carry application payload.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data) && !self.trimmed
    }
}

/// Description of an application flow to be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDesc {
    /// Unique flow id.
    pub id: FlowId,
    /// Source host node.
    pub src: NodeId,
    /// Destination host node.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size: u64,
    /// Arrival time of the flow at the source.
    pub start: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(class: TrafficClass) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 1460, class, 3000)
    }

    #[test]
    fn unscheduled_data_is_droppable_scheduled_is_not() {
        assert!(sample_data(TrafficClass::Unscheduled).droppable());
        assert!(!sample_data(TrafficClass::Scheduled).droppable());
        let ctrl = Packet::control(FlowId(1), NodeId(0), NodeId(1), 0, PacketKind::Probe);
        assert!(!ctrl.droppable(), "probes are treated as scheduled");
    }

    #[test]
    fn data_size_includes_header() {
        let p = sample_data(TrafficClass::Scheduled);
        assert_eq!(p.size, 1460 + HEADER_BYTES);
        assert_eq!(p.payload, 1460);
        assert!(p.is_data());
    }

    #[test]
    fn ce_marking_only_applies_to_ect() {
        let mut s = sample_data(TrafficClass::Scheduled);
        assert!(s.mark_ce());
        assert_eq!(s.ecn, Ecn::Ce);
        let mut u = sample_data(TrafficClass::Unscheduled);
        assert!(!u.mark_ce());
        assert_eq!(u.ecn, Ecn::NotEct);
    }

    #[test]
    fn trimming_cuts_payload_to_min_frame() {
        let mut p = sample_data(TrafficClass::Unscheduled);
        p.trim();
        assert_eq!(p.size, MIN_PACKET_BYTES);
        assert_eq!(p.payload, 0);
        assert!(p.trimmed);
        assert!(!p.is_data());
    }

    #[test]
    fn control_packets_are_minimum_size() {
        let p = Packet::control(FlowId(9), NodeId(2), NodeId(3), 7, PacketKind::Pull);
        assert_eq!(p.size, MIN_PACKET_BYTES);
        assert_eq!(p.class, TrafficClass::Control);
    }
}
