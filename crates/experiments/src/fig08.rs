//! Figure 8 — testbed 7-to-1 incast message completion times (MCT),
//! ExpressPass vs ExpressPass+Aeolus: (a) MCT distribution at 30 KB,
//! (b) mean MCT for 30–50 KB messages.

use aeolus_sim::units::ms;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder};
use aeolus_workloads::incast_rounds;

use crate::report::{fct_header, fct_row, Report};
use crate::runner::{run_flows, RunOutput};
use crate::scale::Scale;
use crate::topos::testbed;

/// Message sizes swept in Figure 8(b).
pub const SIZES: [u64; 5] = [30_000, 35_000, 40_000, 45_000, 50_000];

/// One incast run: `rounds` rounds of 7-to-1 with `msg_size` responses.
pub fn incast_run(scheme: Scheme, msg_size: u64, rounds: usize) -> RunOutput {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    // Rounds spaced far enough apart to drain fully (testbed methodology:
    // request, wait for all responses, repeat).
    let flows = incast_rounds(&hosts[1..], hosts[0], msg_size, rounds, ms(2), 0, 1);
    run_flows(&mut h, &flows, ms(100))
}

/// Build both MCT tables — the @30KB distribution and the mean-vs-size sweep
/// — for a scheme pair (shared with Figure 11). One run per scheme × size,
/// fanned out across cores; the 30 KB run feeds both tables (`SIZES[0]`).
pub fn mct_tables(schemes: [Scheme; 2], rounds: usize) -> (TextTable, TextTable) {
    let mut cells = Vec::with_capacity(schemes.len() * SIZES.len());
    for scheme in schemes {
        for &size in &SIZES {
            cells.push((scheme, size));
        }
    }
    let outs =
        crate::runner::parallel_map(&cells, |&(scheme, size)| incast_run(scheme, size, rounds));
    let mut dist = TextTable::new(fct_header());
    let mut header = vec!["scheme".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{}KB", s / 1000)));
    let mut means = TextTable::new(header);
    for (si, scheme) in schemes.into_iter().enumerate() {
        let base = si * SIZES.len();
        dist.row(fct_row(&scheme.label(), &outs[base].agg));
        let mut row = vec![scheme.label()];
        for j in 0..SIZES.len() {
            row.push(f2(outs[base + j].agg.fct_us().mean()));
        }
        means.row(row);
    }
    (dist, means)
}

/// Run Figure 8.
pub fn run(scale: Scale) -> Report {
    let rounds = scale.count(3, 30, 100);
    let (dist, means) = mct_tables([Scheme::ExpressPass, Scheme::ExpressPassAeolus], rounds);

    let mut r = Report::new();
    r.section("Figure 8(a): 7-to-1 incast MCT distribution @30KB (us)", dist);
    r.section("Figure 8(b): mean MCT vs message size (us)", means);
    r.note("paper: median MCT improved 43% at 30KB; mean improved 19-33% across sizes");
    r
}
