//! Scheme registry: one place that knows, for every evaluated scheme, which
//! switch queue discipline, routing policy and endpoint configuration to use.
//!
//! | Scheme                 | switch queue                         | first RTT | recovery |
//! |------------------------|--------------------------------------|-----------|----------|
//! | ExpressPass            | XPass(credit throttle + drop-tail)   | hold      | (lossless) |
//! | ExpressPass + Aeolus   | XPass(credit throttle + RED/ECN)     | Aeolus    | probe    |
//! | ExpressPass oracle     | XPass(+8-prio, low-prio drop)        | oracle    | probe    |
//! | ExpressPass + prio-q   | XPass(+8-prio, finite/shared buffer) | low-prio  | RTO      |
//! | Homa                   | 8-priority bank                      | blind     | RTO/RESEND |
//! | Homa + Aeolus          | 8-priority bank + selective drop     | Aeolus    | probe    |
//! | Homa oracle            | 8-priority bank, low-prio drop       | oracle    | probe    |
//! | NDP                    | trimming (cutting payload)           | blind     | NACK/pull |
//! | NDP + Aeolus           | RED/ECN FIFO                         | Aeolus    | probe+pull |

use aeolus_core::AeolusConfig;
use aeolus_sim::units::Time;
use aeolus_sim::{
    DropTailQueue, Endpoint, FaultPlan, PoolHandle, PriorityBank, QueueDisc, Rate, RedEcnQueue,
    RoutePolicy, TrimmingQueue, WredProfile, WredQueue, XPassQueue, CREDIT_BYTES,
};
use aeolus_sim::topology::PortRole;

use crate::common::{BaseConfig, FirstRttMode};
use crate::expresspass::{XPassConfig, XPassEndpoint};
use crate::homa::{HomaConfig, HomaEndpoint};
use crate::ndp::{NdpConfig, NdpEndpoint};
use crate::dctcp::{DctcpConfig, DctcpEndpoint};
use crate::fastpass::{ArbiterEndpoint, FastpassConfig, FastpassEndpoint};
use crate::phost::{PHostConfig, PHostEndpoint};

/// Every transport scheme evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Original ExpressPass: no data in the first RTT.
    ExpressPass,
    /// ExpressPass + the Aeolus building block.
    ExpressPassAeolus,
    /// §2.3's hypothetical ExpressPass (oracle spare-bandwidth use).
    ExpressPassOracle,
    /// §5.5's strawman: unscheduled in a low-priority queue, RTO recovery.
    ExpressPassPrioQueue {
        /// Retransmission timeout (10 ms and 20 µs in Table 4).
        rto: Time,
    },
    /// Original Homa with timeout-based recovery.
    Homa {
        /// Retransmission timeout (10 ms default; 20 µs = "eager Homa").
        rto: Time,
    },
    /// "Eager Homa" (Table 1): naive deadline RTO with full-burst resends.
    HomaEager {
        /// The naive retransmission deadline (paper: 20 µs).
        rto: Time,
    },
    /// Homa + the Aeolus building block.
    HomaAeolus,
    /// §2.3's hypothetical Homa.
    HomaOracle,
    /// Original NDP with cutting payload.
    Ndp,
    /// NDP + Aeolus (no switch modifications).
    NdpAeolus,
    /// pHost (extension): token-based receiver-driven transport with a
    /// blind high-priority burst and timeout recovery.
    PHost {
        /// Receiver-side token re-issue timeout.
        rto: Time,
    },
    /// pHost + the Aeolus building block (extension).
    PHostAeolus,
    /// DCTCP (extension): the reactive "try and backoff" baseline the
    /// paper's introduction contrasts proactive transport against.
    Dctcp {
        /// Retransmission timeout.
        rto: Time,
    },
    /// Fastpass (extension): centralized-arbiter proactive transport.
    Fastpass,
    /// Fastpass + the Aeolus building block (extension).
    FastpassAeolus,
}

/// Parameters every scheme shares, fixed per experiment.
#[derive(Debug, Clone)]
pub struct SchemeParams {
    /// Base RTT of the topology (sets BDP burst budgets).
    pub base_rtt: Time,
    /// MTU payload bytes.
    pub mtu_payload: u32,
    /// Aeolus knobs (threshold, buffers).
    pub aeolus: AeolusConfig,
    /// Per-port buffer for finite-buffer schemes (paper default 200 KB).
    pub port_buffer: u64,
    /// NDP trimming threshold in whole packets (paper default 8).
    pub trim_cap_pkts: usize,
    /// ExpressPass credit-queue cap in credits.
    pub credit_cap: usize,
    /// Homa message-size cutoffs for unscheduled priorities.
    pub homa_cutoffs: Vec<u64>,
    /// Homa overcommitment degree.
    pub homa_overcommit: usize,
    /// Optional switch-wide shared buffer pool capacity in bytes (Table 5's
    /// single-switch experiment); applied to switch egress ports only. The
    /// harness materializes one live pool per topology from this, so configs
    /// stay plain data (and `Send + Sync` for the parallel runner).
    pub shared_pool: Option<u64>,
    /// The Fastpass arbiter's node (set by the harness, which reserves the
    /// topology's last host for it).
    pub arbiter: Option<aeolus_sim::NodeId>,
    /// Ablation knob: disable SACK gap inference (probe-only recovery).
    pub disable_sack: bool,
    /// Use the §4.1 WRED/color switch implementation of selective dropping
    /// instead of the RED/ECN re-interpretation (identical drop decisions;
    /// exists to demonstrate both deployment paths).
    pub use_wred: bool,
    /// Fault injection: wrap every *switch* egress queue so each packet is
    /// discarded with this probability (0 = off). Robustness tests only.
    pub fault_loss_prob: f64,
    /// Wire-level fault plan (corruption loss, link down/degraded windows),
    /// installed on the engine by the harness. Empty = no fault machinery
    /// runs at all; see [`aeolus_sim::FaultPlan`]. Plain data, so parameter
    /// sets stay `Send + Sync` for the parallel runner.
    pub faults: FaultPlan,
    /// Override the scheme's native first-RTT mode (ablations; set via
    /// [`crate::SchemeBuilder::first_rtt`]). `None` keeps the default. The
    /// switch queue discipline still follows the scheme, so overrides make
    /// sense only between modes sharing a discipline (e.g. Aeolus ↔ Blind).
    pub first_rtt: Option<FirstRttMode>,
    /// Peer-death threshold for all endpoints: a flow that has heard
    /// nothing from its peer for this long while retrying aborts with
    /// cause `PeerSilent` instead of retrying forever. `0` disables it.
    pub peer_silence: Time,
}

impl SchemeParams {
    /// Paper defaults for a topology with the given base RTT.
    pub fn new(base_rtt: Time) -> SchemeParams {
        SchemeParams {
            base_rtt,
            mtu_payload: 1460,
            aeolus: AeolusConfig::default(),
            port_buffer: 200_000,
            trim_cap_pkts: 8,
            credit_cap: 8,
            homa_cutoffs: vec![3_000, 30_000, 300_000],
            homa_overcommit: 6,
            shared_pool: None,
            arbiter: None,
            disable_sack: false,
            use_wred: false,
            fault_loss_prob: 0.0,
            faults: FaultPlan::default(),
            first_rtt: None,
            peer_silence: aeolus_sim::units::ms(400),
        }
    }

    fn mtu_wire(&self) -> u32 {
        self.mtu_payload + aeolus_sim::HEADER_BYTES
    }

    /// Validate the parameter set, including the **effective** Aeolus
    /// config: queue construction substitutes the physical [`port_buffer`]
    /// for `aeolus.port_buffer`, so the threshold/buffer relation must hold
    /// against the value actually used — a threshold above the physical
    /// buffer would mean selective dropping never engages. (This used to be
    /// papered over with a silent `buffer.max(threshold)` clamp.)
    ///
    /// [`port_buffer`]: SchemeParams::port_buffer
    pub fn validate(&self) -> Result<(), String> {
        self.aeolus.validate()?;
        let mut effective = self.aeolus;
        effective.port_buffer = self.port_buffer;
        effective.validate()
    }
}

/// Effectively infinite buffer for oracle runs and host NICs.
const HUGE: u64 = 1 << 40;

impl Scheme {
    /// Whether this scheme requires a centralized arbiter host.
    pub fn needs_arbiter(&self) -> bool {
        matches!(self, Scheme::Fastpass | Scheme::FastpassAeolus)
    }

    /// Build the arbiter endpoint (panics for schemes without one).
    pub fn make_arbiter(&self, p: &SchemeParams) -> Box<dyn Endpoint> {
        assert!(self.needs_arbiter());
        Box::new(ArbiterEndpoint::new(p.mtu_wire()))
    }

    /// Stable machine-readable identifier for this scheme, usable on command
    /// lines and in file names. Round-trips through [`Scheme::from_str`]
    /// (RTO-carrying variants append `:<rto_us>` when parsing to override
    /// the default timeout).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::ExpressPass => "expresspass",
            Scheme::ExpressPassAeolus => "expresspass-aeolus",
            Scheme::ExpressPassOracle => "expresspass-oracle",
            Scheme::ExpressPassPrioQueue { .. } => "expresspass-prioq",
            Scheme::Homa { .. } => "homa",
            Scheme::HomaEager { .. } => "homa-eager",
            Scheme::HomaAeolus => "homa-aeolus",
            Scheme::HomaOracle => "homa-oracle",
            Scheme::Ndp => "ndp",
            Scheme::NdpAeolus => "ndp-aeolus",
            Scheme::PHost { .. } => "phost",
            Scheme::PHostAeolus => "phost-aeolus",
            Scheme::Dctcp { .. } => "dctcp",
            Scheme::Fastpass => "fastpass",
            Scheme::FastpassAeolus => "fastpass-aeolus",
        }
    }

    /// Human-readable name as used in the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Scheme::ExpressPass => "ExpressPass".into(),
            Scheme::ExpressPassAeolus => "ExpressPass+Aeolus".into(),
            Scheme::ExpressPassOracle => "Hypothetical ExpressPass".into(),
            Scheme::ExpressPassPrioQueue { rto } => {
                format!("ExpressPass+PrioQueue(RTO={}us)", rto / 1_000_000)
            }
            Scheme::Homa { rto } => format!("Homa(RTO={}us)", rto / 1_000_000),
            Scheme::HomaEager { rto } => format!("Eager Homa(RTO={}us)", rto / 1_000_000),
            Scheme::HomaAeolus => "Homa+Aeolus".into(),
            Scheme::HomaOracle => "Hypothetical Homa".into(),
            Scheme::Ndp => "NDP".into(),
            Scheme::NdpAeolus => "NDP+Aeolus".into(),
            Scheme::PHost { rto } => format!("pHost(RTO={}us)", rto / 1_000_000),
            Scheme::PHostAeolus => "pHost+Aeolus".into(),
            Scheme::Dctcp { rto } => format!("DCTCP(RTO={}us)", rto / 1_000_000),
            Scheme::Fastpass => "Fastpass".into(),
            Scheme::FastpassAeolus => "Fastpass+Aeolus".into(),
        }
    }

    /// Which [`OracleProfile`] checks the conformance oracle can enforce for
    /// this scheme.
    ///
    /// The engine-level checks (queue ledgers, drop legality, transmitter
    /// causality, byte conservation) always apply; these flags gate the
    /// protocol-level families to what each scheme's event stream actually
    /// promises:
    ///
    /// - *credit conservation* holds for every receiver/arbiter-driven
    ///   scheme; DCTCP issues no credits, so the flag is vacuous there and
    ///   stays on.
    /// - *burst budget* holds wherever the first RTT is budgeted (Aeolus,
    ///   blind and low-prio modes) or absent (hold modes). Homa's
    ///   RESEND/timeout path resends first-RTT bytes as fresh unscheduled
    ///   packets beyond the declared burst, so the original Homa variants
    ///   opt out.
    /// - *retransmit pairing* (retransmitted ≤ declared-lost) is off for
    ///   schemes whose backstops retransmit speculatively without a
    ///   detection event (eager/naive RTOs, pHost token re-issue, Homa
    ///   RESEND).
    ///
    /// [`OracleProfile`]: aeolus_sim::OracleProfile
    pub fn oracle_profile(&self) -> aeolus_sim::OracleProfile {
        let mut profile = aeolus_sim::OracleProfile::default();
        match self {
            Scheme::Homa { .. } | Scheme::HomaEager { .. } => {
                profile.burst_budget = false;
                profile.retransmit_pairing = false;
            }
            Scheme::ExpressPassPrioQueue { .. } | Scheme::PHost { .. } | Scheme::Dctcp { .. } => {
                profile.retransmit_pairing = false;
            }
            _ => {}
        }
        profile
    }

    /// Switch path-selection policy this scheme assumes.
    ///
    /// NDP sprays by design; Homa and pHost assume a congestion-free core
    /// (Aeolus paper §6), which their own simulators realize with per-packet
    /// load balancing. ExpressPass *requires* symmetric per-flow paths so
    /// switch credit throttling bounds the forward data rate.
    pub fn route_policy(&self) -> RoutePolicy {
        match self {
            Scheme::Ndp
            | Scheme::NdpAeolus
            | Scheme::Homa { .. }
            | Scheme::HomaEager { .. }
            | Scheme::HomaAeolus
            | Scheme::HomaOracle
            | Scheme::PHost { .. }
            | Scheme::PHostAeolus => RoutePolicy::Spray,
            _ => RoutePolicy::EcmpHash,
        }
    }

    fn first_rtt_mode(&self) -> FirstRttMode {
        match self {
            Scheme::ExpressPass => FirstRttMode::Hold,
            Scheme::ExpressPassAeolus
            | Scheme::HomaAeolus
            | Scheme::NdpAeolus
            | Scheme::PHostAeolus => FirstRttMode::Aeolus,
            Scheme::ExpressPassOracle | Scheme::HomaOracle => FirstRttMode::Oracle,
            Scheme::ExpressPassPrioQueue { .. } => FirstRttMode::LowPrio,
            Scheme::Homa { .. }
            | Scheme::HomaEager { .. }
            | Scheme::Ndp
            | Scheme::PHost { .. }
            | Scheme::Dctcp { .. } => FirstRttMode::Blind,
            Scheme::Fastpass => FirstRttMode::Hold,
            Scheme::FastpassAeolus => FirstRttMode::Aeolus,
        }
    }

    fn base_config(&self, p: &SchemeParams) -> BaseConfig {
        let mut aeolus = p.aeolus;
        aeolus.port_buffer = p.port_buffer;
        // SACK gap inference needs in-order delivery; any scheme whose
        // fabric sprays packets must rely on the probe alone.
        let sprays = self.route_policy() == RoutePolicy::Spray;
        BaseConfig {
            mtu_payload: p.mtu_payload,
            base_rtt: p.base_rtt,
            aeolus,
            mode: p.first_rtt.unwrap_or_else(|| self.first_rtt_mode()),
            disable_sack: p.disable_sack || sprays,
            peer_silence: p.peer_silence,
        }
    }

    /// Build the egress queue for a port of the given rate and role.
    ///
    /// `pool` is the topology-wide shared buffer handle materialized from
    /// `p.shared_pool` (one per harness, shared by all its ports).
    pub fn make_queue(
        &self,
        p: &SchemeParams,
        rate: Rate,
        role: PortRole,
        pool: Option<&PoolHandle>,
    ) -> Box<dyn QueueDisc> {
        let inner = self.make_queue_inner(p, rate, role, pool);
        if p.fault_loss_prob > 0.0 && role != PortRole::HostNic {
            // Seed varies per scheme so runs stay deterministic but distinct.
            Box::new(aeolus_sim::LossyQueue::new(inner, p.fault_loss_prob, 0xfa17))
        } else {
            inner
        }
    }

    fn make_queue_inner(
        &self,
        p: &SchemeParams,
        rate: Rate,
        role: PortRole,
        pool: Option<&PoolHandle>,
    ) -> Box<dyn QueueDisc> {
        let is_switch = role != PortRole::HostNic;
        let threshold = p.aeolus.drop_threshold;
        let buffer = p.port_buffer;
        match self {
            Scheme::ExpressPass
            | Scheme::ExpressPassAeolus
            | Scheme::ExpressPassOracle
            | Scheme::ExpressPassPrioQueue { .. } => {
                let inner: Box<dyn QueueDisc> = if !is_switch {
                    // Host NICs never drop locally.
                    Box::new(DropTailQueue::new(HUGE))
                } else {
                    match self {
                        Scheme::ExpressPass => Box::new(DropTailQueue::new(buffer)),
                        Scheme::ExpressPassAeolus => {
                            if p.use_wred {
                                Box::new(WredQueue::new(
                                    WredProfile::aeolus(threshold, buffer),
                                    buffer,
                                ))
                            } else {
                                Box::new(RedEcnQueue::new(threshold, buffer))
                            }
                        }
                        Scheme::ExpressPassOracle => Box::new(
                            PriorityBank::new(8, HUGE).with_selective_threshold(threshold),
                        ),
                        Scheme::ExpressPassPrioQueue { .. } => {
                            let bank = PriorityBank::new(8, buffer);
                            match pool {
                                Some(pool) => Box::new(bank.with_pool(pool.clone())),
                                None => Box::new(bank),
                            }
                        }
                        _ => unreachable!(),
                    }
                };
                Box::new(XPassQueue::new(inner, rate, p.mtu_wire(), CREDIT_BYTES, p.credit_cap))
            }
            Scheme::Homa { .. } | Scheme::HomaEager { .. } => {
                let cap = if is_switch { buffer } else { HUGE };
                Box::new(PriorityBank::new(8, cap))
            }
            Scheme::HomaAeolus => {
                if is_switch {
                    Box::new(PriorityBank::new(8, buffer).with_selective_threshold(threshold))
                } else {
                    Box::new(PriorityBank::new(8, HUGE))
                }
            }
            Scheme::HomaOracle => {
                Box::new(PriorityBank::new(8, HUGE).with_selective_threshold(threshold))
            }
            Scheme::Ndp => {
                if is_switch {
                    Box::new(TrimmingQueue::new(p.trim_cap_pkts, HUGE))
                } else {
                    Box::new(TrimmingQueue::new(usize::MAX, HUGE))
                }
            }
            Scheme::NdpAeolus => {
                if is_switch {
                    if p.use_wred {
                        Box::new(WredQueue::new(
                            WredProfile::aeolus(threshold, buffer),
                            buffer,
                        ))
                    } else {
                        Box::new(RedEcnQueue::new(threshold, buffer))
                    }
                } else {
                    Box::new(DropTailQueue::new(HUGE))
                }
            }
            // pHost uses two priority levels (unscheduled above scheduled);
            // with Aeolus, selective dropping applies at port scope.
            Scheme::PHost { .. } => {
                let cap = if is_switch { buffer } else { HUGE };
                Box::new(PriorityBank::new(2, cap))
            }
            Scheme::PHostAeolus => {
                if is_switch {
                    Box::new(PriorityBank::new(2, buffer).with_selective_threshold(threshold))
                } else {
                    Box::new(PriorityBank::new(2, HUGE))
                }
            }
            // DCTCP: single-threshold RED/ECN marking — the same commodity
            // feature Aeolus re-interprets, used here as DCTCP's K.
            Scheme::Dctcp { .. } => {
                if is_switch {
                    Box::new(RedEcnQueue::new(threshold.max(30_000), buffer))
                } else {
                    Box::new(DropTailQueue::new(HUGE))
                }
            }
            // Fastpass: arbiter-scheduled slots need no AQM; +Aeolus adds
            // selective dropping for the pre-credit burst.
            Scheme::Fastpass => {
                let cap = if is_switch { buffer } else { HUGE };
                Box::new(DropTailQueue::new(cap))
            }
            Scheme::FastpassAeolus => {
                if is_switch {
                    Box::new(RedEcnQueue::new(threshold, buffer))
                } else {
                    Box::new(DropTailQueue::new(HUGE))
                }
            }
        }
    }

    /// Build the per-host endpoint.
    pub fn make_endpoint(&self, p: &SchemeParams) -> Box<dyn Endpoint> {
        let base = self.base_config(p);
        match self {
            Scheme::ExpressPass | Scheme::ExpressPassAeolus | Scheme::ExpressPassOracle => {
                Box::new(XPassEndpoint::new(XPassConfig::new(base)))
            }
            Scheme::ExpressPassPrioQueue { rto } => {
                let mut cfg = XPassConfig::new(base);
                cfg.rto = Some(*rto);
                Box::new(XPassEndpoint::new(cfg))
            }
            Scheme::Homa { rto } => {
                let mut cfg = HomaConfig::new(base, *rto);
                cfg.cutoffs = p.homa_cutoffs.clone();
                cfg.overcommit = p.homa_overcommit;
                Box::new(HomaEndpoint::new(cfg))
            }
            Scheme::HomaEager { rto } => {
                let mut cfg = HomaConfig::new(base, *rto);
                cfg.naive_rto = true;
                cfg.cutoffs = p.homa_cutoffs.clone();
                cfg.overcommit = p.homa_overcommit;
                Box::new(HomaEndpoint::new(cfg))
            }
            Scheme::HomaAeolus | Scheme::HomaOracle => {
                // No RTO-driven recovery in these modes; this only scales
                // the rare stall backstop.
                let mut cfg = HomaConfig::new(base, aeolus_sim::units::ms(10));
                cfg.cutoffs = p.homa_cutoffs.clone();
                cfg.overcommit = p.homa_overcommit;
                Box::new(HomaEndpoint::new(cfg))
            }
            Scheme::Ndp | Scheme::NdpAeolus => Box::new(NdpEndpoint::new(NdpConfig::new(base))),
            Scheme::PHost { rto } => {
                Box::new(PHostEndpoint::new(PHostConfig::new(base, *rto)))
            }
            Scheme::PHostAeolus => {
                // Only scales the rare stall backstop in this mode.
                Box::new(PHostEndpoint::new(PHostConfig::new(base, aeolus_sim::units::ms(10))))
            }
            Scheme::Dctcp { rto } => Box::new(DctcpEndpoint::new(DctcpConfig::new(base, *rto))),
            Scheme::Fastpass | Scheme::FastpassAeolus => {
                let arbiter = p.arbiter.expect("Fastpass needs an arbiter (set by the harness)");
                Box::new(FastpassEndpoint::new(FastpassConfig::new(base, arbiter)))
            }
        }
    }
}

/// Error returned when a scheme string fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scheme '{}' (expected e.g. 'homa-aeolus' or 'dctcp:200')", self.0)
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parse `<slug>[:<rto_us>]`. The slug is [`Scheme::name`]; the optional
    /// suffix overrides the retransmission timeout (in microseconds) of the
    /// RTO-carrying variants and is rejected for the others.
    fn from_str(s: &str) -> Result<Scheme, ParseSchemeError> {
        let (slug, rto_us) = match s.split_once(':') {
            Some((slug, rto)) => {
                let rto_us: u64 = rto.parse().map_err(|_| ParseSchemeError(s.into()))?;
                (slug, Some(rto_us))
            }
            None => (s, None),
        };
        let rto = |default_us: u64| aeolus_sim::units::us(rto_us.unwrap_or(default_us));
        let fixed = |scheme: Scheme| {
            if rto_us.is_some() {
                Err(ParseSchemeError(s.into()))
            } else {
                Ok(scheme)
            }
        };
        match slug {
            "expresspass" => fixed(Scheme::ExpressPass),
            "expresspass-aeolus" => fixed(Scheme::ExpressPassAeolus),
            "expresspass-oracle" => fixed(Scheme::ExpressPassOracle),
            "expresspass-prioq" => Ok(Scheme::ExpressPassPrioQueue { rto: rto(10_000) }),
            "homa" => Ok(Scheme::Homa { rto: rto(10_000) }),
            "homa-eager" => Ok(Scheme::HomaEager { rto: rto(20) }),
            "homa-aeolus" => fixed(Scheme::HomaAeolus),
            "homa-oracle" => fixed(Scheme::HomaOracle),
            "ndp" => fixed(Scheme::Ndp),
            "ndp-aeolus" => fixed(Scheme::NdpAeolus),
            "phost" => Ok(Scheme::PHost { rto: rto(10_000) }),
            "phost-aeolus" => fixed(Scheme::PHostAeolus),
            "dctcp" => Ok(Scheme::Dctcp { rto: rto(10_000) }),
            "fastpass" => fixed(Scheme::Fastpass),
            "fastpass-aeolus" => fixed(Scheme::FastpassAeolus),
            _ => Err(ParseSchemeError(s.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::units::us;

    fn params() -> SchemeParams {
        SchemeParams::new(us(5))
    }

    #[test]
    fn params_validate_checks_the_effective_buffer() {
        assert_eq!(params().validate(), Ok(()));
        let mut p = params();
        p.port_buffer = 4_000; // below the 6 KB default drop threshold
        let err = p.validate().unwrap_err();
        assert!(err.contains("drop_threshold"), "unhelpful error: {err}");
        // The aeolus config's own pair is still checked too.
        let mut p = params();
        p.aeolus.port_buffer = 1_000;
        assert!(p.validate().is_err());
    }

    #[test]
    fn route_policies() {
        assert_eq!(Scheme::Ndp.route_policy(), RoutePolicy::Spray);
        assert_eq!(Scheme::NdpAeolus.route_policy(), RoutePolicy::Spray);
        assert_eq!(Scheme::HomaAeolus.route_policy(), RoutePolicy::Spray);
        assert_eq!(Scheme::PHostAeolus.route_policy(), RoutePolicy::Spray);
        assert_eq!(Scheme::ExpressPass.route_policy(), RoutePolicy::EcmpHash);
        assert_eq!(Scheme::ExpressPassAeolus.route_policy(), RoutePolicy::EcmpHash);
        assert_eq!(Scheme::Dctcp { rto: us(10_000) }.route_policy(), RoutePolicy::EcmpHash);
    }

    #[test]
    fn all_schemes_build_queues_and_endpoints() {
        let p = params();
        let schemes = [
            Scheme::ExpressPass,
            Scheme::ExpressPassAeolus,
            Scheme::ExpressPassOracle,
            Scheme::ExpressPassPrioQueue { rto: us(10_000) },
            Scheme::Homa { rto: us(10_000) },
            Scheme::HomaAeolus,
            Scheme::HomaOracle,
            Scheme::Ndp,
            Scheme::NdpAeolus,
            Scheme::PHost { rto: us(10_000) },
            Scheme::PHostAeolus,
            Scheme::Dctcp { rto: us(10_000) },
        ];
        // (Fastpass needs an arbiter node: covered by the harness tests.)
        for s in schemes {
            for role in [PortRole::HostNic, PortRole::DownToHost, PortRole::SwitchToSwitch] {
                let q = s.make_queue(&p, Rate::gbps(100), role, None);
                assert_eq!(q.bytes(), 0, "{} queue starts empty", s.name());
            }
            let _ep = s.make_endpoint(&p);
        }
    }

    fn all_schemes() -> Vec<Scheme> {
        vec![
            Scheme::ExpressPass,
            Scheme::ExpressPassAeolus,
            Scheme::ExpressPassOracle,
            Scheme::ExpressPassPrioQueue { rto: us(10_000) },
            Scheme::Homa { rto: us(10_000) },
            Scheme::HomaEager { rto: us(20) },
            Scheme::HomaAeolus,
            Scheme::HomaOracle,
            Scheme::Ndp,
            Scheme::NdpAeolus,
            Scheme::PHost { rto: us(10_000) },
            Scheme::PHostAeolus,
            Scheme::Dctcp { rto: us(10_000) },
            Scheme::Fastpass,
            Scheme::FastpassAeolus,
        ]
    }

    #[test]
    fn names_and_labels_are_distinct() {
        let schemes = all_schemes();
        let names: std::collections::HashSet<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), schemes.len());
        let labels: std::collections::HashSet<String> =
            schemes.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), schemes.len());
    }

    #[test]
    fn name_round_trips_through_from_str() {
        // Property: for every scheme and every RTO in a sampled grid,
        // parsing the printed form reproduces the scheme exactly.
        for scheme in all_schemes() {
            let parsed: Scheme = scheme.name().parse().expect("bare slug parses");
            assert_eq!(parsed.name(), scheme.name(), "slug round-trip");
        }
        for rto_us in [1u64, 20, 200, 10_000, 1_000_000] {
            for slug in ["expresspass-prioq", "homa", "homa-eager", "phost", "dctcp"] {
                let spec = format!("{slug}:{rto_us}");
                let parsed: Scheme = spec.parse().expect("rto-suffixed slug parses");
                let rto = match parsed {
                    Scheme::ExpressPassPrioQueue { rto }
                    | Scheme::Homa { rto }
                    | Scheme::HomaEager { rto }
                    | Scheme::PHost { rto }
                    | Scheme::Dctcp { rto } => rto,
                    other => panic!("{spec} parsed to non-RTO scheme {other:?}"),
                };
                assert_eq!(rto, us(rto_us), "{spec} preserves the timeout");
                assert_eq!(parsed.name(), slug, "{spec} keeps its slug");
            }
        }
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!("homa-aeolus:10".parse::<Scheme>().is_err(), "no RTO on fixed schemes");
        assert!("".parse::<Scheme>().is_err());
        assert!("tcp-vegas".parse::<Scheme>().is_err());
        assert!("homa:abc".parse::<Scheme>().is_err());
        assert!("homa:".parse::<Scheme>().is_err());
    }
}
