//! Bench-sized scenario builders shared by the benchmark targets, plus the
//! in-tree measurement harness ([`harness`]).
//!
//! Each paper table/figure gets a miniature, fixed-seed configuration of its
//! experiment kernel — small enough for repeated sampling, large enough to
//! exercise the same code paths as the full runner in `aeolus-experiments`.

pub mod harness;
pub mod trajectory;

use aeolus_sim::event::{Event, EventQueue, SchedulerKind};
use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Rate};
use aeolus_sim::{
    DropTailQueue, EnqueueOutcome, FlowDesc, FlowId, FlowMap, NodeId, Packet, PacketPool,
    PacketRef, Poll, QueueDisc, RecordingTracer, RoutePolicy, RouteTable, SimRng, TrafficClass,
};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams, TopoSpec};
use aeolus_workloads::{incast_rounds, poisson_flows, PoissonConfig, Workload};

/// The bench testbed: 8 hosts on one 10 G switch.
pub fn bench_testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

/// A small two-tier fabric.
pub fn bench_fabric() -> TopoSpec {
    TopoSpec::LeafSpine {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 4,
        link: LinkParams::uniform(Rate::gbps(100), us(1)),
    }
}

/// Run `n_flows` Poisson flows of `workload` under `scheme`; returns the
/// completed-flow count (a black-box-able result).
pub fn bench_workload(scheme: Scheme, spec: TopoSpec, workload: Workload, n_flows: usize) -> usize {
    let mut h = SchemeBuilder::new(scheme).topology(spec).build();
    let hosts = h.hosts().to_vec();
    let flows = poisson_flows(
        &PoissonConfig {
            load: 0.4,
            host_rate: h.topo.host_rate,
            flows: n_flows,
            seed: 42,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &workload.dist(),
    );
    h.schedule(&flows);
    h.run(flows.last().unwrap().start + ms(400));
    h.metrics().completed_count()
}

/// Run a 7:1 incast of `rounds` rounds; returns the completed count.
pub fn bench_incast(scheme: Scheme, msg: u64, rounds: usize) -> usize {
    let mut h = SchemeBuilder::new(scheme).topology(bench_testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    h.run(ms(1000));
    h.metrics().completed_count()
}

/// Run an N:1 single-shot incast on a 100 G switch; returns completed count.
pub fn bench_many_to_one(scheme: Scheme, n: usize, msg: u64) -> usize {
    let spec =
        TopoSpec::SingleSwitch { hosts: n + 1, link: LinkParams::uniform(Rate::gbps(100), us(1)) };
    let mut params = SchemeParams::new(0);
    params.port_buffer = 500_000;
    let mut h = SchemeBuilder::new(scheme).params(params).topology(spec).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..n)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i + 1],
            dst: hosts[0],
            size: msg,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    h.run(ms(1000));
    h.metrics().completed_count()
}

/// Counting shim over the system allocator for the `alloc` bench suite.
///
/// A library cannot install a `#[global_allocator]`, so each bench binary
/// that wants allocation counts declares
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;` and reads
/// the shared counter through [`alloc_counter::allocations`]. Binaries that
/// skip the install still link fine — the counter just stays at zero.
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// The counting allocator; forwards everything to [`System`].
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }

    /// Heap allocations (alloc + realloc + alloc_zeroed) since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

fn churn_pkt(seq: u64) -> Packet {
    Packet::data(FlowId(seq % 64), NodeId(0), NodeId(1), seq, 1460, TrafficClass::Scheduled, 1 << 20)
}

/// `n` insert/free cycles through a [`PacketPool`] with a working set of
/// `live` in-flight packets — the per-hop hand-off pattern of the pooled
/// engine. Returns the cycle count.
pub fn pool_churn(n: u64, live: usize) -> u64 {
    let mut pool = PacketPool::new();
    let mut ring: Vec<PacketRef> = (0..live as u64).map(|i| pool.insert(churn_pkt(i))).collect();
    let mut at = 0usize;
    for i in 0..n {
        pool.free(ring[at]);
        ring[at] = pool.insert(churn_pkt(i));
        at = (at + 1) % live;
    }
    for r in ring {
        pool.free(r);
    }
    n
}

/// The pre-pool baseline: the same churn pattern but every packet is a
/// fresh `Box` (one malloc + one free per cycle, as the engine used to pay
/// per hop). Kept for an honest speedup denominator.
pub fn boxed_churn(n: u64, live: usize) -> u64 {
    let mut ring: Vec<Box<Packet>> = (0..live as u64).map(|i| Box::new(churn_pkt(i))).collect();
    let mut at = 0usize;
    for i in 0..n {
        ring[at] = Box::new(churn_pkt(i));
        at = (at + 1) % live;
    }
    std::hint::black_box(&ring);
    n
}

/// Heap allocations observed during a steady-state window of the canned
/// 7:1 elephant incast (50 ms warm-up, then a 150 ms measured window).
/// With the pooled engine this is **zero** once warm; the tier-1
/// `zero_alloc` test enforces that, this kernel makes it measurable in the
/// bench report. Requires the binary to install
/// [`alloc_counter::CountingAlloc`]; returns the allocation delta.
pub fn steady_incast_alloc_window() -> u64 {
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(bench_testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (1..hosts.len())
        .map(|i| FlowDesc {
            id: FlowId(i as u64),
            src: hosts[i],
            dst: hosts[0],
            size: 1 << 30,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    h.topo.net.run_until(ms(50));
    let before = alloc_counter::allocations();
    h.topo.net.run_until(ms(200));
    alloc_counter::allocations() - before
}

/// `n` operations against a [`FlowMap`] with a resident set of `live`
/// flows: a blend of hits, misses, inserts and removes in the proportions
/// of a transport's per-event state touch (mostly `get_mut` on a live flow,
/// occasional flow birth/death). Returns the op count.
pub fn flowmap_churn(n: u64, live: u64) -> u64 {
    let mut m: FlowMap<FlowId, u64> = FlowMap::new();
    for i in 0..live {
        m.insert(FlowId(i), i);
    }
    let mut next = live;
    let mut rng = SimRng::seed_from_u64(0xF10F);
    for _ in 0..n {
        if rng.chance(0.9) {
            // Hot lookup on a (probably) live flow.
            let key = FlowId(next.saturating_sub(1 + rng.below(live.max(1))));
            if let Some(v) = m.get_mut(key) {
                *v = v.wrapping_add(1);
            }
        } else {
            // Flow turnover: retire the oldest, admit a new one.
            m.remove(FlowId(next - live));
            m.insert(FlowId(next), next);
            next += 1;
        }
    }
    std::hint::black_box(m.len());
    n
}

/// The pre-slab baseline for [`flowmap_churn`]: the identical op stream
/// against a `BTreeMap` (what every transport used to pay per event). Kept
/// for an honest speedup denominator.
pub fn btreemap_churn(n: u64, live: u64) -> u64 {
    let mut m: std::collections::BTreeMap<FlowId, u64> = std::collections::BTreeMap::new();
    for i in 0..live {
        m.insert(FlowId(i), i);
    }
    let mut next = live;
    let mut rng = SimRng::seed_from_u64(0xF10F);
    for _ in 0..n {
        if rng.chance(0.9) {
            let key = FlowId(next.saturating_sub(1 + rng.below(live.max(1))));
            if let Some(v) = m.get_mut(&key) {
                *v = v.wrapping_add(1);
            }
        } else {
            m.remove(&FlowId(next - live));
            m.insert(FlowId(next), next);
            next += 1;
        }
    }
    std::hint::black_box(m.len());
    n
}

/// `n` ECMP selections through a [`RouteTable`]: 64 destinations, 4-way
/// groups, route hashes pre-stamped exactly as the engine stamps them at
/// injection — so this measures the per-hop flat CSR lookup, not the hash.
pub fn route_lookup(n: u64) -> u64 {
    let mut table = RouteTable::new(64, RoutePolicy::EcmpHash, 1);
    for dst in 0..64u32 {
        for p in 0..4u32 {
            table.add_route(NodeId(dst), aeolus_sim::PortId((dst * 4 + p) as u16));
        }
    }
    let mut pkt = churn_pkt(0);
    let mut acc = 0u64;
    for i in 0..n {
        pkt.dst = NodeId((i % 64) as u32);
        pkt.flow = FlowId(i % 512);
        pkt.route_hash = aeolus_sim::routing::fnv1a(pkt.flow.0, pkt.path_tag);
        acc = acc.wrapping_add(table.select(&pkt).0 as u64);
    }
    std::hint::black_box(acc);
    n
}

/// `n` packets through a `DropTailQueue` in bursts of 16 enqueues followed
/// by a full drain — the port hand-off pattern. Dequeue byte accounting
/// rides the fifo's cached wire sizes, so the pool is only touched to
/// recycle the handle. Returns the packet count.
pub fn batched_dequeue(n: u64) -> u64 {
    let mut pool = PacketPool::new();
    let mut q = DropTailQueue::new(1 << 30);
    let mut done = 0u64;
    while done < n {
        for i in 0..16 {
            let r = pool.insert(churn_pkt(done + i));
            if let EnqueueOutcome::Dropped { pkt, .. } = q.enqueue(r, &mut pool, 0) {
                pool.free(pkt);
            }
        }
        while let Poll::Ready(r) = q.poll(&mut pool, 0) {
            pool.free(r);
            done += 1;
        }
    }
    done
}

/// Pop `n` events through an [`EventQueue`] under `kind`, re-scheduling a
/// new timer after every pop (the self-sustaining pattern of a real DES hot
/// loop). Deltas mix sub-tick, in-wheel and overflow horizons so both the
/// current-tick heap, the wheel buckets and the overflow heap are exercised.
/// Returns the number of events processed (= `n`).
pub fn timer_stream_events(kind: SchedulerKind, n: u64) -> u64 {
    let mut q = EventQueue::with_scheduler(kind);
    let mut rng = SimRng::seed_from_u64(0x5eed_cafe);
    for i in 0..1024u64 {
        q.schedule_at(rng.below(us(200)), Event::Timer { node: NodeId(0), token: i });
    }
    let mut popped = 0u64;
    while popped < n {
        let (t, _ev) = q.pop().expect("self-sustaining stream drained early");
        popped += 1;
        // 70% short (intra-wheel), 25% sub-tick burst, 5% far future (overflow).
        let delta = if rng.chance(0.70) {
            1 + rng.below(us(150))
        } else if rng.chance(0.833) {
            1 + rng.below(1 << 14)
        } else {
            us(300) + rng.below(ms(5))
        };
        q.schedule_at(t + delta, Event::Timer { node: NodeId(0), token: popped });
    }
    popped
}

/// Run the canned 7:1 incast (Fig 8 shape) end-to-end under the given
/// scheduler and return the total events processed — the engine-macro
/// work-unit count for events/sec comparisons.
pub fn incast_sim_events(kind: SchedulerKind, msg: u64, rounds: usize) -> u64 {
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(bench_testbed()).build();
    h.topo.net.set_scheduler(kind);
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    h.run(ms(1000));
    h.topo.net.events_processed()
}

/// The same incast kernel as [`incast_sim_events`] but with a
/// [`RecordingTracer`] installed — measures the cost of full capture
/// (ring buffers, time series, transport events) relative to the
/// compiled-away `NullTracer` default.
pub fn incast_sim_events_recorded(kind: SchedulerKind, msg: u64, rounds: usize) -> u64 {
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus)
        .topology(bench_testbed())
        .tracer(RecordingTracer::new())
        .build();
    h.topo.net.set_scheduler(kind);
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    h.run(ms(1000));
    h.topo.net.events_processed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_stream_is_scheduler_independent() {
        let n = 20_000;
        assert_eq!(timer_stream_events(SchedulerKind::TimingWheel, n), n);
        assert_eq!(timer_stream_events(SchedulerKind::BinaryHeap, n), n);
    }

    #[test]
    fn incast_events_identical_across_schedulers() {
        let wheel = incast_sim_events(SchedulerKind::TimingWheel, 30_000, 2);
        let heap = incast_sim_events(SchedulerKind::BinaryHeap, 30_000, 2);
        assert_eq!(wheel, heap, "schedulers must process identical event streams");
        assert!(wheel > 3_000, "incast should be event-heavy, got {wheel}");
    }

    /// Golden event count, recorded under the pre-slab build (per-flow state
    /// in `BTreeMap`s, FNV route hash per hop) — the value in the committed
    /// `results/bench.json` bench history. The slab/CSR hot path must drive
    /// a bit-identical simulation, so the count must never move. If this
    /// fails, a "pure performance" change altered behavior.
    #[test]
    fn incast_event_count_matches_pre_slab_golden() {
        const GOLDEN: u64 = 5758;
        assert_eq!(incast_sim_events(SchedulerKind::TimingWheel, 30_000, 3), GOLDEN);
        assert_eq!(incast_sim_events(SchedulerKind::BinaryHeap, 30_000, 3), GOLDEN);
    }

    #[test]
    fn recording_tracer_does_not_perturb_the_simulation() {
        let plain = incast_sim_events(SchedulerKind::TimingWheel, 30_000, 2);
        let recorded = incast_sim_events_recorded(SchedulerKind::TimingWheel, 30_000, 2);
        assert_eq!(plain, recorded, "the tracer must be a passive observer");
    }

    #[test]
    fn bench_kernels_complete() {
        assert_eq!(bench_incast(Scheme::ExpressPassAeolus, 30_000, 2), 14);
        assert_eq!(bench_many_to_one(Scheme::HomaAeolus, 4, 64_000), 4);
        assert!(bench_workload(Scheme::NdpAeolus, bench_fabric(), Workload::WebServer, 20) >= 19);
    }
}
