//! Chaos — goodput degradation and recovery under a hostile fabric.
//!
//! Not a paper figure: this sweep stresses the recovery argument instead of
//! the performance one. Every scheme runs the same Poisson workload on the
//! testbed topology under a grid of wire-fault schedules — corruption loss
//! rate × one all-links flap — and every cell runs under the harness
//! watchdog, so a single hung flow anywhere in the grid fails the experiment
//! loudly with per-flow diagnostics instead of quietly deflating a
//! completion column.
//!
//! Reported per cell: completion, goodput relative to the same scheme's
//! fault-free run, slowdown percentiles, and the drop taxonomy (corruption
//! and link-down kills are tallied separately from congestion drops by
//! construction). The recovery-time CDF section shows slowdown quantiles
//! under the harshest cell — how much tail a scheme's retry machinery
//! leaves behind once every loss has been repaired.

use aeolus_sim::units::{ms, us, Time};
use aeolus_sim::{DropReason, FaultPlan, LinkFilter, PacketFilter};
use aeolus_stats::{f2, f3, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};
use aeolus_workloads::{poisson_flows, PoissonConfig, Workload};

use crate::report::Report;
use crate::runner::{collect, homa_cutoffs_for, parallel_map, RunOutput};
use crate::scale::Scale;
use crate::topos::testbed;

/// The six schemes the paper evaluates, all under fire.
fn schemes() -> [Scheme; 6] {
    [
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::FastpassAeolus,
        Scheme::Dctcp { rto: ms(10) },
    ]
}

/// One point of the fault grid.
#[derive(Debug, Clone, Copy)]
struct FaultCell {
    /// Corruption loss probability on every packet, every link.
    loss: f64,
    /// One all-links down window (a fabric-wide flap) mid-run.
    flap: bool,
}

/// Loss rates swept; 1% is the acceptance ceiling from the issue.
const LOSS_GRID: [f64; 3] = [0.0, 0.001, 0.01];

/// The flap: every link dark for 300 µs starting at 200 µs, when the first
/// wave of flows is mid-flight.
const FLAP_FROM: Time = 200 * us(1);
const FLAP_UNTIL: Time = 500 * us(1);

impl FaultCell {
    fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(0xc4a05 ^ seed);
        if self.loss > 0.0 {
            plan = plan.with_loss(self.loss, PacketFilter::Any, LinkFilter::All);
        }
        if self.flap {
            plan = plan.with_down(FLAP_FROM, FLAP_UNTIL, LinkFilter::All);
        }
        plan
    }

    fn label(&self) -> String {
        match (self.loss, self.flap) {
            (l, false) if l == 0.0 => "clean".to_string(),
            (l, true) if l == 0.0 => "flap".to_string(),
            (l, false) => format!("{}% loss", l * 100.0),
            (l, true) => format!("{}% loss + flap", l * 100.0),
        }
    }
}

/// Extra drop taxonomy pulled from the metrics next to the usual run stats.
struct CellOutput {
    out: RunOutput,
    corruption_drops: u64,
    linkdown_drops: u64,
    slowdowns: Vec<f64>,
}

fn run_cell(scheme: Scheme, cell: FaultCell, n_flows: usize) -> CellOutput {
    let workload = Workload::WebServer;
    let mut params = SchemeParams::new(0);
    params.homa_cutoffs = homa_cutoffs_for(workload);
    params.faults = cell.plan(scheme.name().len() as u64);
    let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows = poisson_flows(
        &PoissonConfig {
            load: 0.4,
            host_rate: h.topo.host_rate,
            flows: n_flows,
            seed: 7,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &workload.dist(),
    );
    h.schedule(&flows);
    let last_arrival = flows.iter().map(|f| f.start).max().unwrap_or(0);
    // Generous horizon: hardened retries back off to at most ~128 ms, so a
    // flow that hasn't finished 400 ms after the last arrival is stuck, not
    // slow — the watchdog turns it into a loud failure with per-flow state.
    if let Err(report) = h.run_watchdog(last_arrival + ms(400)) {
        panic!("chaos: {} under '{}' hung —\n{report}", scheme.label(), cell.label());
    }
    let m = h.metrics();
    let corruption_drops = m.drops_by_reason(DropReason::Corruption);
    let linkdown_drops = m.drops_by_reason(DropReason::LinkDown);
    let out = collect(&h);
    let mut slowdowns: Vec<f64> = out.agg.samples().iter().map(|s| s.slowdown()).collect();
    slowdowns.sort_by(|a, b| a.total_cmp(b));
    CellOutput { out, corruption_drops, linkdown_drops, slowdowns }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Run the chaos sweep.
pub fn run(scale: Scale) -> Report {
    let n_flows = scale.flows(24, 120, 600);
    let cells: Vec<FaultCell> = LOSS_GRID
        .iter()
        .flat_map(|&loss| [false, true].map(|flap| FaultCell { loss, flap }))
        .collect();
    // Scheme-major grid so results[s * cells.len()] is that scheme's clean
    // baseline for the goodput-degradation column.
    let grid: Vec<(Scheme, FaultCell)> = schemes()
        .iter()
        .flat_map(|&s| cells.iter().map(move |&c| (s, c)))
        .collect();
    let results = parallel_map(&grid, |&(scheme, cell)| run_cell(scheme, cell, n_flows));

    let mut r = Report::new();
    let mut table = TextTable::new(vec![
        "scheme",
        "faults",
        "completed",
        "goodput vs clean",
        "p50 slowdown",
        "p99 slowdown",
        "corrupt drops",
        "linkdown drops",
        "flows w/ timeout",
    ]);
    for (si, _) in schemes().iter().enumerate() {
        let base = &results[si * cells.len()];
        for (ci, cell) in cells.iter().enumerate() {
            let c = &results[si * cells.len() + ci];
            let rel = if base.out.goodput > 0.0 { c.out.goodput / base.out.goodput } else { 0.0 };
            table.row(vec![
                grid[si * cells.len() + ci].0.label(),
                cell.label(),
                format!("{}/{}", c.out.completed, c.out.scheduled),
                f3(rel),
                f2(quantile(&c.slowdowns, 0.50)),
                f2(quantile(&c.slowdowns, 0.99)),
                c.corruption_drops.to_string(),
                c.linkdown_drops.to_string(),
                c.out.flows_with_timeouts.to_string(),
            ]);
        }
    }
    r.section("Chaos: goodput & completion under corruption loss × link flap", table);

    let harsh = cells.len() - 1; // 1% loss + flap
    let mut cdf = TextTable::new(vec![
        "scheme", "p25", "p50", "p75", "p90", "p99", "max",
    ]);
    for (si, scheme) in schemes().iter().enumerate() {
        let c = &results[si * cells.len() + harsh];
        cdf.row(vec![
            scheme.label(),
            f2(quantile(&c.slowdowns, 0.25)),
            f2(quantile(&c.slowdowns, 0.50)),
            f2(quantile(&c.slowdowns, 0.75)),
            f2(quantile(&c.slowdowns, 0.90)),
            f2(quantile(&c.slowdowns, 0.99)),
            f2(quantile(&c.slowdowns, 1.0)),
        ]);
    }
    r.section("Recovery-time CDF (slowdown quantiles) under 1% loss + flap", cdf);
    r.note(format!(
        "every cell ran under the completion watchdog: a hung flow anywhere fails the sweep; flap = all links down {}..{}",
        aeolus_sim::units::fmt_time(FLAP_FROM),
        aeolus_sim::units::fmt_time(FLAP_UNTIL),
    ));
    r.note("goodput vs clean is relative to the same scheme's fault-free cell; corruption/link-down drops are wire faults, tallied apart from congestion drops");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_smoke_completes_every_flow() {
        // The acceptance bar: up to 1% corruption loss plus one flap, no
        // flow may hang in any scheme — run_cell panics via the watchdog
        // otherwise.
        let r = run(Scale::Smoke);
        assert_eq!(r.sections.len(), 2);
        let rendered = r.render();
        assert!(rendered.contains("1% loss + flap"));
    }

    #[test]
    fn harshest_cell_actually_injects_faults() {
        let cell = FaultCell { loss: 0.01, flap: true };
        let c = run_cell(Scheme::ExpressPassAeolus, cell, 24);
        assert!(c.corruption_drops > 0, "1% loss must kill some packets");
        assert_eq!(c.out.completed, c.out.scheduled, "watchdog allowed a hang");
    }

    #[test]
    fn clean_cell_injects_nothing() {
        let cell = FaultCell { loss: 0.0, flap: false };
        assert!(cell.plan(1).is_empty());
        let c = run_cell(Scheme::HomaAeolus, cell, 24);
        assert_eq!(c.corruption_drops, 0);
        assert_eq!(c.linkdown_drops, 0);
    }
}
