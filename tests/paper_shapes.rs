//! Cross-crate integration tests asserting the *qualitative shapes* of the
//! paper's headline results at test-friendly scale: who wins, and by
//! roughly what kind of factor. Exact magnitudes live in EXPERIMENTS.md.

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;

fn testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

/// Run an N-round 7:1 incast; return (mean, max) MCT in µs.
fn incast_mct(scheme: Scheme, msg: u64, rounds: usize) -> (f64, f64) {
    incast_mct_with_buffer(scheme, msg, rounds, 200_000)
}

/// Same, with a configurable per-port switch buffer (smaller buffers force
/// the loss regimes the paper's testbed hits).
fn incast_mct_with_buffer(scheme: Scheme, msg: u64, rounds: usize, buffer: u64) -> (f64, f64) {
    let mut params = SchemeParams::new(0);
    params.port_buffer = buffer;
    let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows = incast_rounds(&hosts[1..], hosts[0], msg, rounds, ms(2), 0, 1);
    h.schedule(&flows);
    assert!(h.run(ms(10_000)), "{}: incast incomplete", scheme.name());
    let mut agg = FctAggregator::new();
    for r in h.metrics().flows() {
        agg.push(FctSample { size: r.desc.size, fct_ps: r.fct().unwrap(), ideal_ps: 0 });
    }
    let mut s = agg.fct_us();
    (s.mean(), s.max())
}

#[test]
fn headline_expresspass_aeolus_speeds_up_incast_messages() {
    // Figure 8's direction: Aeolus improves EP's mean MCT (paper: 19-33%).
    let (plain, _) = incast_mct(Scheme::ExpressPass, 30_000, 10);
    let (aeolus, _) = incast_mct(Scheme::ExpressPassAeolus, 30_000, 10);
    assert!(
        aeolus < plain * 0.95,
        "EP+Aeolus mean MCT ({aeolus:.1}us) must beat EP ({plain:.1}us)"
    );
}

#[test]
fn headline_homa_aeolus_cuts_the_incast_tail() {
    // Figure 11's direction: Homa's tail is RTO-bound once the synchronized
    // unscheduled bursts (7 x BDP = ~147KB) overflow the port buffer;
    // Aeolus removes the tail by selective dropping + probe recovery.
    let (_, homa_max) = incast_mct_with_buffer(Scheme::Homa { rto: ms(10) }, 40_000, 10, 100_000);
    let (_, aeolus_max) = incast_mct_with_buffer(Scheme::HomaAeolus, 40_000, 10, 100_000);
    assert!(
        aeolus_max * 3.0 < homa_max,
        "Homa+Aeolus max MCT ({aeolus_max:.1}us) must be far below Homa's ({homa_max:.1}us)"
    );
}

#[test]
fn headline_ndp_aeolus_matches_ndp_without_trimming_switches() {
    // Figure 14's direction: similar performance, no switch modifications.
    let (ndp, _) = incast_mct(Scheme::Ndp, 40_000, 10);
    let (aeolus, _) = incast_mct(Scheme::NdpAeolus, 40_000, 10);
    let ratio = aeolus / ndp;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "NDP+Aeolus mean ({aeolus:.1}us) should be comparable to NDP ({ndp:.1}us)"
    );
}

#[test]
fn table4_direction_large_rto_tail_small_rto_waste() {
    // Priority queueing's dilemma vs Aeolus, exercised with a loss-heavy
    // incast: the 10ms-RTO variant has a huge max FCT; the 20us-RTO variant
    // wastes bandwidth on redundant retransmissions.
    let run = |scheme| {
        let mut params = SchemeParams::new(0);
        params.port_buffer = 60_000; // force buffer pressure on the strawman
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows = incast_round(&hosts[1..], hosts[0], 60_000, 0, 1);
        h.schedule(&flows);
        assert!(h.run(ms(1000)), "incomplete under {:?}", scheme);
        let max = h
            .metrics()
            .flows()
            .map(|r| r.fct().unwrap())
            .max()
            .unwrap() as f64
            / 1e6;
        (max, h.metrics().transfer_efficiency())
    };
    let (aeolus_max, aeolus_eff) = run(Scheme::ExpressPassAeolus);
    let (pq_slow_max, _) = run(Scheme::ExpressPassPrioQueue { rto: ms(10) });
    let (_, pq_fast_eff) = run(Scheme::ExpressPassPrioQueue { rto: us(20) });
    assert!(
        aeolus_max < pq_slow_max,
        "Aeolus max FCT {aeolus_max:.1}us must beat PQ/10ms {pq_slow_max:.1}us"
    );
    assert!(
        pq_fast_eff < aeolus_eff,
        "PQ/20us efficiency {pq_fast_eff:.3} must trail Aeolus {aeolus_eff:.3}"
    );
}

#[test]
fn fig15_direction_queue_tracks_threshold() {
    use aeolus::experiments::fig15::queue_stats;
    let (avg_small, max_small) = queue_stats(3_000, 8);
    let (avg_big, max_big) = queue_stats(48_000, 8);
    assert!(avg_small < avg_big, "avg queue must grow with the threshold");
    assert!(max_small < max_big, "max queue must grow with the threshold");
    assert!(max_small >= 3_000, "bursts reach the small threshold");
}

#[test]
fn fig16_direction_paper_threshold_fills_the_first_rtt() {
    use aeolus::experiments::fig16::first_rtt_utilization;
    // 6 KB (4 packets) sustains near-full first-RTT utilization even at
    // high fan-in — the paper's recommended setting.
    for n in [2, 8] {
        let u = first_rtt_utilization(6_000, n);
        assert!(u > 0.9, "utilization {u:.3} at threshold 6KB, N={n}");
    }
}

#[test]
fn oracle_upper_bounds_aeolus_which_upper_bounds_waiting() {
    // §2's ordering on small flows: oracle <= Aeolus <= plain ExpressPass.
    let fct = |scheme| {
        let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 12_000, start: 0 }]);
        assert!(h.run(ms(100)));
        h.metrics().flow(FlowId(1)).unwrap().fct().unwrap()
    };
    let oracle = fct(Scheme::ExpressPassOracle);
    let aeolus = fct(Scheme::ExpressPassAeolus);
    let plain = fct(Scheme::ExpressPass);
    assert!(oracle <= aeolus + us(1), "oracle {oracle} vs aeolus {aeolus}");
    assert!(aeolus < plain, "aeolus {aeolus} vs plain {plain}");
}

#[test]
fn goodput_is_bounded_and_ndp_is_competitive() {
    use aeolus::experiments::fig18::goodput;
    use aeolus::experiments::Scale;
    let ndp = goodput(Scheme::Ndp, Scale::Smoke, 0.5);
    let homa = goodput(Scheme::Homa { rto: us(40) }, Scale::Smoke, 0.5);
    assert!(ndp > 0.0 && ndp <= 1.0);
    assert!(homa > 0.0 && homa <= 1.0);
}
