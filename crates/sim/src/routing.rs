//! Routing: destination-indexed next-hop tables with ECMP.
//!
//! Each switch holds, for every destination host, the list of egress ports on
//! shortest paths. Two selection policies cover the paper's protocols:
//!
//! * **per-flow ECMP hashing** (ExpressPass, Homa) — a hash of the flow id
//!   and the packet's `path_tag` pins all packets of a flow to one path;
//! * **per-packet spraying** (NDP) — every packet picks uniformly at random.

use crate::packet::{NodeId, Packet, PortId};
use crate::rng::SimRng;

/// Path selection policy of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Hash (flow id, path tag) onto one of the candidate ports.
    EcmpHash,
    /// Choose uniformly at random per packet (NDP packet spraying).
    Spray,
}

/// FNV-1a 64-bit hash — cheap, deterministic flow hashing.
#[inline]
pub fn fnv1a(mut x: u64, mut y: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        x >>= 8;
    }
    for _ in 0..8 {
        h ^= y & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        y >>= 8;
    }
    h
}

/// A switch routing table: for each destination node id, the ECMP group of
/// candidate egress ports.
pub struct RouteTable {
    /// Indexed by `NodeId.0`; empty group = unreachable (a wiring bug).
    groups: Vec<Vec<PortId>>,
    policy: RoutePolicy,
    rng: SimRng,
}

impl RouteTable {
    /// A table for a network of `n_nodes` nodes.
    pub fn new(n_nodes: usize, policy: RoutePolicy, seed: u64) -> RouteTable {
        RouteTable {
            groups: vec![Vec::new(); n_nodes],
            policy,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Add `port` as a candidate next hop towards `dst`. The table grows on
    /// demand, so nodes may be numbered beyond the initial capacity.
    pub fn add_route(&mut self, dst: NodeId, port: PortId) {
        let idx = dst.0 as usize;
        if idx >= self.groups.len() {
            self.groups.resize(idx + 1, Vec::new());
        }
        let g = &mut self.groups[idx];
        if !g.contains(&port) {
            g.push(port);
        }
    }

    /// Candidate ports towards `dst` (for tests/topology validation).
    pub fn group(&self, dst: NodeId) -> &[PortId] {
        self.groups.get(dst.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Pick the egress port for `pkt`.
    ///
    /// # Panics
    /// Panics if no route exists — topologies must be fully wired.
    pub fn select(&mut self, pkt: &Packet) -> PortId {
        let g = self
            .groups
            .get(pkt.dst.0 as usize)
            .filter(|g| !g.is_empty())
            .unwrap_or_else(|| panic!("no route from switch to {:?}", pkt.dst));
        if g.len() == 1 {
            return g[0];
        }
        match self.policy {
            RoutePolicy::EcmpHash => {
                let h = fnv1a(pkt.flow.0, pkt.path_tag);
                g[(h % g.len() as u64) as usize]
            }
            RoutePolicy::Spray => {
                let i = self.rng.index(g.len());
                g[i]
            }
        }
    }

    /// Pick the egress port for `pkt`, steering around ports for which
    /// `is_down` returns true. Falls back to the normal selection when every
    /// candidate is down (the packet then waits in a stalled queue until the
    /// link recovers). Used by the engine only while a fault plan with down
    /// windows is active.
    ///
    /// # Panics
    /// Panics if no route exists — topologies must be fully wired.
    pub fn select_avoiding(
        &mut self,
        pkt: &Packet,
        is_down: impl Fn(PortId) -> bool,
    ) -> PortId {
        let g = self
            .groups
            .get(pkt.dst.0 as usize)
            .filter(|g| !g.is_empty())
            .unwrap_or_else(|| panic!("no route from switch to {:?}", pkt.dst));
        let up: Vec<PortId> = g.iter().copied().filter(|&p| !is_down(p)).collect();
        if up.is_empty() {
            return self.select(pkt);
        }
        if up.len() == 1 {
            return up[0];
        }
        match self.policy {
            RoutePolicy::EcmpHash => {
                let h = fnv1a(pkt.flow.0, pkt.path_tag);
                up[(h % up.len() as u64) as usize]
            }
            RoutePolicy::Spray => {
                let i = self.rng.index(up.len());
                up[i]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, TrafficClass};

    fn pkt(flow: u64, tag: u64) -> Packet {
        let mut p =
            Packet::data(FlowId(flow), NodeId(0), NodeId(5), 0, 1460, TrafficClass::Scheduled, 1);
        p.path_tag = tag;
        p
    }

    fn table(policy: RoutePolicy) -> RouteTable {
        let mut t = RouteTable::new(8, policy, 42);
        for p in 0..4 {
            t.add_route(NodeId(5), PortId(p));
        }
        t
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let mut t = table(RoutePolicy::EcmpHash);
        let first = t.select(&pkt(7, 0));
        for _ in 0..50 {
            assert_eq!(t.select(&pkt(7, 0)), first);
        }
    }

    #[test]
    fn ecmp_spreads_across_flows() {
        let mut t = table(RoutePolicy::EcmpHash);
        let mut seen = std::collections::HashSet::new();
        for f in 0..64 {
            seen.insert(t.select(&pkt(f, 0)));
        }
        assert!(seen.len() >= 3, "hash should reach most ports, saw {seen:?}");
    }

    #[test]
    fn path_tag_changes_ecmp_choice() {
        let mut t = table(RoutePolicy::EcmpHash);
        let mut seen = std::collections::HashSet::new();
        for tag in 0..64 {
            seen.insert(t.select(&pkt(7, tag)));
        }
        assert!(seen.len() >= 3, "path tag must re-roll the hash, saw {seen:?}");
    }

    #[test]
    fn spray_uses_all_ports() {
        let mut t = table(RoutePolicy::Spray);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(t.select(&pkt(7, 0)));
        }
        assert_eq!(seen.len(), 4, "spraying must hit every port");
    }

    #[test]
    fn duplicate_routes_ignored() {
        let mut t = RouteTable::new(8, RoutePolicy::EcmpHash, 1);
        t.add_route(NodeId(3), PortId(1));
        t.add_route(NodeId(3), PortId(1));
        assert_eq!(t.group(NodeId(3)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut t = RouteTable::new(8, RoutePolicy::EcmpHash, 1);
        let mut p = pkt(1, 0);
        p.dst = NodeId(2);
        t.select(&p);
    }
}
