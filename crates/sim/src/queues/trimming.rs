//! NDP cutting-payload (CP) queue.
//!
//! NDP switches keep a very short data queue (default 8 full packets). When
//! a data packet arrives to a full data queue its payload is *trimmed* and
//! the remaining header is placed in a strict-priority control queue together
//! with ACKs/NACKs/pulls, so the receiver learns of the loss within one RTT.
//! This requires switch hardware modifications (the paper's point: Aeolus
//! reproduces the effect with commodity RED/ECN instead).

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// Two-queue NDP port: priority control queue + packet-capped data queue
/// with payload trimming on overflow.
pub struct TrimmingQueue {
    control: ByteFifo,
    data: ByteFifo,
    /// Maximum number of full data packets queued before trimming (paper: 8).
    data_cap_pkts: usize,
    /// Cap on the control queue in bytes; beyond it even headers drop (rare).
    control_cap_bytes: u64,
    /// Count of packets trimmed at this port (exposed for stats).
    pub trimmed_count: u64,
}

impl TrimmingQueue {
    /// A trimming queue holding at most `data_cap_pkts` untrimmed packets.
    pub fn new(data_cap_pkts: usize, control_cap_bytes: u64) -> TrimmingQueue {
        TrimmingQueue {
            control: ByteFifo::new(),
            data: ByteFifo::new(),
            data_cap_pkts,
            control_cap_bytes,
            trimmed_count: 0,
        }
    }
}

impl QueueDisc for TrimmingQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, _now: Time) -> EnqueueOutcome {
        let is_payload = pool.get(pkt).is_data();
        if !is_payload {
            // Control / already-trimmed packets ride the priority queue.
            let sz = pool.get(pkt).size;
            if self.control.bytes() + sz as u64 > self.control_cap_bytes {
                return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
            }
            self.control.push(pkt, sz);
            return EnqueueOutcome::Queued;
        }
        if self.data.len() >= self.data_cap_pkts {
            // Cutting payload: keep the header, lose the bytes. Trim before
            // pushing so the FIFO caches the post-trim wire size.
            pool.get_mut(pkt).trim();
            self.trimmed_count += 1;
            let sz = pool.get(pkt).size;
            if self.control.bytes() + sz as u64 > self.control_cap_bytes {
                return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
            }
            self.control.push(pkt, sz);
            return EnqueueOutcome::QueuedTrimmed;
        }
        let sz = pool.get(pkt).size;
        self.data.push(pkt, sz);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _pool: &mut PacketPool, _now: Time) -> Poll {
        if let Some((pkt, _)) = self.control.pop() {
            return Poll::Ready(pkt);
        }
        match self.data.pop() {
            Some((pkt, _)) => Poll::Ready(pkt),
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.control.bytes() + self.data.bytes()
    }

    fn pkts(&self) -> usize {
        self.control.len() + self.data.len()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("ctrl", self.control.bytes()));
        out.push(("data", self.data.bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{ctrl_ref, data_ref};
    use super::*;
    use crate::packet::{PacketKind, TrafficClass, MIN_PACKET_BYTES};

    fn queue() -> TrimmingQueue {
        TrimmingQueue::new(8, 1 << 20)
    }

    #[test]
    fn data_queued_until_cap_then_trimmed() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..8 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let r = data_ref(&mut pool, TrafficClass::Unscheduled, 8);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::QueuedTrimmed => {}
            other => panic!("expected trim, got {other:?}"),
        }
        assert_eq!(q.trimmed_count, 1);
        assert_eq!(q.pkts(), 9, "trimmed header stays queued");
    }

    #[test]
    fn trimmed_headers_overtake_data() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..8 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        let r = data_ref(&mut pool, TrafficClass::Unscheduled, 100);
        q.enqueue(r, &mut pool, 0);
        // The trimmed header (seq 100) must come out first.
        match q.poll(&mut pool, 0) {
            Poll::Ready(p) => {
                let p = pool.get(p);
                assert_eq!(p.seq, 100);
                assert!(p.trimmed);
                assert_eq!(p.size, MIN_PACKET_BYTES);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Then the full data packets in order.
        match q.poll(&mut pool, 0) {
            Poll::Ready(p) => {
                let p = pool.get(p);
                assert_eq!(p.seq, 0);
                assert!(!p.trimmed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_packets_ride_priority_queue() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        let d = data_ref(&mut pool, TrafficClass::Scheduled, 0);
        q.enqueue(d, &mut pool, 0);
        let c = ctrl_ref(&mut pool, PacketKind::Pull, 1);
        q.enqueue(c, &mut pool, 0);
        match q.poll(&mut pool, 0) {
            Poll::Ready(p) => assert_eq!(pool.get(p).kind, PacketKind::Pull),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_cap_eventually_drops() {
        let mut pool = PacketPool::new();
        let mut q = TrimmingQueue::new(8, 128);
        let a = ctrl_ref(&mut pool, PacketKind::Pull, 0);
        assert!(matches!(q.enqueue(a, &mut pool, 0), EnqueueOutcome::Queued));
        let b = ctrl_ref(&mut pool, PacketKind::Pull, 1);
        assert!(matches!(q.enqueue(b, &mut pool, 0), EnqueueOutcome::Queued));
        let c = ctrl_ref(&mut pool, PacketKind::Pull, 2);
        assert!(matches!(
            q.enqueue(c, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. }
        ));
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(|| Box::new(TrimmingQueue::new(4, 2_000)), seed, 600);
        }
    }
}
