//! Figure 17 — heavy incast stress: FCT slowdown (average and p99) versus
//! incast fan-in N ∈ {32…256} on the 144-server spine-leaf with 400 G core,
//! for all six schemes. All flows are 64 KB; Homa uses a 40 µs RTO.

use aeolus_sim::units::{ms, us};
use aeolus_stats::{f2, TextTable};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams, TopoSpec};

use crate::report::Report;
use crate::runner::run_flows;
use crate::scale::Scale;
use crate::topos::heavy_spine_leaf;

/// The six schemes of the stress test.
pub fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::Homa { rto: us(40) },
        Scheme::HomaAeolus,
        Scheme::Ndp,
        Scheme::NdpAeolus,
    ]
}

/// Incast fan-ins swept.
pub fn fan_ins(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![8],
        Scale::Quick => vec![32, 64, 128],
        Scale::Full => vec![32, 64, 128, 256],
    }
}

/// (avg slowdown, p99 slowdown) for one (scheme, N).
pub fn incast_slowdown(scheme: Scheme, spec: TopoSpec, n: usize) -> (f64, f64) {
    let mut params = SchemeParams::new(0);
    params.port_buffer = 500_000;
    let mut h = SchemeBuilder::new(scheme).params(params).topology(spec).build();
    let hosts = h.hosts().to_vec();
    // Receiver is host 0; senders chosen round-robin over the others (a
    // host may source several flows when N exceeds the server count).
    let flows: Vec<FlowDesc> = (0..n)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[1 + (i % (hosts.len() - 1))],
            dst: hosts[0],
            size: 64_000,
            start: 0,
        })
        .collect();
    let out = run_flows(&mut h, &flows, ms(2000));
    let mut slow = out.agg.slowdowns();
    (slow.mean(), slow.percentile(99.0))
}

/// Run Figure 17.
pub fn run(scale: Scale) -> Report {
    let ns = fan_ins(scale);
    let mut cells = Vec::new();
    for scheme in schemes() {
        for &n in &ns {
            cells.push((scheme, n));
        }
    }
    let results = crate::runner::parallel_map(&cells, |&(scheme, n)| {
        incast_slowdown(scheme, heavy_spine_leaf(scale), n)
    });
    let mut results = results.iter();
    let mut header = vec!["scheme".to_string()];
    for n in &ns {
        header.push(format!("N={n} avg"));
        header.push(format!("N={n} p99"));
    }
    let mut table = TextTable::new(header);
    for scheme in schemes() {
        let mut row = vec![scheme.label()];
        for _ in &ns {
            let &(avg, p99) = results.next().expect("one result per cell");
            row.push(f2(avg));
            row.push(f2(p99));
        }
        table.row(row);
    }
    let mut r = Report::new();
    r.section("Figure 17: FCT slowdown under N-to-1 incast", table);
    r.note("paper: EP+Aeolus ~ EP (first-RTT bytes negligible); Aeolus rescues Homa; NDP+Aeolus ~ NDP");
    r
}
