//! Report assembly helpers shared by every experiment module.

use aeolus_stats::{f2, f3, FctAggregator, TextTable};

use crate::runner::RunOutput;

/// One experiment's printable output: a list of titled tables.
#[derive(Debug, Default)]
pub struct Report {
    /// (title, table) pairs in presentation order.
    pub sections: Vec<(String, TextTable)>,
    /// Free-form notes printed after the tables (methodology caveats).
    pub notes: Vec<String>,
    /// (title, pre-rendered ASCII chart) pairs, printed after the tables.
    pub charts: Vec<(String, String)>,
    /// Tolerance violations. A non-empty list means the experiment's numbers
    /// are outside their accepted bounds; `repro` exits non-zero.
    pub violations: Vec<String>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Add a titled table.
    pub fn section<S: Into<String>>(&mut self, title: S, table: TextTable) -> &mut Self {
        self.sections.push((title.into(), table));
        self
    }

    /// Add a note.
    pub fn note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Add a pre-rendered ASCII chart.
    pub fn chart<S: Into<String>>(&mut self, title: S, rendered: String) -> &mut Self {
        self.charts.push((title.into(), rendered));
        self
    }

    /// Record a tolerance violation (makes [`Report::passed`] false).
    pub fn violation<S: Into<String>>(&mut self, v: S) -> &mut Self {
        self.violations.push(v.into());
        self
    }

    /// True when every checked quantity stayed inside its tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Write each section as `<dir>/<prefix>_<n>.csv`; returns the paths.
    pub fn write_csv(&self, dir: &std::path::Path, prefix: &str) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut out = Vec::new();
        let slug_of = |title: &str| -> String {
            let slug: String = title
                .chars()
                .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            slug[..slug.len().min(48)].to_string()
        };
        for (i, (title, table)) in self.sections.iter().enumerate() {
            let path = dir.join(format!("{prefix}_{i:02}_{}.csv", slug_of(title)));
            std::fs::write(&path, table.to_csv())?;
            out.push(path);
        }
        // Charts are saved as plain text alongside the CSVs.
        for (i, (title, chart)) in self.charts.iter().enumerate() {
            let path = dir.join(format!("{prefix}_chart_{i:02}_{}.txt", slug_of(title)));
            std::fs::write(&path, chart)?;
            out.push(path);
        }
        Ok(out)
    }

    /// Render the whole report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.sections {
            out.push_str("== ");
            out.push_str(title);
            out.push_str(" ==\n");
            out.push_str(&table.render());
            out.push('\n');
        }
        for (title, chart) in &self.charts {
            out.push_str("-- ");
            out.push_str(title);
            out.push_str(" --\n");
            out.push_str(chart);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        for v in &self.violations {
            out.push_str("VIOLATION: ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

/// Standard header for per-scheme FCT distribution rows.
pub fn fct_header() -> Vec<&'static str> {
    vec!["scheme", "flows", "mean(us)", "p50(us)", "p99(us)", "p99.9(us)", "max(us)"]
}

/// Standard FCT distribution row for one scheme.
pub fn fct_row(name: &str, agg: &FctAggregator) -> Vec<String> {
    let s = agg.summary();
    vec![
        name.to_string(),
        s.count.to_string(),
        f2(s.mean_us),
        f2(s.p50_us),
        f2(s.p99_us),
        f2(s.p999_us),
        f2(s.max_us),
    ]
}

/// Row summarizing a whole run (FCT + efficiency + timeouts + completion).
pub fn run_row(name: &str, out: &RunOutput) -> Vec<String> {
    let s = out.agg.summary();
    vec![
        name.to_string(),
        format!("{}/{}", out.completed, out.scheduled),
        f2(s.mean_us),
        f2(s.p99_us),
        f3(out.efficiency),
        out.flows_with_timeouts.to_string(),
    ]
}

/// Header matching [`run_row`].
pub fn run_header() -> Vec<&'static str> {
    vec!["scheme", "completed", "mean(us)", "p99(us)", "efficiency", "flows w/ timeout"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_stats::FctSample;

    #[test]
    fn report_renders_sections_and_notes() {
        let mut agg = FctAggregator::new();
        agg.push(FctSample { size: 100, fct_ps: 5_000_000, ideal_ps: 1_000_000 });
        let mut t = TextTable::new(fct_header());
        t.row(fct_row("Test", &agg));
        let mut r = Report::new();
        r.section("Figure X", t);
        r.note("methodology note");
        let s = r.render();
        assert!(s.contains("== Figure X =="));
        assert!(s.contains("Test"));
        assert!(s.contains("5.00"));
        assert!(s.contains("note: methodology note"));
    }
}
