//! Property-based tests on the simulator's core data structures.
//!
//! Implemented as seeded-loop fuzzing (many random cases drawn from
//! [`SimRng`]) so the workspace carries no external property-testing
//! dependency: every case is reproducible from the printed case index and
//! the fixed seed.

use aeolus_sim::event::{Event, EventQueue, SchedulerKind};
use aeolus_sim::{
    DropReason, EnqueueOutcome, FlowId, NodeId, Packet, PacketPool, Poll, PriorityBank, QueueDisc,
    RangeSet, RedEcnQueue, SimRng, TrafficClass,
};

/// Random cases per property (each case is a full scenario).
const CASES: usize = 100;

/// The event queue is a stable priority queue: pops come out in
/// non-decreasing time order, FIFO within a timestamp. Checked for both
/// scheduler backends.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::seed_from_u64(0xe7e47);
    for case in 0..CASES {
        let n = 1 + rng.index(199);
        let times: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let mut q = EventQueue::with_scheduler(kind);
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(t, Event::Timer { node: NodeId(0), token: i as u64 });
            }
            let mut popped: Vec<(u64, u64)> = Vec::new();
            while let Some((t, Event::Timer { token, .. })) = q.pop() {
                popped.push((t, token));
            }
            assert_eq!(popped.len(), times.len(), "case {case} ({kind:?})");
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0, "case {case} ({kind:?}): time order violated");
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1, "case {case} ({kind:?}): FIFO tie-break violated");
                }
            }
        }
    }
}

/// RangeSet agrees with a naive boolean-vector model.
#[test]
fn rangeset_matches_naive_model() {
    let mut rng = SimRng::seed_from_u64(0x4a2e5e7);
    for case in 0..CASES {
        let n_ops = 1 + rng.index(59);
        let ops: Vec<(u64, u64)> =
            (0..n_ops).map(|_| (rng.below(500), 1 + rng.below(59))).collect();
        let mut rs = RangeSet::new();
        let mut model = vec![false; 600];
        for &(start, len) in &ops {
            let end = (start + len).min(600);
            let added = rs.insert(start, end);
            let mut model_added = 0;
            for b in model.iter_mut().take(end as usize).skip(start as usize) {
                if !*b {
                    *b = true;
                    model_added += 1;
                }
            }
            assert_eq!(added, model_added as u64, "case {case}");
        }
        let covered = model.iter().filter(|&&b| b).count() as u64;
        assert_eq!(rs.covered(), covered, "case {case}");
        // Gap structure agrees.
        let gaps = rs.gaps(600);
        let mut naive_gaps = Vec::new();
        let mut i = 0usize;
        while i < 600 {
            if !model[i] {
                let s = i;
                while i < 600 && !model[i] {
                    i += 1;
                }
                naive_gaps.push((s as u64, i as u64));
            } else {
                i += 1;
            }
        }
        assert_eq!(gaps, naive_gaps, "case {case}");
        // contiguous_prefix agrees.
        let prefix = model.iter().take_while(|&&b| b).count() as u64;
        assert_eq!(rs.contiguous_prefix(), prefix, "case {case}");
    }
}

/// With only droppable (unscheduled) traffic, a selective-dropping queue
/// never holds more than threshold + one packet.
#[test]
fn selective_queue_bounded_by_threshold() {
    let mut rng = SimRng::seed_from_u64(0x5e1ec7);
    for case in 0..CASES {
        let threshold = rng.range_u64(1_500, 50_000);
        let n = 1 + rng.below(199);
        let mut pool = PacketPool::new();
        let mut q = RedEcnQueue::new(threshold, 1 << 30);
        let mut dropped = 0u64;
        for i in 0..n {
            let r = pool.insert(Packet::data(
                FlowId(1),
                NodeId(0),
                NodeId(1),
                i * 1460,
                1460,
                TrafficClass::Unscheduled,
                1 << 20,
            ));
            if let EnqueueOutcome::Dropped { reason, pkt } = q.enqueue(r, &mut pool, 0) {
                assert_eq!(reason, DropReason::SelectiveDrop, "case {case}");
                pool.free(pkt);
                dropped += 1;
            }
            assert!(
                q.bytes() < threshold + 1500,
                "case {case}: queue {} vs threshold {}",
                q.bytes(),
                threshold
            );
        }
        // Conservation: everything is queued or dropped.
        assert_eq!(q.pkts() as u64 + dropped, n, "case {case}");
    }
}

/// A priority bank drains packets of each priority level in FIFO order
/// and never inverts priorities present simultaneously.
#[test]
fn priority_bank_respects_strict_priority() {
    let mut rng = SimRng::seed_from_u64(0xba4);
    for case in 0..CASES {
        let n = 1 + rng.index(99);
        let prios: Vec<u8> = (0..n).map(|_| rng.below(8) as u8).collect();
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(8, 1 << 30);
        for (i, &p) in prios.iter().enumerate() {
            let mut pkt = Packet::data(
                FlowId(1),
                NodeId(0),
                NodeId(1),
                i as u64,
                1460,
                TrafficClass::Scheduled,
                1 << 20,
            );
            pkt.priority = p;
            let r = pool.insert(pkt);
            let _ = q.enqueue(r, &mut pool, 0);
        }
        // Drain fully: output must be sorted by (priority, arrival order).
        let mut out = Vec::new();
        while let Poll::Ready(r) = q.poll(&mut pool, 0) {
            let pkt = pool.get(r);
            out.push((pkt.priority, pkt.seq));
            pool.free(r);
        }
        assert_eq!(out.len(), prios.len(), "case {case}");
        let mut expected: Vec<(u8, u64)> =
            prios.iter().enumerate().map(|(i, &p)| (p, i as u64)).collect();
        expected.sort();
        assert_eq!(out, expected, "case {case}");
    }
}

/// WRED (color-based) and RED/ECN (marking-based) selective dropping make
/// identical drop decisions for any threshold and traffic mix — the §4.1
/// deployment-equivalence claim, fuzzed.
#[test]
fn wred_equals_red_ecn_for_any_mix() {
    use aeolus_sim::{WredProfile, WredQueue};
    let mut rng = SimRng::seed_from_u64(0x44ed);
    for case in 0..CASES {
        let threshold = rng.range_u64(1_500, 60_000);
        let n_ops = 1 + rng.index(299);
        let ops: Vec<(u8, bool)> =
            (0..n_ops).map(|_| (rng.below(3) as u8, rng.chance(0.5))).collect();
        let cap = 200_000u64;
        let mut pool = PacketPool::new();
        let mut wred = WredQueue::new(WredProfile::aeolus(threshold, cap), cap);
        let mut red = RedEcnQueue::new(threshold, cap);
        for (i, &(kind, dequeue)) in ops.iter().enumerate() {
            if dequeue {
                let a = match wred.poll(&mut pool, 0) {
                    Poll::Ready(r) => {
                        pool.free(r);
                        true
                    }
                    _ => false,
                };
                let b = match red.poll(&mut pool, 0) {
                    Poll::Ready(r) => {
                        pool.free(r);
                        true
                    }
                    _ => false,
                };
                assert_eq!(a, b, "case {case} op {i}");
            } else {
                let class = match kind {
                    0 => TrafficClass::Unscheduled,
                    1 => TrafficClass::Scheduled,
                    _ => TrafficClass::Control,
                };
                let mut pkt =
                    Packet::data(FlowId(1), NodeId(0), NodeId(1), i as u64, 1460, class, 1 << 20);
                if class == TrafficClass::Control {
                    pkt.class = TrafficClass::Control;
                    pkt.ecn = aeolus_sim::Ecn::Ect0;
                }
                let rw = pool.insert(pkt.clone());
                let rr = pool.insert(pkt);
                let a = match wred.enqueue(rw, &mut pool, 0) {
                    EnqueueOutcome::Dropped { pkt, .. } => {
                        pool.free(pkt);
                        true
                    }
                    _ => false,
                };
                let b = match red.enqueue(rr, &mut pool, 0) {
                    EnqueueOutcome::Dropped { pkt, .. } => {
                        pool.free(pkt);
                        true
                    }
                    _ => false,
                };
                assert_eq!(a, b, "case {case}: divergence at op {i}");
            }
            assert_eq!(wred.bytes(), red.bytes(), "case {case} op {i}");
        }
    }
}
