//! Figure 5 — cascading delay: a single flow of unscheduled packets delays
//! scheduled flows at downstream switches in a chain, even where the
//! unscheduled packets are not present.
//!
//! The paper's figure is an illustration; we reproduce it as a measured
//! micro-experiment: on the two-tier tree, a chain of scheduled flows
//! (f1: A→B, f2: B'→C on the next link, f3: C'→D…) runs under a proactive
//! schedule while an unscheduled burst enters f1's first link. We report
//! every chained flow's FCT inflation with Blind-burst Homa (unscheduled
//! prioritized) vs Homa+Aeolus (scheduled-packet-first).

use aeolus_sim::units::{ms, us};
use aeolus_stats::{f2, TextTable};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder};

use crate::report::Report;
use crate::scale::Scale;
use crate::topos::homa_two_tier;

/// Run the cascade micro-experiment.
pub fn run(scale: Scale) -> Report {
    let mut table = TextTable::new(vec![
        "scheme",
        "victim f1 (us)",
        "victim f2 (us)",
        "victim f3 (us)",
        "unloaded (us)",
    ]);
    for scheme in [Scheme::Homa { rto: ms(10) }, Scheme::HomaAeolus] {
        // Unloaded baseline: the chain without the interfering burst.
        let base = cascade(scheme, false, scale);
        let loaded = cascade(scheme, true, scale);
        table.row(vec![
            scheme.label(),
            f2(loaded[0]),
            f2(loaded[1]),
            f2(loaded[2]),
            f2(base[0].max(base[1]).max(base[2])),
        ]);
    }
    let mut r = Report::new();
    r.section("Figure 5: cascading delay of scheduled flows (chained victims)", table);
    r.note("blind bursts delay the whole chain; scheduled-packet-first keeps every victim at its unloaded FCT");
    r
}

/// FCTs (us) of the three chained scheduled flows, with or without the
/// interfering unscheduled burst.
fn cascade(scheme: Scheme, with_burst: bool, scale: Scale) -> [f64; 3] {
    let mut h = SchemeBuilder::new(scheme).topology(homa_two_tier(scale)).build();
    let hosts = h.hosts().to_vec();
    let per_leaf = hosts.len() / 4; // at least 4 leaves in both scales
    let leaf = |l: usize, i: usize| hosts[l * per_leaf + i];
    // Chain: f1 crosses leaf0->leaf1, f2 crosses leaf1->leaf2 (sharing
    // leaf1's downlinks region), f3 crosses leaf2->leaf3.
    let mut flows = vec![
        FlowDesc { id: FlowId(1), src: leaf(0, 0), dst: leaf(1, 0), size: 400_000, start: 0 },
        FlowDesc { id: FlowId(2), src: leaf(1, 0), dst: leaf(2, 0), size: 400_000, start: 0 },
        FlowDesc { id: FlowId(3), src: leaf(2, 0), dst: leaf(3, 0), size: 400_000, start: 0 },
    ];
    if with_burst {
        // Unscheduled bursts from several leaf-0 hosts into f1's receiver.
        for (k, i) in (1..per_leaf.min(4)).enumerate() {
            flows.push(FlowDesc {
                id: FlowId(10 + k as u64),
                src: leaf(0, i),
                dst: leaf(1, 0),
                size: 60_000,
                start: us(5),
            });
        }
    }
    h.schedule(&flows);
    h.run(ms(500));
    let fct = |id: u64| {
        h.metrics()
            .flow(FlowId(id))
            .and_then(|r| r.fct())
            .map(|f| f as f64 / 1e6)
            .unwrap_or(f64::NAN)
    };
    [fct(1), fct(2), fct(3)]
}
