//! Table 2 — flow size distributions of the four production workloads:
//! regenerates the paper's bucket fractions and mean flow sizes from our
//! empirical CDFs (the unit tests in `aeolus-workloads` assert the match;
//! this runner prints the comparison).

use aeolus_stats::TextTable;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::scale::Scale;

/// Paper values: (≤100 KB %, 100 KB–1 MB %, >1 MB %, mean).
fn paper_row(w: Workload) -> (f64, f64, f64, &'static str) {
    match w {
        Workload::WebServer => (81.0, 19.0, 0.0, "64KB"),
        Workload::CacheFollower => (53.0, 18.0, 29.0, "701KB"),
        Workload::WebSearch => (52.0, 18.0, 20.0, "1.6MB"),
        Workload::DataMining => (83.0, 8.0, 9.0, "7.41MB"),
    }
}

/// Run Table 2.
pub fn run(_scale: Scale) -> Report {
    let mut table = TextTable::new(vec![
        "workload",
        "0-100KB % (paper)",
        "100KB-1MB % (paper)",
        ">1MB % (paper)",
        "mean (paper)",
    ]);
    for w in Workload::ALL {
        let d = w.dist();
        let b1 = d.fraction_below(100e3) * 100.0;
        let b2 = (d.fraction_below(1e6) - d.fraction_below(100e3)) * 100.0;
        let b3 = (1.0 - d.fraction_below(1e6)) * 100.0;
        let (p1, p2, p3, pm) = paper_row(w);
        let mean = d.mean();
        let mean_str = if mean >= 1e6 {
            format!("{:.2}MB", mean / 1e6)
        } else {
            format!("{:.0}KB", mean / 1e3)
        };
        table.row(vec![
            w.name().to_string(),
            format!("{b1:.1} ({p1:.0})"),
            format!("{b2:.1} ({p2:.0})"),
            format!("{b3:.1} ({p3:.0})"),
            format!("{mean_str} ({pm})"),
        ]);
    }
    let mut r = Report::new();
    r.section("Table 2: flow size distributions (ours vs paper)", table);
    r.note("Web Search's paper column sums to 90%; we match the published DCTCP curve instead (see aeolus-workloads docs)");
    r
}
