//! Switch-side selective dropping (§3.2 / §4.1).
//!
//! Aeolus implements scheduled-packet-first with *one* FIFO queue per port by
//! re-interpreting the commodity RED/ECN feature: unscheduled packets are
//! marked Non-ECT at the sender (so the switch drops them above the RED
//! threshold) while scheduled packets are ECT (so the switch only marks
//! them, and receivers ignore the marks). This module provides the
//! configured queue and the marking helpers.

use aeolus_sim::{Ecn, Packet, QueueDisc, RedEcnQueue, TrafficClass};

use crate::config::AeolusConfig;

/// Build the Aeolus selective-dropping queue for one switch port.
pub fn selective_drop_queue(cfg: &AeolusConfig) -> Box<dyn QueueDisc> {
    Box::new(RedEcnQueue::new(cfg.drop_threshold, cfg.port_buffer))
}

/// Apply the Aeolus marking rule to an outgoing packet: the ECN field is the
/// deployable encoding of the scheduled/unscheduled distinction.
pub fn mark(pkt: &mut Packet) {
    pkt.ecn = match pkt.class {
        TrafficClass::Unscheduled => Ecn::NotEct,
        TrafficClass::Scheduled | TrafficClass::Control => Ecn::Ect0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::{EnqueueOutcome, FlowId, NodeId, PacketPool, PacketRef, Poll};

    fn data(pool: &mut PacketPool, class: TrafficClass, seq: u64) -> PacketRef {
        let mut p = Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 1460, class, 1 << 20);
        mark(&mut p);
        pool.insert(p)
    }

    #[test]
    fn marking_rule_matches_section_4_1() {
        let mut pool = PacketPool::new();
        let u = data(&mut pool, TrafficClass::Unscheduled, 0);
        assert_eq!(pool.get(u).ecn, Ecn::NotEct);
        let s = data(&mut pool, TrafficClass::Scheduled, 0);
        assert_eq!(pool.get(s).ecn, Ecn::Ect0);
        let c = data(&mut pool, TrafficClass::Control, 0);
        assert_eq!(pool.get(c).ecn, Ecn::Ect0);
    }

    #[test]
    fn queue_drops_only_unscheduled_above_threshold() {
        let cfg = AeolusConfig::default();
        let mut pool = PacketPool::new();
        let mut q = selective_drop_queue(&cfg);
        // Fill to the 6 KB threshold with scheduled packets.
        for i in 0..4 {
            let r = data(&mut pool, TrafficClass::Scheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let u = data(&mut pool, TrafficClass::Unscheduled, 10);
        assert!(matches!(q.enqueue(u, &mut pool, 0), EnqueueOutcome::Dropped { .. }));
        let s = data(&mut pool, TrafficClass::Scheduled, 11);
        assert!(matches!(q.enqueue(s, &mut pool, 0), EnqueueOutcome::QueuedMarked));
        // FIFO order preserved (no ambiguity — the §3.2 argument).
        let mut seqs = Vec::new();
        while let Poll::Ready(p) = q.poll(&mut pool, 0) {
            seqs.push(pool.get(p).seq);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 11]);
    }

    #[test]
    fn unscheduled_fill_spare_capacity_below_threshold() {
        let cfg = AeolusConfig::default();
        let mut pool = PacketPool::new();
        let mut q = selective_drop_queue(&cfg);
        for i in 0..4 {
            let r = data(&mut pool, TrafficClass::Unscheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        assert_eq!(q.bytes(), 6000);
    }
}
