#![warn(missing_docs)]
//! # aeolus-experiments — paper reproduction runners
//!
//! One module per table/figure of the Aeolus paper (see DESIGN.md for the
//! experiment index). Each module's `run(scale)` returns a [`Report`] whose
//! rows mirror what the paper reports; the `repro` binary prints them.
//!
//! Figures 6 and 7 are architecture diagrams with no experiment; Figure 5's
//! illustration is reproduced as a measured cascade micro-experiment.

pub mod ablation;
pub mod cache;
pub mod chaos;
pub mod chaos_nodes;
pub mod compare;
pub mod ext_fastpass;
pub mod ext_phost;
pub mod ext_reactive;
pub mod report;
pub mod runner;
pub mod scale;
pub mod topos;
pub mod trace;
pub mod validation;

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod tab01;
pub mod tab02;
pub mod tab03;
pub mod tab04;
pub mod tab05;

pub use cache::{cache_enabled, cache_stats, set_cache_dir, set_cache_verify, CacheStats};
pub use report::Report;
pub use runner::{
    checked, collect, default_faults, jobs, parallel_map, run_flows, run_many, run_workload,
    set_checked, set_default_faults, set_jobs, take_events_processed, RunConfig, RunOutput,
};
pub use aeolus_transport::corpus::{
    run_campaign, CampaignConfig, CampaignFailure, CampaignOutcome, Corpus, Signature,
};
pub use aeolus_transport::fuzz::{fuzz, shrink, FuzzReport, Scenario};
pub use aeolus_sim::{FaultPlan, SchedulerKind};
pub use scale::Scale;
pub use trace::{run_trace, TraceOutput, TraceSpec};

/// An experiment entry: CLI name plus the function that runs it.
pub type ExperimentEntry = (&'static str, fn(Scale) -> Report);

/// All experiments by CLI name, with the function that runs them.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        ("fig1", fig01::run as fn(Scale) -> Report),
        ("fig2", fig02::run),
        ("fig3", fig03::run),
        ("fig4", fig04::run),
        ("fig5", fig05::run),
        ("fig8", fig08::run),
        ("fig9", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("table1", tab01::run),
        ("table2", tab02::run),
        ("table3", tab03::run),
        ("table4", tab04::run),
        ("table5", tab05::run),
        ("ablation", ablation::run),
        ("chaos", chaos::run),
        ("chaos_nodes", chaos_nodes::run),
        ("phost", ext_phost::run),
        ("fastpass", ext_fastpass::run),
        ("reactive", ext_reactive::run),
        ("validate", validation::run),
    ]
}
