//! Online conformance oracle: a [`Tracer`] that cross-checks every engine
//! event against independent models and panics at the first violation.
//!
//! The scattered end-of-run assertions (`tests/invariants.rs`, transport
//! tests) can only observe a violation after it has laundered itself into
//! final metrics. The [`CheckedTracer`] instead rides the statically
//! dispatched tracer seam — the default [`crate::NullTracer`] build still
//! compiles every hook away — and maintains *online* models:
//!
//! - **Clock monotonicity**: no hook may observe time running backwards.
//! - **Queue occupancy ledgers**: an independent byte/packet ledger per
//!   egress queue, replayed from enqueue/trim/dequeue/drop events and
//!   compared to the occupancy each discipline reports. Catches disciplines
//!   that leak, double-count, or silently discard packets.
//! - **Drop legality** (Aeolus §3.1): selective dropping may only ever
//!   remove *unscheduled* packets — a `SelectiveDrop` of a scheduled or
//!   control packet is the paper's cardinal sin. `CreditOverflow` may only
//!   hit credit packets (ExpressPass §4).
//! - **Transmitter causality**: a port may not start serializing a packet
//!   before the previous one has left at the registered link rate (FIFO
//!   ordering of the wire itself).
//! - **Per-flow byte conservation**: the network may lose payload but never
//!   mint it — delivered bytes can never exceed launched bytes.
//! - **Credit conservation** (ExpressPass): a sender can never have consumed
//!   more credit than receivers issued for the flow.
//! - **One-burst budget** (Aeolus §3.1): at most one pre-credit unscheduled
//!   burst per flow, its sent bytes within the declared budget, and every
//!   first-transmission unscheduled byte accounted against that budget.
//! - **Retransmission pairing** (Aeolus §3.3): a sender retransmits at most
//!   the bytes it has declared lost — a double retransmission trips the
//!   oracle at the second `Retransmit` event.
//!
//! The protocol-level checks are gated by an [`OracleProfile`] because not
//! every scheme emits every event family (e.g. DCTCP issues no credits);
//! the engine-level checks are unconditional.
//!
//! Violations panic with a `conformance violation [check] …` message that
//! carries the event, flow and port context, so a failing run points at the
//! first bad event instead of a corrupted figure three layers later.

use std::collections::BTreeMap;

use crate::metrics::Metrics;
use crate::packet::{FlowId, NodeId, PacketKind, PortId, TrafficClass, MIN_PACKET_BYTES};
use crate::queues::DropReason;
use crate::rangeset::RangeSet;
use crate::telemetry::{
    class_str, kind_str, FaultEvent, HostEvent, QueueEvent, QueueRecord, TraceSink, Tracer,
    TransportEvent,
};
use crate::units::{Rate, Time};

/// Which protocol-level invariant families the oracle enforces.
///
/// Engine-level checks (monotonicity, queue ledgers, drop legality,
/// transmitter causality, byte conservation) are always on; these flags gate
/// the checks that depend on a scheme actually emitting the corresponding
/// [`TransportEvent`] families with the expected discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleProfile {
    /// Credit receipts may never exceed credit issues per flow.
    pub credit_conservation: bool,
    /// At most one unscheduled burst per flow, bounded by its declared
    /// budget (the one-BDP rule).
    pub burst_budget: bool,
    /// Cumulative retransmitted bytes may never exceed cumulative
    /// loss-detected bytes per flow.
    pub retransmit_pairing: bool,
}

impl Default for OracleProfile {
    fn default() -> OracleProfile {
        OracleProfile { credit_conservation: true, burst_budget: true, retransmit_pairing: true }
    }
}

impl OracleProfile {
    /// Only the unconditional engine-level checks; every protocol-level
    /// family off. The safe choice for hand-built endpoints that emit no
    /// transport events.
    pub fn universal() -> OracleProfile {
        OracleProfile { credit_conservation: false, burst_budget: false, retransmit_pairing: false }
    }
}

/// Independent occupancy model of one egress queue.
#[derive(Debug, Default)]
struct PortModel {
    rate_bps: u64,
    rate: Option<Rate>,
    bytes: u64,
    pkts: usize,
    /// High-water marks of the ledger — behavioral signals for the guided
    /// fuzzer's novelty signature (see [`OracleSignals`]).
    max_bytes: u64,
    max_pkts: usize,
    /// Earliest time the next serialization may start (base link rate, so a
    /// lower bound under degraded-link fault windows).
    busy_until: Time,
}

/// Dense index of a [`crate::telemetry::LossCause`] for the signal counters.
#[inline]
const fn cause_idx(c: crate::telemetry::LossCause) -> usize {
    match c {
        crate::telemetry::LossCause::Probe => 0,
        crate::telemetry::LossCause::SackGap => 1,
        crate::telemetry::LossCause::Timeout => 2,
        crate::telemetry::LossCause::Nack => 3,
        crate::telemetry::LossCause::Stall => 4,
        crate::telemetry::LossCause::LastResort => 5,
    }
}

/// Stable labels matching [`cause_idx`] order.
pub const LOSS_CAUSE_LABELS: [&str; 6] =
    ["probe", "sack-gap", "timeout", "nack", "stall", "last-resort"];

/// Behavioral signals the oracle accumulates as a side effect of checking —
/// the raw material for the guided fuzzer's novelty signature. Everything
/// here is a deterministic function of the (deterministic) event stream, so
/// identical runs produce identical signals regardless of worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleSignals {
    /// Events the oracle checked.
    pub events_checked: u64,
    /// Deepest queue-ledger occupancy seen on any port, in bytes.
    pub max_queue_bytes: u64,
    /// Deepest queue-ledger occupancy seen on any port, in packets.
    pub max_queue_pkts: usize,
    /// Retransmit events per [`crate::telemetry::LossCause`]
    /// (order of [`LOSS_CAUSE_LABELS`]).
    pub retransmits_by_cause: [u64; 6],
    /// Check proximity: how close any burst came to its budget, in percent
    /// (100 = a burst exactly filled its declared budget).
    pub burst_fill_pct: u32,
    /// Check proximity: max per-flow credit consumption over issuance, in
    /// percent (100 = every issued credit byte was consumed).
    pub credit_fill_pct: u32,
    /// Check proximity: max per-flow retransmitted-over-detected bytes, in
    /// percent (100 = the retransmit-pairing boundary).
    pub retransmit_fill_pct: u32,
}

/// Per-flow protocol ledgers.
#[derive(Debug, Default)]
struct FlowModel {
    launched: u64,
    delivered_raw: u64,
    delivered: RangeSet,
    issued: u64,
    receipts: u64,
    detected: u64,
    retransmitted: u64,
    bursts: u32,
    burst_open: bool,
    burst_budget: u64,
    burst_total: u64,
    unsched_launched: u64,
    /// Set by `FlowAborted`, cleared by `FlowRestarted`: a flow the oracle
    /// saw aborted may never be marked complete without a restart first.
    aborted: bool,
}

/// The conformance oracle. Install in place of a recording tracer (e.g. via
/// `SchemeBuilder::build_checked` in `aeolus-transport`, or
/// [`crate::Network::with_tracer`] directly); every violating event panics
/// immediately with full context.
#[derive(Debug)]
pub struct CheckedTracer {
    profile: OracleProfile,
    now: Time,
    events: u64,
    ports: BTreeMap<(NodeId, PortId), PortModel>,
    flows: BTreeMap<FlowId, FlowModel>,
    /// Run-wide behavioral signals (port maxima folded in by `signals()`).
    sig: OracleSignals,
}

impl Default for CheckedTracer {
    fn default() -> CheckedTracer {
        CheckedTracer::new()
    }
}

impl CheckedTracer {
    /// An oracle with every check enabled (the default profile).
    pub fn new() -> CheckedTracer {
        CheckedTracer::with_profile(OracleProfile::default())
    }

    /// An oracle with an explicit protocol-check profile.
    pub fn with_profile(profile: OracleProfile) -> CheckedTracer {
        CheckedTracer {
            profile,
            now: 0,
            events: 0,
            ports: BTreeMap::new(),
            flows: BTreeMap::new(),
            sig: OracleSignals::default(),
        }
    }

    /// Replace the protocol-check profile (e.g. after a scheme is chosen).
    pub fn set_profile(&mut self, profile: OracleProfile) {
        self.profile = profile;
    }

    /// The active profile.
    pub fn profile(&self) -> OracleProfile {
        self.profile
    }

    /// Number of events the oracle has checked so far.
    pub fn events_checked(&self) -> u64 {
        self.events
    }

    /// The behavioral signals accumulated while checking: queue-depth
    /// extremes, retransmit-cause mix and how close the run came to each
    /// protocol-check boundary. Deterministic per run; the guided fuzzer
    /// folds these into its novelty signature.
    pub fn signals(&self) -> OracleSignals {
        let mut s = self.sig;
        s.events_checked = self.events;
        for pm in self.ports.values() {
            s.max_queue_bytes = s.max_queue_bytes.max(pm.max_bytes);
            s.max_queue_pkts = s.max_queue_pkts.max(pm.max_pkts);
        }
        s
    }

    /// End-of-run check: every flow the metrics claim complete must have had
    /// its full byte range actually delivered through the network (as seen
    /// by the delivery hook), i.e. app-level completion cannot outrun
    /// wire-level delivery.
    ///
    /// # Panics
    /// Panics with a `conformance violation` message on the first flow whose
    /// delivered coverage falls short of its size.
    pub fn assert_flows_complete(&self, metrics: &Metrics) {
        for r in metrics.flows() {
            if r.completed_at.is_none() {
                continue;
            }
            if r.aborted.is_some() {
                self.fail(
                    "abort-completion",
                    format!(
                        "flow={} carries both a completion time and an abort cause ({:?})",
                        r.desc.id.0, r.aborted
                    ),
                );
            }
            if self.flows.get(&r.desc.id).is_some_and(|f| f.aborted) {
                self.fail(
                    "abort-completion",
                    format!(
                        "flow={} marked complete after the oracle saw it aborted with no restart",
                        r.desc.id.0
                    ),
                );
            }
            let covered = self
                .flows
                .get(&r.desc.id)
                .map(|f| f.delivered.covered_in(0, r.desc.size))
                .unwrap_or(0);
            if covered != r.desc.size {
                self.fail(
                    "delivery-coverage",
                    format!(
                        "flow={} marked complete but the network delivered only {covered} of {} \
                         bytes",
                        r.desc.id.0, r.desc.size
                    ),
                );
            }
        }
    }

    #[cold]
    #[inline(never)]
    fn fail(&self, check: &str, msg: String) -> ! {
        panic!(
            "conformance violation [{check}] at {} ps (event #{}): {msg}",
            self.now, self.events
        );
    }

    /// Advance the oracle clock; time must never run backwards.
    fn see(&mut self, at: Time) {
        self.events += 1;
        if at < self.now {
            let now = self.now;
            self.fail("clock", format!("event at {at} ps after the clock reached {now} ps"));
        }
        self.now = at;
    }

    fn flow_mut(&mut self, flow: FlowId) -> &mut FlowModel {
        self.flows.entry(flow).or_default()
    }
}

impl TraceSink for CheckedTracer {
    fn port_registered(&mut self, node: NodeId, port: PortId, rate: Rate, to: NodeId) {
        let _ = to;
        let pm = self.ports.entry((node, port)).or_default();
        pm.rate_bps = rate.bps();
        pm.rate = Some(rate);
    }

    fn queue_event(&mut self, rec: &QueueRecord) {
        self.see(rec.at);
        // Drop legality first: these depend only on the record itself.
        if let QueueEvent::Drop(reason) = rec.ev {
            match reason {
                DropReason::SelectiveDrop if rec.class != TrafficClass::Unscheduled => {
                    self.fail(
                        "drop-class",
                        format!(
                            "selective drop of protected {} packet flow={} seq={} at node={} \
                             port={}",
                            class_str(rec.class),
                            rec.flow.0,
                            rec.seq,
                            rec.node.0,
                            rec.port.0
                        ),
                    );
                }
                DropReason::CreditOverflow if rec.kind != PacketKind::Credit => {
                    self.fail(
                        "drop-class",
                        format!(
                            "credit-overflow drop of non-credit {} packet flow={} seq={} at \
                             node={} port={}",
                            kind_str(rec.kind),
                            rec.flow.0,
                            rec.seq,
                            rec.node.0,
                            rec.port.0
                        ),
                    );
                }
                _ => {}
            }
        }
        let pm = self.ports.entry((rec.node, rec.port)).or_default();
        match rec.ev {
            QueueEvent::Enqueue | QueueEvent::EnqueueMarked => {
                pm.bytes += rec.size as u64;
                pm.pkts += 1;
                pm.max_bytes = pm.max_bytes.max(pm.bytes);
                pm.max_pkts = pm.max_pkts.max(pm.pkts);
            }
            QueueEvent::EnqueueTrimmed => {
                // `rec.size` is the pre-trim wire size; the queue holds the
                // trimmed header.
                pm.bytes += MIN_PACKET_BYTES as u64;
                pm.pkts += 1;
                pm.max_bytes = pm.max_bytes.max(pm.bytes);
                pm.max_pkts = pm.max_pkts.max(pm.pkts);
            }
            QueueEvent::Dequeue => {
                if pm.pkts == 0 || pm.bytes < rec.size as u64 {
                    let (b, p) = (pm.bytes, pm.pkts);
                    self.fail(
                        "queue-ledger",
                        format!(
                            "dequeue of {} bytes (flow={} seq={}) from node={} port={} which the \
                             ledger holds at {b} bytes / {p} pkts",
                            rec.size, rec.flow.0, rec.seq, rec.node.0, rec.port.0
                        ),
                    );
                }
                pm.bytes -= rec.size as u64;
                pm.pkts -= 1;
            }
            QueueEvent::Drop(_) => {}
        }
        let pm = &self.ports[&(rec.node, rec.port)];
        if pm.bytes != rec.qlen_bytes || pm.pkts != rec.qlen_pkts {
            let (b, p) = (pm.bytes, pm.pkts);
            self.fail(
                "queue-ledger",
                format!(
                    "node={} port={} reports {} bytes / {} pkts after {:?} of flow={} seq={}, \
                     ledger says {b} bytes / {p} pkts",
                    rec.node.0, rec.port.0, rec.qlen_bytes, rec.qlen_pkts, rec.ev, rec.flow.0,
                    rec.seq
                ),
            );
        }
    }

    fn queue_bands(&mut self, at: Time, _node: NodeId, _port: PortId, _bands: &[(&'static str, u64)]) {
        self.see(at);
    }

    fn link_tx(&mut self, at: Time, node: NodeId, port: PortId, wire_bytes: u64) {
        self.see(at);
        let pm = self.ports.entry((node, port)).or_default();
        if let Some(rate) = pm.rate {
            if at < pm.busy_until {
                let busy = pm.busy_until;
                self.fail(
                    "tx-causality",
                    format!(
                        "node={} port={} starts serializing {wire_bytes} bytes at {at} ps while \
                         the previous packet occupies the wire until {busy} ps",
                        node.0, port.0
                    ),
                );
            }
            pm.busy_until = at + rate.serialize(wire_bytes);
        }
    }

    fn packet_launched(&mut self, ev: &HostEvent) {
        self.see(ev.at);
        let burst_check = self.profile.burst_budget;
        let fm = self.flow_mut(ev.flow);
        fm.launched += ev.payload;
        if ev.class == TrafficClass::Unscheduled && !ev.retransmit {
            fm.unsched_launched += ev.payload;
            if burst_check && fm.unsched_launched > fm.burst_total {
                let (sent, budget) = (fm.unsched_launched, fm.burst_total);
                self.fail(
                    "burst-budget",
                    format!(
                        "flow={} launched {sent} unscheduled first-transmission bytes against a \
                         declared burst budget of {budget} (seq={})",
                        ev.flow.0, ev.seq
                    ),
                );
            }
        }
    }

    fn packet_delivered(&mut self, ev: &HostEvent) {
        self.see(ev.at);
        let fm = self.flow_mut(ev.flow);
        fm.delivered_raw += ev.payload;
        fm.delivered.insert(ev.seq, ev.seq + ev.payload);
        if fm.delivered_raw > fm.launched {
            let (d, l) = (fm.delivered_raw, fm.launched);
            self.fail(
                "byte-conservation",
                format!(
                    "flow={} delivered {d} payload bytes but only {l} were launched (seq={}): the \
                     network cannot create payload",
                    ev.flow.0, ev.seq
                ),
            );
        }
    }

    fn transport_event(&mut self, at: Time, host: NodeId, ev: &TransportEvent) {
        self.see(at);
        let profile = self.profile;
        match *ev {
            TransportEvent::CreditIssue { flow, bytes } => {
                self.flow_mut(flow).issued += bytes;
            }
            TransportEvent::CreditReceipt { flow, bytes } => {
                let fm = self.flow_mut(flow);
                fm.receipts += bytes;
                let (r, i) = (fm.receipts, fm.issued);
                if i > 0 {
                    let fill = (r.saturating_mul(100) / i).min(400) as u32;
                    self.sig.credit_fill_pct = self.sig.credit_fill_pct.max(fill);
                }
                if profile.credit_conservation && r > i {
                    self.fail(
                        "credit-conservation",
                        format!(
                            "flow={} consumed {r} credit bytes at host={} but only {i} were \
                             issued",
                            flow.0, host.0
                        ),
                    );
                }
            }
            TransportEvent::BurstStart { flow, bytes } => {
                let fm = self.flow_mut(flow);
                fm.bursts += 1;
                let bursts = fm.bursts;
                if profile.burst_budget && (fm.burst_open || bursts > 1) {
                    self.fail(
                        "burst-budget",
                        format!(
                            "flow={} opened unscheduled burst #{bursts} at host={}: at most one \
                             pre-credit burst is allowed",
                            flow.0, host.0
                        ),
                    );
                }
                let fm = self.flow_mut(flow);
                fm.burst_open = true;
                fm.burst_budget = bytes;
                fm.burst_total += bytes;
            }
            TransportEvent::BurstStop { flow, sent } => {
                let budget = self.flow_mut(flow).burst_budget;
                if budget > 0 {
                    let fill = (sent.saturating_mul(100) / budget).min(400) as u32;
                    self.sig.burst_fill_pct = self.sig.burst_fill_pct.max(fill);
                }
                let fm = self.flow_mut(flow);
                if profile.burst_budget {
                    if !fm.burst_open {
                        self.fail(
                            "burst-budget",
                            format!("flow={} stopped a burst that never started (host={})", flow.0, host.0),
                        );
                    }
                    let budget = fm.burst_budget;
                    if sent > budget {
                        self.fail(
                            "burst-budget",
                            format!(
                                "flow={} burst sent {sent} bytes over its {budget}-byte budget \
                                 (host={})",
                                flow.0, host.0
                            ),
                        );
                    }
                }
                self.flow_mut(flow).burst_open = false;
            }
            TransportEvent::LossDetected { flow, bytes, .. } => {
                self.flow_mut(flow).detected += bytes;
            }
            TransportEvent::Retransmit { flow, bytes, cause } => {
                self.sig.retransmits_by_cause[cause_idx(cause)] += 1;
                // Last-resort retransmission (Aeolus §3.3) is definitionally
                // speculative: it resends unACKed first-RTT bytes with no
                // preceding detection event, so it stays off this ledger.
                if cause == crate::telemetry::LossCause::LastResort {
                    return;
                }
                let fm = self.flow_mut(flow);
                fm.retransmitted += bytes;
                let (r, d) = (fm.retransmitted, fm.detected);
                if d > 0 {
                    let fill = (r.saturating_mul(100) / d).min(400) as u32;
                    self.sig.retransmit_fill_pct = self.sig.retransmit_fill_pct.max(fill);
                }
                if profile.retransmit_pairing && r > d {
                    self.fail(
                        "retransmit-pairing",
                        format!(
                            "flow={} retransmitted {r} bytes ({cause:?}) at host={} but only {d} \
                             were declared lost",
                            flow.0, host.0
                        ),
                    );
                }
            }
        }
    }

    fn fault_event(&mut self, at: Time, ev: &FaultEvent) {
        // Wire kills happen post-dequeue (and crash purges emit their own
        // dequeue records), so the queue ledgers are already balanced; the
        // clock always advances, and flow lifecycle events drive the
        // recovery invariants.
        self.see(at);
        match *ev {
            FaultEvent::FlowAborted { flow, .. } => {
                self.flow_mut(flow).aborted = true;
            }
            FaultEvent::FlowRestarted { flow } => {
                let fm = self.flow_mut(flow);
                fm.aborted = false;
                // The restarted incarnation must re-deliver its full byte
                // range (exactly-once after restart) and gets a fresh
                // one-burst allowance. Launch, credit and retransmission
                // ledgers stay cumulative across incarnations — a restart
                // still cannot mint payload or credit.
                fm.delivered = RangeSet::default();
                fm.bursts = 0;
                fm.burst_open = false;
                fm.burst_budget = 0;
                fm.burst_total = 0;
                fm.unsched_launched = 0;
            }
            _ => {}
        }
    }
}

impl Tracer for CheckedTracer {
    const ENABLED: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Ctx, Endpoint};
    use crate::network::Network;
    use crate::packet::{FlowDesc, Packet, PacketKind};
    use crate::pool::{PacketPool, PacketRef};
    use crate::queues::{DropTailQueue, EnqueueOutcome, Poll, QueueDisc};
    use crate::routing::RoutePolicy;
    use crate::telemetry::LossCause;
    use crate::units::us;

    fn rec(ev: QueueEvent, size: u32, qlen_bytes: u64, qlen_pkts: usize) -> QueueRecord {
        QueueRecord {
            at: 100,
            node: NodeId(0),
            port: PortId(0),
            ev,
            flow: FlowId(1),
            seq: 0,
            kind: PacketKind::Data,
            class: TrafficClass::Unscheduled,
            size,
            payload: size - 40,
            qlen_bytes,
            qlen_pkts,
        }
    }

    #[test]
    fn clean_queue_sequence_passes() {
        let mut t = CheckedTracer::new();
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 1500, 1));
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 3000, 2));
        t.queue_event(&rec(QueueEvent::Dequeue, 1500, 1500, 1));
        t.queue_event(&rec(QueueEvent::Drop(DropReason::BufferFull), 1500, 1500, 1));
        t.queue_event(&rec(QueueEvent::Dequeue, 1500, 0, 0));
        assert_eq!(t.events_checked(), 5);
    }

    #[test]
    #[should_panic(expected = "conformance violation [queue-ledger]")]
    fn occupancy_mismatch_is_caught() {
        let mut t = CheckedTracer::new();
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 1500, 1));
        // The queue claims 1500 bytes after a second enqueue: it lost one.
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 1500, 1));
    }

    #[test]
    #[should_panic(expected = "conformance violation [queue-ledger]")]
    fn phantom_dequeue_is_caught() {
        let mut t = CheckedTracer::new();
        t.queue_event(&rec(QueueEvent::Dequeue, 1500, 0, 0));
    }

    #[test]
    fn trimmed_enqueue_adds_header_bytes_only() {
        let mut t = CheckedTracer::new();
        t.queue_event(&rec(QueueEvent::EnqueueTrimmed, 1500, MIN_PACKET_BYTES as u64, 1));
        t.queue_event(&rec(QueueEvent::Dequeue, MIN_PACKET_BYTES, 0, 0));
    }

    #[test]
    #[should_panic(expected = "conformance violation [drop-class]")]
    fn selective_drop_of_scheduled_is_caught() {
        let mut t = CheckedTracer::new();
        let mut r = rec(QueueEvent::Drop(DropReason::SelectiveDrop), 1500, 0, 0);
        r.class = TrafficClass::Scheduled;
        t.queue_event(&r);
    }

    #[test]
    #[should_panic(expected = "conformance violation [drop-class]")]
    fn credit_overflow_of_data_is_caught() {
        let mut t = CheckedTracer::new();
        let r = rec(QueueEvent::Drop(DropReason::CreditOverflow), 1500, 0, 0);
        t.queue_event(&r);
    }

    #[test]
    fn selective_drop_of_unscheduled_is_legal() {
        let mut t = CheckedTracer::new();
        t.queue_event(&rec(QueueEvent::Drop(DropReason::SelectiveDrop), 1500, 0, 0));
    }

    #[test]
    #[should_panic(expected = "conformance violation [clock]")]
    fn backwards_clock_is_caught() {
        let mut t = CheckedTracer::new();
        t.link_tx(100, NodeId(0), PortId(0), 1500);
        t.link_tx(99, NodeId(0), PortId(0), 1500);
    }

    #[test]
    #[should_panic(expected = "conformance violation [tx-causality]")]
    fn overlapping_serializations_are_caught() {
        let mut t = CheckedTracer::new();
        t.port_registered(NodeId(0), PortId(0), Rate::gbps(10), NodeId(1));
        t.link_tx(0, NodeId(0), PortId(0), 1500);
        // 1500 B at 10 Gbps occupies 1200 ns; a transmit at 100 ns overlaps.
        t.link_tx(100_000, NodeId(0), PortId(0), 1500);
    }

    fn host_ev(at: Time, class: TrafficClass, seq: u64, payload: u64, retx: bool) -> HostEvent {
        HostEvent { at, flow: FlowId(1), seq, class, payload, retransmit: retx }
    }

    #[test]
    #[should_panic(expected = "conformance violation [byte-conservation]")]
    fn delivery_exceeding_launches_is_caught() {
        let mut t = CheckedTracer::new();
        t.packet_launched(&host_ev(0, TrafficClass::Scheduled, 0, 1460, false));
        t.packet_delivered(&host_ev(1, TrafficClass::Scheduled, 0, 1460, false));
        t.packet_delivered(&host_ev(2, TrafficClass::Scheduled, 0, 1460, false));
    }

    #[test]
    #[should_panic(expected = "conformance violation [credit-conservation]")]
    fn credit_over_consumption_is_caught() {
        let mut t = CheckedTracer::new();
        let f = FlowId(3);
        t.transport_event(0, NodeId(1), &TransportEvent::CreditIssue { flow: f, bytes: 1460 });
        t.transport_event(1, NodeId(0), &TransportEvent::CreditReceipt { flow: f, bytes: 1460 });
        t.transport_event(2, NodeId(0), &TransportEvent::CreditReceipt { flow: f, bytes: 1460 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [retransmit-pairing]")]
    fn double_retransmission_is_caught() {
        let mut t = CheckedTracer::new();
        let f = FlowId(2);
        let cause = LossCause::Timeout;
        t.transport_event(0, NodeId(0), &TransportEvent::LossDetected { flow: f, bytes: 1460, cause });
        t.transport_event(1, NodeId(0), &TransportEvent::Retransmit { flow: f, bytes: 1460, cause });
        // The loss was already repaired: retransmitting it again violates
        // the exactly-once recovery rule.
        t.transport_event(2, NodeId(0), &TransportEvent::Retransmit { flow: f, bytes: 1460, cause });
    }

    #[test]
    #[should_panic(expected = "conformance violation [burst-budget]")]
    fn burst_overshoot_is_caught() {
        let mut t = CheckedTracer::new();
        let f = FlowId(1);
        t.transport_event(0, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
        t.transport_event(1, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 15_001 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [burst-budget]")]
    fn second_burst_is_caught() {
        let mut t = CheckedTracer::new();
        let f = FlowId(1);
        t.transport_event(0, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
        t.transport_event(1, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 15_000 });
        t.transport_event(2, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [burst-budget]")]
    fn unscheduled_launch_without_budget_is_caught() {
        let mut t = CheckedTracer::new();
        t.packet_launched(&host_ev(0, TrafficClass::Unscheduled, 0, 1460, false));
    }

    #[test]
    fn profile_gating_disables_protocol_checks() {
        let mut t = CheckedTracer::with_profile(OracleProfile::universal());
        // All three protocol families violated; none enforced.
        t.packet_launched(&host_ev(0, TrafficClass::Unscheduled, 0, 1460, false));
        let f = FlowId(1);
        let cause = LossCause::Timeout;
        t.transport_event(1, NodeId(0), &TransportEvent::CreditReceipt { flow: f, bytes: 99 });
        t.transport_event(2, NodeId(0), &TransportEvent::Retransmit { flow: f, bytes: 99, cause });
        t.transport_event(3, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 99 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [delivery-coverage]")]
    fn completion_without_delivery_is_caught() {
        let t = CheckedTracer::new();
        let mut m = Metrics::new();
        let desc =
            FlowDesc { id: FlowId(1), src: NodeId(0), dst: NodeId(1), size: 1000, start: 0 };
        m.flow_scheduled(desc);
        // The metrics claim completion, but the oracle saw no delivery.
        m.deliver(FlowId(1), 1000, 50);
        t.assert_flows_complete(&m);
    }

    #[test]
    fn restart_resets_burst_and_coverage_ledgers() {
        use crate::metrics::AbortCause;
        let mut t = CheckedTracer::new();
        let f = FlowId(1);
        t.transport_event(0, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
        t.packet_launched(&host_ev(1, TrafficClass::Unscheduled, 0, 1460, false));
        t.transport_event(2, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 1460 });
        t.fault_event(3, &FaultEvent::FlowAborted { flow: f, cause: AbortCause::NodeCrash });
        t.fault_event(4, &FaultEvent::FlowRestarted { flow: f });
        // The relaunched incarnation opens its own pre-credit burst and
        // re-sends its unscheduled bytes — both would trip the budget
        // checks if the restart did not reset the per-incarnation ledgers.
        t.transport_event(5, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
        t.packet_launched(&host_ev(6, TrafficClass::Unscheduled, 0, 1460, false));
        t.transport_event(7, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 1460 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [burst-budget]")]
    fn abort_without_restart_keeps_burst_budget_armed() {
        use crate::metrics::AbortCause;
        let mut t = CheckedTracer::new();
        let f = FlowId(1);
        t.transport_event(0, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
        t.transport_event(1, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 1460 });
        t.fault_event(2, &FaultEvent::FlowAborted { flow: f, cause: AbortCause::PeerSilent });
        // No restart: a second burst is still the cardinal sin.
        t.transport_event(3, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 15_000 });
    }

    #[test]
    #[should_panic(expected = "conformance violation [abort-completion]")]
    fn completion_of_aborted_flow_is_caught() {
        use crate::metrics::AbortCause;
        let mut t = CheckedTracer::new();
        let mut m = Metrics::new();
        let desc =
            FlowDesc { id: FlowId(1), src: NodeId(0), dst: NodeId(1), size: 1000, start: 0 };
        m.flow_scheduled(desc);
        t.packet_launched(&host_ev(0, TrafficClass::Scheduled, 0, 1000, false));
        t.packet_delivered(&host_ev(1, TrafficClass::Scheduled, 0, 1000, false));
        m.deliver(FlowId(1), 1000, 50);
        // The oracle saw the flow abort after the metrics completed it and
        // no restart followed: completion and abort cannot coexist.
        t.fault_event(60, &FaultEvent::FlowAborted { flow: FlowId(1), cause: AbortCause::NodeCrash });
        t.assert_flows_complete(&m);
    }

    #[test]
    fn restart_requires_fresh_full_coverage() {
        use crate::metrics::AbortCause;
        let t_covered = {
            let mut t = CheckedTracer::new();
            t.packet_launched(&host_ev(0, TrafficClass::Scheduled, 0, 1000, false));
            t.packet_delivered(&host_ev(1, TrafficClass::Scheduled, 0, 1000, false));
            t.fault_event(2, &FaultEvent::FlowAborted { flow: FlowId(1), cause: AbortCause::NodeCrash });
            t.fault_event(3, &FaultEvent::FlowRestarted { flow: FlowId(1) });
            // Pre-abort coverage was wiped: only fresh delivery counts.
            t.packet_launched(&host_ev(4, TrafficClass::Scheduled, 0, 1000, false));
            t.packet_delivered(&host_ev(5, TrafficClass::Scheduled, 0, 1000, false));
            t
        };
        let mut m = Metrics::new();
        let desc =
            FlowDesc { id: FlowId(1), src: NodeId(0), dst: NodeId(1), size: 1000, start: 0 };
        m.flow_scheduled(desc);
        m.deliver(FlowId(1), 1000, 50);
        t_covered.assert_flows_complete(&m);
    }

    /// A selective-dropping queue with the planted Aeolus bug: the SPF
    /// threshold is applied to *every* packet, scheduled ones included.
    struct BuggySpfQueue {
        inner: DropTailQueue,
        threshold: u64,
    }

    impl QueueDisc for BuggySpfQueue {
        fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, now: Time) -> EnqueueOutcome {
            if self.inner.bytes() >= self.threshold {
                // BUG: no `droppable()` check before the selective drop.
                return EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, pkt };
            }
            self.inner.enqueue(pkt, pool, now)
        }
        fn poll(&mut self, pool: &mut PacketPool, now: Time) -> Poll {
            self.inner.poll(pool, now)
        }
        fn bytes(&self) -> u64 {
            self.inner.bytes()
        }
        fn pkts(&self) -> usize {
            self.inner.pkts()
        }
    }

    /// Sends the whole flow as scheduled data at line rate.
    struct Blaster;

    impl Endpoint for Blaster {
        fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
            let mut off = 0u64;
            while off < flow.size {
                let chunk = 1460.min(flow.size - off) as u32;
                ctx.send(Packet::data(
                    flow.id,
                    flow.src,
                    flow.dst,
                    off,
                    chunk,
                    TrafficClass::Scheduled,
                    flow.size,
                ));
                off += chunk as u64;
            }
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                ctx.metrics.deliver(pkt.flow, pkt.payload as u64, ctx.now);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    /// The planted-bug mutation check from the issue: a switch applying the
    /// SPF threshold to scheduled packets runs silently under plain metrics,
    /// but the oracle panics at the first violating drop with flow and port
    /// context.
    #[test]
    #[should_panic(expected = "conformance violation [drop-class]")]
    fn planted_spf_bug_trips_the_oracle_in_a_full_run() {
        let mut net = Network::with_tracer(CheckedTracer::with_profile(OracleProfile::universal()));
        let sw = net.add_switch(RoutePolicy::EcmpHash, 1, 0);
        let h0 = net.add_host(0);
        let h1 = net.add_host(0);
        let rate = Rate::gbps(10);
        let good = || Box::new(DropTailQueue::new(1 << 30)) as Box<dyn QueueDisc>;
        let buggy = Box::new(BuggySpfQueue { inner: DropTailQueue::new(1 << 30), threshold: 3000 });
        // 4:1 oversubscription into the buggy egress so its queue builds
        // past the SPF threshold.
        net.connect(h0, sw, Rate::gbps(40), us(1), good());
        net.connect(h1, sw, rate, us(1), good());
        let p0 = net.connect(sw, h0, rate, us(1), good());
        let p1 = net.connect(sw, h1, rate, us(1), buggy);
        net.add_route(sw, h0, p0);
        net.add_route(sw, h1, p1);
        net.set_endpoint(h0, Box::new(Blaster));
        net.set_endpoint(h1, Box::new(Blaster));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 50_000, start: 0 });
        net.run_to_completion(us(10_000));
    }

    /// Sanity: the same topology without the planted bug runs clean under
    /// the full oracle and the end-of-run coverage check passes.
    #[test]
    fn clean_run_passes_the_full_oracle() {
        let mut net = Network::with_tracer(CheckedTracer::with_profile(OracleProfile::universal()));
        let sw = net.add_switch(RoutePolicy::EcmpHash, 1, 0);
        let h0 = net.add_host(0);
        let h1 = net.add_host(0);
        let rate = Rate::gbps(10);
        let q = || Box::new(DropTailQueue::new(1 << 30)) as Box<dyn QueueDisc>;
        net.connect(h0, sw, rate, us(1), q());
        net.connect(h1, sw, rate, us(1), q());
        let p0 = net.connect(sw, h0, rate, us(1), q());
        let p1 = net.connect(sw, h1, rate, us(1), q());
        net.add_route(sw, h0, p0);
        net.add_route(sw, h1, p1);
        net.set_endpoint(h0, Box::new(Blaster));
        net.set_endpoint(h1, Box::new(Blaster));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 50_000, start: 0 });
        assert!(net.run_to_completion(us(10_000)));
        assert!(net.tracer().events_checked() > 100);
        let (tracer, metrics) = (net.tracer(), &net.metrics);
        tracer.assert_flows_complete(metrics);
        // Checking leaves behavioral signals behind: the queue maxima track
        // the ledger and events_checked matches the counter.
        let sig = net.tracer().signals();
        assert_eq!(sig.events_checked, net.tracer().events_checked());
        assert!(sig.max_queue_bytes > 0 && sig.max_queue_pkts > 0);
    }

    #[test]
    fn signals_track_extremes_causes_and_proximity() {
        let mut t = CheckedTracer::new();
        // Queue-depth extremes come from the per-port ledger high-water mark.
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 1500, 1));
        t.queue_event(&rec(QueueEvent::Enqueue, 1500, 3000, 2));
        t.queue_event(&rec(QueueEvent::Dequeue, 1500, 1500, 1));
        let f = FlowId(9);
        // Credit proximity: consume half of what was issued → 50%.
        t.transport_event(100, NodeId(1), &TransportEvent::CreditIssue { flow: f, bytes: 2000 });
        t.transport_event(101, NodeId(0), &TransportEvent::CreditReceipt { flow: f, bytes: 1000 });
        // Burst proximity: send 90% of the declared budget.
        t.transport_event(102, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 10_000 });
        t.transport_event(103, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 9_000 });
        // Retransmit mix: one timeout repair (half the detected bytes) and
        // one last-resort resend (counted by cause, exempt from the ledger).
        let cause = LossCause::Timeout;
        t.transport_event(104, NodeId(0), &TransportEvent::LossDetected { flow: f, bytes: 2000, cause });
        t.transport_event(105, NodeId(0), &TransportEvent::Retransmit { flow: f, bytes: 1000, cause });
        t.transport_event(
            106,
            NodeId(0),
            &TransportEvent::Retransmit { flow: f, bytes: 500, cause: LossCause::LastResort },
        );
        let sig = t.signals();
        assert_eq!(sig.events_checked, t.events_checked());
        assert_eq!(sig.max_queue_bytes, 3000);
        assert_eq!(sig.max_queue_pkts, 2);
        assert_eq!(sig.credit_fill_pct, 50);
        assert_eq!(sig.burst_fill_pct, 90);
        assert_eq!(sig.retransmit_fill_pct, 50);
        assert_eq!(sig.retransmits_by_cause[cause_idx(LossCause::Timeout)], 1);
        assert_eq!(sig.retransmits_by_cause[cause_idx(LossCause::LastResort)], 1);
        assert_eq!(sig.retransmits_by_cause[cause_idx(LossCause::Probe)], 0);
        // A second identical tracer reproduces the signals bit-for-bit.
        let mut u = CheckedTracer::new();
        u.queue_event(&rec(QueueEvent::Enqueue, 1500, 1500, 1));
        u.queue_event(&rec(QueueEvent::Enqueue, 1500, 3000, 2));
        u.queue_event(&rec(QueueEvent::Dequeue, 1500, 1500, 1));
        u.transport_event(100, NodeId(1), &TransportEvent::CreditIssue { flow: f, bytes: 2000 });
        u.transport_event(101, NodeId(0), &TransportEvent::CreditReceipt { flow: f, bytes: 1000 });
        u.transport_event(102, NodeId(0), &TransportEvent::BurstStart { flow: f, bytes: 10_000 });
        u.transport_event(103, NodeId(0), &TransportEvent::BurstStop { flow: f, sent: 9_000 });
        u.transport_event(104, NodeId(0), &TransportEvent::LossDetected { flow: f, bytes: 2000, cause });
        u.transport_event(105, NodeId(0), &TransportEvent::Retransmit { flow: f, bytes: 1000, cause });
        u.transport_event(
            106,
            NodeId(0),
            &TransportEvent::Retransmit { flow: f, bytes: 500, cause: LossCause::LastResort },
        );
        assert_eq!(u.signals(), sig);
    }
}
