//! Single-threshold RED/ECN queue — the commodity-switch feature Aeolus
//! re-interprets to build selective dropping (§4.1 of the paper).
//!
//! The switch is configured with both the low and high RED thresholds set to
//! the selective-dropping threshold `K`. An arriving packet when the queue
//! holds ≥ `K` bytes is:
//!
//! * **dropped** if it is Non-ECT — which, under Aeolus marking, is exactly
//!   the unscheduled (pre-credit) packets;
//! * **CE-marked and queued** if it is ECT — the scheduled packets (whose
//!   marks Aeolus receivers simply ignore).
//!
//! Scheduled packets are still subject to the physical buffer cap, but in a
//! functioning proactive transport that cap is never approached.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::packet::Packet;
use crate::units::Time;

/// RED/ECN FIFO with equal low/high thresholds (deterministic marking), the
/// configuration the paper uses to realize selective dropping.
pub struct RedEcnQueue {
    fifo: ByteFifo,
    /// Selective-dropping / marking threshold in bytes (paper default 6 KB).
    threshold: u64,
    /// Physical per-port buffer in bytes (paper default 200 KB).
    cap_bytes: u64,
}

impl RedEcnQueue {
    /// Queue with marking/dropping `threshold` and physical cap `cap_bytes`.
    pub fn new(threshold: u64, cap_bytes: u64) -> RedEcnQueue {
        assert!(threshold <= cap_bytes, "threshold must not exceed the buffer");
        RedEcnQueue { fifo: ByteFifo::new(), threshold, cap_bytes }
    }

    /// The configured selective-dropping threshold in bytes.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl QueueDisc for RedEcnQueue {
    fn enqueue(&mut self, mut pkt: Packet, _now: Time) -> EnqueueOutcome {
        let sz = pkt.size as u64;
        if self.fifo.bytes() + sz > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt: Box::new(pkt) };
        }
        if self.fifo.bytes() >= self.threshold {
            if pkt.droppable() {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::SelectiveDrop,
                    pkt: Box::new(pkt),
                };
            }
            pkt.mark_ce();
            self.fifo.push(pkt);
            return EnqueueOutcome::QueuedMarked;
        }
        self.fifo.push(pkt);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _now: Time) -> Poll {
        match self.fifo.pop() {
            Some(pkt) => Poll::Ready(pkt),
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn pkts(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{ctrl_pkt, data_pkt};
    use super::*;
    use crate::packet::{Ecn, PacketKind, TrafficClass};

    /// 6 KB threshold = 4 MTU packets, the paper default.
    fn queue() -> RedEcnQueue {
        RedEcnQueue::new(6_000, 200_000)
    }

    #[test]
    fn below_threshold_everything_is_queued_unmarked() {
        let mut q = queue();
        for i in 0..4 {
            let out = q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0);
            assert!(matches!(out, EnqueueOutcome::Queued), "pkt {i}: {out:?}");
        }
        assert_eq!(q.pkts(), 4);
    }

    #[test]
    fn unscheduled_dropped_above_threshold() {
        let mut q = queue();
        for i in 0..4 {
            q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0);
        }
        // Queue now holds 6000 B >= threshold: next unscheduled must go.
        match q.enqueue(data_pkt(TrafficClass::Unscheduled, 4), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. } => {}
            other => panic!("expected selective drop, got {other:?}"),
        }
        assert_eq!(q.pkts(), 4, "queue never grows with unscheduled packets");
    }

    #[test]
    fn scheduled_marked_not_dropped_above_threshold() {
        let mut q = queue();
        for i in 0..4 {
            q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0);
        }
        match q.enqueue(data_pkt(TrafficClass::Scheduled, 4), 0) {
            EnqueueOutcome::QueuedMarked => {}
            other => panic!("expected marked enqueue, got {other:?}"),
        }
        assert_eq!(q.pkts(), 5);
        // The marked packet comes out with CE set.
        let mut last = None;
        while let Poll::Ready(p) = q.poll(0) {
            last = Some(p);
        }
        assert_eq!(last.unwrap().ecn, Ecn::Ce);
    }

    #[test]
    fn control_packets_survive_congestion() {
        let mut q = queue();
        for i in 0..10 {
            q.enqueue(data_pkt(TrafficClass::Scheduled, i), 0);
        }
        let out = q.enqueue(ctrl_pkt(PacketKind::Probe, 99), 0);
        assert!(matches!(out, EnqueueOutcome::QueuedMarked | EnqueueOutcome::Queued));
    }

    #[test]
    fn physical_cap_still_binds_scheduled() {
        let mut q = RedEcnQueue::new(6_000, 7_500);
        for i in 0..5 {
            q.enqueue(data_pkt(TrafficClass::Scheduled, i), 0);
        }
        match q.enqueue(data_pkt(TrafficClass::Scheduled, 5), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. } => {}
            other => panic!("expected buffer-full drop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "threshold must not exceed")]
    fn threshold_above_cap_is_a_config_bug() {
        RedEcnQueue::new(10_000, 5_000);
    }
}
