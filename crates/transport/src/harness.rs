//! Scenario harness: build a topology wired for a [`Scheme`], install
//! endpoints, schedule flows and run — the shared front door for integration
//! tests, examples and every experiment runner.

use std::fmt;

use aeolus_sim::topology::{
    fat_tree_with, leaf_spine_with, single_switch_with, LinkParams, Topology,
};
use aeolus_sim::units::{fmt_time, Time};
use aeolus_sim::{AbortCause, FlowDesc, FlowId, Metrics, Network, NodeId, NullTracer, Tracer};

use crate::registry::{Scheme, SchemeParams};

/// Which topology to build (the paper's three families).
#[derive(Debug, Clone, Copy)]
pub enum TopoSpec {
    /// `hosts` servers on one switch (testbed / microbenchmarks).
    SingleSwitch {
        /// Number of hosts.
        hosts: usize,
        /// Link parameters.
        link: LinkParams,
    },
    /// Two-tier leaf-spine.
    LeafSpine {
        /// Spine switch count.
        spines: usize,
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Link parameters.
        link: LinkParams,
    },
    /// Three-tier oversubscribed fat-tree (ExpressPass paper shape).
    FatTree {
        /// Spine switch count.
        spines: usize,
        /// Pod count.
        pods: usize,
        /// ToRs per pod.
        tors_per_pod: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// Hosts per ToR.
        hosts_per_tor: usize,
        /// Link parameters.
        link: LinkParams,
    },
}

/// A runnable scenario: topology + scheme + endpoints.
///
/// Generic over the telemetry [`Tracer`]; the default [`NullTracer`]
/// compiles every trace hook away.
pub struct Harness<T: Tracer = NullTracer> {
    /// The built topology (network inside).
    pub topo: Topology<T>,
    /// The scheme under test.
    pub scheme: Scheme,
    /// The resolved parameters (base RTT filled from the topology).
    pub params: SchemeParams,
}

/// One flow the watchdog found incomplete at its horizon, with enough state
/// to tell a hung recovery loop from a merely slow transfer.
#[derive(Debug, Clone)]
pub struct StuckFlow {
    /// The flow's id.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Bytes the flow was supposed to move.
    pub size: u64,
    /// Unique payload bytes actually delivered.
    pub delivered: u64,
    /// Retransmission timeouts the flow suffered.
    pub timeouts: u32,
    /// Payload bytes retransmitted.
    pub retransmitted: u64,
}

/// Diagnostics from [`Harness::run_watchdog`] when not every flow finished:
/// the global watchdog tripped, and these are the per-flow stuck states.
#[derive(Debug, Clone)]
pub struct WatchdogReport {
    /// The horizon the run was given.
    pub horizon: Time,
    /// Every incomplete flow, in flow-id order.
    pub stuck: Vec<StuckFlow>,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog: {} flow(s) still incomplete at horizon {}",
            self.stuck.len(),
            fmt_time(self.horizon)
        )?;
        for s in &self.stuck {
            writeln!(
                f,
                "  flow {} {}->{}: {}/{} B delivered, {} timeouts, {} B retransmitted{}",
                s.id.0,
                s.src.0,
                s.dst.0,
                s.delivered,
                s.size,
                s.timeouts,
                s.retransmitted,
                if s.delivered == 0 { " (never got a byte through)" } else { "" },
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for WatchdogReport {}

/// Terminal state of one flow after a (possibly fault-injected) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Delivered every byte without ever being aborted or restarted.
    Completed,
    /// Delivered every byte, but only after this many crash-triggered
    /// restarts (the FCT spans the outage).
    Restarted(u32),
    /// Terminated without delivering: the engine or transport gave up with
    /// an explicit cause. Graceful — the flow is settled, not stuck.
    Aborted(AbortCause),
    /// Neither completed nor aborted at the horizon: a hung recovery loop.
    /// The one outcome the hardening forbids.
    Hung,
}

impl FlowOutcome {
    /// Whether this outcome is settled (anything but [`FlowOutcome::Hung`]).
    pub fn settled(self) -> bool {
        !matches!(self, FlowOutcome::Hung)
    }
}

/// Per-flow degradation ledger from [`Harness::run_degradation`]: how each
/// flow ended under faults. "Graceful degradation" means every flow is
/// settled — completed (perhaps after restarts) or aborted with a cause —
/// and none are [`FlowOutcome::Hung`].
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// The horizon the run was given.
    pub horizon: Time,
    /// Every flow's outcome, in flow-id order.
    pub flows: Vec<(FlowId, FlowOutcome)>,
    /// Stuck-state diagnostics for each hung flow (empty when graceful).
    pub stuck: Vec<StuckFlow>,
}

impl DegradationReport {
    /// Flows that completed cleanly (no restart).
    pub fn completed(&self) -> usize {
        self.flows.iter().filter(|(_, o)| *o == FlowOutcome::Completed).count()
    }

    /// Flows that completed after one or more restarts.
    pub fn restarted(&self) -> usize {
        self.flows.iter().filter(|(_, o)| matches!(o, FlowOutcome::Restarted(_))).count()
    }

    /// Flows that ended aborted with the given cause.
    pub fn aborted_with(&self, cause: AbortCause) -> usize {
        self.flows.iter().filter(|(_, o)| *o == FlowOutcome::Aborted(cause)).count()
    }

    /// Flows that ended aborted, any cause.
    pub fn aborted(&self) -> usize {
        self.flows.iter().filter(|(_, o)| matches!(o, FlowOutcome::Aborted(_))).count()
    }

    /// Flows that hung: neither completed nor aborted.
    pub fn hung(&self) -> usize {
        self.flows.iter().filter(|(_, o)| *o == FlowOutcome::Hung).count()
    }

    /// The graceful-degradation predicate: every flow settled.
    pub fn is_graceful(&self) -> bool {
        self.hung() == 0
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degradation: {} flows — {} completed, {} restarted-then-completed, {} aborted",
            self.flows.len(),
            self.completed(),
            self.restarted(),
            self.aborted(),
        )?;
        if self.aborted() > 0 {
            let mut first = true;
            for cause in [AbortCause::NodeCrash, AbortCause::ArbiterOutage, AbortCause::PeerSilent] {
                let n = self.aborted_with(cause);
                if n > 0 {
                    write!(f, "{}{} {}", if first { " (" } else { ", " }, n, cause.as_str())?;
                    first = false;
                }
            }
            write!(f, ")")?;
        }
        writeln!(f, ", {} hung", self.hung())?;
        for s in &self.stuck {
            writeln!(
                f,
                "  HUNG flow {} {}->{}: {}/{} B delivered, {} timeouts, {} B retransmitted{}",
                s.id.0,
                s.src.0,
                s.dst.0,
                s.delivered,
                s.size,
                s.timeouts,
                s.retransmitted,
                if s.delivered == 0 { " (never got a byte through)" } else { "" },
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for DegradationReport {}

impl<T: Tracer> Harness<T> {
    /// [`SchemeBuilder::build`]'s engine: build the scheme's topology with
    /// `tracer` installed on the network, wire every port with the scheme's
    /// queue discipline and install one endpoint per host.
    ///
    /// `params.base_rtt` is overwritten with the topology's base RTT unless
    /// it was already set to a non-zero value by the caller.
    pub fn with_tracer(
        scheme: Scheme,
        mut params: SchemeParams,
        spec: TopoSpec,
        tracer: T,
    ) -> Harness<T> {
        // One live shared-buffer pool per harness, handed to every port's
        // queue factory (configs carry only the capacity).
        let pool = params.shared_pool.map(aeolus_sim::SharedPool::new);
        let qf = |rate, role| scheme.make_queue(&params, rate, role, pool.as_ref());
        let mut topo = match spec {
            TopoSpec::SingleSwitch { hosts, mut link } => {
                link.policy = scheme.route_policy();
                single_switch_with(tracer, hosts, link, &qf)
            }
            TopoSpec::LeafSpine { spines, leaves, hosts_per_leaf, mut link } => {
                link.policy = scheme.route_policy();
                leaf_spine_with(tracer, spines, leaves, hosts_per_leaf, link, &qf)
            }
            TopoSpec::FatTree { spines, pods, tors_per_pod, aggs_per_pod, hosts_per_tor, mut link } => {
                link.policy = scheme.route_policy();
                fat_tree_with(tracer, spines, pods, tors_per_pod, aggs_per_pod, hosts_per_tor, link, &qf)
            }
        };
        if params.base_rtt == 0 {
            // Base RTT plus a few serialization times so BDP bursts are not
            // undersized on short-haul topologies.
            let ser_slack = 4 * topo.host_rate.serialize((params.mtu_payload + 40) as u64);
            params.base_rtt = topo.base_rtt + ser_slack;
        }
        if scheme.needs_arbiter() {
            // Reserve the last host as the centralized arbiter; it is
            // removed from `hosts()` so workloads never touch it.
            let arbiter = topo.hosts.pop().expect("topology needs ≥2 hosts for an arbiter");
            params.arbiter = Some(arbiter);
            topo.net.set_endpoint(arbiter, scheme.make_arbiter(&params));
        }
        if !params.faults.is_empty() {
            // Bind symbolic node faults (`crash=i`, `arbiter=`, `partition=`)
            // here, where both the workload host list (arbiter already
            // excluded) and the arbiter's identity are known — the engine's
            // fallback resolution has neither.
            let mut plan = params.faults.clone();
            if !plan.is_resolved() {
                plan.resolve(&topo.hosts, params.arbiter);
            }
            topo.net.set_fault_plan(plan);
        }
        let hosts = topo.hosts.clone();
        for h in hosts {
            topo.net.set_endpoint(h, scheme.make_endpoint(&params));
        }
        Harness { topo, scheme, params }
    }

    /// All host node ids.
    pub fn hosts(&self) -> &[NodeId] {
        &self.topo.hosts
    }

    /// Schedule flows for execution.
    pub fn schedule(&mut self, flows: &[FlowDesc]) {
        for f in flows {
            self.topo.net.schedule_flow(*f);
        }
    }

    /// Run until all flows complete or `horizon`; returns completion status.
    pub fn run(&mut self, horizon: Time) -> bool {
        self.topo.net.run_to_completion(horizon)
    }

    /// Run with a global watchdog: like [`Harness::run`], but an incomplete
    /// run is an *error* carrying per-flow stuck-state diagnostics instead of
    /// a bare `false`. Chaos/fault experiments use this so a hung recovery
    /// loop fails loudly with enough context to debug it.
    pub fn run_watchdog(&mut self, horizon: Time) -> Result<(), WatchdogReport> {
        if self.run(horizon) {
            return Ok(());
        }
        // Aborted-with-cause flows are settled, not stuck: the watchdog is
        // a hang detector, and an explicit abort is graceful degradation.
        let stuck = self
            .metrics()
            .flows()
            .filter(|r| r.completed_at.is_none() && r.aborted.is_none())
            .map(|r| StuckFlow {
                id: r.desc.id,
                src: r.desc.src,
                dst: r.desc.dst,
                size: r.desc.size,
                delivered: r.delivered,
                timeouts: r.timeouts,
                retransmitted: r.retransmitted,
            })
            .collect();
        Err(WatchdogReport { horizon, stuck })
    }

    /// Run to the horizon and classify every flow's terminal state. `Err`
    /// iff any flow is [`FlowOutcome::Hung`] — completed, restarted and
    /// cleanly-aborted flows are all graceful degradation; a hang never is.
    pub fn run_degradation(&mut self, horizon: Time) -> Result<DegradationReport, DegradationReport> {
        self.run(horizon);
        let mut flows = Vec::new();
        let mut stuck = Vec::new();
        for r in self.metrics().flows() {
            let outcome = if r.completed_at.is_some() {
                if r.restarts > 0 { FlowOutcome::Restarted(r.restarts) } else { FlowOutcome::Completed }
            } else if let Some(cause) = r.aborted {
                FlowOutcome::Aborted(cause)
            } else {
                stuck.push(StuckFlow {
                    id: r.desc.id,
                    src: r.desc.src,
                    dst: r.desc.dst,
                    size: r.desc.size,
                    delivered: r.delivered,
                    timeouts: r.timeouts,
                    retransmitted: r.retransmitted,
                });
                FlowOutcome::Hung
            };
            flows.push((r.desc.id, outcome));
        }
        flows.sort_unstable_by_key(|(id, _)| id.0);
        let report = DegradationReport { horizon, flows, stuck };
        if report.is_graceful() { Ok(report) } else { Err(report) }
    }

    /// Run metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.topo.net.metrics
    }

    /// The underlying network (packet-pool stats, trace access).
    pub fn network(&self) -> &Network<T> {
        &self.topo.net
    }

    /// Mutable network access, e.g. to step the simulation in slices with
    /// [`Network::run_until`] instead of running to completion.
    pub fn network_mut(&mut self) -> &mut Network<T> {
        &mut self.topo.net
    }

    /// Ideal (store-and-forward, unloaded) FCT for a flow of `size` bytes
    /// between two hosts of this topology — the slowdown denominator.
    pub fn ideal_fct(&self, size: u64) -> Time {
        let mtu = self.params.mtu_payload as u64;
        let wire = |payload: u64| payload + 40;
        let full = size / mtu;
        let rest = size % mtu;
        let rate = self.topo.host_rate;
        // All packets serialized at the NIC, plus the last packet's
        // serialization at the bottleneck hop, plus the one-way base delay.
        let mut t = 0;
        for _ in 0..full {
            t += rate.serialize(wire(mtu));
        }
        if rest > 0 {
            t += rate.serialize(wire(rest));
        }
        let last = if rest > 0 { rest } else { mtu.min(size) };
        t += rate.serialize(wire(last));
        t + self.topo.base_rtt / 2
    }
}
