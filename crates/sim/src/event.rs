//! Discrete-event scheduler.
//!
//! The default scheduler is a **timing wheel** tuned for DES access
//! patterns: most events land within a few link-serialization times of
//! `now`, so they hit an O(1) bucket insert instead of an O(log n) heap
//! sift, and the hot pop path touches one small per-tick heap instead of a
//! cache-hostile global heap. A binary-heap scheduler is kept behind
//! [`SchedulerKind::BinaryHeap`] as the reference implementation for
//! benchmarks and determinism cross-checks.
//!
//! Both schedulers implement the same deterministic contract: events pop in
//! non-decreasing time order, FIFO within a tick (the order they were
//! scheduled). The engine is strictly single-threaded — per the project
//! guides, a CPU-bound discrete-event simulation gains nothing from an
//! async runtime.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::{FlowDesc, NodeId, PortId};
use crate::pool::PacketRef;
use crate::units::Time;

/// An event to be dispatched by the network.
#[derive(Debug)]
pub enum Event {
    /// The last bit of `pkt` arrived at `node`.
    ///
    /// The packet lives in the network's [`crate::pool::PacketPool`]; the
    /// event carries a 4-byte recycled handle, so moving events through
    /// scheduler internals costs no allocation and no large struct copies.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// Handle of the packet, fully received.
        pkt: PacketRef,
    },
    /// Egress `port` of `node` finished serializing its current packet.
    PortFree {
        /// The transmitting node.
        node: NodeId,
        /// The now-idle port.
        port: PortId,
    },
    /// A paced queue on `port` of `node` may have become ready.
    PortKick {
        /// The paced node.
        node: NodeId,
        /// The paced port.
        port: PortId,
    },
    /// A timer set by the endpoint on `node` fired.
    Timer {
        /// The host whose endpoint armed the timer.
        node: NodeId,
        /// The token returned by `Ctx::set_timer_in`.
        token: u64,
    },
    /// A new application flow arrives at its source host.
    FlowArrival {
        /// The flow description. Boxed: flow arrivals are rare (one per
        /// flow), and an inline `FlowDesc` would inflate every [`Event`] —
        /// and therefore every scheduler copy on the hot path — from 16 to
        /// 40 bytes.
        flow: Box<FlowDesc>,
    },
    /// A fault-plan link window transitions (start or end). The network
    /// re-kicks the affected ports so stalled queues wake up when a link
    /// comes back. Only scheduled when a non-empty fault plan is installed.
    FaultWindow {
        /// Index into the plan's window list.
        window: usize,
        /// True at the window start, false at its end.
        start: bool,
    },
    /// A fault-plan node window transitions (crash or restart). At the
    /// start the network purges the dead node's queues, wipes its endpoint
    /// and aborts its flows; at the end it re-kicks adjacent ports and
    /// relaunches aborted flows. Only scheduled for non-empty plans.
    NodeFault {
        /// Index into the plan's node-window list.
        window: usize,
        /// True at the crash instant, false at the restart.
        start: bool,
    },
}

struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // tick, the first-scheduled) event is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Which scheduler implementation an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Timing wheel with an overflow heap (default, fast path).
    #[default]
    TimingWheel,
    /// Plain binary heap (the original scheduler; reference/baseline).
    BinaryHeap,
}

// ---------------------------------------------------------------------------
// Binary-heap scheduler (reference implementation)
// ---------------------------------------------------------------------------

/// The original binary-heap scheduler, kept as the comparison baseline.
struct HeapScheduler {
    heap: BinaryHeap<Scheduled>,
}

impl HeapScheduler {
    fn new() -> HeapScheduler {
        HeapScheduler { heap: BinaryHeap::new() }
    }

    #[inline]
    fn push(&mut self, s: Scheduled) {
        self.heap.push(s);
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    #[inline]
    fn pop_at_or_before(&mut self, limit: Time) -> Option<Scheduled> {
        if self.heap.peek()?.at > limit {
            return None;
        }
        self.heap.pop()
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Timing-wheel scheduler
// ---------------------------------------------------------------------------

/// log2 of the wheel tick in picoseconds: 2^16 ps ≈ 65.5 ns, about half the
/// serialization time of an MTU frame at 100 Gbps — fine-grained enough that
/// a tick rarely holds more than a handful of events.
const TICK_SHIFT: u32 = 16;
/// log2 of the bucket count: 4096 buckets ≈ 268 µs of horizon, which covers
/// serialization + propagation of every hop in the paper's topologies.
/// Events beyond it (RTOs, drain timers) go to the overflow heap.
const WHEEL_BITS: u32 = 12;
const WHEEL_SIZE: usize = 1 << WHEEL_BITS;
const WHEEL_MASK: u64 = (WHEEL_SIZE as u64) - 1;
/// One summary bit per 64-bucket occupancy word.
const WORDS: usize = WHEEL_SIZE / 64;

/// Slab slot holding one bucketed event plus the intrusive FIFO link to the
/// next event of the same tick ([`NIL`] terminates the list).
struct BucketNode {
    s: Scheduled,
    next: u32,
}

/// Sentinel for "no slot" in the bucket slab's intrusive lists.
const NIL: u32 = u32::MAX;

/// Timing-wheel scheduler: one rotation of `WHEEL_SIZE` buckets of
/// `2^TICK_SHIFT` ps each, a small heap for the tick being drained, and an
/// overflow heap for events beyond the horizon.
///
/// Bucketed events live in one recycling slab (`nodes` + `free`) threaded
/// into per-bucket intrusive FIFO lists. Per-bucket `Vec`s would keep
/// reallocating for the whole run — 4096 independent buffers, each growing
/// the first time *it* sees a deeper tick — whereas the shared slab reaches
/// its high-water mark during warm-up and never touches the allocator
/// again (the steady-state zero-allocation invariant).
///
/// Invariants:
/// * `base_tick == now >> TICK_SHIFT` whenever events are pending — events
///   of the current tick live in `cur`, so wheel buckets only ever hold
///   ticks in `(base_tick, base_tick + WHEEL_SIZE)`;
/// * every overflow event's tick is `>= base_tick + WHEEL_SIZE` (re-checked
///   after every cursor advance), so the earliest pending event is always
///   `cur`'s min, else the first occupied bucket's min, else overflow's min.
struct WheelScheduler {
    base_tick: u64,
    len: usize,
    /// Events of the tick currently being drained, sorted **descending** by
    /// `(at, seq)` so the next event is an O(1) `Vec::pop` off the end. A
    /// tick is ≈65.5 ns, so this rarely holds more than a handful of
    /// events — one `sort_unstable` per drained bucket beats a binary
    /// heap's per-element sift-down.
    cur: Vec<Scheduled>,
    /// Slab backing every bucketed event.
    nodes: Vec<BucketNode>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Per-bucket FIFO list heads/tails into `nodes`.
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Occupancy bitmap over buckets plus a one-word summary, so finding
    /// the next occupied bucket is two `trailing_zeros`, not a scan.
    occupied: [u64; WORDS],
    summary: u64,
    /// Events at `tick >= base_tick + WHEEL_SIZE`.
    overflow: BinaryHeap<Scheduled>,
}

impl WheelScheduler {
    fn new() -> WheelScheduler {
        WheelScheduler {
            base_tick: 0,
            len: 0,
            cur: Vec::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: vec![NIL; WHEEL_SIZE],
            tail: vec![NIL; WHEEL_SIZE],
            occupied: [0; WORDS],
            summary: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Append `s` to bucket `idx`'s FIFO list, reusing a recycled slab slot
    /// when one is available.
    fn bucket_push(&mut self, idx: usize, s: Scheduled) {
        let node = BucketNode { s, next: NIL };
        let slot = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        if self.head[idx] == NIL {
            self.head[idx] = slot;
            self.set_bit(idx);
        } else {
            let t = self.tail[idx];
            self.nodes[t as usize].next = slot;
        }
        self.tail[idx] = slot;
    }

    /// Drain bucket `idx` into the cursor buffer, recycling its slab slots.
    /// Pop order is unaffected by list order: `(at, seq)` is a total order,
    /// so any insertion sequence sorts to the same pop sequence.
    fn bucket_drain_into_cur(&mut self, idx: usize) {
        let mut slot = self.head[idx];
        self.head[idx] = NIL;
        self.tail[idx] = NIL;
        self.clear_bit(idx);
        while slot != NIL {
            let node = &mut self.nodes[slot as usize];
            let next = node.next;
            // Move the event out, leaving an inert placeholder in the slot.
            let s = std::mem::replace(
                &mut node.s,
                Scheduled { at: 0, seq: 0, event: Event::PortFree { node: NodeId(0), port: PortId(0) } },
            );
            self.cur.push(s);
            self.free.push(slot);
            slot = next;
        }
        if self.cur.len() > 1 {
            self.cur.sort_unstable_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
        }
    }

    /// Insert `s` into the (descending-sorted) cursor buffer in order.
    fn cur_insert(&mut self, s: Scheduled) {
        let key = (s.at, s.seq);
        let pos = self.cur.partition_point(|e| (e.at, e.seq) > key);
        self.cur.insert(pos, s);
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
        if self.occupied[idx / 64] == 0 {
            self.summary &= !(1 << (idx / 64));
        }
    }

    /// First occupied bucket index strictly after the cursor, in window
    /// order (i.e. by increasing tick), or None if the wheel is empty.
    fn next_occupied(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let start = ((self.base_tick & WHEEL_MASK) as usize + 1) % WHEEL_SIZE;
        // The window [base_tick, base_tick + WHEEL_SIZE) maps bijectively
        // onto bucket indices; circular order from the cursor is tick order.
        // Scan the first (possibly partial) word, then whole words.
        let first_word = start / 64;
        let bits = self.occupied[first_word] >> (start % 64);
        if bits != 0 {
            return Some(start + bits.trailing_zeros() as usize);
        }
        for step in 1..=WORDS {
            let w = (first_word + step) % WORDS;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        None
    }

    #[inline]
    fn push(&mut self, s: Scheduled) {
        self.len += 1;
        let tick = s.at >> TICK_SHIFT;
        // `<=`: a fused pop that answered "nothing due yet" may have moved
        // the cursor past `now`, and the caller can still legally schedule
        // before the cursor. Such events join `cur`, whose sort keeps them
        // ahead of every bucketed (strictly later-tick) event.
        if tick <= self.base_tick {
            self.cur_insert(s);
        } else if tick < self.base_tick + WHEEL_SIZE as u64 {
            let idx = (tick & WHEEL_MASK) as usize;
            self.bucket_push(idx, s);
        } else {
            self.overflow.push(s);
        }
    }

    /// Pull every overflow event that now falls inside the wheel window.
    fn migrate_overflow(&mut self) {
        let horizon = self.base_tick + WHEEL_SIZE as u64;
        while let Some(s) = self.overflow.peek() {
            let tick = s.at >> TICK_SHIFT;
            if tick >= horizon {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            if tick == self.base_tick {
                self.cur_insert(s);
            } else {
                let idx = (tick & WHEEL_MASK) as usize;
                self.bucket_push(idx, s);
            }
        }
    }

    /// Move the cursor to the tick of the earliest pending event and load
    /// that tick into `cur`. Caller guarantees `cur` is empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty() && self.len > 0);
        if let Some(idx) = self.next_occupied() {
            let cursor = (self.base_tick & WHEEL_MASK) as usize;
            let delta = (idx + WHEEL_SIZE - cursor) % WHEEL_SIZE;
            self.base_tick += delta as u64;
            self.bucket_drain_into_cur(idx % WHEEL_SIZE);
        } else {
            let at = self.overflow.peek().expect("len > 0 with empty wheel").at;
            self.base_tick = at >> TICK_SHIFT;
        }
        self.migrate_overflow();
        debug_assert!(!self.cur.is_empty());
    }

    fn pop(&mut self) -> Option<Scheduled> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        self.len -= 1;
        let s = self.cur.pop().expect("advance loads the cursor tick");
        // max: `cur` may hold pre-cursor events (see `push`); the cursor
        // never moves backwards or bucketed ticks would alias.
        self.base_tick = self.base_tick.max(s.at >> TICK_SHIFT);
        Some(s)
    }

    /// Pop the next event only if it fires at or before `limit`; otherwise
    /// leave it pending. Fused peek + pop: the run loops call this once per
    /// event instead of scanning for the next occupied bucket twice.
    fn pop_at_or_before(&mut self, limit: Time) -> Option<Scheduled> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            self.advance();
        }
        if self.cur.last().expect("advance loads the cursor tick").at > limit {
            return None;
        }
        self.len -= 1;
        let s = self.cur.pop().expect("checked non-empty");
        self.base_tick = self.base_tick.max(s.at >> TICK_SHIFT);
        Some(s)
    }

    fn peek_time(&self) -> Option<Time> {
        if let Some(s) = self.cur.last() {
            return Some(s.at);
        }
        if let Some(idx) = self.next_occupied() {
            let mut slot = self.head[idx % WHEEL_SIZE];
            debug_assert!(slot != NIL, "occupied bucket is non-empty");
            let mut min = (Time::MAX, u64::MAX);
            while slot != NIL {
                let node = &self.nodes[slot as usize];
                min = min.min((node.s.at, node.s.seq));
                slot = node.next;
            }
            return Some(min.0);
        }
        self.overflow.peek().map(|s| s.at)
    }

    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Public facade
// ---------------------------------------------------------------------------

enum Impl {
    Wheel(WheelScheduler),
    Heap(HeapScheduler),
}

/// Event queue with the current simulated time.
pub struct EventQueue {
    now: Time,
    seq: u64,
    imp: Impl,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue at time zero using the default (timing-wheel)
    /// scheduler.
    pub fn new() -> EventQueue {
        EventQueue::with_scheduler(SchedulerKind::TimingWheel)
    }

    /// An empty queue at time zero using the given scheduler.
    pub fn with_scheduler(kind: SchedulerKind) -> EventQueue {
        let imp = match kind {
            SchedulerKind::TimingWheel => Impl::Wheel(WheelScheduler::new()),
            SchedulerKind::BinaryHeap => Impl::Heap(HeapScheduler::new()),
        };
        EventQueue { now: 0, seq: 0, imp }
    }

    /// Which scheduler this queue runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.imp {
            Impl::Wheel(_) => SchedulerKind::TimingWheel,
            Impl::Heap(_) => SchedulerKind::BinaryHeap,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a causality bug in the caller.
    pub fn schedule_at(&mut self, at: Time, event: Event) {
        assert!(at >= self.now, "event scheduled in the past: {} < {}", at, self.now);
        let seq = self.seq;
        self.seq += 1;
        let s = Scheduled { at, seq, event };
        match &mut self.imp {
            Impl::Wheel(w) => w.push(s),
            Impl::Heap(h) => h.push(s),
        }
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let s = match &mut self.imp {
            Impl::Wheel(w) => w.pop()?,
            Impl::Heap(h) => h.pop()?,
        };
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pop the next event only if it fires at or before `limit`, advancing
    /// the clock to its timestamp; returns `None` (and leaves the event
    /// pending) otherwise. The hot-loop form of `peek_time` + `pop`: one
    /// scheduler lookup per event instead of two.
    pub fn pop_at_or_before(&mut self, limit: Time) -> Option<(Time, Event)> {
        let s = match &mut self.imp {
            Impl::Wheel(w) => w.pop_at_or_before(limit)?,
            Impl::Heap(h) => h.pop_at_or_before(limit)?,
        };
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.imp {
            Impl::Wheel(w) => w.peek_time(),
            Impl::Heap(h) => h.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            Impl::Wheel(w) => w.len(),
            Impl::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::rng::SimRng;

    fn timer(token: u64) -> Event {
        Event::Timer { node: NodeId(0), token }
    }

    const BOTH: [SchedulerKind; 2] = [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap];

    #[test]
    fn pops_in_time_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_scheduler(kind);
            q.schedule_at(30, timer(3));
            q.schedule_at(10, timer(1));
            q.schedule_at(20, timer(2));
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![1, 2, 3]);
            assert_eq!(q.now(), 30);
        }
    }

    #[test]
    fn same_tick_fifo_tie_break() {
        for kind in BOTH {
            let mut q = EventQueue::with_scheduler(kind);
            for t in 0..100 {
                q.schedule_at(42, timer(t));
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::Timer { token, .. } => token,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        for kind in BOTH {
            let mut q = EventQueue::with_scheduler(kind);
            q.schedule_at(100, timer(0));
            q.pop();
            q.schedule_in(5, timer(1));
            assert_eq!(q.peek_time(), Some(105));
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, timer(0));
        q.pop();
        q.schedule_at(99, timer(1));
    }

    #[test]
    fn flow_arrival_events_carry_descriptor() {
        let mut q = EventQueue::new();
        let f = FlowDesc { id: FlowId(7), src: NodeId(1), dst: NodeId(2), size: 1000, start: 5 };
        q.schedule_at(5, Event::FlowArrival { flow: Box::new(f) });
        match q.pop() {
            Some((5, Event::FlowArrival { flow })) => assert_eq!(*flow, f),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn event_stays_small() {
        // Every scheduler move copies an `Event`; keep it two words.
        assert!(std::mem::size_of::<Event>() <= 16, "{}", std::mem::size_of::<Event>());
    }

    #[test]
    fn fused_pop_respects_limit_and_leaves_events_pending() {
        for kind in BOTH {
            let mut q = EventQueue::with_scheduler(kind);
            q.schedule_at(10, timer(0));
            q.schedule_at(20, timer(1));
            assert!(q.pop_at_or_before(5).is_none());
            // The refused event is still pending and the clock untouched.
            assert_eq!(q.now(), 0);
            assert_eq!(q.len(), 2);
            assert!(matches!(q.pop_at_or_before(10), Some((10, _))));
            assert!(matches!(q.pop_at_or_before(u64::MAX), Some((20, _))));
            assert!(q.pop_at_or_before(u64::MAX).is_none());
        }
    }

    #[test]
    fn schedule_before_the_advanced_cursor_after_refused_pop() {
        // A refused fused pop may advance the wheel cursor past `now`; a
        // subsequent schedule between `now` and the cursor must still pop
        // in strict time order (regression test for cursor aliasing).
        for kind in BOTH {
            let mut q = EventQueue::with_scheduler(kind);
            let far = 7 << TICK_SHIFT; // several ticks out, within the wheel
            q.schedule_at(far, timer(99));
            assert!(q.pop_at_or_before(1).is_none(), "nothing due yet");
            // Earlier than the (advanced) cursor, later than `now`.
            q.schedule_at(2, timer(1));
            q.schedule_at(1, timer(0));
            let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
                .map(|(t, e)| match e {
                    Event::Timer { token, .. } => (t, token),
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(order, vec![(1, 0), (2, 1), (far, 99)]);
        }
    }

    /// Events far beyond the wheel horizon (overflow heap) and within it
    /// interleave correctly, including events scheduled while draining.
    #[test]
    fn overflow_and_wheel_interleave() {
        let horizon = (WHEEL_SIZE as u64) << TICK_SHIFT;
        let mut q = EventQueue::new();
        q.schedule_at(3 * horizon, timer(2));
        q.schedule_at(1, timer(0));
        q.schedule_at(horizon + 17, timer(1));
        q.schedule_at(10 * horizon, timer(3));
        assert_eq!(q.peek_time(), Some(1));
        let (t0, _) = q.pop().unwrap();
        assert_eq!(t0, 1);
        // Schedule more near `now` after the far-future events went in.
        q.schedule_at(5, timer(10));
        assert_eq!(q.peek_time(), Some(5));
        let order: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::Timer { token, .. } => (t, token),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            order,
            vec![(5, 10), (horizon + 17, 1), (3 * horizon, 2), (10 * horizon, 3)]
        );
    }

    /// The wheel and the heap produce byte-identical pop sequences for an
    /// adversarial random schedule with re-entrant scheduling.
    #[test]
    fn wheel_matches_heap_on_random_interleaved_schedules() {
        let run = |kind: SchedulerKind| {
            let mut rng = SimRng::seed_from_u64(2024);
            let mut q = EventQueue::with_scheduler(kind);
            for i in 0..500 {
                // Mix of near, mid, far and same-tick timestamps.
                let at = match i % 4 {
                    0 => rng.below(1 << 14),
                    1 => rng.below(1 << 22),
                    2 => rng.below(1 << 30),
                    _ => 999_999,
                };
                q.schedule_at(at, timer(i));
            }
            let mut popped = Vec::new();
            let mut extra = 4000u64;
            while let Some((t, e)) = q.pop() {
                let token = match e {
                    Event::Timer { token, .. } => token,
                    _ => unreachable!(),
                };
                popped.push((t, token));
                // Re-entrant scheduling from "handlers", as the engine does.
                if popped.len() % 7 == 0 && extra < 4300 {
                    q.schedule_at(t + rng.below(1 << 20), timer(extra));
                    extra += 1;
                }
            }
            popped
        };
        let wheel = run(SchedulerKind::TimingWheel);
        let heap = run(SchedulerKind::BinaryHeap);
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel, heap, "schedulers must agree event-for-event");
    }

    /// Differential check at extreme horizons: timestamps spanning many full
    /// wheel rotations (forcing repeated overflow-heap refills), clustered
    /// just inside/outside rotation boundaries, and re-entrant schedules
    /// landing exactly on `now`. The wheel must stay pop-for-pop identical
    /// to the reference heap.
    #[test]
    fn wheel_matches_heap_beyond_rotation_horizons() {
        let horizon = (WHEEL_SIZE as u64) << TICK_SHIFT;
        for seed in 0..6u64 {
            let run = |kind: SchedulerKind| {
                let mut rng = SimRng::seed_from_u64(0xA01u64 ^ seed);
                let mut q = EventQueue::with_scheduler(kind);
                for i in 0..400 {
                    let at = match i % 5 {
                        // Far future: up to ~1000 wheel rotations out.
                        0 => rng.below(1000) * horizon + rng.below(horizon),
                        // Hugging a rotation boundary from both sides.
                        1 => (rng.range_u64(1, 8)) * horizon - rng.below(3),
                        2 => (rng.below(8)) * horizon + rng.below(3),
                        // Same tick, different sub-tick offsets.
                        3 => (5 << TICK_SHIFT) + rng.below(1 << TICK_SHIFT),
                        // Near events.
                        _ => rng.below(1 << TICK_SHIFT),
                    };
                    q.schedule_at(at, timer(i));
                }
                let mut popped = Vec::new();
                let mut extra = 10_000u64;
                while let Some((t, e)) = q.pop() {
                    let token = match e {
                        Event::Timer { token, .. } => token,
                        _ => unreachable!(),
                    };
                    popped.push((t, token));
                    if popped.len() % 11 == 0 && extra < 10_100 {
                        // Re-entrant: zero-delay, next-rotation, far-future.
                        let at = match extra % 3 {
                            0 => t,
                            1 => t + horizon + rng.below(1 << TICK_SHIFT),
                            _ => t + 50 * horizon,
                        };
                        q.schedule_at(at, timer(extra));
                        extra += 1;
                    }
                }
                popped
            };
            let wheel = run(SchedulerKind::TimingWheel);
            let heap = run(SchedulerKind::BinaryHeap);
            assert_eq!(wheel, heap, "seed {seed}: schedulers disagree at extreme horizons");
        }
    }

    /// Events sharing one timestamp (and one wheel tick) pop in insertion
    /// order on both schedulers — the FIFO stability the engine's
    /// same-instant causality depends on.
    #[test]
    fn same_tick_ordering_is_insertion_stable() {
        let horizon = (WHEEL_SIZE as u64) << TICK_SHIFT;
        // Same instant, same tick (different instants), and a far-future
        // tick that only materializes after an overflow refill.
        for base in [0u64, 3 << TICK_SHIFT, 7 * horizon + (9 << TICK_SHIFT)] {
            for kind in BOTH {
                let mut q = EventQueue::with_scheduler(kind);
                for i in 0..64 {
                    // Two interleaved cohorts at two sub-tick instants.
                    q.schedule_at(base + (i % 2), timer(i));
                }
                let popped: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
                    .map(|(t, e)| match e {
                        Event::Timer { token, .. } => (t, token),
                        _ => unreachable!(),
                    })
                    .collect();
                let expect: Vec<(Time, u64)> = (0..64)
                    .filter(|i| i % 2 == 0)
                    .map(|i| (base, i))
                    .chain((0..64).filter(|i| i % 2 == 1).map(|i| (base + 1, i)))
                    .collect();
                assert_eq!(popped, expect, "kind {kind:?} base {base}");
            }
        }
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let horizon = (WHEEL_SIZE as u64) << TICK_SHIFT;
        q.schedule_at(0, timer(0));
        q.schedule_at(horizon * 2, timer(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|(t, _)| t), None);
    }
}
