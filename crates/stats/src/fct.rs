//! Flow-completion-time aggregation and slowdown.

use crate::percentile::Samples;

/// Picoseconds per microsecond (mirrors `aeolus-sim`'s clock without a
/// dependency edge — this crate is simulator-agnostic).
pub const PS_PER_US: f64 = 1e6;

/// One finished flow, as fed to the aggregators.
#[derive(Debug, Clone, Copy)]
pub struct FctSample {
    /// Flow size in bytes.
    pub size: u64,
    /// Completion time in picoseconds.
    pub fct_ps: u64,
    /// Ideal (unloaded) completion time in picoseconds, for slowdown.
    pub ideal_ps: u64,
}

impl FctSample {
    /// FCT normalized by the flow's ideal FCT ("slowdown"), ≥ 1 in a causal
    /// simulation.
    pub fn slowdown(&self) -> f64 {
        if self.ideal_ps == 0 {
            return 1.0;
        }
        self.fct_ps as f64 / self.ideal_ps as f64
    }
}

/// Summary statistics for a set of flows (one paper figure series).
#[derive(Debug, Clone)]
pub struct FctSummary {
    /// Number of flows aggregated.
    pub count: usize,
    /// Mean FCT in µs.
    pub mean_us: f64,
    /// Median FCT in µs.
    pub p50_us: f64,
    /// 99th percentile FCT in µs.
    pub p99_us: f64,
    /// 99.9th percentile FCT in µs.
    pub p999_us: f64,
    /// Maximum FCT in µs.
    pub max_us: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// 99th-percentile slowdown.
    pub p99_slowdown: f64,
}

/// Aggregates [`FctSample`]s, with size-band filtering to match the paper's
/// "0–100KB" / "100KB–1MB" / ">1MB" groupings.
#[derive(Debug, Default, Clone)]
pub struct FctAggregator {
    samples: Vec<FctSample>,
}

impl FctAggregator {
    /// Empty aggregator.
    pub fn new() -> FctAggregator {
        FctAggregator::default()
    }

    /// Add one finished flow.
    pub fn push(&mut self, s: FctSample) {
        self.samples.push(s);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    pub fn samples(&self) -> &[FctSample] {
        &self.samples
    }

    /// Samples with `lo <= size < hi` (use `u64::MAX` for an open band).
    pub fn band(&self, lo: u64, hi: u64) -> FctAggregator {
        FctAggregator {
            samples: self.samples.iter().copied().filter(|s| s.size >= lo && s.size < hi).collect(),
        }
    }

    /// FCT values in µs.
    pub fn fct_us(&self) -> Samples {
        Samples::from_vec(self.samples.iter().map(|s| s.fct_ps as f64 / PS_PER_US).collect())
    }

    /// Slowdown values.
    pub fn slowdowns(&self) -> Samples {
        Samples::from_vec(self.samples.iter().map(|s| s.slowdown()).collect())
    }

    /// Full summary.
    pub fn summary(&self) -> FctSummary {
        let mut fct = self.fct_us();
        let mut slow = self.slowdowns();
        FctSummary {
            count: self.samples.len(),
            mean_us: fct.mean(),
            p50_us: fct.percentile(50.0),
            p99_us: fct.percentile(99.0),
            p999_us: fct.percentile(99.9),
            max_us: fct.max(),
            mean_slowdown: slow.mean(),
            p99_slowdown: slow.percentile(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(size: u64, fct_us: f64) -> FctSample {
        FctSample {
            size,
            fct_ps: (fct_us * PS_PER_US) as u64,
            ideal_ps: (0.5 * PS_PER_US) as u64,
        }
    }

    #[test]
    fn banding_filters_by_size() {
        let mut agg = FctAggregator::new();
        agg.push(sample(50_000, 1.0));
        agg.push(sample(500_000, 2.0));
        agg.push(sample(5_000_000, 3.0));
        assert_eq!(agg.band(0, 100_000).len(), 1);
        assert_eq!(agg.band(100_000, 1_000_000).len(), 1);
        assert_eq!(agg.band(1_000_000, u64::MAX).len(), 1);
        assert_eq!(agg.band(0, u64::MAX).len(), 3);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let mut agg = FctAggregator::new();
        for f in [1.0, 2.0, 3.0, 4.0] {
            agg.push(sample(1000, f));
        }
        let s = agg.summary();
        assert_eq!(s.count, 4);
        assert!((s.mean_us - 2.5).abs() < 1e-9);
        assert_eq!(s.p50_us, 2.0);
        assert_eq!(s.max_us, 4.0);
        // slowdown of the 4 µs flow over the 0.5 µs ideal.
        assert!((s.p99_slowdown - 8.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_one_when_ideal_unknown() {
        let s = FctSample { size: 1, fct_ps: 100, ideal_ps: 0 };
        assert_eq!(s.slowdown(), 1.0);
    }
}
