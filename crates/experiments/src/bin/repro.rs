//! `repro` — regenerate any table or figure of the Aeolus paper.
//!
//! ```text
//! repro <experiment>... [--scale smoke|quick|full] [--csv DIR] [--jobs N] [--faults SPEC] [--check]
//! repro all [--scale ...] [--no-cache] [--cache-verify]
//! repro fuzz [--cases N] [--seed S]
//! repro fuzz --corpus [DIR] [--cases N] [--seed S]
//! repro fuzz --stats [--cases N] [--seed S]
//! repro fuzz --spec 'scheme=... hosts=... flows=... faults=...'
//! repro --trace <scheme>[@rounds] [--trace-out PATH] [--faults SPEC]
//! repro --list
//! ```
//!
//! `--faults` injects a deterministic wire-fault schedule into every run:
//! a comma-separated spec like `loss=0.01,down=2ms..2.3ms,seed=7` (see
//! `FaultPlan::from_str` for the full grammar). Experiments that carry their
//! own explicit plan (the chaos sweep) ignore the session default.
//!
//! `--check` installs the conformance oracle on every workload-driven run:
//! queue ledgers, drop legality, transmit causality, byte/credit
//! conservation and per-scheme protocol invariants are verified online, and
//! the first violating event aborts the run with full context. Numbers are
//! unchanged — the oracle only observes.
//!
//! `repro fuzz` runs seeded random scenarios (scheme × topology × workload ×
//! faults) under the full oracle and, on failure, greedily shrinks the case
//! to a minimal one-line repro spec. `--spec` re-checks one such line.
//!
//! `repro fuzz --corpus [DIR]` upgrades the fuzzer to a coverage-guided
//! campaign: every run folds its tracer/oracle signals into a novelty
//! signature, scenarios with never-seen signatures persist as one-line
//! specs under DIR (default `results/corpus`), and subsequent campaigns
//! replay the corpus first, then split the budget between corpus mutations
//! and fresh random cases. Each distinct failing signature is shrunk and
//! reported once. `--stats` runs a guided campaign and a blind one on equal
//! budgets and compares distinct-signature counts (exit 1 unless guided
//! strictly wins).
//!
//! Experiment runs are served from a content-addressed cache under
//! `results/cache`: each cell is keyed on a hash of everything that
//! determines its output (scheme, spec, params, workload, load, seed,
//! session faults, schema version), so a re-run with identical code and
//! config skips the simulation. `--no-cache` forces recompute;
//! `--cache-verify` re-simulates a sample of hits and panics on any byte
//! divergence. `--check` bypasses the cache entirely.
//!
//! `--trace` runs the canonical 7:1 incast under a recording tracer and
//! writes the capture as deterministic JSONL (default
//! `results/trace_<scheme>.jsonl`), printing queue-occupancy sparklines.
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` caps how
//! many independent runs execute concurrently (default: all cores). Results
//! are identical for every `N`.

use std::time::Instant;

use aeolus_experiments::{
    cache_stats, checked, fuzz, jobs, registry, run_campaign, run_trace, set_cache_dir,
    set_cache_verify, set_checked, set_default_faults, set_jobs, take_events_processed,
    CampaignConfig, Corpus, FaultPlan, Scale, Scenario, TraceSpec,
};

/// Run `f` with the panic hook silenced: the fuzzer catches oracle panics
/// and reports them as one-line repros, so the default hook's backtrace
/// spam for *expected* panics only buries the signal.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// `repro fuzz`: run `cases` seeded scenarios under the conformance oracle,
/// shrink the first failure to a minimal spec. Exit 1 on failure.
fn run_fuzz(cases: usize, seed: u64) {
    println!("fuzzing {cases} scenario(s) under the conformance oracle (seed {seed})...");
    let t0 = Instant::now();
    let report = with_quiet_panics(|| fuzz(cases, seed));
    let secs = t0.elapsed().as_secs_f64();
    match report {
        None => println!("fuzz: all {cases} cases conform ({secs:.1}s)"),
        Some(r) => {
            eprintln!("fuzz: FAILURE at case {} (case seed {})", r.case, r.case_seed);
            eprintln!("  original failure: {}", r.failure);
            eprintln!("  minimized spec:   {}", r.minimized);
            eprintln!("  minimized failure: {}", r.minimized_failure);
            eprintln!("  rerun with: repro fuzz --spec '{}'", r.minimized);
            std::process::exit(1);
        }
    }
}

/// `repro fuzz --spec LINE`: re-run one scenario spec under the oracle.
fn run_spec(spec: &str) {
    let scenario: Scenario = spec.parse().unwrap_or_else(|e| {
        eprintln!("bad --spec '{spec}': {e}");
        std::process::exit(2);
    });
    println!("checking: {scenario}");
    match with_quiet_panics(|| scenario.check()) {
        None => println!("spec conforms"),
        Some(failure) => {
            eprintln!("spec FAILS: {failure}");
            std::process::exit(1);
        }
    }
}

/// `repro fuzz --corpus DIR`: run a coverage-guided campaign against a
/// persistent corpus. Exit 1 if any distinct failure was found.
fn run_guided(dir: &std::path::Path, cases: usize, seed: u64) {
    let mut corpus = Corpus::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open corpus {}: {e}", dir.display());
        std::process::exit(2);
    });
    println!(
        "guided fuzz: {cases} case(s) under the conformance oracle (seed {seed}, corpus {} with {} entr{})...",
        dir.display(),
        corpus.len(),
        if corpus.len() == 1 { "y" } else { "ies" }
    );
    let cfg = CampaignConfig {
        cases,
        seed,
        mutate_fraction: 0.5,
        jobs: jobs(),
        shrink_failures: true,
    };
    let t0 = Instant::now();
    let outcome = with_quiet_panics(|| run_campaign(&cfg, &mut corpus)).unwrap_or_else(|e| {
        eprintln!("campaign I/O error: {e}");
        std::process::exit(2);
    });
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "campaign: {} case(s) in {secs:.1}s — {} replayed, {} mutated, {} random",
        outcome.cases_run, outcome.replayed, outcome.mutated, outcome.random
    );
    println!(
        "signatures: {} distinct this campaign, {} new (corpus now {} entr{})",
        outcome.distinct_signatures,
        outcome.new_signatures,
        corpus.len(),
        if corpus.len() == 1 { "y" } else { "ies" }
    );
    if outcome.failures.is_empty() {
        println!("guided fuzz: all {} case(s) conform", outcome.cases_run);
        return;
    }
    for (i, f) in outcome.failures.iter().enumerate() {
        eprintln!("failure {}/{}:", i + 1, outcome.failures.len());
        eprintln!("  original spec:    {}", f.scenario);
        eprintln!("  original failure: {}", f.failure);
        eprintln!("  minimized spec:   {}", f.minimized);
        eprintln!("  minimized failure: {}", f.minimized_failure);
        eprintln!("  rerun with: repro fuzz --spec '{}'", f.minimized);
    }
    eprintln!("guided fuzz: {} distinct failure(s)", outcome.failures.len());
    std::process::exit(1);
}

/// `repro fuzz --stats`: run guided and blind campaigns on equal budgets
/// and compare distinct-signature counts. The guided side first distils a
/// 2x-budget random scan into an in-memory corpus (simulating an existing
/// corpus, so the comparison does not depend on on-disk state), then both
/// sides get exactly `cases` fresh cases from the same seed. Exit 1 unless
/// guided strictly beats blind.
fn run_stats(cases: usize, seed: u64) {
    println!("guided-vs-blind on equal {cases}-case budgets (seed {seed})...");
    let t0 = Instant::now();
    let (guided, blind) = with_quiet_panics(|| {
        let scan = CampaignConfig {
            cases: cases * 2,
            seed,
            mutate_fraction: 0.0,
            jobs: jobs(),
            shrink_failures: false,
        };
        let mut seeded = Corpus::in_memory();
        run_campaign(&scan, &mut seeded).expect("in-memory campaign cannot fail on I/O");
        let guided_cfg = CampaignConfig {
            cases,
            seed: seed.wrapping_add(1000),
            mutate_fraction: 0.6,
            jobs: jobs(),
            shrink_failures: false,
        };
        let guided = run_campaign(&guided_cfg, &mut seeded).unwrap();
        let blind_cfg = CampaignConfig {
            cases,
            seed: seed.wrapping_add(1000),
            mutate_fraction: 0.0,
            jobs: jobs(),
            shrink_failures: false,
        };
        let mut blind_corpus = Corpus::in_memory();
        let blind = run_campaign(&blind_cfg, &mut blind_corpus).unwrap();
        (guided, blind)
    });
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "guided: {} distinct signature(s) ({} replayed, {} mutated, {} random)",
        guided.distinct_signatures, guided.replayed, guided.mutated, guided.random
    );
    println!(
        "blind:  {} distinct signature(s) ({} random)",
        blind.distinct_signatures, blind.random
    );
    if guided.distinct_signatures > blind.distinct_signatures {
        println!(
            "guided beats blind by {} signature(s) on equal budgets ({secs:.1}s)",
            guided.distinct_signatures - blind.distinct_signatures
        );
    } else {
        eprintln!(
            "FAILED: guided ({}) does not beat blind ({}) on a {cases}-case budget",
            guided.distinct_signatures, blind.distinct_signatures
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut trace: Option<TraceSpec> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut fuzz_cases = 25usize;
    let mut fuzz_seed = 1u64;
    let mut fuzz_spec: Option<String> = None;
    let mut fuzz_corpus: Option<std::path::PathBuf> = None;
    let mut fuzz_stats = false;
    let mut no_cache = false;
    let mut cache_verify = false;
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--check" => set_checked(true),
            "--cases" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => fuzz_cases = n,
                    _ => {
                        eprintln!("--cases wants a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                match v.parse::<u64>() {
                    Ok(n) => fuzz_seed = n,
                    _ => {
                        eprintln!("--seed wants an integer, got '{v}'");
                        std::process::exit(2);
                    }
                }
            }
            "--corpus" => {
                // DIR is optional: `--corpus --stats` and a bare trailing
                // `--corpus` both fall back to the default directory.
                let dir = match iter.peek() {
                    Some(v) if !v.starts_with('-') && v.as_str() != "fuzz" => {
                        iter.next().unwrap().clone()
                    }
                    _ => "results/corpus".to_string(),
                };
                fuzz_corpus = Some(std::path::PathBuf::from(dir));
            }
            "--stats" => fuzz_stats = true,
            "--no-cache" => no_cache = true,
            "--cache-verify" => cache_verify = true,
            "--spec" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                if v.is_empty() {
                    eprintln!("--spec wants a scenario line");
                    std::process::exit(2);
                }
                fuzz_spec = Some(v.to_string());
            }
            "--trace" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                trace = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("bad --trace spec: {e}");
                    std::process::exit(2);
                }));
            }
            "--trace-out" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                if v.is_empty() {
                    eprintln!("--trace-out wants a path");
                    std::process::exit(2);
                }
                trace_out = Some(std::path::PathBuf::from(v));
            }
            "--csv" => {
                let v = iter.next().map(String::as_str).unwrap_or("results");
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--scale" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use smoke|quick|full)");
                    std::process::exit(2);
                });
            }
            "--faults" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                match v.parse::<FaultPlan>() {
                    Ok(plan) => set_default_faults(plan),
                    Err(e) => {
                        eprintln!("bad --faults spec '{v}': {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => set_jobs(n),
                    _ => {
                        eprintln!("--jobs wants a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for (name, _) in registry() {
                    println!("{name}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if no_cache && cache_verify {
        eprintln!("--cache-verify is meaningless with --no-cache");
        std::process::exit(2);
    }
    if let Some(spec) = trace {
        let out = run_trace(&spec, aeolus_experiments::SchedulerKind::default());
        print!("{}", out.summary);
        let path = trace_out.unwrap_or_else(|| {
            std::path::PathBuf::from(format!("results/trace_{}.jsonl", spec.file_stem()))
        });
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, &out.jsonl) {
            Ok(()) => println!("[wrote {} trace lines to {}]", out.jsonl.lines().count(), path.display()),
            Err(e) => {
                eprintln!("[trace write to {} failed: {e}]", path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if wanted.iter().any(|w| w == "fuzz") {
        if wanted.len() > 1 {
            eprintln!("'fuzz' does not combine with other experiments");
            std::process::exit(2);
        }
        if fuzz_stats {
            run_stats(fuzz_cases, fuzz_seed);
        } else if let Some(dir) = fuzz_corpus {
            run_guided(&dir, fuzz_cases, fuzz_seed);
        } else {
            match fuzz_spec {
                Some(spec) => run_spec(&spec),
                None => run_fuzz(fuzz_cases, fuzz_seed),
            }
        }
        return;
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale smoke|quick|full] [--csv DIR] [--jobs N] [--faults SPEC] [--check] [--no-cache] [--cache-verify] | repro all | repro fuzz [--cases N] [--seed S] [--spec LINE] [--corpus [DIR]] [--stats] | repro --trace <scheme>[@rounds] [--trace-out PATH] [--faults SPEC] | repro --list"
        );
        std::process::exit(2);
    }
    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = if run_all {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for w in &wanted {
            match reg.iter().find(|(n, _)| n == w) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment '{w}' — try --list");
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    // The content-addressed cache is on for experiment runs unless the
    // user opts out; `--check` runs bypass it inside the runner anyway.
    if !no_cache {
        set_cache_dir(Some(std::path::PathBuf::from("results/cache")));
        set_cache_verify(cache_verify);
    }
    let wall0 = Instant::now();
    let mut total_events = 0u64;
    let mut violations = 0usize;
    take_events_processed(); // reset counter
    for (name, f) in selected {
        let t0 = Instant::now();
        println!("######## {name} (scale {scale:?}) ########");
        let report = f(scale);
        let secs = t0.elapsed().as_secs_f64();
        let events = take_events_processed();
        total_events += events;
        violations += report.violations.len();
        print!("{}", report.render());
        if let Some(dir) = &csv_dir {
            match report.write_csv(dir, name) {
                Ok(paths) => println!("[wrote {} csv file(s) under {}]", paths.len(), dir.display()),
                Err(e) => eprintln!("[csv write failed: {e}]"),
            }
        }
        if events > 0 {
            println!(
                "[{name} took {secs:.1}s — {events} events, {:.2}M events/s]\n",
                events as f64 / secs / 1e6
            );
        } else {
            println!("[{name} took {secs:.1}s]\n");
        }
    }
    let wall = wall0.elapsed().as_secs_f64();
    if total_events > 0 {
        println!(
            "[total: {wall:.1}s wall, {total_events} events, {:.2}M events/s aggregate]",
            total_events as f64 / wall / 1e6
        );
    }
    if !no_cache && !checked() {
        let cs = cache_stats();
        println!(
            "[cache: {} hit(s), {} miss(es), {} store(s), {} verified]",
            cs.hits, cs.misses, cs.stores, cs.verified
        );
    }
    if violations > 0 {
        eprintln!("FAILED: {violations} tolerance violation(s) — see VIOLATION lines above");
        std::process::exit(1);
    }
}
