//! Routing: destination-indexed next-hop tables with ECMP.
//!
//! Each switch holds, for every destination host, the list of egress ports on
//! shortest paths. Two selection policies cover the paper's protocols:
//!
//! * **per-flow ECMP hashing** (ExpressPass, Homa) — a hash of the flow id
//!   and the packet's `path_tag` pins all packets of a flow to one path;
//! * **per-packet spraying** (NDP) — every packet picks uniformly at random.
//!
//! The hot path is flat: ECMP groups are compacted into one contiguous port
//! array (CSR layout) with per-destination `(start, len, mask)` metadata, so
//! `select` is a bounds-checked slice index plus either a mask (power-of-two
//! groups) or one modulo — no nested `Vec` pointer chase. The FNV flow hash
//! is computed **once per packet** at network injection and carried in
//! [`Packet::route_hash`]; each hop reuses it instead of re-hashing.

use crate::packet::{NodeId, Packet, PortId};
use crate::rng::SimRng;

/// Path selection policy of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Hash (flow id, path tag) onto one of the candidate ports.
    EcmpHash,
    /// Choose uniformly at random per packet (NDP packet spraying).
    Spray,
}

/// FNV-1a 64-bit hash — cheap, deterministic flow hashing.
#[inline]
pub fn fnv1a(mut x: u64, mut y: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        x >>= 8;
    }
    for _ in 0..8 {
        h ^= y & 0xff;
        h = h.wrapping_mul(0x100000001b3);
        y >>= 8;
    }
    h
}

/// The packet's ECMP hash: the injection-time cached value when present,
/// recomputed from scratch otherwise (a zero cache means "not stamped" —
/// packets built outside the engine, e.g. in unit tests).
#[inline]
fn route_hash(pkt: &Packet) -> u64 {
    if pkt.route_hash != 0 {
        pkt.route_hash
    } else {
        fnv1a(pkt.flow.0, pkt.path_tag)
    }
}

/// Per-destination view into the flat port array.
#[derive(Debug, Clone, Copy, Default)]
struct GroupMeta {
    start: u32,
    len: u32,
    /// `len - 1` when `len` is a power of two (mask selection), else 0.
    mask: u32,
}

/// A switch routing table: for each destination node id, the ECMP group of
/// candidate egress ports.
pub struct RouteTable {
    /// Build-time source of truth, indexed by `NodeId.0`; empty group =
    /// unreachable (a wiring bug).
    groups: Vec<Vec<PortId>>,
    /// Compacted per-destination metadata (rebuilt lazily after edits).
    meta: Vec<GroupMeta>,
    /// All groups' ports, contiguous (CSR payload).
    flat: Vec<PortId>,
    /// Set by `add_route`; the next `select` recompacts.
    dirty: bool,
    policy: RoutePolicy,
    rng: SimRng,
    /// Reusable up-port scratch for `select_avoiding` (no per-call alloc).
    avoid_scratch: Vec<PortId>,
}

impl RouteTable {
    /// A table for a network of `n_nodes` nodes.
    pub fn new(n_nodes: usize, policy: RoutePolicy, seed: u64) -> RouteTable {
        RouteTable {
            groups: vec![Vec::new(); n_nodes],
            meta: Vec::new(),
            flat: Vec::new(),
            dirty: true,
            policy,
            rng: SimRng::seed_from_u64(seed),
            avoid_scratch: Vec::new(),
        }
    }

    /// Add `port` as a candidate next hop towards `dst`. The table grows on
    /// demand, so nodes may be numbered beyond the initial capacity.
    pub fn add_route(&mut self, dst: NodeId, port: PortId) {
        let idx = dst.0 as usize;
        if idx >= self.groups.len() {
            self.groups.resize(idx + 1, Vec::new());
        }
        let g = &mut self.groups[idx];
        if !g.contains(&port) {
            g.push(port);
            self.dirty = true;
        }
    }

    /// Candidate ports towards `dst` (for tests/topology validation).
    pub fn group(&self, dst: NodeId) -> &[PortId] {
        self.groups.get(dst.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Recompact `groups` into the flat CSR arrays.
    #[cold]
    fn rebuild(&mut self) {
        self.flat.clear();
        self.meta.clear();
        self.meta.reserve(self.groups.len());
        for g in &self.groups {
            let start = self.flat.len() as u32;
            let len = g.len() as u32;
            let mask = if len.is_power_of_two() { len - 1 } else { 0 };
            self.flat.extend_from_slice(g);
            self.meta.push(GroupMeta { start, len, mask });
        }
        self.dirty = false;
    }

    #[cold]
    fn no_route(dst: NodeId) -> ! {
        panic!("no route from switch to {dst:?}")
    }

    /// Pick the egress port for `pkt`.
    ///
    /// # Panics
    /// Panics if no route exists — topologies must be fully wired.
    #[inline]
    pub fn select(&mut self, pkt: &Packet) -> PortId {
        if self.dirty {
            self.rebuild();
        }
        let m = match self.meta.get(pkt.dst.0 as usize) {
            Some(m) if m.len > 0 => *m,
            _ => Self::no_route(pkt.dst),
        };
        let g = &self.flat[m.start as usize..(m.start + m.len) as usize];
        if m.len == 1 {
            return g[0];
        }
        match self.policy {
            RoutePolicy::EcmpHash => {
                let h = route_hash(pkt);
                let i = if m.mask != 0 { h & m.mask as u64 } else { h % m.len as u64 };
                g[i as usize]
            }
            RoutePolicy::Spray => {
                let i = self.rng.index(g.len());
                g[i]
            }
        }
    }

    /// Pick the egress port for `pkt`, steering around ports for which
    /// `is_down` returns true. Falls back to the normal selection when every
    /// candidate is down (the packet then waits in a stalled queue until the
    /// link recovers). Used by the engine only while a fault plan with down
    /// windows is active.
    ///
    /// # Panics
    /// Panics if no route exists — topologies must be fully wired.
    pub fn select_avoiding(
        &mut self,
        pkt: &Packet,
        is_down: impl Fn(PortId) -> bool,
    ) -> PortId {
        if self.dirty {
            self.rebuild();
        }
        let m = match self.meta.get(pkt.dst.0 as usize) {
            Some(m) if m.len > 0 => *m,
            _ => Self::no_route(pkt.dst),
        };
        let mut up = std::mem::take(&mut self.avoid_scratch);
        up.clear();
        up.extend(
            self.flat[m.start as usize..(m.start + m.len) as usize]
                .iter()
                .copied()
                .filter(|&p| !is_down(p)),
        );
        let choice = if up.is_empty() {
            None
        } else if up.len() == 1 {
            Some(up[0])
        } else {
            Some(match self.policy {
                RoutePolicy::EcmpHash => {
                    let h = route_hash(pkt);
                    up[(h % up.len() as u64) as usize]
                }
                RoutePolicy::Spray => {
                    let i = self.rng.index(up.len());
                    up[i]
                }
            })
        };
        self.avoid_scratch = up;
        match choice {
            Some(p) => p,
            None => self.select(pkt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, TrafficClass};

    fn pkt(flow: u64, tag: u64) -> Packet {
        let mut p =
            Packet::data(FlowId(flow), NodeId(0), NodeId(5), 0, 1460, TrafficClass::Scheduled, 1);
        p.path_tag = tag;
        p
    }

    fn table(policy: RoutePolicy) -> RouteTable {
        let mut t = RouteTable::new(8, policy, 42);
        for p in 0..4 {
            t.add_route(NodeId(5), PortId(p));
        }
        t
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let mut t = table(RoutePolicy::EcmpHash);
        let first = t.select(&pkt(7, 0));
        for _ in 0..50 {
            assert_eq!(t.select(&pkt(7, 0)), first);
        }
    }

    #[test]
    fn ecmp_spreads_across_flows() {
        let mut t = table(RoutePolicy::EcmpHash);
        let mut seen = std::collections::HashSet::new();
        for f in 0..64 {
            seen.insert(t.select(&pkt(f, 0)));
        }
        assert!(seen.len() >= 3, "hash should reach most ports, saw {seen:?}");
    }

    #[test]
    fn path_tag_changes_ecmp_choice() {
        let mut t = table(RoutePolicy::EcmpHash);
        let mut seen = std::collections::HashSet::new();
        for tag in 0..64 {
            seen.insert(t.select(&pkt(7, tag)));
        }
        assert!(seen.len() >= 3, "path tag must re-roll the hash, saw {seen:?}");
    }

    #[test]
    fn spray_uses_all_ports() {
        let mut t = table(RoutePolicy::Spray);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(t.select(&pkt(7, 0)));
        }
        assert_eq!(seen.len(), 4, "spraying must hit every port");
    }

    #[test]
    fn duplicate_routes_ignored() {
        let mut t = RouteTable::new(8, RoutePolicy::EcmpHash, 1);
        t.add_route(NodeId(3), PortId(1));
        t.add_route(NodeId(3), PortId(1));
        assert_eq!(t.group(NodeId(3)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn missing_route_panics() {
        let mut t = RouteTable::new(8, RoutePolicy::EcmpHash, 1);
        let mut p = pkt(1, 0);
        p.dst = NodeId(2);
        t.select(&p);
    }

    /// The cached injection-time hash and the from-scratch hash must pick
    /// the same port — a stale cache would silently re-route flows.
    #[test]
    fn cached_route_hash_matches_fresh_hash() {
        let mut t = table(RoutePolicy::EcmpHash);
        for f in 0..64 {
            for tag in 0..4 {
                let fresh = pkt(f, tag);
                let mut cached = pkt(f, tag);
                cached.route_hash = fnv1a(cached.flow.0, cached.path_tag);
                assert_eq!(t.select(&fresh), t.select(&cached), "flow {f} tag {tag}");
            }
        }
    }

    /// Non-power-of-two groups must keep exact `h % len` selection (the
    /// mask fast path only applies to power-of-two groups).
    #[test]
    fn non_pow2_group_uses_exact_modulo() {
        let mut t = RouteTable::new(8, RoutePolicy::EcmpHash, 42);
        for p in 0..3 {
            t.add_route(NodeId(5), PortId(p));
        }
        for f in 0..32 {
            let p = pkt(f, 0);
            let h = fnv1a(p.flow.0, p.path_tag);
            assert_eq!(t.select(&p), PortId((h % 3) as u16));
        }
    }

    /// Routes added after a select (lazy growth) are picked up.
    #[test]
    fn incremental_route_addition_rebuilds() {
        let mut t = RouteTable::new(2, RoutePolicy::EcmpHash, 1);
        t.add_route(NodeId(1), PortId(0));
        let mut p = pkt(1, 0);
        p.dst = NodeId(1);
        assert_eq!(t.select(&p), PortId(0));
        t.add_route(NodeId(9), PortId(3));
        p.dst = NodeId(9);
        assert_eq!(t.select(&p), PortId(3));
    }

    #[test]
    fn select_avoiding_skips_down_ports_without_alloc() {
        let mut t = table(RoutePolicy::EcmpHash);
        // All but port 2 down: every flow must land on 2.
        for f in 0..16 {
            let got = t.select_avoiding(&pkt(f, 0), |p| p != PortId(2));
            assert_eq!(got, PortId(2));
        }
        // Everything down: falls back to normal selection.
        let normal = t.select(&pkt(3, 0));
        assert_eq!(t.select_avoiding(&pkt(3, 0), |_| true), normal);
    }
}
