//! Discrete-event scheduler.
//!
//! A plain binary-heap event queue with a deterministic tie-break: events
//! scheduled for the same instant fire in the order they were scheduled.
//! The engine is strictly single-threaded — per the project guides, a
//! CPU-bound discrete-event simulation gains nothing from an async runtime.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::packet::{FlowDesc, NodeId, Packet, PortId};
use crate::units::Time;

/// An event to be dispatched by the network.
#[derive(Debug)]
pub enum Event {
    /// The last bit of `pkt` arrived at `node`.
    Arrival {
        /// Receiving node.
        node: NodeId,
        /// The packet, fully received.
        pkt: Packet,
    },
    /// Egress `port` of `node` finished serializing its current packet.
    PortFree {
        /// The transmitting node.
        node: NodeId,
        /// The now-idle port.
        port: PortId,
    },
    /// A paced queue on `port` of `node` may have become ready.
    PortKick {
        /// The paced node.
        node: NodeId,
        /// The paced port.
        port: PortId,
    },
    /// A timer set by the endpoint on `node` fired.
    Timer {
        /// The host whose endpoint armed the timer.
        node: NodeId,
        /// The token returned by `Ctx::set_timer_in`.
        token: u64,
    },
    /// A new application flow arrives at its source host.
    FlowArrival {
        /// The flow description.
        flow: FlowDesc,
    },
}

struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // tick, the first-scheduled) event is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Event queue with the current simulated time.
pub struct EventQueue {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue {
        EventQueue { now: 0, seq: 0, heap: BinaryHeap::new() }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a causality bug in the caller.
    pub fn schedule_at(&mut self, at: Time, event: Event) {
        assert!(at >= self.now, "event scheduled in the past: {} < {}", at, self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: Time, event: Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn timer(token: u64) -> Event {
        Event::Timer { node: NodeId(0), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, timer(3));
        q.schedule_at(10, timer(1));
        q.schedule_at(20, timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn same_tick_fifo_tie_break() {
        let mut q = EventQueue::new();
        for t in 0..100 {
            q.schedule_at(42, timer(t));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, timer(0));
        q.pop();
        q.schedule_in(5, timer(1));
        assert_eq!(q.peek_time(), Some(105));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, timer(0));
        q.pop();
        q.schedule_at(99, timer(1));
    }

    #[test]
    fn flow_arrival_events_carry_descriptor() {
        let mut q = EventQueue::new();
        let f = FlowDesc { id: FlowId(7), src: NodeId(1), dst: NodeId(2), size: 1000, start: 5 };
        q.schedule_at(5, Event::FlowArrival { flow: f });
        match q.pop() {
            Some((5, Event::FlowArrival { flow })) => assert_eq!(flow, f),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
