//! Shrunk specs from guided-fuzz campaigns (`repro fuzz --corpus`), pinned
//! as named regression tests. Each constant is the minimal one-line
//! [`Scenario`] the shrinker produced for a distinct failing novelty
//! signature; the test replays it under the full conformance oracle and
//! must conform forever after the fix.

use aeolus_transport::Scenario;

/// Replay one corpus spec line under the oracle; panic with the failure and
/// the spec on any violation, so the repro command is in the test output.
fn conforms(spec: &str) {
    let scenario: Scenario =
        spec.parse().unwrap_or_else(|e| panic!("unparseable spec '{spec}': {e}"));
    if let Some(failure) = scenario.check() {
        panic!("regression: {failure}\n  rerun with: repro fuzz --spec '{spec}'");
    }
}

/// Seed-1 guided campaign, case seed 127: a 77 us crash of the Homa
/// receiver left a cumulative Grant packet in flight; the relaunched
/// sender incarnation treated its grant offset as fresh budget and the
/// oracle flagged credit-conservation (consumed ≈ 2x issued). Fixed by
/// stamping packets with their flow incarnation at network injection and
/// rejecting stragglers from dead incarnations at host delivery
/// (`DropReason::StaleIncarnation`).
#[test]
fn homa_stale_grant_across_crash_relaunch_conserves_credit() {
    conforms("scheme=homa:10000 hosts=3 flows=2-3:168068@0 faults=crash=3@107us..107000001, seed=127");
}

/// The unshrunk original of the same campaign failure: three flows, a link
/// down window overlapping the crash, seven hosts. Kept alongside the
/// minimized spec because the shrinker discards the fault interleaving
/// (down + crash) that produced the original violation event ordering.
#[test]
fn homa_stale_grant_original_multi_flow_interleaving_conforms() {
    conforms(
        "scheme=homa:10000 hosts=7 flows=2-3:168068@35,0-2:10565@11,3-1:92364@27 \
         faults=down=108us..406us, crash=3@107us..184us, seed=127",
    );
}
