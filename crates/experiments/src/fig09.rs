//! Figure 9 — ExpressPass vs ExpressPass+Aeolus FCT of 0–100 KB flows on the
//! oversubscribed fat-tree at 40% core load, all four workloads.

use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, FAT_TREE_OVERSUB};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run Figure 9.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 9",
            schemes: &[Scheme::ExpressPass, Scheme::ExpressPassAeolus],
            spec: ep_fat_tree(scale),
            workloads: &Workload::ALL,
            host_load: 0.4 / FAT_TREE_OVERSUB,
            flows: (60, 1000, 5000),
            seed: 909,
        },
        scale,
    );
    r.note("paper: with Aeolus ~60/80/28/70% of small flows complete within the first RTT across the four workloads");
    r
}
