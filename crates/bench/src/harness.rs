//! A minimal, self-contained benchmark harness.
//!
//! The workspace builds offline, so Criterion is not available; this module
//! replaces the slice of it we actually used: warmup iterations, a fixed
//! number of measured iterations, median/p10/p90 wall-time statistics and a
//! machine-readable JSON report. Every measured closure returns a `u64`
//! "work unit" count (events processed, flows completed, …) so benches can
//! report a throughput alongside raw wall time.
//!
//! Iteration counts come from the environment so CI smoke runs and real
//! measurement runs share one binary:
//!
//! - `AEOLUS_BENCH_ITERS`  — measured iterations per bench (default 10)
//! - `AEOLUS_BENCH_WARMUP` — warmup iterations per bench (default 2)

use std::fmt::Write as _;
use std::time::Instant;

/// Iteration policy for a suite.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Unmeasured warmup iterations before timing starts.
    pub warmup: usize,
    /// Measured iterations (the percentiles are over these).
    pub iters: usize,
}

impl BenchConfig {
    /// Defaults (10 measured, 2 warmup) overridable via
    /// `AEOLUS_BENCH_ITERS` / `AEOLUS_BENCH_WARMUP`.
    pub fn from_env() -> BenchConfig {
        let get = |key: &str, default: usize| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default).max(1)
        };
        BenchConfig { warmup: get("AEOLUS_BENCH_WARMUP", 2), iters: get("AEOLUS_BENCH_ITERS", 10) }
    }
}

/// One bench's measurements.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Bench name (unique within its suite).
    pub name: String,
    /// Measured iterations.
    pub iters: usize,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: u64,
    /// 10th-percentile wall time, nanoseconds.
    pub p10_ns: u64,
    /// 90th-percentile wall time, nanoseconds.
    pub p90_ns: u64,
    /// Work units per iteration (e.g. events processed), if meaningful.
    pub units: u64,
}

impl Sample {
    /// Work units per second at the median iteration time.
    pub fn units_per_sec(&self) -> f64 {
        if self.median_ns == 0 {
            return 0.0;
        }
        self.units as f64 * 1e9 / self.median_ns as f64
    }
}

/// A named group of benches sharing one [`BenchConfig`].
pub struct Suite {
    /// Suite name (one per bench target / domain).
    pub name: String,
    /// Iteration policy.
    pub cfg: BenchConfig,
    /// Results in execution order.
    pub samples: Vec<Sample>,
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    debug_assert!(!sorted_ns.is_empty());
    let idx = (sorted_ns.len() - 1) * pct / 100;
    sorted_ns[idx]
}

impl Suite {
    /// New suite with env-derived config.
    pub fn new(name: &str) -> Suite {
        Suite { name: name.to_string(), cfg: BenchConfig::from_env(), samples: Vec::new() }
    }

    /// New suite with an explicit config (macro benches want few iterations).
    pub fn with_config(name: &str, cfg: BenchConfig) -> Suite {
        Suite { name: name.to_string(), cfg, samples: Vec::new() }
    }

    /// Run one bench: `f` does the work and returns how many work units it
    /// performed (return 1 if only wall time is interesting). Prints a
    /// one-line summary and records the sample.
    pub fn bench<F: FnMut() -> u64>(&mut self, name: &str, mut f: F) -> &Sample {
        for _ in 0..self.cfg.warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(self.cfg.iters);
        let mut units = 0u64;
        for _ in 0..self.cfg.iters {
            let t0 = Instant::now();
            units = std::hint::black_box(f());
            times.push(t0.elapsed().as_nanos() as u64);
        }
        times.sort_unstable();
        let s = Sample {
            name: name.to_string(),
            iters: self.cfg.iters,
            median_ns: percentile(&times, 50),
            p10_ns: percentile(&times, 10),
            p90_ns: percentile(&times, 90),
            units,
        };
        let rate = if s.units > 1 {
            format!("  {:>12.0} units/s", s.units_per_sec())
        } else {
            String::new()
        };
        println!(
            "{:<44} median {:>12}  p10 {:>12}  p90 {:>12}{}",
            format!("{}/{}", self.name, s.name),
            fmt_ns(s.median_ns),
            fmt_ns(s.p10_ns),
            fmt_ns(s.p90_ns),
            rate
        );
        self.samples.push(s);
        self.samples.last().unwrap()
    }

    /// Look up a sample by name.
    pub fn sample(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }
}

/// Human-readable nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Serialize suites to a JSON report string (hand-rolled; no serde offline).
///
/// The report records the host's CPU count: run-level fan-out numbers
/// (serial vs parallel macro benches) are meaningless without it.
pub fn to_json(suites: &[&Suite]) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"os\": \"{}\",\n  \"arch\": \"{}\",\n  \"suites\": [\n",
        escape(std::env::consts::OS),
        escape(std::env::consts::ARCH)
    );
    for (i, suite) in suites.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"warmup\": {},\n      \"benches\": [\n",
            escape(&suite.name),
            suite.cfg.warmup
        );
        for (j, s) in suite.samples.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \"units\": {}, \"units_per_sec\": {:.1}}}{}\n",
                escape(&s.name),
                s.iters,
                s.median_ns,
                s.p10_ns,
                s.p90_ns,
                s.units,
                s.units_per_sec(),
                if j + 1 == suite.samples.len() { "" } else { "," }
            );
        }
        let _ = write!(
            out,
            "      ]\n    }}{}\n",
            if i + 1 == suites.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write the JSON report, creating parent directories as needed.
pub fn write_json(suites: &[&Suite], path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, to_json(suites))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let xs = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 10), 10);
        assert_eq!(percentile(&xs, 90), 90);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn bench_records_units_and_positive_times() {
        let mut suite =
            Suite::with_config("test", BenchConfig { warmup: 1, iters: 5 });
        let s = suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
            10_000
        });
        assert_eq!(s.units, 10_000);
        assert_eq!(s.iters, 5);
        assert!(s.p10_ns <= s.median_ns && s.median_ns <= s.p90_ns);
        assert!(s.units_per_sec() > 0.0);
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let mut suite = Suite::with_config("j", BenchConfig { warmup: 0, iters: 2 });
        suite.bench("a", || 1);
        suite.bench("b", || 2);
        let js = to_json(&[&suite]);
        assert!(js.contains("\"name\": \"j\""));
        assert!(js.contains("\"median_ns\""));
        assert_eq!(js.matches("{\"name\":").count(), 2);
        // Balanced braces/brackets.
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        assert_eq!(js.matches('[').count(), js.matches(']').count());
    }
}
