//! Table 4 — the ambiguity problem of priority queueing (§5.5): Aeolus vs
//! "ExpressPass + priority queueing" with a 10 ms or 20 µs RTO, Cache
//! Follower on the 100 G fat-tree. Large RTO ⇒ huge tail FCT (slow
//! recovery); small RTO ⇒ redundant retransmissions of merely-trapped
//! packets ⇒ transfer-efficiency collapse.

use aeolus_sim::units::{ms, us};
use aeolus_stats::{f2, f3, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::runner::{run_workload, RunConfig};
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, FAT_TREE_OVERSUB};

/// Run Table 4.
pub fn run(scale: Scale) -> Report {
    let schemes = [
        (Scheme::ExpressPassAeolus, "ExpressPass + Aeolus"),
        (Scheme::ExpressPassPrioQueue { rto: ms(10) }, "ExpressPass + PrioQueue (RTO=10ms)"),
        (Scheme::ExpressPassPrioQueue { rto: us(20) }, "ExpressPass + PrioQueue (RTO=20us)"),
    ];
    let mut table = TextTable::new(vec!["scheme", "max FCT (us)", "transfer efficiency"]);
    for (scheme, name) in schemes {
        let mut cfg = RunConfig::new(scheme, ep_fat_tree(scale), Workload::CacheFollower);
        cfg.load = 0.4 / FAT_TREE_OVERSUB;
        cfg.n_flows = scale.flows(40, 600, 3000);
        cfg.seed = 44;
        let out = run_workload(&cfg);
        table.row(vec![name.to_string(), f2(out.agg.fct_us().max()), f3(out.efficiency)]);
    }
    let mut r = Report::new();
    r.section("Table 4: Aeolus vs priority queueing — the ambiguity problem", table);
    r.note("paper: 135us/0.90 (Aeolus), 10230us/0.90 (PQ 10ms), 158us/0.41 (PQ 20us)");
    r
}
