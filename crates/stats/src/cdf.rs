//! Empirical CDFs — the paper's figures are mostly FCT CDFs.

use crate::percentile::Samples;

/// One point of an empirical CDF: `fraction` of samples are ≤ `value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Sample value.
    pub value: f64,
    /// Cumulative fraction in (0, 1].
    pub fraction: f64,
}

/// Empirical CDF of a sample set.
#[derive(Debug, Clone)]
pub struct Cdf {
    points: Vec<CdfPoint>,
}

impl Cdf {
    /// Build from samples (consumes a sort).
    pub fn from_samples(samples: &mut Samples) -> Cdf {
        let sorted = samples.sorted();
        let n = sorted.len();
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| CdfPoint { value: v, fraction: (i + 1) as f64 / n as f64 })
            .collect();
        Cdf { points }
    }

    /// All points (one per sample, ascending).
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Fraction of samples ≤ `value`.
    pub fn fraction_at(&self, value: f64) -> f64 {
        match self.points.binary_search_by(|p| p.value.partial_cmp(&value).expect("finite")) {
            Ok(mut i) => {
                // Step to the last equal value.
                while i + 1 < self.points.len() && self.points[i + 1].value == value {
                    i += 1;
                }
                self.points[i].fraction
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].fraction,
        }
    }

    /// Downsample to at most `n` evenly-spaced points for printing.
    pub fn downsample(&self, n: usize) -> Vec<CdfPoint> {
        if self.points.len() <= n || n == 0 {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        for k in 1..=n {
            let idx = (k * self.points.len()) / n - 1;
            out.push(self.points[idx]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions_are_monotone_and_end_at_one() {
        let mut s = Samples::from_vec(vec![3.0, 1.0, 2.0, 2.0]);
        let cdf = Cdf::from_samples(&mut s);
        let fr: Vec<f64> = cdf.points().iter().map(|p| p.fraction).collect();
        assert_eq!(fr, vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(cdf.points().last().unwrap().value, 3.0);
    }

    #[test]
    fn fraction_at_handles_duplicates_and_bounds() {
        let mut s = Samples::from_vec(vec![1.0, 2.0, 2.0, 4.0]);
        let cdf = Cdf::from_samples(&mut s);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(1.0), 0.25);
        assert_eq!(cdf.fraction_at(2.0), 0.75, "both 2.0 samples counted");
        assert_eq!(cdf.fraction_at(3.0), 0.75);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
    }

    #[test]
    fn downsample_keeps_last_point() {
        let mut s = Samples::from_vec((1..=1000).map(|v| v as f64).collect());
        let cdf = Cdf::from_samples(&mut s);
        let d = cdf.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.last().unwrap().fraction, 1.0);
        assert_eq!(d.last().unwrap().value, 1000.0);
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut s = Samples::from_vec(vec![1.0, 2.0]);
        let cdf = Cdf::from_samples(&mut s);
        assert_eq!(cdf.downsample(10).len(), 2);
    }
}
