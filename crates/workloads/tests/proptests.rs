//! Property-based tests on workload generation.

use aeolus_sim::{NodeId, Rate};
use aeolus_workloads::{poisson_flows, EmpiricalDist, PoissonConfig, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Sampled flow sizes land within the distribution's support and the
    /// empirical bucket fractions track the analytic CDF.
    #[test]
    fn samples_respect_support_and_cdf(seed in 0u64..1_000) {
        for w in Workload::ALL {
            let d = w.dist();
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3_000;
            let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let max = d.max_size();
            prop_assert!(samples.iter().all(|&s| s >= 1 && s <= max));
            // Check one probe point: P(size <= 100KB).
            let analytic = d.fraction_below(100_000.0);
            let empirical =
                samples.iter().filter(|&&s| s <= 100_000).count() as f64 / n as f64;
            prop_assert!(
                (analytic - empirical).abs() < 0.05,
                "{}: analytic {analytic:.3} vs empirical {empirical:.3}",
                w.name()
            );
        }
    }

    /// The quantile function is the inverse of the CDF up to interpolation.
    #[test]
    fn quantile_inverts_cdf(u in 0.001f64..0.999) {
        for w in Workload::ALL {
            let d = w.dist();
            let size = d.quantile(u);
            let back = d.fraction_below(size as f64);
            prop_assert!(
                (back - u).abs() < 0.02,
                "{}: u={u:.4} -> size {size} -> cdf {back:.4}",
                w.name()
            );
        }
    }

    /// Poisson generation is monotone in time, hits the requested count, and
    /// never produces self-flows, regardless of seed/load/host count.
    #[test]
    fn poisson_invariants(
        seed in 0u64..10_000,
        load in 0.05f64..1.0,
        hosts in 2usize..32,
        flows in 1usize..200,
    ) {
        let ids: Vec<NodeId> = (0..hosts as u32).map(NodeId).collect();
        let dist = EmpiricalDist::new(vec![(100.0, 0.0), (10_000.0, 1.0)]);
        let cfg = PoissonConfig {
            load,
            host_rate: Rate::gbps(10),
            flows,
            seed,
            first_id: 7,
            start: 1_000,
        };
        let out = poisson_flows(&cfg, &ids, &dist);
        prop_assert_eq!(out.len(), flows);
        prop_assert!(out[0].start >= 1_000);
        for w in out.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
            prop_assert_eq!(w[1].id.0, w[0].id.0 + 1);
        }
        prop_assert!(out.iter().all(|f| f.src != f.dst));
        prop_assert!(out.iter().all(|f| f.size >= 100 && f.size <= 10_000));
    }
}
