//! Recycling packet pool — slab-backed storage for every packet in flight.
//!
//! The hot loop of a packet-level simulator moves one packet per event; the
//! reference engines the paper's evaluation runs on (htsim for NDP, ns-2 for
//! ExpressPass) only reach large scale because they recycle packet buffers
//! instead of malloc/freeing per event. [`PacketPool`] is that recycler: a
//! slab of [`Packet`] slots handing out stable [`PacketRef`] handles.
//!
//! Lifecycle: the network [`insert`](PacketPool::insert)s a packet when an
//! endpoint sends it, the handle travels through queues, events and links,
//! and the slot is recycled either by [`take`](PacketPool::take) (host
//! delivery — the packet is copied out to the endpoint) or by
//! [`free`](PacketPool::free) (drop, trim-discard or a fault kill). After a
//! warm-up phase the free list satisfies every insert, so steady-state
//! simulation performs **zero** packet allocations — a tier-1 test asserts
//! this with a counting global allocator.
//!
//! Debug builds additionally track slot occupancy and panic on double-free
//! or use-after-free; release builds pay nothing for the checks.

use crate::packet::Packet;

/// Stable handle to a pooled [`Packet`]. Copyable and 4 bytes wide, so
/// events and queue entries move a handle instead of a ~120-byte struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// The slot index (for diagnostics).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Slab of packet slots with a free list.
pub struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
    /// Live (inserted, not yet taken/freed) packet count.
    live: usize,
    /// Maximum live count ever observed.
    high_water: usize,
    /// Inserts served by growing the slab instead of the free list.
    grows: u64,
    #[cfg(debug_assertions)]
    occupied: Vec<bool>,
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> PacketPool {
        PacketPool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            grows: 0,
            #[cfg(debug_assertions)]
            occupied: Vec::new(),
        }
    }

    /// Store `pkt`, returning its handle. Reuses a recycled slot when one is
    /// available; grows the slab otherwise.
    #[inline]
    pub fn insert(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        if let Some(idx) = self.free.pop() {
            #[cfg(debug_assertions)]
            {
                debug_assert!(!self.occupied[idx as usize], "free list holds a live slot");
                self.occupied[idx as usize] = true;
            }
            self.slots[idx as usize] = pkt;
            PacketRef(idx)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(pkt);
            self.grows += 1;
            #[cfg(debug_assertions)]
            self.occupied.push(true);
            PacketRef(idx)
        }
    }

    /// Read access to a pooled packet.
    #[inline]
    pub fn get(&self, r: PacketRef) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.occupied[r.0 as usize], "get on a freed packet slot");
        &self.slots[r.0 as usize]
    }

    /// Write access to a pooled packet (switches mutate hops/ECN/trim in
    /// place).
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.occupied[r.0 as usize], "get_mut on a freed packet slot");
        &mut self.slots[r.0 as usize]
    }

    /// Copy the packet out and recycle its slot — the host-delivery path,
    /// where the endpoint consumes the packet by value.
    #[inline]
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let pkt = self.get(r).clone();
        self.release(r);
        pkt
    }

    /// Recycle a slot without reading it — drops and fault kills.
    #[inline]
    pub fn free(&mut self, r: PacketRef) {
        #[cfg(debug_assertions)]
        debug_assert!(self.occupied[r.0 as usize], "double free of packet slot");
        self.release(r);
    }

    #[inline]
    fn release(&mut self, r: PacketRef) {
        #[cfg(debug_assertions)]
        {
            self.occupied[r.0 as usize] = false;
        }
        self.free.push(r.0);
        self.live -= 1;
    }

    /// Live packet count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (slab size).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Maximum number of simultaneously live packets observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts that had to grow the slab (0 in a warmed-up steady state).
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, TrafficClass};

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 1460, TrafficClass::Scheduled, 1 << 20)
    }

    #[test]
    fn insert_get_take_roundtrip() {
        let mut pool = PacketPool::new();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.get(a).seq, 1);
        assert_eq!(pool.get(b).seq, 2);
        let out = pool.take(a);
        assert_eq!(out.seq, 1);
        assert_eq!(pool.live(), 1);
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut pool = PacketPool::new();
        let refs: Vec<_> = (0..16).map(|i| pool.insert(pkt(i))).collect();
        assert_eq!(pool.capacity(), 16);
        for r in refs {
            pool.free(r);
        }
        // A second wave of the same size reuses every slot.
        for i in 0..16 {
            pool.insert(pkt(100 + i));
        }
        assert_eq!(pool.capacity(), 16, "slab must not grow past the high-water mark");
        assert_eq!(pool.grows(), 16, "only the first wave grew the slab");
        assert_eq!(pool.high_water(), 16);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(7));
        pool.get_mut(r).hops += 3;
        assert_eq!(pool.get(r).hops, 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(0));
        pool.free(r);
        pool.free(r);
    }
}
