//! Figure 15 — average and maximum bottleneck queue length versus the
//! selective-dropping threshold (N-to-1 on a 100 G switch, each sender
//! shipping 200 KB). The paper's finding: queue length is nearly linear in
//! the threshold, so the threshold should be small.

use aeolus_core::AeolusConfig;
use aeolus_sim::units::ms;
use aeolus_stats::{f2, TextTable};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};

use crate::report::Report;
use crate::scale::Scale;
use crate::topos::many_to_one;

/// Thresholds swept, in bytes (1–64 packets).
pub const THRESHOLDS: [u64; 7] = [1_500, 3_000, 6_000, 12_000, 24_000, 48_000, 96_000];

/// Queue statistics at the bottleneck for one threshold.
pub fn queue_stats(threshold: u64, senders: usize) -> (f64, u64) {
    let mut params = SchemeParams::new(0);
    params.aeolus = AeolusConfig { drop_threshold: threshold, ..AeolusConfig::default() };
    params.port_buffer = 500_000;
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).params(params).topology(many_to_one(senders + 1)).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..senders)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i + 1],
            dst: hosts[0],
            size: 200_000,
            // Slight stagger: synchronized-to-the-picosecond arrivals are
            // kinder than anything a real fabric sees.
            start: (i as u64) * 300_000,
        })
        .collect();
    h.schedule(&flows);
    h.run(ms(200));
    let (sw, port) = h.topo.host_ingress[0];
    let p = h.topo.net.port(sw, port);
    let span = h.topo.net.now().max(1);
    crate::runner::note_events(h.topo.net.events_processed());
    (p.stats.avg_qlen(span), p.stats.qlen_max)
}

/// Run Figure 15.
pub fn run(scale: Scale) -> Report {
    let senders = scale.count(4, 16, 32);
    let stats = crate::runner::parallel_map(&THRESHOLDS, |&k| queue_stats(k, senders));
    let mut table = TextTable::new(vec!["threshold", "avg qlen (B)", "max qlen (B)"]);
    for (&k, &(avg, max)) in THRESHOLDS.iter().zip(&stats) {
        table.row(vec![format!("{}KB", k as f64 / 1000.0), f2(avg), max.to_string()]);
    }
    let mut r = Report::new();
    r.section(format!("Figure 15: bottleneck queue vs threshold ({senders}-to-1)"), table);
    r.note("paper: queue length nearly linear in the selective-dropping threshold");
    r
}
