//! Chaos-nodes — graceful degradation under host crashes, control-plane
//! outages and pod partitions.
//!
//! The companion to `chaos` one fault class up: where `chaos` attacks the
//! wire (corruption loss, link flaps), this sweep kills *nodes*. Every
//! scheme runs the same Poisson workload on the testbed topology under a
//! grid of node-fault schedules — host crash/restart windows, an
//! arbiter/controller outage, a pod partition, and their combination — and
//! every cell runs under [`Harness::run_degradation`], so the outcome of
//! every flow is classified: completed, restarted-then-completed, aborted
//! with a cause, or hung.
//!
//! The acceptance bar is *zero hangs anywhere in the grid*: a node fault may
//! cost time (restarted flows' FCTs span the outage) or abort flows with an
//! explicit cause, but a flow that is neither completed nor aborted at the
//! horizon is a recovery-loop bug and fails the experiment via
//! [`Report::violation`] — which makes `repro` exit non-zero.
//!
//! [`Harness::run_degradation`]: aeolus_transport::Harness::run_degradation

use aeolus_sim::units::{ms, us};
use aeolus_sim::{AbortCause, DropReason, FaultPlan};
use aeolus_stats::TextTable;
use aeolus_transport::{DegradationReport, Scheme, SchemeBuilder, SchemeParams};
use aeolus_workloads::{poisson_flows, PoissonConfig, Workload};

use crate::report::Report;
use crate::runner::{homa_cutoffs_for, parallel_map};
use crate::scale::Scale;
use crate::topos::testbed;

/// The six schemes the paper evaluates, all under node fire.
fn schemes() -> [Scheme; 6] {
    [
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::FastpassAeolus,
        Scheme::Dctcp { rto: ms(10) },
    ]
}

/// One point of the node-fault grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeCell {
    /// No faults: the baseline every scheme must complete cleanly.
    Clean,
    /// One host crashes at 100 µs and restarts at 600 µs.
    Crash1,
    /// Two hosts crash on overlapping windows (100–600 µs and 250–750 µs).
    Crash2,
    /// The upper half of the host set is partitioned off for 150–550 µs.
    Partition,
    /// A host crash *and* a partition at once — the harshest cell.
    CrashPartition,
    /// The arbiter/controller is down 120–520 µs (credit blackout on
    /// schemes without an arbiter host).
    Arbiter,
}

const CELLS: [NodeCell; 6] = [
    NodeCell::Clean,
    NodeCell::Crash1,
    NodeCell::Crash2,
    NodeCell::Partition,
    NodeCell::CrashPartition,
    NodeCell::Arbiter,
];

impl NodeCell {
    /// The cell's fault plan, in unresolved (host-index) form — the harness
    /// binds indices against its arbiter-excluded host list at build time.
    fn plan(self) -> FaultPlan {
        let p = FaultPlan::new(0x0de);
        match self {
            NodeCell::Clean => p,
            NodeCell::Crash1 => p.with_crash(us(100), us(600), 0),
            NodeCell::Crash2 => {
                p.with_crash(us(100), us(600), 0).with_crash(us(250), us(750), 3)
            }
            NodeCell::Partition => p.with_partition(us(150), us(550)),
            NodeCell::CrashPartition => {
                p.with_crash(us(100), us(600), 0).with_partition(us(150), us(550))
            }
            NodeCell::Arbiter => p.with_arbiter_outage(us(120), us(520)),
        }
    }

    fn label(self) -> &'static str {
        match self {
            NodeCell::Clean => "clean",
            NodeCell::Crash1 => "crash x1",
            NodeCell::Crash2 => "crash x2",
            NodeCell::Partition => "partition",
            NodeCell::CrashPartition => "crash + partition",
            NodeCell::Arbiter => "arbiter outage",
        }
    }
}

/// One cell's run: the degradation ledger plus node-fault drop taxonomy and
/// any acceptance violations found.
struct CellOutput {
    report: DegradationReport,
    nodedown_drops: u64,
    arbiterdown_drops: u64,
    violations: Vec<String>,
}

fn run_cell(scheme: Scheme, cell: NodeCell, n_flows: usize) -> CellOutput {
    let workload = Workload::WebServer;
    let mut params = SchemeParams::new(0);
    params.homa_cutoffs = homa_cutoffs_for(workload);
    params.faults = cell.plan();
    let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows = poisson_flows(
        &PoissonConfig {
            load: 0.4,
            host_rate: h.topo.host_rate,
            flows: n_flows,
            seed: 7,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &workload.dist(),
    );
    h.schedule(&flows);
    let last_arrival = flows.iter().map(|f| f.start).max().unwrap_or(0);
    // Horizon: outages end below 1 ms; the peer-silence watchdog (400 ms)
    // plus capped 128 ms retry backoff both fit with room to spare, so a
    // non-settled flow at the horizon is hung, not slow.
    let horizon = last_arrival + ms(800);
    let (report, mut violations) = match h.run_degradation(horizon) {
        Ok(report) => (report, Vec::new()),
        Err(report) => {
            let v = format!(
                "{} under '{}' hung {} flow(s) — {report}",
                scheme.label(),
                cell.label(),
                report.hung(),
            );
            (report, vec![v])
        }
    };
    if cell == NodeCell::Clean && (report.restarted() + report.aborted() > 0) {
        violations.push(format!(
            "{} restarted/aborted flows on a clean network — {report}",
            scheme.label(),
        ));
    }
    if report.aborted_with(AbortCause::ArbiterOutage) > 0 {
        // The engine never aborts *workload* flows for an arbiter outage —
        // only control state dies; seeing this cause here is a taxonomy bug.
        violations.push(format!(
            "{} under '{}' aborted workload flows with cause '{}'",
            scheme.label(),
            cell.label(),
            AbortCause::ArbiterOutage.as_str(),
        ));
    }
    let m = h.metrics();
    CellOutput {
        nodedown_drops: m.drops_by_reason(DropReason::NodeDown),
        arbiterdown_drops: m.drops_by_reason(DropReason::ArbiterDown),
        report,
        violations,
    }
}

/// Run the node-chaos sweep.
pub fn run(scale: Scale) -> Report {
    let n_flows = scale.flows(18, 90, 450);
    let grid: Vec<(Scheme, NodeCell)> = schemes()
        .iter()
        .flat_map(|&s| CELLS.iter().map(move |&c| (s, c)))
        .collect();
    let results = parallel_map(&grid, |&(scheme, cell)| run_cell(scheme, cell, n_flows));

    let mut r = Report::new();
    let mut table = TextTable::new(vec![
        "scheme",
        "faults",
        "completed",
        "restarted",
        "aborted (crash/silent)",
        "hung",
        "node-down drops",
        "arbiter-down drops",
    ]);
    for ((scheme, cell), c) in grid.iter().zip(&results) {
        table.row(vec![
            scheme.label(),
            cell.label().to_string(),
            format!("{}/{}", c.report.completed() + c.report.restarted(), c.report.flows.len()),
            c.report.restarted().to_string(),
            format!(
                "{} ({}/{})",
                c.report.aborted(),
                c.report.aborted_with(AbortCause::NodeCrash),
                c.report.aborted_with(AbortCause::PeerSilent),
            ),
            c.report.hung().to_string(),
            c.nodedown_drops.to_string(),
            c.arbiterdown_drops.to_string(),
        ]);
        for v in &c.violations {
            r.violation(v.clone());
        }
    }
    r.section("Chaos-nodes: per-flow outcomes under crash / partition / arbiter outage", table);
    r.note("completed counts restarted-then-completed flows; a restarted flow's FCT spans the outage");
    r.note("acceptance: zero hung flows anywhere in the grid — a hang is a VIOLATION and repro exits non-zero");
    r.note("crash windows: 100-600us (+250-750us in x2); partition: upper host half dark 150-550us; arbiter outage 120-520us");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_nodes_smoke_has_zero_hangs() {
        // The acceptance bar: across the whole crash x partition x scheme
        // grid, every flow settles — no hangs, no unexpected outcomes.
        let r = run(Scale::Smoke);
        assert!(r.passed(), "violations:\n{}", r.violations.join("\n"));
        let rendered = r.render();
        assert!(rendered.contains("crash + partition"));
    }

    #[test]
    fn crash_cell_actually_bites() {
        // The single-crash cell must visibly touch the run for at least one
        // scheme: dead-NIC drops, restarted flows or crash aborts.
        let c = run_cell(Scheme::ExpressPassAeolus, NodeCell::Crash1, 18);
        assert!(c.violations.is_empty(), "{:?}", c.violations);
        assert!(
            c.nodedown_drops > 0 || c.report.restarted() > 0 || c.report.aborted() > 0,
            "crash window never touched the workload"
        );
    }

    #[test]
    fn arbiter_outage_kills_in_flight_requests_with_its_own_taxonomy() {
        // Links into a dead node stall rather than drop, so the arbiter-down
        // taxonomy shows up only for traffic already on the wire (or queued
        // at the arbiter) when the outage begins. Plain Fastpass (Hold mode)
        // with a flow starting one switch hop ahead of the window puts its
        // slot request exactly there: the request dies as arbiter-down, the
        // retry backstop re-asks after restart, and the flow completes.
        use aeolus_sim::{FlowDesc, FlowId};
        let plan = FaultPlan::new(1).with_arbiter_outage(us(120), us(520));
        let mut h = SchemeBuilder::new(Scheme::Fastpass)
            .faults(plan)
            .topology(testbed())
            .build();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc {
            id: FlowId(1),
            src: hosts[2],
            dst: hosts[5],
            size: 60_000,
            start: us(114),
        }]);
        let report = h.run_degradation(ms(900)).expect("outage must not hang the flow");
        assert_eq!(report.completed(), 1, "{report}");
        assert!(
            h.metrics().drops_by_reason(DropReason::ArbiterDown) > 0,
            "the in-flight request must die with the arbiter-down taxonomy"
        );
        assert_eq!(h.metrics().drops_by_reason(DropReason::NodeDown), 0);
    }

    #[test]
    fn clean_cell_is_all_completions() {
        let c = run_cell(Scheme::HomaAeolus, NodeCell::Clean, 18);
        assert!(c.violations.is_empty(), "{:?}", c.violations);
        assert_eq!(c.report.completed(), c.report.flows.len());
        assert_eq!(c.nodedown_drops + c.arbiterdown_drops, 0);
    }
}
