//! `repro` — regenerate any table or figure of the Aeolus paper.
//!
//! ```text
//! repro <experiment>... [--scale smoke|quick|full] [--csv DIR] [--jobs N]
//! repro all [--scale ...]
//! repro --list
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` caps how
//! many independent runs execute concurrently (default: all cores). Results
//! are identical for every `N`.

use std::time::Instant;

use aeolus_experiments::{registry, set_jobs, take_events_processed, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--csv" => {
                let v = iter.next().map(String::as_str).unwrap_or("results");
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--scale" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use smoke|quick|full)");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => set_jobs(n),
                    _ => {
                        eprintln!("--jobs wants a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                for (name, _) in registry() {
                    println!("{name}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale smoke|quick|full] [--csv DIR] [--jobs N] | repro all | repro --list"
        );
        std::process::exit(2);
    }
    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = if run_all {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for w in &wanted {
            match reg.iter().find(|(n, _)| n == w) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment '{w}' — try --list");
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    let wall0 = Instant::now();
    let mut total_events = 0u64;
    take_events_processed(); // reset counter
    for (name, f) in selected {
        let t0 = Instant::now();
        println!("######## {name} (scale {scale:?}) ########");
        let report = f(scale);
        let secs = t0.elapsed().as_secs_f64();
        let events = take_events_processed();
        total_events += events;
        print!("{}", report.render());
        if let Some(dir) = &csv_dir {
            match report.write_csv(dir, name) {
                Ok(paths) => println!("[wrote {} csv file(s) under {}]", paths.len(), dir.display()),
                Err(e) => eprintln!("[csv write failed: {e}]"),
            }
        }
        if events > 0 {
            println!(
                "[{name} took {secs:.1}s — {events} events, {:.2}M events/s]\n",
                events as f64 / secs / 1e6
            );
        } else {
            println!("[{name} took {secs:.1}s]\n");
        }
    }
    let wall = wall0.elapsed().as_secs_f64();
    if total_events > 0 {
        println!(
            "[total: {wall:.1}s wall, {total_events} events, {:.2}M events/s aggregate]",
            total_events as f64 / wall / 1e6
        );
    }
}
