//! The network engine: nodes, wiring, and the event dispatch loop.

use crate::endpoint::{Actions, Ctx, Endpoint};
use crate::event::{Event, EventQueue, SchedulerKind};
use crate::faults::{FaultPlan, NodeFaultKind};
use crate::metrics::{AbortCause, Metrics};
use crate::node::{Node, NodeKind};
use crate::packet::{FlowDesc, NodeId, PortId};
use crate::pool::{PacketPool, PacketRef};
use crate::port::{Link, Port};
use crate::queues::{DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::rng::SimRng;
use crate::routing::{RoutePolicy, RouteTable};
use crate::telemetry::{FaultEvent, HostEvent, NullTracer, QueueEvent, QueueRecord, Tracer};
use crate::units::{Rate, Time};

/// One recorded event of a traced flow's packet life.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Time,
    /// Node where it happened.
    pub node: NodeId,
    /// What happened.
    pub what: TraceKind,
    /// Packet kind (protocol meaning).
    pub kind: crate::packet::PacketKind,
    /// Packet class.
    pub class: crate::packet::TrafficClass,
    /// Sequence / offset field of the packet.
    pub seq: u64,
    /// Switch priority the packet carried.
    pub priority: u8,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet arrived at a node (host delivery or switch ingress).
    Arrive,
    /// Packet was dropped at an egress queue.
    Drop(crate::queues::DropReason),
    /// Packet started serializing out of an egress port.
    Transmit,
}

/// A simulated network: topology, endpoints, event queue and metrics.
///
/// Generic over a [`Tracer`]; the default [`NullTracer`] compiles every
/// telemetry hook away (each sits behind an `if T::ENABLED` guard on an
/// associated const), so an untraced network pays nothing for the
/// observability layer.
pub struct Network<T: Tracer = NullTracer> {
    nodes: Vec<Node>,
    queue: EventQueue,
    /// Run metrics.
    pub metrics: Metrics,
    uid: u64,
    next_token: u64,
    events_processed: u64,
    /// Flows whose packets are being traced (empty = tracing off).
    traced: std::collections::HashSet<crate::packet::FlowId>,
    /// Recorded trace events, in order.
    trace: Vec<TraceEvent>,
    /// Telemetry sink for engine-level events.
    tracer: T,
    /// Scratch for per-band queue occupancy sampling (avoids a per-event
    /// allocation when tracing is on; unused otherwise).
    band_scratch: Vec<(&'static str, u64)>,
    /// Installed fault schedule (empty by default: one `is_empty` branch per
    /// transmission, zero RNG draws, zero extra events).
    faults: FaultPlan,
    /// The fault plan's private corruption RNG, isolated from every other
    /// randomness stream in the run.
    fault_rng: SimRng,
    /// Recycling slab for every packet in flight. Endpoints hand the engine
    /// packets by value; the engine pools them and moves 4-byte
    /// [`PacketRef`] handles through queues and events instead.
    pool: PacketPool,
    /// Reusable [`Actions`] buffers for endpoint dispatch — taken before
    /// each callback and put back drained, so steady-state dispatch never
    /// allocates.
    actions_scratch: Actions,
    /// Flows aborted by a node crash, waiting for both endpoints to come
    /// back up so they can relaunch. Scanned at every node-window end.
    pending_restart: Vec<FlowDesc>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty, untraced network.
    pub fn new() -> Network {
        Network::with_tracer(NullTracer)
    }
}

impl<T: Tracer> Network<T> {
    /// An empty network feeding engine telemetry to `tracer`.
    pub fn with_tracer(tracer: T) -> Network<T> {
        Network {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            metrics: Metrics::new(),
            uid: 0,
            next_token: 0,
            events_processed: 0,
            traced: std::collections::HashSet::new(),
            trace: Vec::new(),
            tracer,
            band_scratch: Vec::new(),
            faults: FaultPlan::default(),
            fault_rng: SimRng::seed_from_u64(0),
            pool: PacketPool::new(),
            actions_scratch: Actions::default(),
            pending_restart: Vec::new(),
        }
    }

    /// The packet pool — read its slab/recycling counters to verify the
    /// zero-alloc steady-state invariant.
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Install a fault schedule and arm its window-transition events.
    ///
    /// Call before the run starts; window times already in the past are
    /// clamped to `now`. Installing an empty plan is free — no events are
    /// scheduled and the per-transmission fault check stays a single branch.
    pub fn set_fault_plan(&mut self, mut plan: FaultPlan) {
        if !plan.is_resolved() {
            // The harness resolves plans against its own host list (which
            // knows about the arbiter); direct engine users get host-index
            // resolution against every host node, with no arbiter notion.
            let hosts: Vec<NodeId> =
                self.nodes.iter().filter(|n| n.is_host()).map(|n| n.id).collect();
            plan.resolve(&hosts, None);
        }
        self.fault_rng = SimRng::seed_from_u64(plan.seed ^ 0xae01_f417);
        let now = self.queue.now();
        for (i, w) in plan.windows.iter().enumerate() {
            self.queue.schedule_at(w.from.max(now), Event::FaultWindow { window: i, start: true });
            self.queue.schedule_at(w.until.max(now), Event::FaultWindow { window: i, start: false });
        }
        for (i, w) in plan.node_windows.iter().enumerate() {
            self.queue.schedule_at(w.from.max(now), Event::NodeFault { window: i, start: true });
            self.queue.schedule_at(w.until.max(now), Event::NodeFault { window: i, start: false });
        }
        self.faults = plan;
    }

    /// The installed fault plan (empty unless [`Network::set_fault_plan`]
    /// was called).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the installed tracer (e.g. to flush its time
    /// series after a run).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Record every arrival/transmit/drop of `flow`'s packets (any kind:
    /// data, credits, ACKs, probes…). Call before running.
    pub fn trace_flow(&mut self, flow: crate::packet::FlowId) {
        self.traced.insert(flow);
    }

    /// Switch the event scheduler implementation. Used by benchmarks and
    /// determinism cross-checks; must be called before any event is
    /// scheduled or processed.
    ///
    /// # Panics
    /// Panics if events are already pending or time has advanced.
    pub fn set_scheduler(&mut self, kind: SchedulerKind) {
        assert!(
            self.queue.is_empty() && self.queue.now() == 0,
            "set_scheduler on a live network"
        );
        self.queue = EventQueue::with_scheduler(kind);
    }

    /// Which event scheduler this network runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        self.queue.scheduler()
    }

    /// The recorded trace, in event order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    #[inline]
    fn record_ref(&mut self, node: NodeId, r: PacketRef, what: TraceKind) {
        if !self.traced.is_empty() {
            let pkt = self.pool.get(r);
            if self.traced.contains(&pkt.flow) {
                let ev = TraceEvent {
                    at: self.queue.now(),
                    node,
                    what,
                    kind: pkt.kind,
                    class: pkt.class,
                    seq: pkt.seq,
                    priority: pkt.priority,
                };
                self.trace.push(ev);
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Add a switch with the given routing policy, RNG seed (for spraying)
    /// and ingress (switching) delay. Ports are added via [`Network::connect`].
    pub fn add_switch(&mut self, policy: RoutePolicy, seed: u64, ingress_delay: Time) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            ports: Vec::new(),
            ingress_delay,
            kind: NodeKind::Switch { table: RouteTable::new(0, policy, seed) },
        });
        id
    }

    /// Add a host with the given ingress (stack) delay. Install its endpoint
    /// with [`Network::set_endpoint`] and wire its NIC with [`Network::connect`].
    pub fn add_host(&mut self, ingress_delay: Time) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            ports: Vec::new(),
            ingress_delay,
            kind: NodeKind::Host { endpoint: None },
        });
        id
    }

    /// Install the transport endpoint on `host`.
    pub fn set_endpoint(&mut self, host: NodeId, ep: Box<dyn Endpoint>) {
        match &mut self.nodes[host.0 as usize].kind {
            NodeKind::Host { endpoint } => *endpoint = Some(ep),
            NodeKind::Switch { .. } => panic!("set_endpoint on a switch"),
        }
    }

    /// Add a simplex link from `from` to `to` with the given rate, delay and
    /// egress queue; returns the new egress port id on `from`.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        rate: Rate,
        delay: Time,
        queue: Box<dyn QueueDisc>,
    ) -> PortId {
        assert!((to.0 as usize) < self.nodes.len(), "link to unknown node");
        let node = &mut self.nodes[from.0 as usize];
        let pid = PortId(node.ports.len() as u16);
        node.ports.push(Port::new(Link { rate, delay, to }, queue));
        if T::ENABLED {
            self.tracer.port_registered(from, pid, rate, to);
        }
        pid
    }

    /// Register `port` on switch `sw` as a next hop towards destination `dst`.
    pub fn add_route(&mut self, sw: NodeId, dst: NodeId, port: PortId) {
        match &mut self.nodes[sw.0 as usize].kind {
            NodeKind::Switch { table } => table.add_route(dst, port),
            NodeKind::Host { .. } => panic!("add_route on a host"),
        }
    }

    /// Schedule an application flow; its arrival fires at `desc.start`.
    pub fn schedule_flow(&mut self, desc: FlowDesc) {
        assert!(self.nodes[desc.src.0 as usize].is_host(), "flow src must be a host");
        assert!(self.nodes[desc.dst.0 as usize].is_host(), "flow dst must be a host");
        self.metrics.flow_scheduled(desc);
        self.queue.schedule_at(desc.start, Event::FlowArrival { flow: Box::new(desc) });
    }

    /// Immutable access to a node (for tests and stats readers).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node's port (to read/mutate queue state in tests
    /// and experiment probes).
    pub fn port_mut(&mut self, id: NodeId, port: PortId) -> &mut Port {
        &mut self.nodes[id.0 as usize].ports[port.0 as usize]
    }

    /// Immutable access to a node's port.
    pub fn port(&self, id: NodeId, port: PortId) -> &Port {
        &self.nodes[id.0 as usize].ports[port.0 as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Run until the event queue is exhausted or simulated time exceeds
    /// `horizon`. Returns true if all scheduled flows completed.
    pub fn run_to_completion(&mut self, horizon: Time) -> bool {
        // "Settled" counts aborted flows too, but an abort with a restart
        // pending is not a terminal state — keep draining until the restart
        // window fires.
        while !(self.metrics.flow_count() > 0
            && self.metrics.all_settled()
            && self.pending_restart.is_empty())
        {
            let Some((_, ev)) = self.queue.pop_at_or_before(horizon) else { break };
            self.events_processed += 1;
            self.dispatch(ev);
        }
        self.metrics.all_complete()
    }

    /// Run until simulated time reaches `until` (events at exactly `until`
    /// are processed).
    pub fn run_until(&mut self, until: Time) {
        while let Some((_, ev)) = self.queue.pop_at_or_before(until) {
            self.events_processed += 1;
            self.dispatch(ev);
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrival { node, pkt } => self.handle_arrival(node, pkt),
            Event::PortFree { node, port } => {
                self.nodes[node.0 as usize].ports[port.0 as usize].busy = false;
                self.try_transmit(node, port);
            }
            Event::PortKick { node, port } => {
                self.nodes[node.0 as usize].ports[port.0 as usize].kick_at = None;
                self.try_transmit(node, port);
            }
            Event::Timer { node, token } => {
                self.with_endpoint(node, |ep, ctx| ep.on_timer(token, ctx));
            }
            Event::FlowArrival { flow } => {
                let flow = *flow;
                let now = self.queue.now();
                if !self.faults.is_empty()
                    && (self.faults.node_down_at(flow.src, now)
                        || self.faults.node_down_at(flow.dst, now))
                {
                    // The flow arrives while an endpoint is dead: abort on
                    // the spot and relaunch when the crash window ends.
                    self.abort_flow(flow, AbortCause::NodeCrash, true);
                } else {
                    self.with_endpoint(flow.src, |ep, ctx| ep.on_flow_arrival(flow, ctx));
                }
            }
            Event::FaultWindow { window, start } => self.on_fault_window(window, start),
            Event::NodeFault { window, start } => self.on_node_fault(window, start),
        }
    }

    /// A fault window transitioned: surface it to telemetry and re-kick
    /// every port it covers — waking queues that stalled while their link
    /// was down and re-evaluating pacing under a changed degrade factor.
    fn on_fault_window(&mut self, window: usize, start: bool) {
        let w = self.faults.windows[window].clone();
        if T::ENABLED {
            let now = self.queue.now();
            let ev = if start {
                FaultEvent::WindowStart { window, kind: w.kind }
            } else {
                FaultEvent::WindowEnd { window, kind: w.kind }
            };
            self.tracer.fault_event(now, &ev);
        }
        let mut touched = Vec::new();
        for n in &self.nodes {
            for (pi, p) in n.ports.iter().enumerate() {
                let pid = PortId(pi as u16);
                if w.links.matches(n.id, pid, p.link.to) {
                    touched.push((n.id, pid));
                }
            }
        }
        for (n, p) in touched {
            self.try_transmit(n, p);
        }
    }

    /// A node-fault window transitioned.
    ///
    /// Start: the node goes dark. Every packet sitting in its egress queues
    /// dies with the window's taxonomy, the endpoint (if any) wipes its
    /// per-flow transport state, and every incomplete flow touching the node
    /// aborts. Crash-kind aborts queue for relaunch at the window end;
    /// arbiter-outage windows abort nothing (workload flows never terminate
    /// at the arbiter — they merely lose its control traffic).
    ///
    /// End: the node comes back. Its ports and every port feeding it are
    /// re-kicked, and pending flows whose endpoints are all alive again are
    /// relaunched through a fresh `FlowArrival`.
    fn on_node_fault(&mut self, window: usize, start: bool) {
        let w = self.faults.node_windows[window].clone();
        let node = w.node_id().expect("node window installed unresolved");
        let now = self.queue.now();
        if start {
            if T::ENABLED {
                self.tracer.fault_event(now, &FaultEvent::NodeCrash { node });
            }
            self.purge_ports(node, now);
            if self.has_endpoint(node) {
                self.with_endpoint(node, |ep, ctx| ep.on_crash(ctx));
            }
            if matches!(w.kind, NodeFaultKind::Crash) {
                // Abort in flow-id order: `flows()` iterates the record slab
                // in insertion order, which is schedule order — deterministic.
                let touched: Vec<FlowDesc> = self
                    .metrics
                    .flows()
                    .filter(|rec| {
                        rec.completed_at.is_none()
                            && rec.aborted.is_none()
                            && rec.desc.start <= now
                            && (rec.desc.src == node || rec.desc.dst == node)
                    })
                    .map(|rec| rec.desc)
                    .collect();
                for desc in touched {
                    self.abort_flow(desc, AbortCause::NodeCrash, true);
                }
            }
        } else {
            if T::ENABLED {
                self.tracer.fault_event(now, &FaultEvent::NodeRestart { node });
            }
            // Relaunch aborted flows whose endpoints are both back up.
            let pending = std::mem::take(&mut self.pending_restart);
            let mut keep = Vec::new();
            for desc in pending {
                if self.faults.node_down_at(desc.src, now)
                    || self.faults.node_down_at(desc.dst, now)
                {
                    keep.push(desc);
                    continue;
                }
                self.metrics.restart_flow(desc.id);
                if T::ENABLED {
                    self.tracer.fault_event(now, &FaultEvent::FlowRestarted { flow: desc.id });
                }
                if self.has_endpoint(desc.src) {
                    self.with_endpoint(desc.src, move |ep, ctx| ep.on_flow_restart(desc, ctx));
                }
                if desc.dst != desc.src && self.has_endpoint(desc.dst) {
                    self.with_endpoint(desc.dst, move |ep, ctx| ep.on_flow_restart(desc, ctx));
                }
                // Relaunch keeps the original descriptor (and original
                // `start`), so the recorded FCT honestly spans the outage.
                self.queue.schedule_at(now, Event::FlowArrival { flow: Box::new(desc) });
            }
            self.pending_restart.extend(keep);
            // Wake every port stalled by the crash: the node's own egress
            // plus every port whose link feeds it.
            let mut touched = Vec::new();
            for n in &self.nodes {
                for (pi, p) in n.ports.iter().enumerate() {
                    if n.id == node || p.link.to == node {
                        touched.push((n.id, PortId(pi as u16)));
                    }
                }
            }
            for (n, p) in touched {
                self.try_transmit(n, p);
            }
        }
    }

    /// Abort `desc` (idempotent): record the cause, notify both endpoints so
    /// they drop and tombstone their state, and optionally queue the flow
    /// for relaunch at the next node-window end.
    fn abort_flow(&mut self, desc: FlowDesc, cause: AbortCause, restartable: bool) {
        if !self.metrics.abort_flow(desc.id, cause) {
            return;
        }
        if T::ENABLED {
            let now = self.queue.now();
            self.tracer.fault_event(now, &FaultEvent::FlowAborted { flow: desc.id, cause });
        }
        if self.has_endpoint(desc.src) {
            self.with_endpoint(desc.src, move |ep, ctx| ep.on_flow_abort(desc, ctx));
        }
        if desc.dst != desc.src && self.has_endpoint(desc.dst) {
            self.with_endpoint(desc.dst, move |ep, ctx| ep.on_flow_abort(desc, ctx));
        }
        if restartable {
            self.pending_restart.push(desc);
        }
    }

    /// Drop a packet arriving at a crashed host: account the drop under the
    /// node window's taxonomy and surface a `PacketKilled` fault event so
    /// in-flight ledgers stay balanced.
    fn kill_at_dead_node(&mut self, node: NodeId, r: PacketRef, now: Time) {
        let reason = self.faults.node_drop_reason(node, now);
        self.record_ref(node, r, TraceKind::Drop(reason));
        self.metrics.note_drop(reason, self.pool.get(r).class);
        if T::ENABLED {
            let p = self.pool.get(r);
            let ev = FaultEvent::PacketKilled {
                node,
                port: PortId(0),
                flow: p.flow,
                seq: p.seq,
                kind: p.kind,
                class: p.class,
                payload: p.payload,
                reason,
            };
            self.tracer.fault_event(now, &ev);
        }
        self.pool.free(r);
    }

    /// Drop a straggler from a pre-relaunch flow incarnation at the host
    /// NIC: same mechanics as [`Network::kill_at_dead_node`], but with the
    /// recovery taxonomy rather than the node window's.
    fn kill_stale_incarnation(&mut self, node: NodeId, r: PacketRef, now: Time) {
        let reason = DropReason::StaleIncarnation;
        self.record_ref(node, r, TraceKind::Drop(reason));
        self.metrics.note_drop(reason, self.pool.get(r).class);
        if T::ENABLED {
            let p = self.pool.get(r);
            let ev = FaultEvent::PacketKilled {
                node,
                port: PortId(0),
                flow: p.flow,
                seq: p.seq,
                kind: p.kind,
                class: p.class,
                payload: p.payload,
                reason,
            };
            self.tracer.fault_event(now, &ev);
        }
        self.pool.free(r);
    }

    fn has_endpoint(&self, node: NodeId) -> bool {
        matches!(&self.nodes[node.0 as usize].kind, NodeKind::Host { endpoint: Some(_) })
    }

    /// Kill every packet queued at `node`'s egress ports (node crash). Each
    /// kill emits a dequeue record — keeping queue-occupancy ledgers
    /// balanced — and a `PacketKilled` fault event, then recycles the slot.
    ///
    /// Packets held back by a pacing discipline (poll says `NotBefore`)
    /// survive the purge: they stay queued through the outage and emerge as
    /// stale-but-harmless wire traffic after restart, which the recovery
    /// layer must tolerate anyway (tombstones / receive-book dedupe).
    fn purge_ports(&mut self, node: NodeId, now: Time) {
        let reason = self.faults.node_drop_reason(node, now);
        for pi in 0..self.nodes[node.0 as usize].ports.len() {
            let port = PortId(pi as u16);
            loop {
                let r = {
                    let pool = &mut self.pool;
                    let p = &mut self.nodes[node.0 as usize].ports[pi];
                    let prev = p.queue.bytes();
                    match p.queue.poll(pool, now) {
                        Poll::Ready(r) => {
                            p.stats.on_qlen_change(prev, now);
                            p.stats.observe_qlen(p.queue.bytes());
                            p.stats.fault_kills += 1;
                            r
                        }
                        Poll::NotBefore(_) | Poll::Empty => break,
                    }
                };
                self.record_ref(node, r, TraceKind::Drop(reason));
                self.metrics.note_drop(reason, self.pool.get(r).class);
                if T::ENABLED {
                    let (rec, ev) = {
                        let p = self.pool.get(r);
                        let port_ref = &self.nodes[node.0 as usize].ports[pi];
                        (
                            QueueRecord {
                                at: now,
                                node,
                                port,
                                ev: QueueEvent::Dequeue,
                                flow: p.flow,
                                seq: p.seq,
                                kind: p.kind,
                                class: p.class,
                                size: p.size,
                                payload: p.payload,
                                qlen_bytes: port_ref.queue.bytes(),
                                qlen_pkts: port_ref.queue.pkts(),
                            },
                            FaultEvent::PacketKilled {
                                node,
                                port,
                                flow: p.flow,
                                seq: p.seq,
                                kind: p.kind,
                                class: p.class,
                                payload: p.payload,
                                reason,
                            },
                        )
                    };
                    self.tracer.queue_event(&rec);
                    self.tracer.fault_event(now, &ev);
                    self.sample_bands(now, node, port);
                }
                self.pool.free(r);
            }
        }
    }

    fn handle_arrival(&mut self, node: NodeId, r: PacketRef) {
        self.record_ref(node, r, TraceKind::Arrive);
        let now = self.queue.now();
        if !self.faults.is_empty()
            && self.nodes[node.0 as usize].is_host()
            && self.faults.node_down_at(node, now)
        {
            // Delivery to a crashed host: the packet dies at the NIC with
            // the node window's taxonomy, never reaching the endpoint.
            self.kill_at_dead_node(node, r, now);
            return;
        }
        if !self.faults.is_empty()
            && self.faults.has_node_faults()
            && self.nodes[node.0 as usize].is_host()
        {
            // Reject stragglers from a dead flow incarnation: a cumulative
            // grant/credit packet sent pre-crash must not inflate the
            // relaunched incarnation's budget.
            let pkt = self.pool.get(r);
            let current = self.metrics.flow(pkt.flow).map_or(0, |rec| rec.restarts);
            if pkt.incarnation < current {
                self.kill_stale_incarnation(node, r, now);
                return;
            }
        }
        let faults = &self.faults;
        let pool = &mut self.pool;
        let Node { kind, ports, .. } = &mut self.nodes[node.0 as usize];
        match kind {
            NodeKind::Switch { table } => {
                let port = if faults.is_empty() {
                    table.select(pool.get(r))
                } else {
                    // Down links (including links into crashed nodes) are
                    // visible to routing: steer around them while an
                    // alternative next hop is up.
                    let ports = &*ports;
                    table.select_avoiding(pool.get(r), |p| {
                        faults.link_down_at(node, p, ports[p.0 as usize].link.to, now)
                    })
                };
                pool.get_mut(r).hops += 1;
                self.enqueue_egress(node, port, r);
            }
            NodeKind::Host { .. } => {
                debug_assert_eq!(pool.get(r).dst, node, "packet delivered to wrong host");
                if T::ENABLED {
                    let pkt = pool.get(r);
                    if pkt.is_data() && pkt.payload > 0 {
                        let ev = HostEvent {
                            at: now,
                            flow: pkt.flow,
                            seq: pkt.seq,
                            class: pkt.class,
                            payload: pkt.payload as u64,
                            retransmit: pkt.retransmit,
                        };
                        self.tracer.packet_delivered(&ev);
                    }
                }
                // The endpoint consumes the packet by value; its slot is
                // recycled before the callback runs.
                let pkt = self.pool.take(r);
                self.with_endpoint(node, move |ep, ctx| ep.on_packet(pkt, ctx));
            }
        }
    }

    /// Offer `pkt` to the egress queue of (`node`, `port`) and start the
    /// transmitter if idle.
    fn enqueue_egress(&mut self, node: NodeId, port: PortId, pkt: PacketRef) {
        let now = self.queue.now();
        // The packet may be trimmed inside `enqueue`, so capture its
        // identity first when tracing.
        let info = if T::ENABLED {
            let p = self.pool.get(pkt);
            Some((p.flow, p.seq, p.kind, p.class, p.size, p.payload))
        } else {
            None
        };
        let (outcome, qlen_bytes, qlen_pkts) = {
            let pool = &mut self.pool;
            let p = &mut self.nodes[node.0 as usize].ports[port.0 as usize];
            let prev = p.queue.bytes();
            let outcome = p.queue.enqueue(pkt, pool, now);
            p.stats.on_qlen_change(prev, now);
            p.stats.observe_qlen(p.queue.bytes());
            if matches!(outcome, EnqueueOutcome::Dropped { .. }) {
                p.stats.drops += 1;
            }
            (outcome, p.queue.bytes(), p.queue.pkts())
        };
        let ev = match &outcome {
            EnqueueOutcome::Queued => QueueEvent::Enqueue,
            EnqueueOutcome::QueuedMarked => QueueEvent::EnqueueMarked,
            EnqueueOutcome::QueuedTrimmed => QueueEvent::EnqueueTrimmed,
            EnqueueOutcome::Dropped { reason, .. } => QueueEvent::Drop(*reason),
        };
        match outcome {
            EnqueueOutcome::Queued => {}
            EnqueueOutcome::QueuedMarked => self.metrics.ce_marks += 1,
            EnqueueOutcome::QueuedTrimmed => self.metrics.trimmed += 1,
            EnqueueOutcome::Dropped { reason, pkt } => {
                self.record_ref(node, pkt, TraceKind::Drop(reason));
                self.metrics.note_drop(reason, self.pool.get(pkt).class);
                self.pool.free(pkt);
            }
        }
        if T::ENABLED {
            let (flow, seq, kind, class, size, payload) = info.expect("captured when enabled");
            self.tracer.queue_event(&QueueRecord {
                at: now,
                node,
                port,
                ev,
                flow,
                seq,
                kind,
                class,
                size,
                payload,
                qlen_bytes,
                qlen_pkts,
            });
            self.sample_bands(now, node, port);
        }
        self.try_transmit(node, port);
    }

    /// Feed the queue's per-band occupancy to the tracer (tracing on only).
    fn sample_bands(&mut self, now: Time, node: NodeId, port: PortId) {
        self.band_scratch.clear();
        let p = &self.nodes[node.0 as usize].ports[port.0 as usize];
        p.queue.bands(&mut self.band_scratch);
        self.tracer.queue_bands(now, node, port, &self.band_scratch);
    }

    /// If the transmitter of (`node`, `port`) is idle and the queue can
    /// provide a packet, serialize it onto the link.
    fn try_transmit(&mut self, node: NodeId, port: PortId) {
        let now = self.queue.now();
        enum Next {
            Send { to: NodeId, at_dst: Time, free_at: Time, pkt: PacketRef },
            Kill { free_at: Time, pkt: PacketRef, reason: DropReason },
            Kick(Time),
            Idle,
        }
        let mut deq_rec = None;
        let faults_active = !self.faults.is_empty();
        let next = {
            let faults = &self.faults;
            let fault_rng = &mut self.fault_rng;
            let pool = &mut self.pool;
            let p = &mut self.nodes[node.0 as usize].ports[port.0 as usize];
            if p.busy {
                Next::Idle
            } else if faults_active && faults.link_down_at(node, port, p.link.to, now) {
                // Link is down: leave the queue untouched. The window-end
                // FaultWindow event re-kicks this port.
                Next::Idle
            } else {
                let prev = p.queue.bytes();
                match p.queue.poll(pool, now) {
                    Poll::Ready(r) => {
                        p.busy = true;
                        p.stats.on_qlen_change(prev, now);
                        p.stats.observe_qlen(p.queue.bytes());
                        let pkt = pool.get(r);
                        p.stats.bytes_tx += pkt.size as u64;
                        p.stats.pkts_tx += 1;
                        p.stats.payload_tx += pkt.payload as u64;
                        let mut ser = p.serialize(pkt.size as u64);
                        if faults_active {
                            ser *= faults.slowdown_at(node, port, p.link.to, now) as Time;
                        }
                        if T::ENABLED {
                            deq_rec = Some(QueueRecord {
                                at: now,
                                node,
                                port,
                                ev: QueueEvent::Dequeue,
                                flow: pkt.flow,
                                seq: pkt.seq,
                                kind: pkt.kind,
                                class: pkt.class,
                                size: pkt.size,
                                payload: pkt.payload,
                                qlen_bytes: p.queue.bytes(),
                                qlen_pkts: p.queue.pkts(),
                            });
                        }
                        let free_at = now + ser;
                        if let Some(reason) = (faults_active)
                            .then(|| faults.cut_reason(node, port, p.link.to, now, free_at))
                            .flatten()
                        {
                            // The link flaps — or one of its endpoints dies —
                            // while the packet is on the wire: the
                            // transmitter clocks the bits out, but the far
                            // end never sees them. `cut_reason` keeps the
                            // taxonomy distinct (node vs control-plane vs
                            // link faults).
                            p.stats.fault_kills += 1;
                            Next::Kill { free_at, pkt: r, reason }
                        } else if faults_active && faults.blackout_kills(pool.get(r), now) {
                            // Arbiter outage on a distributed credit source:
                            // the credit stream dies at the egress. Checked
                            // before corruption so blackout kills draw no RNG.
                            p.stats.fault_kills += 1;
                            Next::Kill { free_at, pkt: r, reason: DropReason::ArbiterDown }
                        } else if faults_active
                            && faults.corrupts(node, port, p.link.to, pool.get(r), fault_rng)
                        {
                            p.stats.fault_kills += 1;
                            Next::Kill { free_at, pkt: r, reason: DropReason::Corruption }
                        } else {
                            Next::Send {
                                to: p.link.to,
                                at_dst: free_at + p.link.delay,
                                free_at,
                                pkt: r,
                            }
                        }
                    }
                    Poll::NotBefore(t) => {
                        // Dedupe pacing kicks: only schedule if none pending
                        // at or before `t`.
                        if p.kick_at.is_none_or(|k| k > t) {
                            p.kick_at = Some(t.max(now));
                            Next::Kick(t.max(now))
                        } else {
                            Next::Idle
                        }
                    }
                    Poll::Empty => Next::Idle,
                }
            }
        };
        match next {
            Next::Send { to, at_dst, free_at, pkt } => {
                self.record_ref(node, pkt, TraceKind::Transmit);
                if T::ENABLED {
                    if let Some(rec) = deq_rec {
                        let size = self.pool.get(pkt).size as u64;
                        self.tracer.queue_event(&rec);
                        self.tracer.link_tx(now, node, port, size);
                        self.sample_bands(now, node, port);
                    }
                }
                let ingress = self.nodes[to.0 as usize].ingress_delay;
                self.queue.schedule_at(free_at, Event::PortFree { node, port });
                self.queue.schedule_at(at_dst + ingress, Event::Arrival { node: to, pkt });
            }
            Next::Kill { free_at, pkt, reason } => {
                self.record_ref(node, pkt, TraceKind::Drop(reason));
                self.metrics.note_drop(reason, self.pool.get(pkt).class);
                if T::ENABLED {
                    if let Some(rec) = deq_rec {
                        let size = self.pool.get(pkt).size as u64;
                        self.tracer.queue_event(&rec);
                        self.tracer.link_tx(now, node, port, size);
                        self.sample_bands(now, node, port);
                    }
                    let p = self.pool.get(pkt);
                    let ev = FaultEvent::PacketKilled {
                        node,
                        port,
                        flow: p.flow,
                        seq: p.seq,
                        kind: p.kind,
                        class: p.class,
                        payload: p.payload,
                        reason,
                    };
                    self.tracer.fault_event(now, &ev);
                }
                // The transmitter was still occupied for the serialization
                // time; only the arrival is suppressed. The slot is recycled
                // now — nothing downstream will ever read it.
                self.pool.free(pkt);
                self.queue.schedule_at(free_at, Event::PortFree { node, port });
            }
            Next::Kick(t) => {
                self.queue.schedule_at(t, Event::PortKick { node, port });
            }
            Next::Idle => {}
        }
    }

    /// Run `f` against the endpoint installed on `host`, then apply the
    /// actions it buffered (sends through the NIC, timer arming).
    fn with_endpoint<F>(&mut self, host: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx<'_>),
    {
        let now = self.queue.now();
        let line_rate = self.nodes[host.0 as usize]
            .ports
            .first()
            .map(|p| p.link.rate)
            .expect("host has no NIC port");
        let mut ep = match &mut self.nodes[host.0 as usize].kind {
            NodeKind::Host { endpoint } => endpoint.take().expect("endpoint not installed"),
            NodeKind::Switch { .. } => panic!("endpoint dispatch on a switch"),
        };
        // Reuse the scratch buffers: endpoint dispatch is the single hottest
        // call site, and a fresh `Actions` per dispatch would allocate twice
        // per event in steady state. `take` leaves a default in place, so a
        // (hypothetical) re-entrant dispatch degrades to allocation, not UB.
        let mut actions = std::mem::take(&mut self.actions_scratch);
        debug_assert!(actions.sends.is_empty() && actions.timers.is_empty());
        {
            let mut ctx = Ctx {
                now,
                host,
                line_rate,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                trace_enabled: T::ENABLED,
                actions: &mut actions,
                next_token: &mut self.next_token,
            };
            f(ep.as_mut(), &mut ctx);
        }
        match &mut self.nodes[host.0 as usize].kind {
            NodeKind::Host { endpoint } => *endpoint = Some(ep),
            NodeKind::Switch { .. } => unreachable!(),
        }
        for &(at, token) in &actions.timers {
            self.queue.schedule_at(at, Event::Timer { node: host, token });
        }
        actions.timers.clear();
        for mut pkt in actions.sends.drain(..) {
            pkt.uid = self.uid;
            self.uid += 1;
            pkt.sent_at = now;
            pkt.src = host;
            // Stamp the ECMP hash once; every switch on the path reuses it.
            pkt.route_hash = crate::routing::fnv1a(pkt.flow.0, pkt.path_tag);
            // Stamp the flow incarnation so stragglers outlived by a crash
            // relaunch can be rejected at delivery. Only node faults can
            // restart flows, so the fault-free hot path skips the lookup.
            if self.faults.has_node_faults() {
                pkt.incarnation =
                    self.metrics.flow(pkt.flow).map_or(0, |rec| rec.restarts);
            }
            if pkt.is_data() && pkt.payload > 0 {
                self.metrics.payload_sent += pkt.payload as u64;
                if pkt.retransmit {
                    self.metrics.note_retransmit(pkt.flow, pkt.payload as u64);
                }
                if T::ENABLED {
                    let ev = HostEvent {
                        at: now,
                        flow: pkt.flow,
                        seq: pkt.seq,
                        class: pkt.class,
                        payload: pkt.payload as u64,
                        retransmit: pkt.retransmit,
                    };
                    self.tracer.packet_launched(&ev);
                }
            }
            let r = self.pool.insert(pkt);
            self.enqueue_egress(host, PortId(0), r);
        }
        self.actions_scratch = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet, PacketKind, TrafficClass, HEADER_BYTES};
    use crate::queues::DropTailQueue;
    use crate::units::{us, Rate};

    /// Endpoint that sends its whole flow at line rate on arrival and counts
    /// delivered bytes on the receive side.
    struct Blaster {
        mtu_payload: u32,
    }

    impl Endpoint for Blaster {
        fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
            let mut off = 0u64;
            while off < flow.size {
                let chunk = self.mtu_payload.min((flow.size - off) as u32);
                ctx.send(Packet::data(
                    flow.id,
                    flow.src,
                    flow.dst,
                    off,
                    chunk,
                    TrafficClass::Scheduled,
                    flow.size,
                ));
                off += chunk as u64;
            }
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if pkt.is_data() {
                ctx.metrics.deliver(pkt.flow, pkt.payload as u64, ctx.now);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}
    }

    fn two_hosts_one_switch() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let sw = net.add_switch(RoutePolicy::EcmpHash, 1, 0);
        let h0 = net.add_host(0);
        let h1 = net.add_host(0);
        let rate = Rate::gbps(10);
        let delay = us(1);
        let q = || Box::new(DropTailQueue::new(1 << 30)) as Box<dyn QueueDisc>;
        net.connect(h0, sw, rate, delay, q());
        net.connect(h1, sw, rate, delay, q());
        let p0 = net.connect(sw, h0, rate, delay, q());
        let p1 = net.connect(sw, h1, rate, delay, q());
        net.add_route(sw, h0, p0);
        net.add_route(sw, h1, p1);
        net.set_endpoint(h0, Box::new(Blaster { mtu_payload: 1460 }));
        net.set_endpoint(h1, Box::new(Blaster { mtu_payload: 1460 }));
        (net, h0, h1)
    }

    #[test]
    fn single_packet_fct_matches_hand_computation() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        let size = 1000u64;
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        // Wire size = 1040 B. Two serializations (host NIC + switch egress)
        // at 10 Gbps = 2 * 832 ns, plus 2 us propagation per hop.
        let ser = Rate::gbps(10).serialize(size + HEADER_BYTES as u64);
        let expect = 2 * ser + 2 * us(1);
        let fct = net.metrics.flow(FlowId(1)).unwrap().fct().unwrap();
        assert_eq!(fct, expect);
    }

    #[test]
    fn large_flow_is_paced_by_bottleneck_serialization() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        // 100 packets of 1460 B payload.
        let size = 146_000u64;
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size, start: 0 });
        assert!(net.run_to_completion(us(10_000)));
        let ser = Rate::gbps(10).serialize(1500);
        // Pipeline: 100 serializations at the NIC, plus one more at the
        // switch for the last packet, plus propagation.
        let expect = 100 * ser + ser + 2 * us(1);
        let fct = net.metrics.flow(FlowId(1)).unwrap().fct().unwrap();
        assert_eq!(fct, expect);
    }

    #[test]
    fn two_flows_share_the_engine_deterministically() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 14_600, start: 0 });
        net.schedule_flow(FlowDesc { id: FlowId(2), src: h1, dst: h0, size: 14_600, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        let f1 = net.metrics.flow(FlowId(1)).unwrap().fct().unwrap();
        let f2 = net.metrics.flow(FlowId(2)).unwrap().fct().unwrap();
        assert_eq!(f1, f2, "symmetric flows must have identical FCTs");
    }

    #[test]
    fn run_until_stops_at_time_boundary() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 146_000, start: 0 });
        net.run_until(us(2));
        assert!(net.now() <= us(2));
        assert!(!net.metrics.all_complete());
        net.run_until(us(10_000));
        assert!(net.metrics.all_complete());
    }

    #[test]
    fn flow_tracing_records_the_packet_journey() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.trace_flow(FlowId(1));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 2_920, start: 0 });
        // An untraced flow leaves no events.
        net.schedule_flow(FlowDesc { id: FlowId(2), src: h1, dst: h0, size: 1_460, start: 0 });
        net.run_to_completion(us(1000));
        let trace = net.trace();
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at, "trace must be time-ordered");
        }
        // The journey: host tx, switch arrive, switch tx, host arrive — two
        // packets, so at least 8 events.
        assert!(trace.len() >= 8, "saw {} events", trace.len());
        let transmits = trace.iter().filter(|e| e.what == TraceKind::Transmit).count();
        let arrives = trace.iter().filter(|e| e.what == TraceKind::Arrive).count();
        assert_eq!(transmits, arrives, "every transmit arrives on a lossless path");
    }

    #[test]
    fn corruption_kills_packets_on_the_wire() {
        use crate::faults::{FaultPlan, LinkFilter, PacketFilter};
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.set_fault_plan(FaultPlan::new(1).with_loss(
            1.0,
            PacketFilter::Data,
            LinkFilter::Node(h0),
        ));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 2_920, start: 0 });
        assert!(!net.run_to_completion(us(1000)), "all data corrupted at the NIC");
        assert_eq!(net.metrics.payload_delivered, 0);
        assert_eq!(
            net.metrics.drops_by_reason(crate::queues::DropReason::Corruption),
            2,
            "both data packets must be accounted as corruption, never congestion"
        );
        assert_eq!(net.metrics.drops_by_reason(crate::queues::DropReason::SelectiveDrop), 0);
        assert_eq!(net.port(h0, PortId(0)).stats.fault_kills, 2);
    }

    #[test]
    fn down_window_stalls_the_queue_then_recovers() {
        use crate::faults::{FaultPlan, LinkFilter};
        let (mut net, h0, h1) = two_hosts_one_switch();
        // Every link is down for the first 50 us; the flow arrives at t=0,
        // waits in the NIC queue, and completes untouched after the flap.
        net.set_fault_plan(FaultPlan::new(0).with_down(0, us(50), LinkFilter::All));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 14_600, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        let done = net.metrics.flow(FlowId(1)).unwrap().completed_at.unwrap();
        assert!(done > us(50), "nothing can be delivered while links are down");
        assert_eq!(net.metrics.total_drops(), 0, "stalled packets are not lost");
    }

    #[test]
    fn mid_flight_cut_is_a_link_down_drop() {
        use crate::faults::{FaultPlan, LinkFilter};
        let (mut net, h0, h1) = two_hosts_one_switch();
        // The first packet starts serializing at t=0 (832 ns at 10G); a down
        // window opening at 100 ns cuts it on the wire.
        net.set_fault_plan(FaultPlan::new(0).with_down(
            100 * crate::units::PS_PER_NS,
            us(2),
            LinkFilter::Node(h0),
        ));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 1_460, start: 0 });
        net.run_to_completion(us(100));
        assert_eq!(net.metrics.drops_by_reason(crate::queues::DropReason::LinkDown), 1);
        assert_eq!(net.metrics.payload_delivered, 0);
    }

    #[test]
    fn crashed_sender_purges_queue_aborts_and_relaunches() {
        use crate::faults::FaultPlan;
        let (mut net, h0, h1) = two_hosts_one_switch();
        // Host 0 (index 1 of the engine host list is h1; Host(0) -> h0)
        // crashes just after the flow starts blasting: the packet on the
        // wire is cut and the nine queued behind it are purged, all under
        // the NodeDown taxonomy. The flow aborts, then relaunches when the
        // host comes back and completes from scratch.
        net.set_fault_plan(FaultPlan::new(0).with_crash(100 * crate::units::PS_PER_NS, us(50), 0));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 14_600, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        assert_eq!(net.metrics.drops_by_reason(DropReason::NodeDown), 10);
        assert_eq!(net.metrics.drops_by_reason(DropReason::LinkDown), 0);
        let rec = net.metrics.flow(FlowId(1)).unwrap();
        assert_eq!(rec.restarts, 1);
        assert!(rec.aborted.is_none());
        assert!(rec.completed_at.unwrap() > us(50), "completion spans the outage");
        assert_eq!(net.metrics.payload_delivered, 14_600);
        assert_eq!(net.metrics.payload_sent, 2 * 14_600, "full resend after restart");
        assert!(net.metrics.all_settled());
    }

    #[test]
    fn flow_arriving_during_crash_window_defers_to_restart() {
        use crate::faults::FaultPlan;
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.set_fault_plan(FaultPlan::new(0).with_crash(0, us(50), 0));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 1_460, start: us(10) });
        assert!(net.run_to_completion(us(1000)));
        let rec = net.metrics.flow(FlowId(1)).unwrap();
        assert_eq!(rec.restarts, 1, "arrival at a dead host defers, then relaunches");
        assert_eq!(net.metrics.drops_by_reason(DropReason::NodeDown), 0);
        assert!(rec.completed_at.unwrap() > us(50));
        // FCT is measured from the original start: the outage is not hidden.
        assert!(rec.fct().unwrap() > us(40));
    }

    #[test]
    fn receiver_crash_kills_in_flight_arrivals_with_node_taxonomy() {
        use crate::faults::FaultPlan;
        let (mut net, h0, h1) = two_hosts_one_switch();
        // The single packet is past the switch when the receiver dies at
        // 3 us; it arrives at a dead NIC and is killed as NodeDown. The
        // abort queues the flow, which relaunches at 10 us and completes.
        net.set_fault_plan(FaultPlan::new(0).with_node_crash(us(3), us(10), h1));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 1_460, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        assert_eq!(net.metrics.drops_by_reason(DropReason::NodeDown), 1);
        let rec = net.metrics.flow(FlowId(1)).unwrap();
        assert_eq!(rec.restarts, 1);
        assert_eq!(net.metrics.payload_delivered, 1_460, "restart rewinds delivery accounting");
    }

    #[test]
    fn straggler_from_dead_incarnation_is_rejected_at_delivery() {
        use crate::faults::FaultPlan;
        let (mut net, h0, h1) = two_hosts_one_switch();
        // A 1 ns receiver blink: the flow aborts and relaunches almost
        // instantly, while the first incarnation's packets are still queued
        // at the switch. They arrive at the *restarted* incarnation and must
        // die as StaleIncarnation — delivering pre-crash state (receive-book
        // bytes, cumulative grants in the transport schemes) would corrupt
        // the relaunch. Found by the guided fuzzer as a Homa
        // credit-conservation violation (a pre-crash cumulative grant
        // doubled the restarted sender's budget).
        net.set_fault_plan(FaultPlan::new(0).with_node_crash(us(3), us(3) + 1_000, h1));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 14_600, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        let rec = net.metrics.flow(FlowId(1)).unwrap();
        assert_eq!(rec.restarts, 1);
        assert!(
            net.metrics.drops_by_reason(DropReason::StaleIncarnation) > 0,
            "in-flight pre-crash packets must be rejected at the restarted endpoint"
        );
        assert_eq!(net.metrics.payload_delivered, 14_600, "relaunch re-delivers in full");
        assert!(net.metrics.all_settled());
    }

    #[test]
    fn partition_stalls_cross_traffic_then_recovers() {
        use crate::faults::FaultPlan;
        let (mut net, h0, h1) = two_hosts_one_switch();
        // A partition resolves to Down windows on every link adjacent to the
        // upper half of the host list ({h1} here): traffic stalls in queues
        // rather than dying, and drains once the partition heals.
        net.set_fault_plan(FaultPlan::new(0).with_partition(0, us(50)));
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 14_600, start: 0 });
        assert!(net.run_to_completion(us(1000)));
        let rec = net.metrics.flow(FlowId(1)).unwrap();
        assert!(rec.completed_at.unwrap() > us(50), "no delivery across a partition");
        assert_eq!(rec.restarts, 0, "a partition stalls, it does not abort");
        assert_eq!(net.metrics.total_drops(), 0);
    }

    #[test]
    fn beyond_horizon_node_plan_is_behavior_identical() {
        use crate::faults::FaultPlan;
        // A node-fault plan whose windows all open after the run finishes
        // exercises the non-empty fault path end to end but must not perturb
        // a single event.
        let run = |with_plan: bool| {
            let (mut net, h0, h1) = two_hosts_one_switch();
            if with_plan {
                net.set_fault_plan(FaultPlan::new(7).with_crash(us(400_000), us(500_000), 0));
            }
            net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 146_000, start: 0 });
            assert!(net.run_to_completion(us(10_000)));
            (net.metrics.flow(FlowId(1)).unwrap().fct().unwrap(), net.events_processed())
        };
        assert_eq!(run(false), run(true), "a dormant node-fault plan must not perturb the run");
    }

    #[test]
    fn empty_fault_plan_is_behavior_identical() {
        let run = |with_plan: bool| {
            let (mut net, h0, h1) = two_hosts_one_switch();
            if with_plan {
                net.set_fault_plan(crate::faults::FaultPlan::new(99));
            }
            net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 146_000, start: 0 });
            assert!(net.run_to_completion(us(10_000)));
            (net.metrics.flow(FlowId(1)).unwrap().fct().unwrap(), net.events_processed())
        };
        assert_eq!(run(false), run(true), "an empty plan must not perturb the run");
    }

    #[test]
    fn degraded_window_slows_serialization() {
        use crate::faults::{FaultPlan, LinkFilter};
        let fct = |plan: Option<FaultPlan>| {
            let (mut net, h0, h1) = two_hosts_one_switch();
            if let Some(p) = plan {
                net.set_fault_plan(p);
            }
            net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 146_000, start: 0 });
            assert!(net.run_to_completion(us(100_000)));
            net.metrics.flow(FlowId(1)).unwrap().fct().unwrap()
        };
        let clean = fct(None);
        let degraded = fct(Some(FaultPlan::new(0).with_degraded(
            0,
            crate::units::ms(10),
            4,
            LinkFilter::All,
        )));
        assert!(
            degraded > 3 * clean && degraded < 6 * clean,
            "4x slowdown should roughly quadruple the FCT: {clean} -> {degraded}"
        );
    }

    #[test]
    fn payload_sent_counts_data_only() {
        let (mut net, h0, h1) = two_hosts_one_switch();
        net.schedule_flow(FlowDesc { id: FlowId(1), src: h0, dst: h1, size: 2_920, start: 0 });
        net.run_to_completion(us(1000));
        assert_eq!(net.metrics.payload_sent, 2_920);
        assert_eq!(net.metrics.payload_delivered, 2_920);
        assert!((net.metrics.transfer_efficiency() - 1.0).abs() < 1e-12);
        let _ = PacketKind::Data;
    }
}
