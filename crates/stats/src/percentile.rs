//! Quantile computation over f64 samples.
//!
//! Uses the nearest-rank method on a sorted copy — matches how FCT
//! percentiles are reported in the datacenter-transport literature (the p99
//! of 100 samples is the 99th smallest, not an interpolation).

/// A collection of samples supporting percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// From an existing vector.
    pub fn from_vec(values: Vec<f64>) -> Samples {
        Samples { values, sorted: false }
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// Arithmetic mean; 0.0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Nearest-rank percentile, `p` in [0, 100]. 0.0 for an empty set.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        self.ensure_sorted();
        let n = self.values.len();
        // Tolerate float artifacts like 99.9/100*1000 = 999.0000000000001,
        // which would otherwise bump the rank by one.
        let rank = (((p / 100.0 * n as f64) - 1e-9).ceil() as usize).clamp(1, n);
        self.values[rank - 1]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Maximum; 0.0 for an empty set.
    pub fn max(&mut self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.values.last().expect("non-empty")
    }

    /// Minimum; 0.0 for an empty set.
    pub fn min(&mut self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.values[0]
    }

    /// Sorted view of the samples.
    pub fn sorted(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }

    /// Jain's fairness index: `(Σx)² / (n · Σx²)`, in (0, 1]; 1.0 = all
    /// samples equal. 1.0 for an empty set.
    pub fn jain_fairness(&self) -> f64 {
        if self.values.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.values.iter().sum();
        let sum_sq: f64 = self.values.iter().map(|v| v * v).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (self.values.len() as f64 * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_to_hundred() -> Samples {
        Samples::from_vec((1..=100).map(|v| v as f64).collect())
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = one_to_hundred();
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(1.0), 1.0);
        assert_eq!(s.percentile(0.0), 1.0, "p0 clamps to the minimum");
    }

    #[test]
    fn p999_needs_enough_samples() {
        let mut s = Samples::from_vec((1..=1000).map(|v| v as f64).collect());
        assert_eq!(s.percentile(99.9), 999.0);
    }

    #[test]
    fn mean_median_min_max() {
        let mut s = Samples::from_vec(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn empty_set_is_zero_everywhere() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample() {
        let mut s = Samples::from_vec(vec![42.0]);
        assert_eq!(s.percentile(1.0), 42.0);
        assert_eq!(s.percentile(99.9), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn jain_fairness_bounds() {
        let equal = Samples::from_vec(vec![5.0; 10]);
        assert!((equal.jain_fairness() - 1.0).abs() < 1e-12);
        let skewed = Samples::from_vec(vec![10.0, 0.0, 0.0, 0.0]);
        assert!((skewed.jain_fairness() - 0.25).abs() < 1e-12, "one of four gets all");
        assert_eq!(Samples::new().jain_fairness(), 1.0);
    }

    #[test]
    fn push_invalidates_sort_cache() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.max(), 5.0);
        s.push(9.0);
        assert_eq!(s.max(), 9.0);
        s.push(1.0);
        assert_eq!(s.min(), 1.0);
    }
}
