//! Fault injection in ~50 lines: the same incast on a clean fabric, a lossy
//! fabric, and a flapping fabric — and nothing hangs.
//!
//! A deterministic `FaultPlan` corrupts 1% of every packet on the wire and
//! takes every link down for 300 µs mid-incast. The hardened retry paths
//! (probe retries, credit stall detection, request re-sends — all with
//! capped exponential backoff) repair every loss; the watchdog proves it by
//! failing loudly if any flow is still stuck at the horizon.
//!
//! ```text
//! cargo run --release --example chaos_faults
//! ```
//!
//! The same schedules are available on every experiment via
//! `repro <exp> --faults 'loss=1%,down=100us..400us'`, and the full
//! loss-rate × flap sweep over all six schemes via `repro chaos`.

use aeolus::prelude::*;

fn run_under(label: &str, scheme: Scheme, faults: FaultPlan) {
    let mut params = SchemeParams::new(0);
    params.faults = faults;
    let mut h = SchemeBuilder::new(scheme)
        .params(params)
        .topology(TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        })
        .build();
    let hosts = h.hosts().to_vec();
    // The paper's recurring motif: a 7:1 incast of 40 KB messages.
    let flows: Vec<FlowDesc> = (0..7)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 40_000,
            start: i * us(1),
        })
        .collect();
    h.schedule(&flows);
    // The watchdog turns a hung flow into a loud per-flow report.
    if let Err(report) = h.run_watchdog(ms(500)) {
        panic!("{label}: {report}");
    }
    let m = h.metrics();
    let mut worst_us = 0.0f64;
    for rec in m.flows() {
        worst_us = worst_us.max(rec.fct().unwrap() as f64 / 1e6);
    }
    println!(
        "  {label:<24} {}/{} flows, worst FCT {worst_us:8.1} us, \
         {} corruption kill(s), {} link-down kill(s), {} byte(s) retransmitted",
        m.completed_count(),
        m.flow_count(),
        m.drops_by_reason(DropReason::Corruption),
        m.drops_by_reason(DropReason::LinkDown),
        m.flows().map(|r| r.retransmitted).sum::<u64>(),
    );
}

fn main() {
    println!("7:1 incast of 40 KB under ExpressPass+Aeolus on the 10G testbed:");
    run_under("clean fabric", Scheme::ExpressPassAeolus, FaultPlan::default());
    run_under(
        "1% corruption loss",
        Scheme::ExpressPassAeolus,
        FaultPlan::new(7).with_loss(0.01, PacketFilter::Any, LinkFilter::All),
    );
    run_under(
        "300 us fabric flap",
        Scheme::ExpressPassAeolus,
        FaultPlan::new(7).with_down(us(100), us(400), LinkFilter::All),
    );
    run_under(
        "1% loss + flap",
        Scheme::ExpressPassAeolus,
        FaultPlan::new(7)
            .with_loss(0.01, PacketFilter::Any, LinkFilter::All)
            .with_down(us(100), us(400), LinkFilter::All),
    );
    // The spec grammar parses the same schedules from the command line.
    let spec: FaultPlan = "loss=1%,down=100us..400us,seed=7".parse().unwrap();
    run_under("same, parsed from spec", Scheme::ExpressPassAeolus, spec);
}
