//! Engine microbenchmarks: the discrete-event core and the queue
//! disciplines the paper's switch behavior is built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aeolus_sim::event::{Event, EventQueue};
use aeolus_sim::{
    DropTailQueue, FlowId, NodeId, Packet, Poll, PriorityBank, QueueDisc, RangeSet, Rate,
    RedEcnQueue, TrafficClass, TrimmingQueue, XPassQueue, CREDIT_BYTES,
};

fn pkt(seq: u64, class: TrafficClass) -> Packet {
    Packet::data(FlowId(seq % 64), NodeId(0), NodeId(1), seq, 1460, class, 1 << 20)
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-random interleaved timestamps.
                let t = (i * 2_654_435_761) % 1_000_000;
                q.schedule_at(t, Event::Timer { node: NodeId(0), token: i });
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.bench_function("rangeset_insert_1k_shuffled", |b| {
        b.iter(|| {
            let mut rs = RangeSet::new();
            for i in 0..1_000u64 {
                let start = ((i * 7919) % 1000) * 1460;
                rs.insert(start, start + 1460);
            }
            black_box(rs.covered())
        })
    });
    g.finish();
}

fn drain<Q: QueueDisc + ?Sized>(q: &mut Q) -> u64 {
    let mut n = 0;
    while let Poll::Ready(_) = q.poll(0) {
        n += 1;
    }
    n
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.bench_function("droptail_1k", |b| {
        b.iter(|| {
            let mut q = DropTailQueue::new(1 << 30);
            for i in 0..1000 {
                let _ = q.enqueue(pkt(i, TrafficClass::Scheduled), 0);
            }
            black_box(drain(&mut q))
        })
    });
    g.bench_function("red_selective_1k_mixed", |b| {
        b.iter(|| {
            let mut q = RedEcnQueue::new(6_000, 200_000);
            for i in 0..1000 {
                let class = if i % 2 == 0 {
                    TrafficClass::Unscheduled
                } else {
                    TrafficClass::Scheduled
                };
                let _ = q.enqueue(pkt(i, class), 0);
            }
            black_box(drain(&mut q))
        })
    });
    g.bench_function("priority_bank_1k", |b| {
        b.iter(|| {
            let mut q = PriorityBank::new(8, 1 << 30);
            for i in 0..1000u64 {
                let mut p = pkt(i, TrafficClass::Scheduled);
                p.priority = (i % 8) as u8;
                let _ = q.enqueue(p, 0);
            }
            black_box(drain(&mut q))
        })
    });
    g.bench_function("trimming_1k", |b| {
        b.iter(|| {
            let mut q = TrimmingQueue::new(8, 1 << 30);
            for i in 0..1000 {
                let _ = q.enqueue(pkt(i, TrafficClass::Unscheduled), 0);
            }
            black_box(drain(&mut q))
        })
    });
    g.bench_function("xpass_credit_shaper_1k", |b| {
        b.iter(|| {
            let mut q = XPassQueue::new(
                Box::new(DropTailQueue::new(1 << 30)),
                Rate::gbps(100),
                1500,
                CREDIT_BYTES,
                8,
            );
            for i in 0..1000 {
                let _ = q.enqueue(pkt(i, TrafficClass::Scheduled), 0);
            }
            black_box(drain(&mut q))
        })
    });
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_event_queue, bench_queues
}
criterion_main!(benches);
