//! Shared pieces for all transport endpoints.

use aeolus_core::AeolusConfig;
use aeolus_sim::telemetry::FaultEvent;
use aeolus_sim::units::Time;
use aeolus_sim::{
    AbortCause, Ctx, Ecn, FlowDesc, FlowId, FlowMap, NodeId, Packet, PacketKind, TrafficClass,
    MIN_PACKET_BYTES,
};

/// How a transport treats the first RTT (the pre-credit phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstRttMode {
    /// Send nothing until credits arrive (original ExpressPass).
    Hold,
    /// Blind burst at the protocol's native priority, not droppable
    /// (original Homa / NDP behaviour).
    Blind,
    /// The Aeolus building block: droppable unscheduled burst + probe +
    /// per-packet ACKs + scheduled retransmission.
    Aeolus,
    /// §2's oracle ("hypothetical X"): unscheduled packets ride a strictly
    /// lower priority than everything else — *zero* interference with
    /// scheduled packets — and are droppable the moment there is any
    /// backlog, so they consume exactly the spare bandwidth; probe-based
    /// recovery then folds losses back into the scheduled stream. This is
    /// the idealized upper bound that Aeolus approximates with one FIFO
    /// queue.
    Oracle,
    /// §5.5's strawman: unscheduled packets isolated in the lowest priority
    /// queue of a commodity switch, recovered by RTO only.
    LowPrio,
}

impl FirstRttMode {
    /// Whether new flows burst data before credits arrive.
    pub fn bursts(self) -> bool {
        !matches!(self, FirstRttMode::Hold)
    }

    /// Whether the Aeolus probe/ACK machinery is active.
    pub fn probe_recovery(self) -> bool {
        matches!(self, FirstRttMode::Aeolus | FirstRttMode::Oracle)
    }

    /// Whether SACK gap inference is safe (requires FIFO ordering between
    /// unscheduled and scheduled packets — false once priority queues can
    /// reorder them; that reordering is exactly the §3.2 ambiguity).
    pub fn sack_inference(self) -> bool {
        matches!(self, FirstRttMode::Aeolus)
    }

    /// Class/ECN/priority stamping for a pre-credit data packet.
    /// `native_prio` is what the base protocol would use (Homa's cutoff
    /// priority); `lowest_prio` is the bottom of the priority range.
    pub fn stamp_unscheduled(self, pkt: &mut Packet, native_prio: u8, lowest_prio: u8) {
        pkt.class = TrafficClass::Unscheduled;
        match self {
            FirstRttMode::Hold => unreachable!("Hold mode never sends unscheduled packets"),
            FirstRttMode::Blind => {
                pkt.ecn = Ecn::Ect0; // not droppable: rides the buffer
                pkt.priority = native_prio;
            }
            FirstRttMode::Aeolus => {
                pkt.ecn = Ecn::NotEct; // selective dropping applies
                pkt.priority = native_prio;
            }
            FirstRttMode::Oracle => {
                pkt.ecn = Ecn::NotEct; // spare bandwidth only: drop on backlog
                pkt.priority = lowest_prio;
            }
            FirstRttMode::LowPrio => {
                pkt.ecn = Ecn::Ect0;
                pkt.priority = lowest_prio;
            }
        }
    }
}

/// Build a data packet for `flow` covering `[seq, seq+len)`.
pub fn data_packet(
    flow: &FlowDesc,
    seq: u64,
    len: u32,
    class: TrafficClass,
    retransmit: bool,
) -> Packet {
    let mut p = Packet::data(flow.id, flow.src, flow.dst, seq, len, class, flow.size);
    p.retransmit = retransmit;
    p
}

/// Build an Aeolus probe for `flow` carrying `probe_seq`.
pub fn probe_packet(flow: &FlowDesc, probe_seq: u64) -> Packet {
    let mut p = Packet::control(flow.id, flow.src, flow.dst, probe_seq, PacketKind::Probe);
    p.flow_size = flow.size;
    p
}

/// Build a per-packet ACK from the receiver (`me`) back to the sender.
pub fn ack_packet(flow: FlowId, me: NodeId, sender: NodeId, start: u64, end: u64) -> Packet {
    Packet::control(flow, me, sender, start, PacketKind::Ack { of_probe: false, end })
}

/// Build a probe ACK.
pub fn probe_ack_packet(flow: FlowId, me: NodeId, sender: NodeId, probe_seq: u64) -> Packet {
    Packet::control(flow, me, sender, probe_seq, PacketKind::Ack { of_probe: true, end: probe_seq })
}

/// Common transport tunables shared by every scheme.
#[derive(Debug, Clone, Copy)]
pub struct BaseConfig {
    /// MTU payload bytes (wire MTU minus headers).
    pub mtu_payload: u32,
    /// Base round-trip time of the topology (sets burst budgets / BDP).
    pub base_rtt: Time,
    /// Aeolus parameters (threshold etc.); used when the mode is `Aeolus`.
    pub aeolus: AeolusConfig,
    /// First-RTT handling.
    pub mode: FirstRttMode,
    /// Ablation knob: disable SACK gap inference even where it is safe
    /// (recovery then relies on the probe alone).
    pub disable_sack: bool,
    /// Peer-death threshold: once a flow has heard nothing from its peer
    /// for this long while retrying, the transport aborts it (with cause
    /// `PeerSilent`) instead of retrying forever. `0` disables the
    /// watchdog (retry-forever, the pre-hardening behaviour).
    pub peer_silence: Time,
}

impl BaseConfig {
    /// Whether SACK gap inference is active (mode-safe and not ablated).
    pub fn sack_inference(&self) -> bool {
        self.mode.sack_inference() && !self.disable_sack
    }

    /// Wire size of a full data packet.
    pub fn mtu_wire(&self) -> u32 {
        self.mtu_payload + aeolus_sim::HEADER_BYTES
    }

    /// Control packet wire size.
    pub fn ctrl_size(&self) -> u32 {
        MIN_PACKET_BYTES
    }

    /// Whether the peer-silence watchdog should abort a flow that last heard
    /// from its peer at `last_heard`.
    pub fn peer_silent(&self, last_heard: Time, now: Time) -> bool {
        self.peer_silence > 0 && now.saturating_sub(last_heard) >= self.peer_silence
    }
}

/// Tombstones for aborted flows (crash-recovery hardening).
///
/// When a flow aborts — engine-initiated after a node crash, or
/// transport-initiated after the peer-silence watchdog fires — its id is
/// buried here so stale in-flight packets (data still crossing the fabric,
/// paced credits that survived the purge) cannot resurrect per-flow state.
/// A restart raises the tombstone again before the flow relaunches.
#[derive(Debug, Default)]
pub struct Tombstones {
    dead: FlowMap<FlowId, ()>,
}

impl Tombstones {
    /// An empty set.
    pub fn new() -> Tombstones {
        Tombstones { dead: FlowMap::new() }
    }

    /// Mark `flow` dead: its packets are dropped on sight.
    pub fn bury(&mut self, flow: FlowId) {
        self.dead.insert(flow, ());
    }

    /// Clear `flow`'s tombstone (the flow is about to relaunch).
    pub fn raise(&mut self, flow: FlowId) {
        self.dead.remove(flow);
    }

    /// Whether `flow` is dead.
    pub fn holds(&self, flow: FlowId) -> bool {
        self.dead.contains_key(flow)
    }

    /// Forget everything (host crash wipes all state; the engine re-buries
    /// each aborted flow right after).
    pub fn clear(&mut self) {
        self.dead.clear();
    }
}

/// Abort `flow` with cause `PeerSilent` at the metrics layer and surface the
/// fault event. Returns true when the flow was newly aborted (the caller
/// then drops its per-flow state and buries the tombstone); false when the
/// flow already completed or aborted.
pub fn abort_peer_silent(flow: FlowId, ctx: &mut Ctx<'_>) -> bool {
    if ctx.metrics.abort_flow(flow, AbortCause::PeerSilent) {
        ctx.emit_fault(FaultEvent::FlowAborted { flow, cause: AbortCause::PeerSilent });
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowDesc {
        FlowDesc { id: FlowId(1), src: NodeId(0), dst: NodeId(1), size: 10_000, start: 0 }
    }

    #[test]
    fn aeolus_stamp_is_droppable_at_native_priority() {
        let mut p = data_packet(&flow(), 0, 1460, TrafficClass::Unscheduled, false);
        FirstRttMode::Aeolus.stamp_unscheduled(&mut p, 2, 7);
        assert_eq!(p.ecn, Ecn::NotEct);
        assert_eq!(p.priority, 2);
        assert!(p.droppable());
    }

    #[test]
    fn blind_stamp_is_protected_at_native_priority() {
        let mut p = data_packet(&flow(), 0, 1460, TrafficClass::Unscheduled, false);
        FirstRttMode::Blind.stamp_unscheduled(&mut p, 1, 7);
        assert_eq!(p.ecn, Ecn::Ect0);
        assert_eq!(p.priority, 1);
        assert!(!p.droppable());
    }

    #[test]
    fn oracle_and_lowprio_sink_to_lowest_priority() {
        let mut p = data_packet(&flow(), 0, 1460, TrafficClass::Unscheduled, false);
        FirstRttMode::Oracle.stamp_unscheduled(&mut p, 0, 7);
        assert_eq!(p.priority, 7);
        assert!(p.droppable(), "oracle bursts vanish rather than linger");
        let mut p = data_packet(&flow(), 0, 1460, TrafficClass::Unscheduled, false);
        FirstRttMode::LowPrio.stamp_unscheduled(&mut p, 0, 7);
        assert_eq!(p.priority, 7);
        assert!(!p.droppable(), "the §5.5 strawman parks bursts in the low-prio queue");
    }

    #[test]
    fn mode_predicates() {
        assert!(!FirstRttMode::Hold.bursts());
        assert!(FirstRttMode::Blind.bursts());
        assert!(FirstRttMode::Aeolus.probe_recovery());
        assert!(FirstRttMode::Oracle.probe_recovery());
        assert!(!FirstRttMode::LowPrio.probe_recovery());
        assert!(!FirstRttMode::LowPrio.sack_inference());
    }

    #[test]
    fn packet_builders_carry_flow_metadata() {
        let f = flow();
        let probe = probe_packet(&f, 5000);
        assert_eq!(probe.flow_size, 10_000);
        assert_eq!(probe.seq, 5000);
        let ack = ack_packet(f.id, f.dst, f.src, 0, 1460);
        assert_eq!(ack.kind, PacketKind::Ack { of_probe: false, end: 1460 });
        assert_eq!(ack.src, f.dst);
        let pack = probe_ack_packet(f.id, f.dst, f.src, 5000);
        assert_eq!(pack.kind, PacketKind::Ack { of_probe: true, end: 5000 });
    }
}
