//! Queue-occupancy timeline at the incast bottleneck — a visual intuition
//! for selective dropping.
//!
//! Runs a 7:1 incast and samples the bottleneck queue every few µs for three
//! schemes. Plain Homa lets the blind burst pile >100 KB into the port;
//! under Homa+Aeolus the *unscheduled* contribution is capped at the 6 KB
//! threshold (the remaining backlog is scheduled bytes from grant
//! overcommitment — Homa's deliberate buffer/utilization trade);
//! ExpressPass+Aeolus stays near zero because scheduled packets are
//! credit-paced end to end.
//!
//! ```text
//! cargo run --release --example queue_timeline
//! ```

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;

fn timeline(scheme: Scheme) -> Vec<(u64, u64)> {
    let spec =
        TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) };
    let mut h = SchemeBuilder::new(scheme).topology(spec).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..7)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 60_000,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    let (sw, port) = h.topo.host_ingress[0];
    let mut samples = Vec::new();
    for step in 0..60u64 {
        let t = step * us(10);
        h.topo.net.run_until(t);
        samples.push((t / us(1), h.topo.net.port(sw, port).queue.bytes()));
    }
    samples
}

fn main() {
    let schemes = [
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::ExpressPassAeolus,
    ];
    let series: Vec<Vec<(u64, u64)>> = schemes.iter().map(|&s| timeline(s)).collect();
    println!(
        "{:>8} {:>18} {:>18} {:>18}",
        "t(us)",
        schemes[0].name(),
        schemes[1].name(),
        schemes[2].name()
    );
    #[allow(clippy::needless_range_loop)] // parallel indexing across three series
    for i in 0..series[0].len() {
        let t = series[0][i].0;
        println!(
            "{:>8} {:>14} B {:>14} B {:>14} B   {}",
            t,
            series[0][i].1,
            series[1][i].1,
            series[2][i].1,
            bar(series[0][i].1)
        );
    }
    let max_homa = series[0].iter().map(|&(_, q)| q).max().unwrap();
    let max_aeolus = series[1].iter().map(|&(_, q)| q).max().unwrap();
    println!("\nmax backlog: Homa {max_homa} B vs Homa+Aeolus {max_aeolus} B");
    assert!(max_aeolus < max_homa, "selective dropping must bound the queue");
}

fn bar(q: u64) -> String {
    "#".repeat((q / 4000) as usize)
}
