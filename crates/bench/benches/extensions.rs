//! Criterion groups for the extensions beyond the paper: pHost, DCTCP,
//! Fastpass and the ablation kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aeolus_bench::{bench_fabric, bench_incast, bench_testbed, bench_workload};
use aeolus_sim::units::ms;
use aeolus_transport::{Harness, Scheme, SchemeParams};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_workloads::Workload;

fn extension_benches(c: &mut Criterion) {
    c.bench_function("ext_phost_aeolus_workload", |b| {
        b.iter(|| black_box(bench_workload(Scheme::PHostAeolus, bench_fabric(), Workload::WebServer, 30)))
    });
    c.bench_function("ext_dctcp_workload", |b| {
        b.iter(|| {
            black_box(bench_workload(
                Scheme::Dctcp { rto: ms(10) },
                bench_fabric(),
                Workload::WebServer,
                30,
            ))
        })
    });
    c.bench_function("ext_fastpass_incast", |b| {
        b.iter(|| black_box(bench_incast(Scheme::FastpassAeolus, 30_000, 3)))
    });
    c.bench_function("ext_fastpass_arbiter_throughput", |b| {
        // Many small flows = many arbiter round trips: benches the arbiter.
        b.iter(|| {
            let mut h = Harness::new(Scheme::Fastpass, SchemeParams::new(0), bench_testbed());
            let hosts = h.hosts().to_vec();
            let flows: Vec<FlowDesc> = (0..40u64)
                .map(|i| FlowDesc {
                    id: FlowId(i + 1),
                    src: hosts[(i as usize) % (hosts.len() - 1) + 1],
                    dst: hosts[0],
                    size: 5_000,
                    start: i * 50_000_000,
                })
                .collect();
            h.schedule(&flows);
            h.run(ms(100));
            black_box(h.metrics().completed_count())
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = extension_benches
}
criterion_main!(benches);
