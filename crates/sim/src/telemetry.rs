//! Zero-cost event tracing and time-series probes.
//!
//! The engine is generic over a [`Tracer`]. The default [`NullTracer`] is a
//! statically-dispatched no-op: every hook sits behind an
//! `if T::ENABLED` guard on an associated `const`, so the optimizer removes
//! the tracing code entirely and an untraced simulation pays nothing
//! (verified against the PR 1 baseline by `aeolus-bench`). The
//! [`RecordingTracer`] captures typed events — per-queue
//! enqueue/dequeue/drop/mark/trim with occupancy, credit issue/receipt,
//! unscheduled-burst start/stop, loss detection, retransmission cause — into
//! bounded per-port ring buffers plus sampled time series (queue depth,
//! link utilization, per-class in-flight bytes), and serializes everything
//! to deterministic JSONL.
//!
//! The trait is split in two so the endpoint context can hold a trait
//! object: [`TraceSink`] carries the (object-safe) event methods with no-op
//! defaults, and [`Tracer`] adds the `ENABLED` associated const that makes
//! static dispatch free.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::faults::WindowKind;
use crate::metrics::AbortCause;
use crate::packet::{FlowId, NodeId, PacketKind, PortId, TrafficClass};
use crate::queues::DropReason;
use crate::units::{us, Rate, Time};

/// What happened to a packet at an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueEvent {
    /// Queued unchanged.
    Enqueue,
    /// Queued with the ECN CE mark applied.
    EnqueueMarked,
    /// Payload trimmed to a header (NDP cutting payload), header queued.
    EnqueueTrimmed,
    /// Popped from the queue for serialization onto the link.
    Dequeue,
    /// Rejected by the discipline.
    Drop(DropReason),
}

/// One per-queue event with the packet's identity and the queue occupancy
/// *after* the operation.
#[derive(Debug, Clone, Copy)]
pub struct QueueRecord {
    /// When it happened.
    pub at: Time,
    /// Node owning the queue.
    pub node: NodeId,
    /// Egress port on that node.
    pub port: PortId,
    /// What happened.
    pub ev: QueueEvent,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Packet sequence / offset.
    pub seq: u64,
    /// Protocol meaning of the packet.
    pub kind: PacketKind,
    /// Scheduled / unscheduled / control class.
    pub class: TrafficClass,
    /// Wire size in bytes (pre-trim for [`QueueEvent::EnqueueTrimmed`]).
    pub size: u32,
    /// Payload bytes (pre-trim for [`QueueEvent::EnqueueTrimmed`]).
    pub payload: u32,
    /// Queue occupancy in bytes after the operation.
    pub qlen_bytes: u64,
    /// Queue occupancy in packets after the operation.
    pub qlen_pkts: usize,
}

/// Identity of a data packet crossing a host boundary: launched into the
/// network at its source NIC, or delivered to its destination host. Carried
/// by [`TraceSink::packet_launched`] / [`TraceSink::packet_delivered`] so
/// sinks (in particular the conformance oracle in [`crate::oracle`]) can
/// account per-flow byte conservation, not just per-class totals.
#[derive(Debug, Clone, Copy)]
pub struct HostEvent {
    /// When it happened.
    pub at: Time,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Byte offset of the packet's payload.
    pub seq: u64,
    /// Scheduled / unscheduled class (control packets never reach these
    /// hooks — they carry no payload).
    pub class: TrafficClass,
    /// Application payload bytes carried.
    pub payload: u64,
    /// Whether the packet is a retransmission of earlier bytes.
    pub retransmit: bool,
}

/// Why a transport declared bytes lost (and, by extension, why it
/// retransmits them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Probe-based tail loss detection: the probe's ACK reported the burst
    /// frontier short of what was sent.
    Probe,
    /// SACK-style gap inference from cumulative/range ACKs.
    SackGap,
    /// Retransmission timeout fired.
    Timeout,
    /// Explicit NACK (e.g. NDP trimmed-header notification).
    Nack,
    /// Receiver-side stall scan re-requested missing ranges.
    Stall,
    /// Last-resort retransmission of unacked first-RTT bytes.
    LastResort,
}

/// A transport-level event emitted by an endpoint through
/// [`crate::Ctx::emit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// A receiver issued a credit/grant/token worth `bytes` of induced data.
    CreditIssue {
        /// Flow the credit schedules.
        flow: FlowId,
        /// Data bytes the credit entitles the sender to.
        bytes: u64,
    },
    /// A sender consumed a received credit/grant/token.
    CreditReceipt {
        /// Flow the credit schedules.
        flow: FlowId,
        /// Data bytes the credit entitles the sender to.
        bytes: u64,
    },
    /// A pre-credit unscheduled burst began.
    BurstStart {
        /// Bursting flow.
        flow: FlowId,
        /// Budgeted burst size in bytes.
        bytes: u64,
    },
    /// The unscheduled burst ended (budget or flow exhausted).
    BurstStop {
        /// Bursting flow.
        flow: FlowId,
        /// Payload bytes actually sent in the burst.
        sent: u64,
    },
    /// The sender declared bytes lost.
    LossDetected {
        /// Affected flow.
        flow: FlowId,
        /// Newly-declared lost bytes.
        bytes: u64,
        /// Detection mechanism.
        cause: LossCause,
    },
    /// The sender (re)transmitted previously-lost or unacked bytes.
    Retransmit {
        /// Affected flow.
        flow: FlowId,
        /// Retransmitted payload bytes.
        bytes: u64,
        /// Why the bytes needed retransmitting.
        cause: LossCause,
    },
}

/// A fault-injection event: a scheduled [`crate::FaultPlan`] window
/// transitioning, or a packet killed on a link by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A scheduled fault window armed (its links went down or degraded).
    WindowStart {
        /// Index into the plan's window list.
        window: usize,
        /// Down or degraded.
        kind: WindowKind,
    },
    /// A scheduled fault window ended (its links recovered).
    WindowEnd {
        /// Index into the plan's window list.
        window: usize,
        /// Down or degraded.
        kind: WindowKind,
    },
    /// A packet died on the wire: corruption loss, or cut by a link going
    /// down mid-serialization.
    PacketKilled {
        /// Node owning the egress link.
        node: NodeId,
        /// Egress port the packet was leaving through.
        port: PortId,
        /// Flow of the killed packet.
        flow: FlowId,
        /// Sequence / offset of the killed packet.
        seq: u64,
        /// Protocol meaning of the killed packet.
        kind: PacketKind,
        /// Scheduling class of the killed packet.
        class: TrafficClass,
        /// Application payload bytes it carried.
        payload: u32,
        /// [`DropReason::Corruption`], [`DropReason::LinkDown`],
        /// [`DropReason::NodeDown`], [`DropReason::ArbiterDown`] or
        /// [`DropReason::StaleIncarnation`].
        reason: DropReason,
    },
    /// A node crashed (crash window or arbiter outage started).
    NodeCrash {
        /// The node that died.
        node: NodeId,
    },
    /// A crashed node came back (its window ended).
    NodeRestart {
        /// The node that restarted.
        node: NodeId,
    },
    /// A flow was aborted: its current incarnation is dead and its
    /// delivered bytes no longer count. A later `FlowRestarted` revives it.
    FlowAborted {
        /// The aborted flow.
        flow: FlowId,
        /// Why it died.
        cause: AbortCause,
    },
    /// A previously-aborted flow relaunched from scratch after a restart.
    FlowRestarted {
        /// The relaunched flow.
        flow: FlowId,
    },
}

/// Object-safe event sink: every hook has a no-op default, so a sink
/// implements only what it cares about. The engine's context exposes this
/// as `&mut dyn TraceSink` to endpoints.
pub trait TraceSink {
    /// A simplex link egress port came into existence.
    fn port_registered(&mut self, _node: NodeId, _port: PortId, _rate: Rate, _to: NodeId) {}
    /// A packet hit an egress queue (enqueue/mark/trim/drop/dequeue).
    fn queue_event(&mut self, _rec: &QueueRecord) {}
    /// Current per-band occupancy of a queue, sampled after a queue event.
    fn queue_bands(&mut self, _at: Time, _node: NodeId, _port: PortId, _bands: &[(&'static str, u64)]) {
    }
    /// A packet of `wire_bytes` started serializing out of a port.
    fn link_tx(&mut self, _at: Time, _node: NodeId, _port: PortId, _wire_bytes: u64) {}
    /// A data packet entered the network at its source NIC.
    fn packet_launched(&mut self, _ev: &HostEvent) {}
    /// A data packet was delivered to its destination host.
    fn packet_delivered(&mut self, _ev: &HostEvent) {}
    /// A transport endpoint emitted a protocol-level event.
    fn transport_event(&mut self, _at: Time, _host: NodeId, _ev: &TransportEvent) {}
    /// The fault plan acted: a window transitioned or a packet was killed.
    fn fault_event(&mut self, _at: Time, _ev: &FaultEvent) {}
}

/// A statically-dispatched tracer. `ENABLED` gates every engine hook at
/// compile time: `NullTracer` (the default) compiles to nothing.
pub trait Tracer: TraceSink {
    /// Whether engine hooks should fire at all.
    const ENABLED: bool;
}

/// The compiled-away no-op tracer (the engine default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl TraceSink for NullTracer {}

impl Tracer for NullTracer {
    const ENABLED: bool = false;
}

/// Fixed-capacity ring that overwrites its oldest entry when full and
/// counts how many entries it has discarded.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    cap: usize,
    buf: VecDeque<T>,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// A ring holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> RingBuffer<T> {
        assert!(cap >= 1, "ring capacity must be positive");
        RingBuffer { cap, buf: VecDeque::with_capacity(cap.min(1024)), dropped: 0 }
    }

    /// Append `v`, discarding the oldest entry if the ring is full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(v);
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries discarded to make room (total pushes = `len + dropped`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Sample-and-hold time series: `observe` records the signal value at event
/// times; samples are taken at fixed boundaries `interval, 2·interval, …`,
/// each reporting the value held just *before* the boundary.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: Time,
    next_at: Time,
    held: u64,
    samples: Vec<(Time, u64)>,
}

impl TimeSeries {
    /// A series sampled every `interval` (> 0) picoseconds, starting at 0.
    pub fn new(interval: Time) -> TimeSeries {
        assert!(interval > 0, "sample interval must be positive");
        TimeSeries { interval, next_at: interval, held: 0, samples: Vec::new() }
    }

    /// The signal changed to `v` at time `at` (`at` must not decrease
    /// across calls).
    pub fn observe(&mut self, at: Time, v: u64) {
        while self.next_at <= at {
            self.samples.push((self.next_at, self.held));
            self.next_at += self.interval;
        }
        self.held = v;
    }

    /// Flush sample boundaries up to and including `end`.
    pub fn finish(&mut self, end: Time) {
        while self.next_at <= end {
            self.samples.push((self.next_at, self.held));
            self.next_at += self.interval;
        }
    }

    /// Samples taken so far, as `(boundary_time, value)`.
    pub fn samples(&self) -> &[(Time, u64)] {
        &self.samples
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Time {
        self.interval
    }
}

/// Per-window accumulator: `add` credits bytes to the current window;
/// each sample reports the bytes accumulated in the window *ending* at the
/// boundary (link utilization = sample / (rate · interval)).
#[derive(Debug, Clone)]
pub struct RateSeries {
    interval: Time,
    next_at: Time,
    acc: u64,
    samples: Vec<(Time, u64)>,
}

impl RateSeries {
    /// A windowed byte counter with windows of `interval` (> 0) picoseconds.
    pub fn new(interval: Time) -> RateSeries {
        assert!(interval > 0, "window must be positive");
        RateSeries { interval, next_at: interval, acc: 0, samples: Vec::new() }
    }

    /// Credit `bytes` to the window containing `at`.
    pub fn add(&mut self, at: Time, bytes: u64) {
        while self.next_at <= at {
            self.samples.push((self.next_at, self.acc));
            self.acc = 0;
            self.next_at += self.interval;
        }
        self.acc += bytes;
    }

    /// Flush windows up to and including `end`.
    pub fn finish(&mut self, end: Time) {
        while self.next_at <= end {
            self.samples.push((self.next_at, self.acc));
            self.acc = 0;
            self.next_at += self.interval;
        }
    }

    /// Completed windows so far, as `(window_end_time, bytes)`.
    pub fn samples(&self) -> &[(Time, u64)] {
        &self.samples
    }

    /// The configured window length.
    pub fn interval(&self) -> Time {
        self.interval
    }
}

/// Capture policy for a [`RecordingTracer`].
#[derive(Debug, Clone, Copy)]
pub struct RecordingConfig {
    /// Queue events retained per port (oldest overwritten beyond this).
    pub ring_capacity: usize,
    /// Sampling interval for all time series (queue depth, per-band
    /// occupancy, link tx windows, per-class in-flight bytes).
    pub sample_every: Time,
}

impl Default for RecordingConfig {
    fn default() -> RecordingConfig {
        RecordingConfig { ring_capacity: 4096, sample_every: us(10) }
    }
}

/// Everything recorded about one egress port.
#[derive(Debug)]
pub struct PortTrace {
    /// Link rate of the port.
    pub rate: Rate,
    /// Node at the far end of the link.
    pub to: NodeId,
    /// Bounded log of queue events at this port.
    pub ring: RingBuffer<QueueRecord>,
    /// Sampled queue depth in bytes.
    pub depth: TimeSeries,
    /// Bytes serialized per sample window (utilization probe).
    pub tx: RateSeries,
    /// Sampled per-band occupancy (disciplines report their internal
    /// structure: priority levels, control vs data, credit queue, …).
    pub bands: BTreeMap<&'static str, TimeSeries>,
}

/// In-memory recorder implementing every [`TraceSink`] hook.
///
/// All interior maps are `BTreeMap`s and all buffers append in event order,
/// so two runs processing identical event streams produce byte-identical
/// [`RecordingTracer::to_jsonl`] output.
#[derive(Debug)]
pub struct RecordingTracer {
    cfg: RecordingConfig,
    ports: BTreeMap<(NodeId, PortId), PortTrace>,
    transport: Vec<(Time, NodeId, TransportEvent)>,
    faults: Vec<(Time, FaultEvent)>,
    inflight: [u64; 3],
    inflight_series: [TimeSeries; 3],
}

impl Default for RecordingTracer {
    fn default() -> RecordingTracer {
        RecordingTracer::new()
    }
}

fn class_idx(class: TrafficClass) -> usize {
    match class {
        TrafficClass::Scheduled => 0,
        TrafficClass::Unscheduled => 1,
        TrafficClass::Control => 2,
    }
}

/// Stable wire name for a traffic class.
pub fn class_str(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::Scheduled => "sched",
        TrafficClass::Unscheduled => "unsched",
        TrafficClass::Control => "ctrl",
    }
}

/// Stable wire name for a packet kind.
pub fn kind_str(kind: PacketKind) -> &'static str {
    match kind {
        PacketKind::Data => "data",
        PacketKind::Request => "request",
        PacketKind::Credit => "credit",
        PacketKind::Grant { .. } => "grant",
        PacketKind::Pull => "pull",
        PacketKind::Ack { .. } => "ack",
        PacketKind::Nack => "nack",
        PacketKind::Probe => "probe",
        PacketKind::Resend { .. } => "resend",
        PacketKind::Schedule { .. } => "schedule",
    }
}

/// Stable wire name for a drop reason.
pub fn reason_str(reason: DropReason) -> &'static str {
    match reason {
        DropReason::BufferFull => "buffer_full",
        DropReason::SharedBufferFull => "shared_buffer_full",
        DropReason::SelectiveDrop => "selective_drop",
        DropReason::CreditOverflow => "credit_overflow",
        DropReason::Corruption => "corruption",
        DropReason::LinkDown => "link_down",
        DropReason::NodeDown => "node_down",
        DropReason::ArbiterDown => "arbiter_down",
        DropReason::StaleIncarnation => "stale_incarnation",
    }
}

/// Stable wire name for an abort cause.
pub fn abort_cause_str(cause: AbortCause) -> &'static str {
    match cause {
        AbortCause::NodeCrash => "node_crash",
        AbortCause::ArbiterOutage => "arbiter_outage",
        AbortCause::PeerSilent => "peer_silent",
    }
}

/// Stable wire name for a fault-window kind.
pub fn window_kind_str(kind: WindowKind) -> &'static str {
    match kind {
        WindowKind::Down => "down",
        WindowKind::Degraded { .. } => "degraded",
    }
}

/// Stable wire name for a loss cause.
pub fn cause_str(cause: LossCause) -> &'static str {
    match cause {
        LossCause::Probe => "probe",
        LossCause::SackGap => "sack_gap",
        LossCause::Timeout => "timeout",
        LossCause::Nack => "nack",
        LossCause::Stall => "stall",
        LossCause::LastResort => "last_resort",
    }
}

fn queue_ev_str(ev: QueueEvent) -> &'static str {
    match ev {
        QueueEvent::Enqueue => "enqueue",
        QueueEvent::EnqueueMarked => "enqueue_marked",
        QueueEvent::EnqueueTrimmed => "enqueue_trimmed",
        QueueEvent::Dequeue => "dequeue",
        QueueEvent::Drop(_) => "drop",
    }
}

impl RecordingTracer {
    /// A recorder with default policy (4096-event rings, 10 µs sampling).
    pub fn new() -> RecordingTracer {
        RecordingTracer::with_config(RecordingConfig::default())
    }

    /// A recorder with an explicit capture policy.
    pub fn with_config(cfg: RecordingConfig) -> RecordingTracer {
        let mk = || TimeSeries::new(cfg.sample_every);
        RecordingTracer {
            cfg,
            ports: BTreeMap::new(),
            transport: Vec::new(),
            faults: Vec::new(),
            inflight: [0; 3],
            inflight_series: [mk(), mk(), mk()],
        }
    }

    fn inflight_observe(&mut self, at: Time, idx: usize) {
        self.inflight_series[idx].observe(at, self.inflight[idx]);
    }

    /// Flush all time series up to `end` (call once after the run).
    pub fn finish(&mut self, end: Time) {
        for pt in self.ports.values_mut() {
            pt.depth.finish(end);
            pt.tx.finish(end);
            for s in pt.bands.values_mut() {
                s.finish(end);
            }
        }
        for s in self.inflight_series.iter_mut() {
            s.finish(end);
        }
    }

    /// Recorded ports in deterministic `(node, port)` order.
    pub fn ports(&self) -> impl Iterator<Item = (&(NodeId, PortId), &PortTrace)> {
        self.ports.iter()
    }

    /// The trace of one port, if any events touched it.
    pub fn port_trace(&self, node: NodeId, port: PortId) -> Option<&PortTrace> {
        self.ports.get(&(node, port))
    }

    /// Transport events in emission order.
    pub fn transport_events(&self) -> &[(Time, NodeId, TransportEvent)] {
        &self.transport
    }

    /// Fault-injection events in emission order (empty without a fault plan).
    pub fn fault_events(&self) -> &[(Time, FaultEvent)] {
        &self.faults
    }

    /// Current in-flight payload bytes of a class.
    pub fn inflight_bytes(&self, class: TrafficClass) -> u64 {
        self.inflight[class_idx(class)]
    }

    /// Sampled in-flight payload series of a class.
    pub fn inflight_series(&self, class: TrafficClass) -> &TimeSeries {
        &self.inflight_series[class_idx(class)]
    }

    fn port_entry(&mut self, node: NodeId, port: PortId, rate: Rate, to: NodeId) -> &mut PortTrace {
        let cfg = self.cfg;
        self.ports.entry((node, port)).or_insert_with(|| PortTrace {
            rate,
            to,
            ring: RingBuffer::new(cfg.ring_capacity),
            depth: TimeSeries::new(cfg.sample_every),
            tx: RateSeries::new(cfg.sample_every),
            bands: BTreeMap::new(),
        })
    }

    /// Serialize the full capture as deterministic JSONL: one `meta` line,
    /// then `port`, `queue`, `transport`, `fault` (only when a fault plan
    /// acted) and `series` lines, every map iterated in `BTreeMap` order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"version\":1,\"ports\":{},\"transport_events\":{},\"sample_interval_ps\":{}}}",
            self.ports.len(),
            self.transport.len(),
            self.cfg.sample_every
        );
        for (&(node, port), pt) in &self.ports {
            let _ = writeln!(
                out,
                "{{\"type\":\"port\",\"node\":{},\"port\":{},\"to\":{},\"rate_bps\":{},\"ring_len\":{},\"ring_dropped\":{}}}",
                node.0,
                port.0,
                pt.to.0,
                pt.rate.bps(),
                pt.ring.len(),
                pt.ring.dropped()
            );
        }
        for (&(node, port), pt) in &self.ports {
            for rec in pt.ring.iter() {
                let _ = write!(
                    out,
                    "{{\"type\":\"queue\",\"at\":{},\"node\":{},\"port\":{},\"ev\":\"{}\"",
                    rec.at,
                    node.0,
                    port.0,
                    queue_ev_str(rec.ev)
                );
                if let QueueEvent::Drop(reason) = rec.ev {
                    let _ = write!(out, ",\"reason\":\"{}\"", reason_str(reason));
                }
                let _ = writeln!(
                    out,
                    ",\"flow\":{},\"seq\":{},\"kind\":\"{}\",\"class\":\"{}\",\"size\":{},\"payload\":{},\"qlen\":{},\"qpkts\":{}}}",
                    rec.flow.0,
                    rec.seq,
                    kind_str(rec.kind),
                    class_str(rec.class),
                    rec.size,
                    rec.payload,
                    rec.qlen_bytes,
                    rec.qlen_pkts
                );
            }
        }
        for &(at, host, ev) in &self.transport {
            let _ = write!(out, "{{\"type\":\"transport\",\"at\":{at},\"host\":{},", host.0);
            let _ = match ev {
                TransportEvent::CreditIssue { flow, bytes } => {
                    writeln!(out, "\"ev\":\"credit_issue\",\"flow\":{},\"bytes\":{bytes}}}", flow.0)
                }
                TransportEvent::CreditReceipt { flow, bytes } => {
                    writeln!(out, "\"ev\":\"credit_receipt\",\"flow\":{},\"bytes\":{bytes}}}", flow.0)
                }
                TransportEvent::BurstStart { flow, bytes } => {
                    writeln!(out, "\"ev\":\"burst_start\",\"flow\":{},\"bytes\":{bytes}}}", flow.0)
                }
                TransportEvent::BurstStop { flow, sent } => {
                    writeln!(out, "\"ev\":\"burst_stop\",\"flow\":{},\"sent\":{sent}}}", flow.0)
                }
                TransportEvent::LossDetected { flow, bytes, cause } => writeln!(
                    out,
                    "\"ev\":\"loss_detected\",\"flow\":{},\"bytes\":{bytes},\"cause\":\"{}\"}}",
                    flow.0,
                    cause_str(cause)
                ),
                TransportEvent::Retransmit { flow, bytes, cause } => writeln!(
                    out,
                    "\"ev\":\"retransmit\",\"flow\":{},\"bytes\":{bytes},\"cause\":\"{}\"}}",
                    flow.0,
                    cause_str(cause)
                ),
            };
        }
        for &(at, ev) in &self.faults {
            let _ = write!(out, "{{\"type\":\"fault\",\"at\":{at},");
            let _ = match ev {
                FaultEvent::WindowStart { window, kind } => writeln!(
                    out,
                    "\"ev\":\"window_start\",\"window\":{window},\"kind\":\"{}\"}}",
                    window_kind_str(kind)
                ),
                FaultEvent::WindowEnd { window, kind } => writeln!(
                    out,
                    "\"ev\":\"window_end\",\"window\":{window},\"kind\":\"{}\"}}",
                    window_kind_str(kind)
                ),
                FaultEvent::PacketKilled { node, port, flow, seq, kind, class, payload, reason } => {
                    writeln!(
                        out,
                        "\"ev\":\"killed\",\"node\":{},\"port\":{},\"flow\":{},\"seq\":{seq},\"kind\":\"{}\",\"class\":\"{}\",\"payload\":{payload},\"reason\":\"{}\"}}",
                        node.0,
                        port.0,
                        flow.0,
                        kind_str(kind),
                        class_str(class),
                        reason_str(reason)
                    )
                }
                FaultEvent::NodeCrash { node } => {
                    writeln!(out, "\"ev\":\"node_crash\",\"node\":{}}}", node.0)
                }
                FaultEvent::NodeRestart { node } => {
                    writeln!(out, "\"ev\":\"node_restart\",\"node\":{}}}", node.0)
                }
                FaultEvent::FlowAborted { flow, cause } => writeln!(
                    out,
                    "\"ev\":\"flow_aborted\",\"flow\":{},\"cause\":\"{}\"}}",
                    flow.0,
                    abort_cause_str(cause)
                ),
                FaultEvent::FlowRestarted { flow } => {
                    writeln!(out, "\"ev\":\"flow_restarted\",\"flow\":{}}}", flow.0)
                }
            };
        }
        let series_line = |out: &mut String, name: &str, loc: Option<(NodeId, PortId)>, samples: &[(Time, u64)]| {
            let _ = write!(out, "{{\"type\":\"series\",\"name\":\"{name}\"");
            if let Some((node, port)) = loc {
                let _ = write!(out, ",\"node\":{},\"port\":{}", node.0, port.0);
            }
            let _ = write!(out, ",\"samples\":[");
            for (i, (t, v)) in samples.iter().enumerate() {
                let _ = write!(out, "{}[{t},{v}]", if i == 0 { "" } else { "," });
            }
            out.push_str("]}\n");
        };
        for (&(node, port), pt) in &self.ports {
            series_line(&mut out, "depth", Some((node, port)), pt.depth.samples());
            series_line(&mut out, "tx_bytes", Some((node, port)), pt.tx.samples());
            for (band, s) in &pt.bands {
                series_line(&mut out, &format!("band:{band}"), Some((node, port)), s.samples());
            }
        }
        for class in [TrafficClass::Scheduled, TrafficClass::Unscheduled, TrafficClass::Control] {
            series_line(
                &mut out,
                &format!("inflight:{}", class_str(class)),
                None,
                self.inflight_series[class_idx(class)].samples(),
            );
        }
        out
    }
}

impl TraceSink for RecordingTracer {
    fn port_registered(&mut self, node: NodeId, port: PortId, rate: Rate, to: NodeId) {
        self.port_entry(node, port, rate, to);
    }

    fn queue_event(&mut self, rec: &QueueRecord) {
        // In-flight conservation: payload leaves the network when a data
        // packet is dropped or its payload is trimmed away in-fabric
        // (delivery is handled by `packet_delivered`).
        if rec.payload > 0 {
            match rec.ev {
                QueueEvent::Drop(_) | QueueEvent::EnqueueTrimmed => {
                    let idx = class_idx(rec.class);
                    self.inflight[idx] = self.inflight[idx].saturating_sub(rec.payload as u64);
                    self.inflight_observe(rec.at, idx);
                }
                _ => {}
            }
        }
        let pt = match self.ports.get_mut(&(rec.node, rec.port)) {
            Some(pt) => pt,
            // A queue event on an unregistered port (hand-wired networks
            // bypassing `port_registered` cannot happen through the engine,
            // but stay total): synthesize a placeholder registration.
            None => self.port_entry(rec.node, rec.port, Rate::gbps(0), rec.node),
        };
        pt.depth.observe(rec.at, rec.qlen_bytes);
        pt.ring.push(*rec);
    }

    fn queue_bands(&mut self, at: Time, node: NodeId, port: PortId, bands: &[(&'static str, u64)]) {
        let interval = self.cfg.sample_every;
        if let Some(pt) = self.ports.get_mut(&(node, port)) {
            for &(name, bytes) in bands {
                pt.bands.entry(name).or_insert_with(|| TimeSeries::new(interval)).observe(at, bytes);
            }
        }
    }

    fn link_tx(&mut self, at: Time, node: NodeId, port: PortId, wire_bytes: u64) {
        if let Some(pt) = self.ports.get_mut(&(node, port)) {
            pt.tx.add(at, wire_bytes);
        }
    }

    fn packet_launched(&mut self, ev: &HostEvent) {
        let idx = class_idx(ev.class);
        self.inflight[idx] += ev.payload;
        self.inflight_observe(ev.at, idx);
    }

    fn packet_delivered(&mut self, ev: &HostEvent) {
        let idx = class_idx(ev.class);
        self.inflight[idx] = self.inflight[idx].saturating_sub(ev.payload);
        self.inflight_observe(ev.at, idx);
    }

    fn transport_event(&mut self, at: Time, host: NodeId, ev: &TransportEvent) {
        self.transport.push((at, host, *ev));
    }

    fn fault_event(&mut self, at: Time, ev: &FaultEvent) {
        // A packet killed on the wire leaves the network without a delivery
        // or queue-drop event, so keep the in-flight accounting balanced
        // here.
        if let FaultEvent::PacketKilled { class, payload, .. } = *ev {
            if payload > 0 {
                let idx = class_idx(class);
                self.inflight[idx] = self.inflight[idx].saturating_sub(payload as u64);
                self.inflight_observe(at, idx);
            }
        }
        self.faults.push((at, *ev));
    }
}

impl Tracer for RecordingTracer {
    const ENABLED: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_wraps_and_counts_dropped() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..5u64 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.iter().copied().collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest entries are overwritten first");
    }

    #[test]
    fn ring_buffer_below_capacity_drops_nothing() {
        let mut r = RingBuffer::new(8);
        r.push('a');
        r.push('b');
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_buffer_rejects_zero_capacity() {
        RingBuffer::<u8>::new(0);
    }

    #[test]
    fn time_series_samples_hold_value_before_boundary() {
        let mut s = TimeSeries::new(10);
        s.observe(3, 100); // signal becomes 100 at t=3
        s.observe(15, 200); // boundary 10 passes holding 100
        s.finish(30); // boundaries 20, 30 hold 200
        assert_eq!(s.samples(), &[(10, 100), (20, 200), (30, 200)]);
    }

    #[test]
    fn time_series_observation_exactly_on_boundary_samples_prior_value() {
        let mut s = TimeSeries::new(10);
        s.observe(0, 7);
        s.observe(10, 9); // at == boundary: the sample sees the pre-change 7
        s.finish(20);
        assert_eq!(s.samples(), &[(10, 7), (20, 9)]);
    }

    #[test]
    fn time_series_gap_spanning_many_boundaries_repeats_held_value() {
        let mut s = TimeSeries::new(5);
        s.observe(2, 42);
        s.observe(23, 1); // boundaries 5,10,15,20 all hold 42
        s.finish(25);
        assert_eq!(s.samples(), &[(5, 42), (10, 42), (15, 42), (20, 42), (25, 1)]);
    }

    #[test]
    fn time_series_no_samples_before_first_interval() {
        let mut s = TimeSeries::new(100);
        s.observe(1, 5);
        s.observe(99, 6);
        assert!(s.samples().is_empty());
        s.finish(99);
        assert!(s.samples().is_empty(), "finish before the first boundary emits nothing");
        s.finish(100);
        assert_eq!(s.samples(), &[(100, 6)]);
    }

    #[test]
    fn rate_series_buckets_bytes_into_windows() {
        let mut r = RateSeries::new(10);
        r.add(1, 100);
        r.add(9, 50); // window (0,10] = 150
        r.add(25, 30); // window (10,20] = 0, (20,30] gets 30
        r.finish(30);
        assert_eq!(r.samples(), &[(10, 150), (20, 0), (30, 30)]);
    }

    fn host_ev(at: Time, class: TrafficClass, seq: u64) -> HostEvent {
        HostEvent { at, flow: FlowId(1), seq, class, payload: 1460, retransmit: false }
    }

    #[test]
    fn recording_tracer_tracks_inflight_per_class() {
        let mut t = RecordingTracer::new();
        t.packet_launched(&host_ev(0, TrafficClass::Unscheduled, 0));
        t.packet_launched(&host_ev(1, TrafficClass::Unscheduled, 1460));
        t.packet_launched(&host_ev(2, TrafficClass::Scheduled, 2920));
        assert_eq!(t.inflight_bytes(TrafficClass::Unscheduled), 2920);
        assert_eq!(t.inflight_bytes(TrafficClass::Scheduled), 1460);
        t.packet_delivered(&host_ev(5, TrafficClass::Unscheduled, 0));
        assert_eq!(t.inflight_bytes(TrafficClass::Unscheduled), 1460);
        // A drop also removes in-flight payload.
        let rec = QueueRecord {
            at: 6,
            node: NodeId(0),
            port: PortId(0),
            ev: QueueEvent::Drop(DropReason::SelectiveDrop),
            flow: FlowId(1),
            seq: 0,
            kind: PacketKind::Data,
            class: TrafficClass::Unscheduled,
            size: 1500,
            payload: 1460,
            qlen_bytes: 0,
            qlen_pkts: 0,
        };
        t.queue_event(&rec);
        assert_eq!(t.inflight_bytes(TrafficClass::Unscheduled), 0);
    }

    #[test]
    fn jsonl_is_deterministic_and_ordered() {
        let build = || {
            let mut t = RecordingTracer::with_config(RecordingConfig {
                ring_capacity: 4,
                sample_every: 10,
            });
            t.port_registered(NodeId(1), PortId(0), Rate::gbps(10), NodeId(0));
            t.port_registered(NodeId(0), PortId(0), Rate::gbps(10), NodeId(1));
            for i in 0..6u64 {
                t.queue_event(&QueueRecord {
                    at: i,
                    node: NodeId(0),
                    port: PortId(0),
                    ev: QueueEvent::Enqueue,
                    flow: FlowId(1),
                    seq: i * 1460,
                    kind: PacketKind::Data,
                    class: TrafficClass::Scheduled,
                    size: 1500,
                    payload: 1460,
                    qlen_bytes: (i + 1) * 1500,
                    qlen_pkts: (i + 1) as usize,
                });
            }
            t.link_tx(7, NodeId(0), PortId(0), 1500);
            t.transport_event(
                8,
                NodeId(0),
                &TransportEvent::LossDetected { flow: FlowId(1), bytes: 1460, cause: LossCause::Probe },
            );
            t.finish(40);
            t.to_jsonl()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "identical event streams must serialize identically");
        // Structural sanity: meta first, ports sorted by (node, port), ring
        // capped at 4 with 2 dropped.
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"node\":0"));
        assert!(lines[2].contains("\"node\":1"));
        assert!(a.contains("\"ring_dropped\":2"));
        assert!(a.contains("\"ev\":\"loss_detected\""));
        assert!(a.contains("\"cause\":\"probe\""));
        assert!(a.contains("\"name\":\"depth\""));
        assert!(a.contains("\"name\":\"inflight:sched\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('[').count(), line.matches(']').count());
        }
    }
}
