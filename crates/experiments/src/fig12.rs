//! Figure 12 — Homa vs Homa+Aeolus FCT of 0–100 KB flows on the two-tier
//! tree at 54% load (the maximum Homa sustains), all four workloads.

use aeolus_sim::units::ms;
use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::homa_two_tier;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run Figure 12.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 12",
            schemes: &[Scheme::Homa { rto: ms(10) }, Scheme::HomaAeolus],
            spec: homa_two_tier(scale),
            workloads: &Workload::ALL,
            host_load: 0.54,
            flows: (60, 1000, 5000),
            seed: 1212,
        },
        scale,
    );
    r.note("paper: Homa+Aeolus completes all small flows within 610us; Homa's p99 is ~150ms (RTO-bound)");
    r
}
