//! Simulator validation suite (`repro validate`): calibration checks that
//! the substrate behaves as its analytic model predicts, run before trusting
//! any reproduction number. Real simulators ship the same kind of checks.
//!
//! 1. **RTT calibration** — a 1-byte echo flow's FCT matches the topology's
//!    configured base RTT plus serialization, per topology family.
//! 2. **Throughput calibration** — a single elephant approaches line rate
//!    under every scheme (proactive schemes after their ramp).
//! 3. **Fairness** — concurrent equal elephants share a bottleneck with a
//!    high Jain index under the receiver-driven schemes.
//! 4. **Conservation** — delivered bytes equal flow sizes exactly, and
//!    transfer efficiency never exceeds 1.

use aeolus_sim::units::{ms, PS_PER_SEC};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_stats::{f2, f3, Samples, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder, TopoSpec};

use crate::report::Report;
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, heavy_spine_leaf, homa_two_tier, testbed};

fn rtt_check(spec: TopoSpec, name: &str, table: &mut TextTable) {
    let mut h = SchemeBuilder::new(Scheme::NdpAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    // Longest path: first host to last host.
    let (src, dst) = (hosts[0], *hosts.last().unwrap());
    h.schedule(&[FlowDesc { id: FlowId(1), src, dst, size: 1, start: 0 }]);
    assert!(h.run(ms(100)));
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    // One-way delivery ≈ base_rtt/2 plus a few serializations.
    let expect = h.topo.base_rtt / 2;
    table.row(vec![
        name.to_string(),
        f2(expect as f64 / 1e6),
        f2(fct as f64 / 1e6),
        f3(fct as f64 / expect.max(1) as f64),
    ]);
}

fn throughput_check(scheme: Scheme, table: &mut TextTable) {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let size = 4_000_000u64;
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
    assert!(h.run(ms(500)), "{} elephant incomplete", scheme.name());
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    let gbps = size as f64 * 8.0 / (fct as f64 / PS_PER_SEC as f64) / 1e9;
    table.row(vec![scheme.label(), f2(gbps), f3(gbps / 10.0)]);
}

fn fairness_check(scheme: Scheme, table: &mut TextTable) {
    let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..4)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 1_000_000,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    assert!(h.run(ms(2000)), "{} fairness run incomplete", scheme.name());
    // Throughput share approximated by inverse FCT.
    let rates: Vec<f64> =
        h.metrics().flows().map(|r| 1e9 / r.fct().unwrap() as f64).collect();
    let jain = Samples::from_vec(rates).jain_fairness();
    table.row(vec![scheme.label(), f3(jain)]);
}

/// Run the validation suite.
pub fn run(_scale: Scale) -> Report {
    let mut r = Report::new();

    let mut rtt = TextTable::new(vec!["topology", "expected 1-way (us)", "measured FCT (us)", "ratio"]);
    rtt_check(testbed(), "testbed 8x10G", &mut rtt);
    rtt_check(homa_two_tier(Scale::Smoke), "two-tier 100G", &mut rtt);
    rtt_check(ep_fat_tree(Scale::Smoke), "fat-tree 100G", &mut rtt);
    rtt_check(heavy_spine_leaf(Scale::Smoke), "heavy spine-leaf", &mut rtt);
    r.section("Validation 1: base-RTT calibration (1-byte flow)", rtt);

    let mut tp = TextTable::new(vec!["scheme", "elephant Gbps (of 10)", "fraction"]);
    for scheme in [
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::Ndp,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
    ] {
        throughput_check(scheme, &mut tp);
    }
    r.section("Validation 2: single-flow throughput (4MB on idle 10G)", tp);

    let mut fair = TextTable::new(vec!["scheme", "Jain index (4 equal elephants)"]);
    for scheme in [Scheme::ExpressPass, Scheme::HomaAeolus, Scheme::Ndp, Scheme::Dctcp { rto: ms(10) }]
    {
        fairness_check(scheme, &mut fair);
    }
    r.section("Validation 3: bottleneck fairness", fair);

    r.note("ratio near 1.0 / fraction near 1.0 / Jain near 1.0 = calibrated; see EXPERIMENTS.md for interpretation");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_suite_runs_and_is_calibrated() {
        let r = run(Scale::Smoke);
        assert_eq!(r.sections.len(), 3);
        // RTT ratios live in the last column of section 1.
        let csv = r.sections[0].1.to_csv();
        for line in csv.lines().skip(1) {
            let ratio: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!(
                (0.9..2.5).contains(&ratio),
                "RTT ratio {ratio} out of calibration: {line}"
            );
        }
    }
}
