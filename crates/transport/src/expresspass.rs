//! ExpressPass (SIGCOMM'17) — receiver-driven, credit-scheduled transport —
//! with pluggable first-RTT handling:
//!
//! * [`FirstRttMode::Hold`]: the original protocol — a new sender transmits
//!   only a credit request and waits one RTT for credits.
//! * [`FirstRttMode::Aeolus`]: the paper's contribution — a BDP-worth
//!   droppable unscheduled burst, probe-based loss detection, and scheduled
//!   retransmission driven by the (untouched) credit loop.
//! * [`FirstRttMode::Oracle`]: §2.3's hypothetical ExpressPass (spare
//!   bandwidth used perfectly, zero interference).
//! * [`FirstRttMode::LowPrio`]: §5.5's priority-queueing strawman with
//!   RTO-based recovery.
//!
//! The credit loop follows the ExpressPass design: per-flow credit pacing at
//! the receiver starting at 1/16 of line rate, credit throttling in switch
//! queues ([`aeolus_sim::XPassQueue`]), and aggressiveness-weighted
//! feedback control driven by the credit loss ratio (data packets echo the
//! credit sequence they consumed).

use aeolus_core::PreCreditSender;
use aeolus_sim::units::{Time, PS_PER_SEC};
use aeolus_sim::{
    Ctx, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, NodeId, Packet, PacketKind, TimerTable,
    TrafficClass, TransportEvent, CREDIT_BYTES,
};

use crate::common::{
    abort_peer_silent, ack_packet, data_packet, probe_ack_packet, probe_packet, BaseConfig,
    FirstRttMode, Tombstones,
};
use crate::receiver_table::RecvBook;

/// ExpressPass tunables (paper defaults in `Default` given a [`BaseConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct XPassConfig {
    /// Shared transport parameters.
    pub base: BaseConfig,
    /// Initial credit rate as a fraction of line rate (paper: 1/16).
    pub init_rate_frac: f64,
    /// Initial aggressiveness ω (paper: 1/16).
    pub w_init: f64,
    /// Maximum aggressiveness.
    pub w_max: f64,
    /// Minimum aggressiveness.
    pub w_min: f64,
    /// Target credit loss ratio (ExpressPass default 0.125).
    pub target_loss: f64,
    /// Credit feedback period (≈ one RTT).
    pub feedback_period: Time,
    /// Retransmission timeout for the RTO-recovery strawman (`LowPrio`).
    pub rto: Option<Time>,
}

impl XPassConfig {
    /// Paper defaults for the given base configuration.
    pub fn new(base: BaseConfig) -> XPassConfig {
        XPassConfig {
            base,
            init_rate_frac: 1.0 / 16.0,
            w_init: 1.0 / 16.0,
            w_max: 0.5,
            w_min: 0.01,
            target_loss: 0.125,
            feedback_period: base.base_rtt.max(1),
            rto: None,
        }
    }
}

/// A batch of missing ranges to re-request from one sender.
type ResendBatch = (FlowId, NodeId, Vec<(u64, u64)>);

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    CreditTick(FlowId),
    Feedback(FlowId),
    Rto(FlowId),
    /// §6 probe-retry: resend request+probe if nothing was heard at all.
    ProbeRetry(FlowId),
    /// Receiver-side stall scan: detects flows whose sender went idle while
    /// bytes are still missing (a scheduled packet was lost to transient
    /// buffer overflow — rare, but unrecoverable without this backstop).
    StallScan,
}

struct SendFlow {
    desc: FlowDesc,
    core: PreCreditSender,
    /// Set once anything at all came back (credit, ACK, probe ACK, resend).
    heard_back: bool,
    /// Probe sequence, kept for §6 retries.
    probe_seq: Option<u64>,
    /// Most recent loss-detection cause (attributes retransmissions in
    /// telemetry traces).
    last_loss: Option<LossCause>,
    /// Last time anything of this flow was heard (drives the silence-gated
    /// retry; reset on every credit/ACK/resend receipt).
    last_heard: Time,
    /// Consecutive retry firings without a response, capped — each doubles
    /// the next retry interval so a long outage never seeds a retry storm.
    retry_fires: u32,
}

struct RecvFlow {
    sender: NodeId,
    book: RecvBook,
    /// Consecutive stall-scan resends without progress, capped — backs off
    /// this flow's stall window exponentially (reset on data arrival).
    stall_strikes: u32,
    next_credit_seq: u64,
    /// Induced-data rate in bits/s this flow's credits are paced at.
    rate_bps: f64,
    w: f64,
    can_increase_w: bool,
    /// Highest credit sequence echoed back by a data packet.
    last_echo: u64,
    /// Data packets received this feedback period.
    delivered_period: u64,
    /// Credits inferred lost this period (gaps in the echo sequence —
    /// delay-insensitive, exactly how ExpressPass measures credit loss).
    lost_period: u64,
    /// Credits sent this period (for idle back-off when the sender stops
    /// responding entirely).
    credits_sent_period: u64,
    /// Last time any data packet of this flow arrived.
    last_arrival: Time,
    /// Last *real* arrival — unlike `last_arrival` this is never rewound by
    /// the stall scan's back-off, so it measures true peer silence.
    last_progress: Time,
    ticking: bool,
}

/// The per-host ExpressPass endpoint (plays both sender and receiver roles).
pub struct XPassEndpoint {
    cfg: XPassConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<TimerKind>,
    stall_scan_armed: bool,
    dead: Tombstones,
}

impl XPassEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: XPassConfig) -> XPassEndpoint {
        XPassEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            stall_scan_armed: false,
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort (sender or receiver role): drop the flow's local
    /// state, bury its id, and record the abort. Returns true if state was
    /// dropped (the caller must not re-arm the flow's timers).
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) -> bool {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
        true
    }

    /// Interval after which an incomplete flow with no arrivals is deemed
    /// stalled (a lost scheduled packet) and its gaps are re-requested.
    /// A backstop for pathological loss — floored at 1 ms so loaded-network
    /// queueing is never mistaken for a stall.
    fn stall_after(&self) -> Time {
        (8 * self.cfg.base.base_rtt.max(1)).max(aeolus_sim::units::ms(1))
    }

    fn arm_stall_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.stall_scan_armed {
            return;
        }
        self.stall_scan_armed = true;
        let delay = self.stall_after();
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::StallScan));
    }

    fn on_stall_scan(&mut self, ctx: &mut Ctx<'_>) {
        self.stall_scan_armed = false;
        let stall_after = self.stall_after();
        let mut any_incomplete = false;
        let mut resends: Vec<ResendBatch> = Vec::new();
        let mut give_ups: Vec<FlowId> = Vec::new();
        for (id, rf) in self.recv_flows.iter_mut() {
            if rf.book.is_complete() {
                continue;
            }
            if self.cfg.base.peer_silent(rf.last_progress, ctx.now) {
                // The sender has made no progress past the death threshold
                // despite backed-off resends: abort instead of probing it
                // forever.
                give_ups.push(id);
                continue;
            }
            any_incomplete = true;
            let size = match rf.book.core.size() {
                Some(s) => s,
                None => continue,
            };
            // Each fruitless resend doubles this flow's stall window (capped)
            // so a dead sender is probed ever more gently.
            let wait = stall_after << rf.stall_strikes.min(4);
            if ctx.now.saturating_sub(rf.last_arrival) >= wait {
                let missing: Vec<(u64, u64)> =
                    rf.book.core.missing_below(size).into_iter().take(8).collect();
                if !missing.is_empty() {
                    ctx.metrics.note_timeout(id);
                    rf.last_arrival = ctx.now; // back off one period
                    rf.stall_strikes = (rf.stall_strikes + 1).min(4);
                    resends.push((id, rf.sender, missing));
                }
            }
        }
        give_ups.sort_unstable();
        for id in give_ups {
            self.give_up_on(id, ctx);
        }
        // Slot order is not key order: sort so resend emission matches the
        // seed's BTreeMap scan order exactly.
        resends.sort_unstable_by_key(|&(id, _, _)| id);
        for (id, sender, missing) in resends {
            for (s, e) in missing {
                let r = Packet::control(id, ctx.host, sender, s, PacketKind::Resend { end: e });
                ctx.send(r);
            }
        }
        if any_incomplete {
            self.stall_scan_armed = true;
            ctx.set_timer_in_with(stall_after, self.timers.arm(TimerKind::StallScan));
        }
    }

    fn mtu(&self) -> u32 {
        self.cfg.base.mtu_payload
    }

    /// Credit pacing interval for a flow at `rate_bps` induced-data rate.
    fn credit_interval(&self, rate_bps: f64) -> Time {
        let bits = self.cfg.base.mtu_wire() as f64 * 8.0;
        ((bits / rate_bps) * PS_PER_SEC as f64) as Time
    }

    fn max_rate_bps(&self, ctx: &Ctx<'_>) -> f64 {
        // Credits consume reverse bandwidth; cap induced data at the
        // data-fraction of line rate like the switch throttle does.
        let mtu = self.cfg.base.mtu_wire() as f64;
        ctx.line_rate.bps() as f64 * mtu / (mtu + CREDIT_BYTES as f64)
    }

    /// Ensure receive-side state exists (created on Request, first data or
    /// probe — whichever wins the race) and its credit loop is running.
    fn ensure_recv_flow(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) {
        let max_rate = self.max_rate_bps(ctx);
        let init = max_rate * self.cfg.init_rate_frac;
        let w = self.cfg.w_init;
        let cfgp = self.cfg.feedback_period;
        let entry = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
            sender: pkt.src,
            book: RecvBook::new(),
            stall_strikes: 0,
            next_credit_seq: 1,
            rate_bps: init,
            w,
            can_increase_w: true,
            last_echo: 0,
            delivered_period: 0,
            lost_period: 0,
            credits_sent_period: 0,
            last_arrival: ctx.now,
            last_progress: ctx.now,
            ticking: false,
        });
        entry.book.learn_size(pkt.flow_size);
        if !entry.ticking && !entry.book.is_complete() {
            entry.ticking = true;
            ctx.set_timer_in_with(0, self.timers.arm(TimerKind::CreditTick(pkt.flow)));
            ctx.set_timer_in_with(cfgp, self.timers.arm(TimerKind::Feedback(pkt.flow)));
        }
        self.arm_stall_scan(ctx);
    }

    /// Send one credit-induced chunk (called per credit).
    fn pump_scheduled(&mut self, flow: FlowId, credit_seq: u64, ctx: &mut Ctx<'_>) {
        let mtu = self.mtu();
        if let Some(sf) = self.send_flows.get_mut(flow) {
            if let Some(chunk) = sf.core.next_scheduled_chunk(mtu) {
                let mut pkt =
                    data_packet(&sf.desc, chunk.seq, chunk.len, TrafficClass::Scheduled, chunk.retransmit);
                pkt.credit_echo = credit_seq;
                if chunk.retransmit {
                    let cause = if chunk.last_resort {
                        LossCause::LastResort
                    } else {
                        sf.last_loss.unwrap_or(LossCause::Probe)
                    };
                    ctx.emit(TransportEvent::Retransmit { flow, bytes: chunk.len as u64, cause });
                }
                ctx.send(pkt);
            }
        }
    }

    fn on_credit_tick(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        // Receiver-side allocation: a flow never gets more than a fair share
        // of this receiver's aggregate credit capacity (the real DPDK
        // receiver rate-limits its own credit NIC the same way); the
        // feedback loop then handles remote bottlenecks.
        let active = self.recv_flows.values().filter(|rf| !rf.book.is_complete()).count().max(1);
        let local_cap = self.max_rate_bps(ctx) / active as f64;
        let credit_grant = self.cfg.base.mtu_payload as u64;
        let rate_bps = {
            let rf = match self.recv_flows.get_mut(flow) {
                Some(rf) => rf,
                None => return,
            };
            if rf.book.is_complete() {
                rf.ticking = false;
                return;
            }
            let mut credit = Packet::control(flow, ctx.host, rf.sender, rf.next_credit_seq, PacketKind::Credit);
            credit.size = CREDIT_BYTES;
            rf.next_credit_seq += 1;
            rf.credits_sent_period += 1;
            ctx.emit(TransportEvent::CreditIssue { flow, bytes: credit_grant });
            ctx.send(credit);
            rf.rate_bps.min(local_cap)
        };
        let interval = self.credit_interval(rate_bps);
        ctx.set_timer_in_with(interval, self.timers.arm(TimerKind::CreditTick(flow)));
    }

    fn on_feedback(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let max_rate = self.max_rate_bps(ctx);
        let period = self.cfg.feedback_period;
        let (target, w_max, w_min) = (self.cfg.target_loss, self.cfg.w_max, self.cfg.w_min);
        let reschedule = {
            let rf = match self.recv_flows.get_mut(flow) {
                Some(rf) => rf,
                None => return,
            };
            let total = rf.delivered_period + rf.lost_period;
            if total == 0
                && rf.credits_sent_period > 0
                && ctx.now.saturating_sub(rf.last_arrival) > 4 * period
            {
                // Credits keep going out but no data has arrived for several
                // RTTs: the sender is idle (done sending, or stalled on a
                // loss). Back off to avoid blasting credits at a dead flow.
                rf.rate_bps = (rf.rate_bps / 2.0).max(max_rate / 1024.0);
            }
            if total > 0 {
                let loss = rf.lost_period as f64 / total as f64;
                if loss <= target {
                    // Tolerable loss: move toward max rate. The additive
                    // pull `w * (max - rate)` is what makes competing flows
                    // converge to a fair share (ExpressPass Algorithm 1).
                    if loss == 0.0 && rf.can_increase_w {
                        rf.w = ((rf.w + w_max) / 2.0).min(w_max);
                    }
                    rf.rate_bps = (1.0 - rf.w) * rf.rate_bps + rf.w * max_rate;
                    rf.can_increase_w = loss == 0.0;
                } else {
                    rf.rate_bps *= (1.0 - loss) * (1.0 + target);
                    rf.w = (rf.w / 2.0).max(w_min);
                    rf.can_increase_w = false;
                }
                rf.rate_bps = rf.rate_bps.clamp(max_rate / 1024.0, max_rate);
            }
            rf.delivered_period = 0;
            rf.lost_period = 0;
            rf.credits_sent_period = 0;
            !rf.book.is_complete()
        };
        if reschedule {
            ctx.set_timer_in_with(period, self.timers.arm(TimerKind::Feedback(flow)));
        }
    }

    /// Base §6 retry interval; each of a flow's earlier fruitless fires
    /// doubles it, capped at 64× (capped exponential backoff).
    fn probe_retry_base(&self) -> Time {
        let retry_rtts = self.cfg.base.aeolus.probe_retry_rtts;
        (retry_rtts as Time * self.cfg.base.base_rtt.max(1)).max(aeolus_sim::units::ms(2))
    }

    fn on_probe_retry(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        if self.cfg.base.aeolus.probe_retry_rtts == 0 {
            return;
        }
        let base = self.probe_retry_base();
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let rearm_in = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.core.fully_acked() || (sf.heard_back && !sf.core.has_work()) {
                // Every byte is out (or acknowledged); any residual tail loss
                // is the receiver stall scan's business.
                None
            } else if pcfg.peer_silent(sf.last_heard, ctx.now) {
                // The peer has been silent past the death threshold despite
                // capped-backoff retries: declare it dead and abort rather
                // than retry forever.
                give_up = true;
                None
            } else {
                let interval = base << sf.retry_fires.min(6);
                if ctx.now.saturating_sub(sf.last_heard) >= interval {
                    // Silence for a whole retry interval. Before first
                    // contact that means the request (and possibly the probe)
                    // never made it; after, the credit loop's packets are not
                    // getting through — either way, re-ask. This is the
                    // scheduled-phase RTO fallback: the re-sent request
                    // re-kicks the receiver's credit loop and stall scan.
                    ctx.metrics.note_timeout(flow);
                    let mut req =
                        Packet::control(flow, ctx.host, sf.desc.dst, 0, PacketKind::Request);
                    req.flow_size = sf.desc.size;
                    ctx.send(req);
                    if !sf.heard_back {
                        if let Some(ps) = sf.probe_seq {
                            ctx.send(probe_packet(&sf.desc, ps));
                        }
                    }
                    sf.retry_fires = (sf.retry_fires + 1).min(6);
                }
                Some(base << sf.retry_fires.min(6))
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if let Some(d) = rearm_in {
            ctx.set_timer_in_with(d, self.timers.arm(TimerKind::ProbeRetry(flow)));
        }
    }

    fn on_rto(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let rto = match self.cfg.rto {
            Some(r) => r,
            None => return,
        };
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let rearm = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.core.fully_acked() {
                false
            } else if pcfg.peer_silent(sf.last_heard, ctx.now) {
                give_up = true;
                false
            } else {
                ctx.metrics.note_timeout(flow);
                let unacked = sf.core.unacked_ranges();
                let lost = sf.core.force_mark_lost(&unacked);
                if lost > 0 {
                    sf.last_loss = Some(LossCause::Timeout);
                    ctx.emit(TransportEvent::LossDetected {
                        flow,
                        bytes: lost,
                        cause: LossCause::Timeout,
                    });
                }
                true
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if rearm {
            ctx.set_timer_in_with(rto, self.timers.arm(TimerKind::Rto(flow)));
        }
    }
}

impl Endpoint for XPassEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mode = self.cfg.base.mode;
        let budget = if mode.bursts() {
            self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt)
        } else {
            0
        };
        let mut core = PreCreditSender::new(flow.size, budget);
        if mode == FirstRttMode::LowPrio {
            // The §5.5 strawman recovers by RTO only — no last-resort
            // retransmission of unacked bursts (that is an Aeolus refinement).
            core.disable_last_resort();
        }
        // Credit request first (it carries the demand), then the line-rate
        // burst: the NIC serializes them back to back.
        let mut req = Packet::control(flow.id, flow.src, flow.dst, 0, PacketKind::Request);
        req.flow_size = flow.size;
        ctx.send(req);
        let mtu = self.mtu();
        let mut burst_prio = 0;
        let mut burst_sent = 0u64;
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStart { flow: flow.id, bytes: budget.min(flow.size) });
        }
        while let Some(chunk) = core.next_burst_chunk(mtu) {
            let mut pkt =
                data_packet(&flow, chunk.seq, chunk.len, TrafficClass::Unscheduled, false);
            mode.stamp_unscheduled(&mut pkt, 0, 7);
            burst_prio = pkt.priority;
            burst_sent += chunk.len as u64;
            ctx.send(pkt);
        }
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStop { flow: flow.id, sent: burst_sent });
        }
        let mut probe_seq = None;
        if let Some(ps) = core.end_burst() {
            if mode.probe_recovery() {
                // The probe trails the burst through every queue: same
                // priority, protected by its ECT mark.
                let mut probe = probe_packet(&flow, ps);
                probe.priority = burst_prio;
                ctx.send(probe);
                probe_seq = Some(ps);
            }
        }
        if let Some(rto) = self.cfg.rto {
            ctx.set_timer_in_with(rto, self.timers.arm(TimerKind::Rto(flow.id)));
        }
        if self.cfg.base.aeolus.probe_retry_rtts > 0 {
            let token = self.timers.arm(TimerKind::ProbeRetry(flow.id));
            ctx.set_timer_in_with(self.probe_retry_base(), token);
        }
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                core,
                heard_back: false,
                probe_seq,
                last_loss: None,
                last_heard: ctx.now,
                retry_fires: 0,
            },
        );
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Request => {
                self.ensure_recv_flow(&pkt, ctx);
            }
            PacketKind::Credit => {
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    sf.retry_fires = 0;
                    ctx.emit(TransportEvent::CreditReceipt {
                        flow: pkt.flow,
                        bytes: self.cfg.base.mtu_payload as u64,
                    });
                }
                self.pump_scheduled(pkt.flow, pkt.seq, ctx);
            }
            PacketKind::Data => {
                self.ensure_recv_flow(&pkt, ctx);
                let mode = self.cfg.base.mode;
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                let unscheduled = pkt.class == TrafficClass::Unscheduled;
                rf.last_arrival = ctx.now;
                rf.last_progress = ctx.now;
                rf.stall_strikes = 0;
                let v = rf.book.on_data(&pkt, ctx);
                if pkt.credit_echo > 0 {
                    // Credit-loss accounting: a gap in the echoed credit
                    // sequence means those credits were throttled away.
                    if pkt.credit_echo > rf.last_echo {
                        rf.lost_period += pkt.credit_echo - rf.last_echo - 1;
                        rf.last_echo = pkt.credit_echo;
                    }
                    rf.delivered_period += 1;
                }
                // Aeolus ACKs unscheduled packets; the RTO strawman ACKs
                // everything (its only loss signal); plain ExpressPass and
                // the oracle ACK unscheduled too (dedup/GC — harmless 64 B).
                let want_ack = unscheduled || mode == FirstRttMode::LowPrio;
                if let (true, Some((s, e))) = (want_ack, v.acked_range) {
                    ctx.send(ack_packet(pkt.flow, ctx.host, pkt.src, s, e));
                }
            }
            PacketKind::Probe => {
                self.ensure_recv_flow(&pkt, ctx);
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                rf.book.core.on_probe(pkt.seq, pkt.flow_size);
                ctx.send(probe_ack_packet(pkt.flow, ctx.host, pkt.src, pkt.seq));
            }
            PacketKind::Resend { end } => {
                // Receiver-detected stall: requeue the range; it rides out
                // on the next credits.
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    sf.retry_fires = 0;
                    let lost = sf.core.requeue_lost(pkt.seq, end);
                    if lost > 0 {
                        sf.last_loss = Some(LossCause::Stall);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause: LossCause::Stall,
                        });
                    }
                }
            }
            PacketKind::Ack { of_probe, end } => {
                let infer = self.cfg.base.sack_inference();
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    sf.retry_fires = 0;
                    let (lost, cause) = if of_probe {
                        (sf.core.on_probe_ack(), LossCause::Probe)
                    } else if infer {
                        (sf.core.on_ack(pkt.seq, end), LossCause::SackGap)
                    } else {
                        sf.core.on_ack_no_infer(pkt.seq, end);
                        (0, LossCause::SackGap)
                    };
                    if lost > 0 {
                        sf.last_loss = Some(cause);
                        ctx.emit(TransportEvent::LossDetected { flow: pkt.flow, bytes: lost, cause });
                    }
                }
            }
            other => {
                debug_assert!(false, "unexpected packet kind for ExpressPass: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match self.timers.fire(token) {
            Some(TimerKind::CreditTick(f)) => self.on_credit_tick(f, ctx),
            Some(TimerKind::Feedback(f)) => self.on_feedback(f, ctx),
            Some(TimerKind::Rto(f)) => self.on_rto(f, ctx),
            Some(TimerKind::ProbeRetry(f)) => self.on_probe_retry(f, ctx),
            Some(TimerKind::StallScan) => self.on_stall_scan(ctx),
            None => {}
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state: flow tables,
        // armed timers (generation bump makes queued tokens stale) and
        // tombstones (the engine re-buries aborted flows right after).
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.stall_scan_armed = false;
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        // Raise the tombstone and drop any leftover state so the relaunch
        // (a fresh FlowArrival) starts from a clean slate.
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}
