#!/usr/bin/env bash
# Tier-1 gate + smoke repro. Fully offline; no network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace

# Zero-alloc proof in release mode: steady-state forwarding must not touch
# the global allocator after warm-up (counting-allocator integration test).
cargo test --release -q --test zero_alloc

# Bench targets compile and run in quick mode (2 iterations, no report).
AEOLUS_BENCH_ITERS=2 AEOLUS_BENCH_WARMUP=1 cargo bench -p aeolus-bench --bench engine
AEOLUS_BENCH_ITERS=2 AEOLUS_BENCH_WARMUP=1 cargo bench -p aeolus-bench --bench alloc

# One end-to-end experiment at smoke scale, exercising the parallel fan-out.
cargo run --release -q -p aeolus-experiments --bin repro -- fig1 --scale smoke --jobs 2

# Calibration gate: `repro validate` checks RTT/throughput/fairness against
# explicit tolerances and exits non-zero on any violation, so a drifting
# substrate fails CI here instead of producing silently-wrong figures.
cargo run --release -q -p aeolus-experiments --bin repro -- validate --scale smoke

# Trace smoke: capture one traced incast, check the JSONL parses and is
# non-empty (every line a JSON object, with at least one queue event).
trace_out="$(mktemp -d)/trace_ci.jsonl"
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --trace-out "$trace_out"
python3 - "$trace_out" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) > 100, f"trace suspiciously small: {len(lines)} lines"
kinds = set()
for l in lines:
    kinds.add(json.loads(l)["type"])
assert {"meta", "port", "queue", "transport", "series"} <= kinds, kinds
print(f"trace smoke: {len(lines)} JSONL lines, record types {sorted(kinds)}")
EOF

# NullTracer overhead gate: a fresh engine-bench run's incast kernel must
# stay close to the committed baseline in results/bench.json. The tracer
# hooks are statically dispatched to no-ops by default, so any regression
# here means the abstraction stopped compiling away. The tolerance is
# wider than the 2% acceptance bar (measured with full iterations on a
# quiet machine) to absorb CI-host noise; override with AEOLUS_OVERHEAD_TOL.
bench_out="$(mktemp -d)/bench_ci.json"
AEOLUS_BENCH_ITERS="${AEOLUS_BENCH_ITERS:-5}" AEOLUS_BENCH_WARMUP="${AEOLUS_BENCH_WARMUP:-1}" \
    cargo run --release -q -p aeolus-bench --bin aeolus-bench -- \
    --engine-only --out "$bench_out"
python3 - "$bench_out" results/bench.json <<'EOF'
import json, os, sys
def bench(path, name):
    for suite in json.load(open(path))["suites"]:
        for b in suite["benches"]:
            if b["name"] == name:
                return b
    raise SystemExit(f"{name} missing from {path}")
fresh = bench(sys.argv[1], "incast_sim_wheel")
base = bench(sys.argv[2], "incast_sim_wheel")
tol = float(os.environ.get("AEOLUS_OVERHEAD_TOL", "0.15"))
ratio = fresh["median_ns"] / base["median_ns"]
print(f"NullTracer overhead: incast_sim_wheel {fresh['median_ns']} ns vs baseline {base['median_ns']} ns ({ratio:.3f}x)")
assert ratio <= 1.0 + tol, f"NullTracer kernel regressed {ratio:.3f}x > {1+tol:.2f}x baseline"
# Events/s regression gate: the fresh engine kernel must sustain at least
# (1 - tol) of the committed baseline's event rate, so throughput can't
# silently regress between refreshes of results/bench.json.
rate, floor = fresh["units_per_sec"], (1.0 - tol) * base["units_per_sec"]
print(f"events/s gate: incast_sim_wheel {rate:.0f} events/s vs baseline {base['units_per_sec']:.0f} (floor {floor:.0f})")
assert rate >= floor, f"engine throughput regressed: {rate:.0f} events/s < {floor:.0f} floor"
# Same floor for the fully-traced kernel (the NullTracer-overhead bench's
# denominator): recording-path throughput is a supported configuration and
# must not silently rot either.
fresh_rec = bench(sys.argv[1], "incast_sim_wheel_recorded")
base_rec = bench(sys.argv[2], "incast_sim_wheel_recorded")
rate, floor = fresh_rec["units_per_sec"], (1.0 - tol) * base_rec["units_per_sec"]
print(f"events/s gate: incast_sim_wheel_recorded {rate:.0f} events/s vs baseline {base_rec['units_per_sec']:.0f} (floor {floor:.0f})")
assert rate >= floor, f"traced throughput regressed: {rate:.0f} events/s < {floor:.0f} floor"
EOF

# Macro throughput gate: one measured iteration of the quick-scale Figure 9
# sweep (the heaviest single kernel in the BENCH trajectory) must hold the
# committed baseline's events/s floor. One iteration is noisy, so the
# tolerance is wider than the engine gate's; override with AEOLUS_MACRO_TOL.
macro_out="$(mktemp -d)/bench_macro.json"
AEOLUS_BENCH_ITERS=1 AEOLUS_BENCH_WARMUP=1 \
    cargo run --release -q -p aeolus-bench --bin aeolus-bench -- --out "$macro_out"
python3 - "$macro_out" results/bench.json <<'EOF'
import json, os, sys
def bench(path, name):
    for suite in json.load(open(path))["suites"]:
        for b in suite["benches"]:
            if b["name"] == name:
                return b
    raise SystemExit(f"{name} missing from {path}")
fresh = bench(sys.argv[1], "fig09_quick_serial")
base = bench(sys.argv[2], "fig09_quick_serial")
tol = float(os.environ.get("AEOLUS_MACRO_TOL", "0.30"))
rate, floor = fresh["units_per_sec"], (1.0 - tol) * base["units_per_sec"]
print(f"macro gate: fig09_quick_serial {rate:.0f} events/s vs baseline {base['units_per_sec']:.0f} (floor {floor:.0f})")
assert rate >= floor, f"macro throughput regressed: {rate:.0f} events/s < {floor:.0f} floor"
# Bit-exactness gate: the kernel's total event count is deterministic, so a
# fresh run must process exactly as many events as the committed baseline.
# Any drift means a "performance" change altered simulation behavior.
assert fresh["units"] == base["units"], (
    f"fig09 event count drifted: {fresh['units']} vs baseline {base['units']} — "
    "the hot path changed simulation behavior, not just its speed")
print(f"macro gate: fig09_quick_serial event count bit-exact ({fresh['units']} events)")
EOF

# Conformance fuzz: a bounded batch of seeded random scenarios (scheme x
# topology x workload x faults) runs end-to-end under the online oracle
# (queue ledgers, drop legality, causality, conservation, burst budgets,
# retransmit pairing). On failure the fuzzer prints a shrunken one-line
# repro spec — rerun it locally with `repro fuzz --spec '<line>'`. The
# NullTracer bench gate above doubles as the oracle-off overhead proof:
# default builds dispatch the oracle's hooks to statically-inlined no-ops.
cargo run --release -q -p aeolus-experiments --bin repro -- fuzz --cases 25 --seed 1

# A second batch on a fresh seed: the slab-backed per-flow state (FlowMap /
# TimerTable) replaced every transport's BTreeMaps, so widen the randomized
# conformance coverage over flow churn, timer recycling and fault overlap.
cargo run --release -q -p aeolus-experiments --bin repro -- fuzz --cases 25 --seed 6

# Oracle smoke under a real experiment: fig1 at smoke scale with --check
# installs the CheckedTracer on every workload run; any invariant
# violation panics the run instead of reaching the report.
cargo run --release -q -p aeolus-experiments --bin repro -- fig1 --scale smoke --jobs 2 --check

# Chaos smoke: the fault sweep (loss rate x fabric flap, all six schemes)
# at smoke scale. Every cell runs under the completion watchdog — a single
# hung flow anywhere panics the run with per-flow diagnostics, so a zero
# exit code here *is* the zero-hung-flows assertion.
cargo run --release -q -p aeolus-experiments --bin repro -- chaos --scale smoke --jobs 2

# Node-chaos smoke: host crashes, pod partitions and an arbiter outage
# over all six schemes, every cell classified per-flow by run_degradation.
# A flow that neither completes nor aborts-with-cause is a VIOLATION line
# and repro exits non-zero — so this run *is* the zero-hangs gate.
cargo run --release -q -p aeolus-experiments --bin repro -- chaos_nodes --scale smoke --jobs 2

# Fault-schedule determinism gate: an identical --faults spec must produce
# a bit-identical trace capture across reruns and worker counts.
fault_dir="$(mktemp -d)"
fault_spec='loss=1%,down=200us..500us,seed=7'
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --faults "$fault_spec" --trace-out "$fault_dir/a.jsonl"
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --faults "$fault_spec" --trace-out "$fault_dir/b.jsonl" --jobs 1
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --faults "$fault_spec" --trace-out "$fault_dir/c.jsonl" --jobs 4
cmp "$fault_dir/a.jsonl" "$fault_dir/b.jsonl"
cmp "$fault_dir/a.jsonl" "$fault_dir/c.jsonl"
# And the schedule must actually have injected faults (corruption drops
# reach the queue-event stream as wire-level kills).
grep -q '"corruption"' "$fault_dir/a.jsonl" || {
    echo "faulted trace contains no corruption kills" >&2; exit 1;
}
echo "fault determinism: $(wc -l < "$fault_dir/a.jsonl") JSONL lines bit-identical across reruns and --jobs 1/4"

# Dormant node-fault gate: a plan whose crash / arbiter / partition windows
# all open *after* the run ends must be bit-identical to running with no
# plan at all — installing the node-fault machinery may not perturb event
# order, RNG draws or timing when nothing actually fires.
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --trace-out "$fault_dir/clean.jsonl"
cargo run --release -q -p aeolus-experiments --bin repro -- \
    --trace expresspass-aeolus --trace-out "$fault_dir/dormant.jsonl" \
    --faults 'crash=0@4s..5s,arbiter=6s..7s,partition=8s..9s'
cmp "$fault_dir/clean.jsonl" "$fault_dir/dormant.jsonl"
echo "dormant node-fault plan: trace bit-identical to no-faults run"

# Fuzz over the extended grammar: seed 41's batch draws node faults (host
# crashes, arbiter outages, partitions) in ~a third of its scenarios, and
# the oracle's settlement check fails any case with a hung flow.
cargo run --release -q -p aeolus-experiments --bin repro -- fuzz --cases 25 --seed 41

# Guided-fuzz batch from the committed corpus: replay every distilled
# distinct-behavior spec under the oracle (a broad behavioral regression
# suite — each entry once hit a novelty signature, including the shrunk
# failure specs), then spend the rest of the budget on corpus mutations and
# fresh scenarios. The corpus copy keeps the committed tree read-only under
# CI; any failure prints shrunk one-line repro specs and exits non-zero.
corpus_dir="$(mktemp -d)/corpus"
cp -r results/corpus "$corpus_dir"
n_corpus="$(ls "$corpus_dir" | wc -l)"
cargo run --release -q -p aeolus-experiments --bin repro -- \
    fuzz --corpus "$corpus_dir" --cases "$((n_corpus + 50))" --seed 99
# Guided search must strictly beat blind sampling on equal budgets
# (distinct novelty signatures) — the acceptance bar for corpus guidance.
cargo run --release -q -p aeolus-experiments --bin repro -- fuzz --stats --cases 25 --seed 1

# Cache-consistency gate: a warm rerun of the quick-scale fig9 sweep must
# (a) serve every cell from the content-addressed cache (zero misses),
# (b) re-verify a sample of hits bit-exactly (--cache-verify recomputes and
# byte-compares; any divergence panics), and (c) produce a byte-identical
# report. A cold third run with --no-cache proves the bypass still works.
cache_dir="$(mktemp -d)"
(cd "$cache_dir" && "$OLDPWD/target/release/repro" fig9 --scale quick --jobs 2 \
    | grep -v "took\|total\|events/s" > cold.txt)
(cd "$cache_dir" && "$OLDPWD/target/release/repro" fig9 --scale quick --jobs 2 --cache-verify \
    | grep -v "took\|total\|events/s" > warm.txt)
grep -q "\[cache: 0 hit(s)" "$cache_dir/cold.txt" || {
    echo "cold run should miss every cell" >&2; exit 1; }
grep -q " 0 miss(es)" "$cache_dir/warm.txt" || {
    echo "warm run should hit every cell" >&2; exit 1; }
grep "\[cache:" "$cache_dir/warm.txt" | grep -qv " 0 verified" || {
    echo "warm --cache-verify run verified no cells" >&2; exit 1; }
cmp <(grep -v "cache:" "$cache_dir/cold.txt") <(grep -v "cache:" "$cache_dir/warm.txt")
(cd "$cache_dir" && "$OLDPWD/target/release/repro" fig9 --scale quick --jobs 2 --no-cache \
    | grep -v "took\|total\|events/s\|cache:" > nocache.txt)
cmp <(grep -v "cache:" "$cache_dir/cold.txt") "$cache_dir/nocache.txt"
echo "cache gate: warm rerun all-hit, verify sample bit-exact, report byte-identical"

echo "ci: OK"
