#![warn(missing_docs)]
//! # aeolus-core — the Aeolus building block (SIGCOMM 2020)
//!
//! Protocol-agnostic implementation of the paper's three mechanisms:
//!
//! 1. **Minimal pre-credit rate control** ([`PreCreditSender`]): a new flow
//!    bursts one BDP of *unscheduled* packets at line rate, then switches to
//!    purely credit-induced transmission the moment the first credit arrives.
//! 2. **Selective dropping / scheduled-packet-first**
//!    ([`selective_drop_queue`], [`mark`]): one FIFO queue per switch port,
//!    RED/ECN re-interpreted so Non-ECT (unscheduled) packets drop above a
//!    tiny threshold while ECT (scheduled) packets are merely marked.
//! 3. **Probe-based loss recovery**: per-packet ACKs on unscheduled data,
//!    a 64 B probe after the burst, and retransmission of detected losses
//!    exactly once via guaranteed scheduled packets, in the priority order
//!    *lost unscheduled > unsent scheduled > unacked unscheduled*.
//!
//! The `aeolus-transport` crate wires these pieces into ExpressPass, Homa
//! and NDP.

pub mod config;
pub mod dropping;
pub mod receiver;
pub mod sender;

pub use config::{AeolusConfig, RecoveryMode};
pub use dropping::{mark, selective_drop_queue};
pub use receiver::{DataVerdict, PreCreditReceiver};
pub use sender::{Chunk, PreCreditSender};
