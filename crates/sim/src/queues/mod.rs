//! Egress queue disciplines.
//!
//! Every switch/NIC port owns one boxed [`QueueDisc`]. The disciplines model
//! exactly the commodity-switch features the paper relies on:
//!
//! * [`DropTailQueue`] — plain FIFO with a byte cap (optionally drawing from
//!   a switch-wide shared buffer pool, used by the Table 5 experiment).
//! * [`RedEcnQueue`] — single-threshold RED/ECN. With Aeolus' marking rule
//!   (unscheduled = Non-ECT, scheduled = ECT) this *is* selective dropping.
//! * [`WredQueue`] — the §4.1 WRED/color alternative: per-color thresholds
//!   in one queue, byte-for-byte equivalent drop decisions.
//! * [`PriorityBank`] — strict-priority bank of 8 FIFOs sharing a per-port
//!   byte cap (Homa) with an optional selective-dropping threshold.
//! * [`TrimmingQueue`] — NDP cutting-payload queue: data FIFO capped in
//!   packets; overflowing data packets are trimmed to headers and queued in
//!   a strict-priority control queue.
//! * [`XPassQueue`] — ExpressPass port: data FIFO plus a small credit FIFO
//!   drained through a token bucket at the credit-rate fraction of capacity.

mod droptail;
mod lossy;
mod priority;
mod red;
mod trimming;
mod wred;
mod xpass;

pub use droptail::DropTailQueue;
pub use lossy::LossyQueue;
pub use priority::PriorityBank;
pub use red::RedEcnQueue;
pub use trimming::TrimmingQueue;
pub use wred::{Color, WredProfile, WredQueue};
pub use xpass::XPassQueue;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// Why a packet was dropped at a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The per-port buffer (or its packet cap) was full.
    BufferFull,
    /// The switch-wide shared buffer pool was exhausted.
    SharedBufferFull,
    /// Aeolus selective dropping: a droppable (Non-ECT) packet arrived while
    /// the queue exceeded the selective-dropping threshold.
    SelectiveDrop,
    /// ExpressPass credit throttling: the credit queue overflowed.
    CreditOverflow,
    /// Fault injection: random (FCS) corruption loss on a link. Never
    /// conflated with [`DropReason::SelectiveDrop`] — corruption happens on
    /// the wire, selective dropping in the buffer.
    Corruption,
    /// Fault injection: the packet was in flight (or about to serialize)
    /// when its link went down.
    LinkDown,
    /// Fault injection: the packet was queued at, in flight to, or about to
    /// leave a crashed node. Distinct from [`DropReason::LinkDown`] so node
    /// faults have their own taxonomy in the drop matrix.
    NodeDown,
    /// Fault injection: the packet died to an arbiter/controller outage —
    /// either at the dead arbiter itself or as a credit-source blackout kill
    /// for schemes without a centralized arbiter.
    ArbiterDown,
    /// Fault recovery: the packet belonged to an earlier incarnation of a
    /// flow that aborted and relaunched while it was in flight. Delivered
    /// stale credit/grant state would corrupt the restarted incarnation
    /// (e.g. a pre-crash cumulative Homa grant doubling the sender's
    /// budget), so the receiving host rejects it at the NIC.
    StaleIncarnation,
}

/// Result of offering a packet to a queue.
#[derive(Debug)]
pub enum EnqueueOutcome {
    /// Queued unchanged.
    Queued,
    /// Queued with the ECN CE mark applied.
    QueuedMarked,
    /// Payload trimmed (NDP cutting payload); the header was queued.
    QueuedTrimmed,
    /// Rejected; the handle is returned so the caller can account for the
    /// packet and recycle its pool slot.
    Dropped {
        /// Why it was dropped.
        reason: DropReason,
        /// Handle of the rejected packet (still live in the pool).
        pkt: PacketRef,
    },
}

/// Result of asking a queue for the next packet to serialize.
#[derive(Debug)]
pub enum Poll {
    /// A packet is ready now.
    Ready(PacketRef),
    /// A packet is queued but pacing forbids sending before this time.
    NotBefore(Time),
    /// Nothing queued.
    Empty,
}

/// An egress queue discipline.
///
/// Packets are identified by pool handles; disciplines read and mutate them
/// through the [`PacketPool`] the engine passes in. A discipline never frees
/// a slot — dropped packets are handed back via
/// [`EnqueueOutcome::Dropped`] and the engine recycles them after
/// accounting.
pub trait QueueDisc {
    /// Offer a packet to the queue at time `now`.
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, now: Time) -> EnqueueOutcome;
    /// Ask for the next packet to transmit at time `now`.
    fn poll(&mut self, pool: &mut PacketPool, now: Time) -> Poll;
    /// Total bytes currently buffered.
    fn bytes(&self) -> u64;
    /// Total packets currently buffered.
    fn pkts(&self) -> usize;
    /// Append this discipline's internal occupancy bands (name, bytes) to
    /// `out` — priority levels, control vs data queues, credit queues, … —
    /// for telemetry sampling. Single-FIFO disciplines report one `"fifo"`
    /// band.
    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("fifo", self.bytes()));
    }
}

/// A switch-wide shared buffer pool (dynamic thresholding disabled — plain
/// complete sharing, as in the Table 5 incast experiment where unscheduled
/// packets in a low-priority queue starve the high-priority queue of buffer).
#[derive(Debug)]
pub struct SharedPool {
    cap: u64,
    used: u64,
}

/// Handle to a [`SharedPool`] shared by the port queues of one switch.
pub type PoolHandle = Rc<RefCell<SharedPool>>;

impl SharedPool {
    /// Create a pool with `cap` bytes shared by all ports.
    pub fn new(cap: u64) -> PoolHandle {
        Rc::new(RefCell::new(SharedPool { cap, used: 0 }))
    }

    /// Try to reserve `bytes`; returns false if the pool is exhausted.
    pub fn try_alloc(&mut self, bytes: u64) -> bool {
        if self.used + bytes > self.cap {
            false
        } else {
            self.used += bytes;
            true
        }
    }

    /// Release `bytes` back to the pool.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(self.used >= bytes, "freeing more than allocated");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Pool capacity in bytes.
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

/// FIFO of pooled packet handles with a running byte count — building block
/// for the disciplines in this module. The wire size is cached alongside
/// each handle (it is fixed once the packet is queued), so pops never touch
/// the pool.
#[derive(Debug, Default)]
pub(crate) struct ByteFifo {
    q: VecDeque<(PacketRef, u32)>,
    bytes: u64,
}

impl ByteFifo {
    pub fn new() -> ByteFifo {
        ByteFifo { q: VecDeque::new(), bytes: 0 }
    }

    pub fn push(&mut self, pkt: PacketRef, size: u32) {
        self.bytes += size as u64;
        self.q.push_back((pkt, size));
    }

    pub fn pop(&mut self) -> Option<(PacketRef, u32)> {
        let (pkt, size) = self.q.pop_front()?;
        self.bytes -= size as u64;
        Some((pkt, size))
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::packet::{FlowId, NodeId, Packet, PacketKind, TrafficClass};
    use crate::pool::{PacketPool, PacketRef};

    /// A 1500 B data packet of the given class.
    pub fn data_pkt(class: TrafficClass, seq: u64) -> Packet {
        Packet::data(FlowId(1), NodeId(0), NodeId(1), seq, 1460, class, 1 << 20)
    }

    /// A minimum-size control packet.
    pub fn ctrl_pkt(kind: PacketKind, seq: u64) -> Packet {
        Packet::control(FlowId(1), NodeId(0), NodeId(1), seq, kind)
    }

    /// [`data_pkt`] inserted into `pool`.
    pub fn data_ref(pool: &mut PacketPool, class: TrafficClass, seq: u64) -> PacketRef {
        pool.insert(data_pkt(class, seq))
    }

    /// [`ctrl_pkt`] inserted into `pool`.
    pub fn ctrl_ref(pool: &mut PacketPool, kind: PacketKind, seq: u64) -> PacketRef {
        pool.insert(ctrl_pkt(kind, seq))
    }

    /// Conformance audit: drive `disc` with `ops` seeded random
    /// enqueue/drain operations and replay every outcome through a
    /// [`crate::CheckedTracer`] ledger exactly as the engine would. Any
    /// occupancy lie (leaked, double-counted, or silently discarded packet),
    /// illegal drop classification, or pool-slot leak panics with the
    /// violating event. Shared by the per-discipline conformance tests.
    pub fn oracle_audit<F>(make: F, seed: u64, ops: usize)
    where
        F: Fn() -> Box<dyn super::QueueDisc>,
    {
        use super::{EnqueueOutcome, Poll, QueueDisc};
        use crate::oracle::{CheckedTracer, OracleProfile};
        use crate::packet::{Packet, PortId};
        use crate::rng::SimRng;
        use crate::telemetry::{QueueEvent, QueueRecord, TraceSink};
        use crate::units::Time;

        let mut disc = make();
        let mut pool = PacketPool::new();
        let mut oracle = CheckedTracer::with_profile(OracleProfile::universal());
        let mut rng = SimRng::seed_from_u64(seed);
        let mut now: Time = 0;
        let mut seq = 0u64;
        let node = NodeId(7);
        let port = PortId(3);

        let record = |disc: &dyn QueueDisc,
                      at: Time,
                      ev: QueueEvent,
                      pkt: &Packet|
         -> QueueRecord {
            QueueRecord {
                at,
                node,
                port,
                ev,
                flow: pkt.flow,
                seq: pkt.seq,
                kind: pkt.kind,
                class: pkt.class,
                size: pkt.size,
                payload: pkt.payload,
                qlen_bytes: disc.bytes(),
                qlen_pkts: disc.pkts(),
            }
        };

        for _ in 0..ops {
            now += rng.below(2000);
            if rng.below(3) < 2 {
                // Enqueue a random packet: mixed classes, kinds, priorities
                // and payload sizes, like a shared egress sees.
                let mut pkt = match rng.below(6) {
                    0 => data_pkt(TrafficClass::Unscheduled, seq),
                    1 | 2 => data_pkt(TrafficClass::Scheduled, seq),
                    3 => ctrl_pkt(PacketKind::Ack { of_probe: false, end: seq }, seq),
                    4 => ctrl_pkt(PacketKind::Credit, seq),
                    _ => ctrl_pkt(PacketKind::Nack, seq),
                };
                if pkt.kind == PacketKind::Data {
                    let payload = rng.range_u64(1, 1461) as u32;
                    pkt.payload = payload;
                    pkt.size = payload + crate::packet::HEADER_BYTES;
                }
                pkt.priority = rng.below(8) as u8;
                seq += 1461;
                // `size` in the record is the pre-trim wire size; capture
                // the packet before the discipline may trim it.
                let shadow = pkt.clone();
                let r = pool.insert(pkt);
                match disc.enqueue(r, &mut pool, now) {
                    EnqueueOutcome::Queued => {
                        oracle.queue_event(&record(&*disc, now, QueueEvent::Enqueue, &shadow));
                    }
                    EnqueueOutcome::QueuedMarked => {
                        oracle
                            .queue_event(&record(&*disc, now, QueueEvent::EnqueueMarked, &shadow));
                    }
                    EnqueueOutcome::QueuedTrimmed => {
                        oracle
                            .queue_event(&record(&*disc, now, QueueEvent::EnqueueTrimmed, &shadow));
                    }
                    EnqueueOutcome::Dropped { reason, pkt } => {
                        oracle.queue_event(&record(
                            &*disc,
                            now,
                            QueueEvent::Drop(reason),
                            &shadow,
                        ));
                        pool.free(pkt);
                    }
                }
            } else {
                // Drain whatever is ready right now.
                loop {
                    match disc.poll(&mut pool, now) {
                        Poll::Ready(r) => {
                            let pkt = pool.get(r).clone();
                            oracle.queue_event(&record(&*disc, now, QueueEvent::Dequeue, &pkt));
                            pool.free(r);
                        }
                        Poll::NotBefore(t) => {
                            assert!(t > now, "NotBefore({t}) must lie in the future of {now}");
                            break;
                        }
                        Poll::Empty => break,
                    }
                }
            }
        }
        // Drain to empty (advancing past any pacing gate) so the final
        // ledger and the pool agree: no pool slot may outlive the queue.
        let mut guard = 0;
        loop {
            match disc.poll(&mut pool, now) {
                Poll::Ready(r) => {
                    let pkt = pool.get(r).clone();
                    oracle.queue_event(&record(&*disc, now, QueueEvent::Dequeue, &pkt));
                    pool.free(r);
                }
                Poll::NotBefore(t) => {
                    assert!(t > now, "NotBefore({t}) must lie in the future of {now}");
                    now = t;
                    guard += 1;
                    assert!(guard < 100_000, "pacing gate never opens");
                }
                Poll::Empty => break,
            }
        }
        assert_eq!(disc.bytes(), 0, "drained queue still reports bytes");
        assert_eq!(disc.pkts(), 0, "drained queue still reports packets");
        assert_eq!(pool.live(), 0, "discipline leaked {} pool slots", pool.live());
        assert!(oracle.events_checked() > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn shared_pool_alloc_and_free() {
        let pool = SharedPool::new(3000);
        assert!(pool.borrow_mut().try_alloc(1500));
        assert!(pool.borrow_mut().try_alloc(1500));
        assert!(!pool.borrow_mut().try_alloc(1));
        pool.borrow_mut().free(1500);
        assert!(pool.borrow_mut().try_alloc(1000));
        assert_eq!(pool.borrow().used(), 2500);
    }

    #[test]
    fn byte_fifo_tracks_bytes() {
        let mut pool = PacketPool::new();
        let mut f = ByteFifo::new();
        let a = data_ref(&mut pool, TrafficClass::Scheduled, 0);
        let b = data_ref(&mut pool, TrafficClass::Scheduled, 1460);
        f.push(a, pool.get(a).size);
        f.push(b, pool.get(b).size);
        assert_eq!(f.bytes(), 3000);
        assert_eq!(f.len(), 2);
        let (p, sz) = f.pop().unwrap();
        assert_eq!(pool.get(p).seq, 0);
        assert_eq!(sz, 1500);
        assert_eq!(f.bytes(), 1500);
        f.pop().unwrap();
        assert!(f.is_empty());
        assert_eq!(f.bytes(), 0);
    }
}
