//! Figure 3 — FCT of 0–100 KB flows under original ExpressPass vs the
//! hypothetical ExpressPass with an idealized pre-credit phase
//! (Cache Follower & Web Server, 100 G fat-tree, 40% core load).

use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, FAT_TREE_OVERSUB};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run Figure 3.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 3",
            schemes: &[Scheme::ExpressPass, Scheme::ExpressPassOracle],
            spec: ep_fat_tree(scale),
            workloads: &[Workload::CacheFollower, Workload::WebServer],
            host_load: 0.4 / FAT_TREE_OVERSUB,
            flows: (60, 1000, 5000),
            seed: 303,
        },
        scale,
    );
    r.note("paper: 57-80% of small flows pay one extra RTT under plain ExpressPass (~3x inflation from 0.5 to 1.5 RTT)");
    r
}
