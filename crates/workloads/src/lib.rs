#![warn(missing_docs)]
//! # aeolus-workloads — traffic generation
//!
//! The paper's four production workloads (Table 2) as piecewise-linear
//! empirical flow-size distributions, open-loop Poisson arrivals at a target
//! load, incast generators (7:1 testbed, 20:1 stress, N:1 sweeps) and the
//! realistic+incast mix used by the goodput experiment. All generators are
//! seeded and fully deterministic.

pub mod dists;
pub mod incast;
pub mod mix;
pub mod poisson;

pub use dists::{EmpiricalDist, Workload};
pub use incast::{incast_round, incast_rounds, random_incasts};
pub use mix::{mixed_flows, MixConfig};
pub use poisson::{poisson_flows, realized_load, PoissonConfig};
