//! Deterministic fault injection: corruption loss, link flaps and degraded
//! links.
//!
//! The Aeolus paper's recovery argument (§3.3) assumes scheduled packets are
//! lost only to congestion. A [`FaultPlan`] breaks that assumption on
//! purpose: it attaches non-congestion loss to the engine so the transports'
//! recovery machinery can be exercised against a hostile fabric.
//!
//! Three fault classes are modelled, all evaluated at the egress link (after
//! the queue discipline, i.e. the failure happens *on the wire*, never
//! inside the switch buffer — corruption loss is accounted separately from
//! selective dropping by construction):
//!
//! - **Corruption loss** ([`CorruptionRule`]): an independent Bernoulli draw
//!   per transmitted packet from the plan's own seeded [`SimRng`], optionally
//!   filtered by packet class ([`PacketFilter`]) and link ([`LinkFilter`]) so
//!   credit/ACK/probe control packets can be targeted separately from data.
//! - **Link down windows** ([`WindowKind::Down`]): during `[from, until)`
//!   the link transmits nothing (the queue stalls) and any packet whose
//!   serialization would overlap the window start is cut mid-flight. Down
//!   links are visible to routing: ECMP/spray selection avoids them while
//!   an alternative path is up.
//! - **Degraded windows** ([`WindowKind::Degraded`]): serialization time is
//!   multiplied by an integer slowdown factor, modelling a link renegotiated
//!   to a lower rate. Integer factors keep serialization times exact, so
//!   determinism is preserved bit-for-bit.
//!
//! Determinism: the plan owns its RNG seed, and every fault decision is a
//! pure function of (plan, packet transmission order). An **empty plan draws
//! zero random numbers and schedules zero events** — the engine's fast path
//! is byte-for-byte identical to a build without faults.

use std::fmt;
use std::str::FromStr;

use crate::packet::{NodeId, Packet, PacketKind, PortId, TrafficClass};
use crate::rng::SimRng;
use crate::units::{Time, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};

/// Which packets a [`CorruptionRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFilter {
    /// Every packet.
    Any,
    /// Data payload packets only (scheduled or unscheduled).
    Data,
    /// Any control packet (everything that is not data).
    Control,
    /// Scheduled-class packets only.
    Scheduled,
    /// Unscheduled-class packets only.
    Unscheduled,
    /// Credit-carrying control packets: credits, grants, pulls, schedules.
    Credit,
    /// ACK/NACK feedback packets.
    Ack,
    /// Aeolus probes only.
    Probe,
}

impl PacketFilter {
    /// Does `pkt` fall under this filter?
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            PacketFilter::Any => true,
            PacketFilter::Data => pkt.is_data(),
            PacketFilter::Control => !pkt.is_data(),
            PacketFilter::Scheduled => pkt.class == TrafficClass::Scheduled,
            PacketFilter::Unscheduled => pkt.class == TrafficClass::Unscheduled,
            PacketFilter::Credit => matches!(
                pkt.kind,
                PacketKind::Credit
                    | PacketKind::Grant { .. }
                    | PacketKind::Pull
                    | PacketKind::Schedule { .. }
            ),
            PacketFilter::Ack => matches!(pkt.kind, PacketKind::Ack { .. } | PacketKind::Nack),
            PacketFilter::Probe => matches!(pkt.kind, PacketKind::Probe),
        }
    }
}

/// Which egress links a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFilter {
    /// Every link in the topology.
    All,
    /// Every egress port of one node.
    Node(NodeId),
    /// One specific egress port.
    Link(NodeId, PortId),
    /// Every link touching one node, in either direction: the node's own
    /// egress ports plus every port whose far end is the node. Cutting all
    /// adjacent links disconnects the node — the building block for
    /// pod-level partitions.
    Adjacent(NodeId),
}

impl LinkFilter {
    /// Does the egress link `(node, port)`, whose far end is `to`, fall
    /// under this filter?
    #[inline]
    pub fn matches(&self, node: NodeId, port: PortId, to: NodeId) -> bool {
        match *self {
            LinkFilter::All => true,
            LinkFilter::Node(n) => n == node,
            LinkFilter::Link(n, p) => n == node && p == port,
            LinkFilter::Adjacent(n) => n == node || n == to,
        }
    }
}

/// Independent Bernoulli corruption loss on matching links/packets.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionRule {
    /// Per-packet loss probability in `[0, 1]`.
    pub prob: f64,
    /// Which packets the rule targets.
    pub filter: PacketFilter,
    /// Which links the rule targets.
    pub links: LinkFilter,
}

/// What happens to a link inside a [`LinkWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// The link carries nothing; queued packets stall, in-flight packets
    /// whose serialization overlaps the window start are cut.
    Down,
    /// The link still carries traffic, but serialization takes
    /// `slowdown` times longer (integer factor, so times stay exact).
    Degraded {
        /// Serialization-time multiplier, `>= 2` to have any effect.
        slowdown: u32,
    },
}

/// A scheduled `[from, until)` window during which matching links are down
/// or degraded.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkWindow {
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive).
    pub until: Time,
    /// Which links the window covers.
    pub links: LinkFilter,
    /// Down or degraded.
    pub kind: WindowKind,
}

impl LinkWindow {
    /// Is `t` inside the window?
    #[inline]
    pub fn covers(&self, t: Time) -> bool {
        self.from <= t && t < self.until
    }

    /// Does the window overlap the half-open interval `[t0, t1)`?
    #[inline]
    pub fn overlaps(&self, t0: Time, t1: Time) -> bool {
        self.from < t1 && t0 < self.until
    }
}

/// Which node a node-fault directive targets.
///
/// The `--faults` grammar names workload hosts by index; the harness
/// resolves indices against its host list (which excludes any arbiter)
/// before installing the plan, so a spec is portable across topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSelector {
    /// The i-th workload host, resolved at install time (modulo host count).
    Host(usize),
    /// A concrete node id (already resolved, or builder-targeted).
    Node(NodeId),
}

/// What kind of node fault a [`NodeWindow`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// Host crash/restart: per-flow transport state is wiped, queued packets
    /// die, flows touching the host abort and relaunch on restart.
    Crash,
    /// Arbiter/controller outage: same mechanics as a crash, but drops are
    /// accounted as [`crate::queues::DropReason::ArbiterDown`] and workload
    /// flows are not aborted (only control state dies).
    ArbiterOutage,
}

/// A scheduled `[from, until)` window during which one node is dead.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeWindow {
    /// Window start (inclusive): the crash instant.
    pub from: Time,
    /// Window end (exclusive): the restart instant.
    pub until: Time,
    /// The node that dies.
    pub node: NodeSelector,
    /// Crash or arbiter outage.
    pub kind: NodeFaultKind,
}

impl NodeWindow {
    /// Is `t` inside the window?
    #[inline]
    pub fn covers(&self, t: Time) -> bool {
        self.from <= t && t < self.until
    }

    /// Does the window overlap the half-open interval `[t0, t1)`?
    #[inline]
    pub fn overlaps(&self, t0: Time, t1: Time) -> bool {
        self.from < t1 && t0 < self.until
    }

    /// The resolved node, if resolution has happened.
    #[inline]
    pub fn node_id(&self) -> Option<NodeId> {
        match self.node {
            NodeSelector::Node(n) => Some(n),
            NodeSelector::Host(_) => None,
        }
    }
}

/// A complete, seeded fault schedule for one run.
///
/// Plain data (`Clone + Send + Sync`), so it can ride inside scheme
/// parameters through the parallel experiment runner. The default plan is
/// empty and injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's private corruption RNG.
    pub seed: u64,
    /// Bernoulli corruption rules, evaluated in order (first match draws).
    pub corruption: Vec<CorruptionRule>,
    /// Scheduled down/degraded windows.
    pub windows: Vec<LinkWindow>,
    /// Node crash / arbiter-outage windows (`crash=` directives, plus
    /// resolved `arbiter=` windows on schemes that have an arbiter host).
    pub node_windows: Vec<NodeWindow>,
    /// Raw `arbiter=` windows, awaiting resolution: on schemes with an
    /// arbiter host they become [`NodeWindow`]s; on credit-based schemes
    /// without one they become credit blackouts (the credit *source* —
    /// the receiver NIC pacer in ExpressPass — stalls).
    pub arbiter_outages: Vec<(Time, Time)>,
    /// Raw `partition=` windows, awaiting resolution into coordinated
    /// [`LinkFilter::Adjacent`] down windows over half the host set.
    pub partitions: Vec<(Time, Time)>,
    /// Resolved credit blackouts: during `[from, until)` every
    /// credit-carrying control packet dies at egress with an
    /// `ArbiterDown` drop. No RNG, no events — a pure per-transmit check.
    pub blackouts: Vec<(Time, Time)>,
}

impl FaultPlan {
    /// An empty plan with the given corruption-RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Add a Bernoulli corruption rule.
    pub fn with_loss(mut self, prob: f64, filter: PacketFilter, links: LinkFilter) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "corruption prob {prob} outside [0, 1]");
        self.corruption.push(CorruptionRule { prob, filter, links });
        self
    }

    /// Add a link-down window over `[from, until)`.
    pub fn with_down(mut self, from: Time, until: Time, links: LinkFilter) -> FaultPlan {
        assert!(from < until, "empty down window {from}..{until}");
        self.windows.push(LinkWindow { from, until, links, kind: WindowKind::Down });
        self
    }

    /// Add a degraded-rate window over `[from, until)` with an integer
    /// serialization-time multiplier.
    pub fn with_degraded(
        mut self,
        from: Time,
        until: Time,
        slowdown: u32,
        links: LinkFilter,
    ) -> FaultPlan {
        assert!(from < until, "empty degraded window {from}..{until}");
        assert!(slowdown >= 1, "degraded slowdown must be >= 1");
        self.windows.push(LinkWindow { from, until, links, kind: WindowKind::Degraded { slowdown } });
        self
    }

    /// Crash the `host`-th workload host over `[from, until)` (resolved
    /// against the harness's host list at install time).
    pub fn with_crash(mut self, from: Time, until: Time, host: usize) -> FaultPlan {
        assert!(from < until, "empty crash window {from}..{until}");
        self.node_windows.push(NodeWindow {
            from,
            until,
            node: NodeSelector::Host(host),
            kind: NodeFaultKind::Crash,
        });
        self
    }

    /// Crash a concrete node over `[from, until)` (builder-only; bypasses
    /// host-index resolution).
    pub fn with_node_crash(mut self, from: Time, until: Time, node: NodeId) -> FaultPlan {
        assert!(from < until, "empty crash window {from}..{until}");
        self.node_windows.push(NodeWindow {
            from,
            until,
            node: NodeSelector::Node(node),
            kind: NodeFaultKind::Crash,
        });
        self
    }

    /// Take the arbiter/controller down over `[from, until)`.
    pub fn with_arbiter_outage(mut self, from: Time, until: Time) -> FaultPlan {
        assert!(from < until, "empty arbiter window {from}..{until}");
        self.arbiter_outages.push((from, until));
        self
    }

    /// Partition the host set in half over `[from, until)`: every link
    /// adjacent to the upper half goes dark.
    pub fn with_partition(mut self, from: Time, until: Time) -> FaultPlan {
        assert!(from < until, "empty partition window {from}..{until}");
        self.partitions.push((from, until));
        self
    }

    /// True when the plan injects nothing. The engine checks this once per
    /// transmission and skips every fault hook, so an empty plan costs one
    /// branch and draws no randomness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.corruption.is_empty()
            && self.windows.is_empty()
            && self.node_windows.is_empty()
            && self.arbiter_outages.is_empty()
            && self.partitions.is_empty()
            && self.blackouts.is_empty()
    }

    /// True when the plan carries node- or control-plane faults (crashes,
    /// arbiter outages, partitions) in raw or resolved form.
    pub fn has_node_faults(&self) -> bool {
        !self.node_windows.is_empty()
            || !self.arbiter_outages.is_empty()
            || !self.partitions.is_empty()
            || !self.blackouts.is_empty()
    }

    /// True when every node-fault directive has been resolved to concrete
    /// nodes / link windows (see [`FaultPlan::resolve`]).
    pub fn is_resolved(&self) -> bool {
        self.arbiter_outages.is_empty()
            && self.partitions.is_empty()
            && self.node_windows.iter().all(|w| w.node_id().is_some())
    }

    /// Resolve host-index selectors and control-plane directives against a
    /// concrete topology: `hosts` is the workload host list (arbiter
    /// excluded), `arbiter` the arbiter node for centralized schemes.
    ///
    /// - `crash=i@..` windows bind to `hosts[i % len]`.
    /// - `arbiter=..` windows become a crash-like [`NodeWindow`] on the
    ///   arbiter when one exists, else a credit blackout (ExpressPass-style
    ///   credit-source stall).
    /// - `partition=..` windows expand to coordinated
    ///   [`LinkFilter::Adjacent`] down windows over the upper half of the
    ///   host set.
    ///
    /// Idempotent; a plan without node faults is untouched.
    pub fn resolve(&mut self, hosts: &[NodeId], arbiter: Option<NodeId>) {
        for w in &mut self.node_windows {
            if let NodeSelector::Host(i) = w.node {
                assert!(!hosts.is_empty(), "crash directive with no hosts to resolve against");
                w.node = NodeSelector::Node(hosts[i % hosts.len()]);
            }
        }
        for (from, until) in self.arbiter_outages.drain(..) {
            match arbiter {
                Some(a) => self.node_windows.push(NodeWindow {
                    from,
                    until,
                    node: NodeSelector::Node(a),
                    kind: NodeFaultKind::ArbiterOutage,
                }),
                None => self.blackouts.push((from, until)),
            }
        }
        for (from, until) in self.partitions.drain(..) {
            // Upper half goes dark; with fewer than two hosts there is
            // nothing to partition.
            for &h in hosts.get(hosts.len().div_ceil(2)..).unwrap_or(&[]) {
                self.windows.push(LinkWindow {
                    from,
                    until,
                    links: LinkFilter::Adjacent(h),
                    kind: WindowKind::Down,
                });
            }
        }
    }

    /// Is `n` inside a crash/outage window at `t`? Requires a resolved plan.
    #[inline]
    pub fn node_down_at(&self, n: NodeId, t: Time) -> bool {
        self.node_windows
            .iter()
            .any(|w| w.covers(t) && w.node == NodeSelector::Node(n))
    }

    /// The drop reason for traffic dying at dead node `n` at `t`:
    /// `ArbiterDown` if an arbiter-outage window covers it, else `NodeDown`.
    #[inline]
    pub fn node_drop_reason(&self, n: NodeId, t: Time) -> crate::queues::DropReason {
        let arbiter = self.node_windows.iter().any(|w| {
            w.kind == NodeFaultKind::ArbiterOutage
                && w.covers(t)
                && w.node == NodeSelector::Node(n)
        });
        if arbiter {
            crate::queues::DropReason::ArbiterDown
        } else {
            crate::queues::DropReason::NodeDown
        }
    }

    /// Is the egress link `(node, port) -> to` down at `t`? True for link
    /// down windows and whenever either endpoint node is crashed.
    #[inline]
    pub fn link_down_at(&self, node: NodeId, port: PortId, to: NodeId, t: Time) -> bool {
        self.windows.iter().any(|w| {
            w.kind == WindowKind::Down && w.covers(t) && w.links.matches(node, port, to)
        }) || self
            .node_windows
            .iter()
            .any(|w| w.covers(t) && (w.node == NodeSelector::Node(node) || w.node == NodeSelector::Node(to)))
    }

    /// Does any down window (link or node) on `(node, port) -> to` overlap
    /// `[t0, t1)`? Used to cut packets whose serialization straddles a
    /// window start.
    #[inline]
    pub fn down_during(&self, node: NodeId, port: PortId, to: NodeId, t0: Time, t1: Time) -> bool {
        self.cut_reason(node, port, to, t0, t1).is_some()
    }

    /// If a down window (link or node) on `(node, port) -> to` overlaps
    /// `[t0, t1)`, the drop reason for the cut: node faults take precedence
    /// over link windows so the taxonomy names the root cause.
    #[inline]
    pub fn cut_reason(
        &self,
        node: NodeId,
        port: PortId,
        to: NodeId,
        t0: Time,
        t1: Time,
    ) -> Option<crate::queues::DropReason> {
        for w in &self.node_windows {
            if w.overlaps(t0, t1)
                && (w.node == NodeSelector::Node(node) || w.node == NodeSelector::Node(to))
            {
                return Some(match w.kind {
                    NodeFaultKind::ArbiterOutage => crate::queues::DropReason::ArbiterDown,
                    NodeFaultKind::Crash => crate::queues::DropReason::NodeDown,
                });
            }
        }
        for w in &self.windows {
            if w.kind == WindowKind::Down && w.overlaps(t0, t1) && w.links.matches(node, port, to)
            {
                return Some(crate::queues::DropReason::LinkDown);
            }
        }
        None
    }

    /// Does a credit blackout kill this transmission? True only for
    /// credit-carrying control packets inside a blackout window.
    #[inline]
    pub fn blackout_kills(&self, pkt: &Packet, t: Time) -> bool {
        !self.blackouts.is_empty()
            && PacketFilter::Credit.matches(pkt)
            && self.blackouts.iter().any(|&(from, until)| from <= t && t < until)
    }

    /// Serialization-time multiplier for `(node, port) -> to` at `t` (1 =
    /// full rate). Overlapping degraded windows compound via the maximum.
    #[inline]
    pub fn slowdown_at(&self, node: NodeId, port: PortId, to: NodeId, t: Time) -> u32 {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                WindowKind::Degraded { slowdown }
                    if w.covers(t) && w.links.matches(node, port, to) =>
                {
                    Some(slowdown)
                }
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// Draw the corruption verdict for one transmission of `pkt` on
    /// `(node, port) -> to`. The first matching rule draws exactly one
    /// Bernoulli sample; non-matching packets draw nothing, keeping the RNG
    /// stream a pure function of the matched-transmission order.
    #[inline]
    pub fn corrupts(
        &self,
        node: NodeId,
        port: PortId,
        to: NodeId,
        pkt: &Packet,
        rng: &mut SimRng,
    ) -> bool {
        for rule in &self.corruption {
            if rule.links.matches(node, port, to) && rule.filter.matches(pkt) {
                return rng.chance(rule.prob);
            }
        }
        false
    }
}

/// Parse a duration like `300ns`, `2.5us`, `3ms`, `1s` (also bare
/// picoseconds, e.g. `1200`).
fn parse_time(s: &str) -> Result<Time, String> {
    let (num, unit) = match s.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => s.split_at(i),
        None => (s, ""),
    };
    let v: f64 = num.parse().map_err(|_| format!("bad time '{s}'"))?;
    let scale = match unit {
        "" | "ps" => 1,
        "ns" => PS_PER_NS,
        "us" => PS_PER_US,
        "ms" => PS_PER_MS,
        "s" => PS_PER_SEC,
        _ => return Err(format!("unknown time unit '{unit}' in '{s}'")),
    };
    if v < 0.0 {
        return Err(format!("negative time '{s}'"));
    }
    Ok((v * scale as f64).round() as Time)
}

/// Parse a non-empty half-open window `FROM..UNTIL`.
fn parse_window(s: &str) -> Result<(Time, Time), String> {
    let (from, until) =
        s.split_once("..").ok_or_else(|| format!("window '{s}' is not FROM..UNTIL"))?;
    let (from, until) = (parse_time(from)?, parse_time(until)?);
    if from >= until {
        return Err(format!("empty window '{s}'"));
    }
    Ok((from, until))
}

/// Parse a probability like `0.01` or `1%`.
fn parse_prob(s: &str) -> Result<f64, String> {
    let (num, pct) = match s.strip_suffix('%') {
        Some(n) => (n, true),
        None => (s, false),
    };
    let v: f64 = num.parse().map_err(|_| format!("bad probability '{s}'"))?;
    let v = if pct { v / 100.0 } else { v };
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("probability '{s}' outside [0, 1]"));
    }
    Ok(v)
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parse a `--faults` spec: comma-separated directives.
    ///
    /// - `loss=P` — corruption loss on every packet (`P` = `0.01` or `1%`)
    /// - `data-loss=P` / `ctrl-loss=P` — data / control packets only
    /// - `credit-loss=P` / `ack-loss=P` / `probe-loss=P` — targeted control
    /// - `sched-loss=P` / `unsched-loss=P` — by traffic class
    /// - `down=FROM..UNTIL` — link-down window (times like `2ms..2.3ms`)
    /// - `degrade=FROM..UNTIL@N` — N× slower serialization in the window
    /// - `crash=I@FROM..UNTIL` — host `I` crashes at FROM, restarts at UNTIL
    /// - `arbiter=FROM..UNTIL` — arbiter/controller outage window
    /// - `partition=FROM..UNTIL` — pod partition (upper host half goes dark)
    /// - `seed=N` — corruption RNG seed (default 0)
    ///
    /// All link directives apply to every link; class/direction targeting
    /// beyond this grammar is available through the builder API.
    fn from_str(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("fault directive '{tok}' is not KEY=VALUE"))?;
            let filter = match key {
                "loss" => Some(PacketFilter::Any),
                "data-loss" => Some(PacketFilter::Data),
                "ctrl-loss" => Some(PacketFilter::Control),
                "credit-loss" => Some(PacketFilter::Credit),
                "ack-loss" => Some(PacketFilter::Ack),
                "probe-loss" => Some(PacketFilter::Probe),
                "sched-loss" => Some(PacketFilter::Scheduled),
                "unsched-loss" => Some(PacketFilter::Unscheduled),
                _ => None,
            };
            if let Some(filter) = filter {
                plan = plan.with_loss(parse_prob(val)?, filter, LinkFilter::All);
                continue;
            }
            match key {
                "seed" => {
                    plan.seed = val.parse().map_err(|_| format!("bad seed '{val}'"))?;
                }
                "down" | "degrade" => {
                    let (range, slow) = match val.split_once('@') {
                        Some((r, n)) => {
                            if key == "down" {
                                return Err(format!("'down' takes no @factor: '{tok}'"));
                            }
                            let n: u32 =
                                n.parse().map_err(|_| format!("bad slowdown '{n}' in '{tok}'"))?;
                            if n < 1 {
                                return Err(format!("slowdown must be >= 1 in '{tok}'"));
                            }
                            (r, Some(n))
                        }
                        None => {
                            if key == "degrade" {
                                return Err(format!(
                                    "'degrade' needs an @factor, e.g. degrade=1ms..2ms@4"
                                ));
                            }
                            (val, None)
                        }
                    };
                    let (from, until) = range
                        .split_once("..")
                        .ok_or_else(|| format!("window '{range}' is not FROM..UNTIL"))?;
                    let (from, until) = (parse_time(from)?, parse_time(until)?);
                    if from >= until {
                        return Err(format!("empty window '{range}'"));
                    }
                    plan = match slow {
                        Some(n) => plan.with_degraded(from, until, n, LinkFilter::All),
                        None => plan.with_down(from, until, LinkFilter::All),
                    };
                }
                "crash" => {
                    let (host, range) = val.split_once('@').ok_or_else(|| {
                        format!("'crash' needs a host index, e.g. crash=0@1ms..2ms: '{tok}'")
                    })?;
                    let host: usize =
                        host.parse().map_err(|_| format!("bad host index '{host}' in '{tok}'"))?;
                    let (from, until) = parse_window(range)?;
                    plan = plan.with_crash(from, until, host);
                }
                "arbiter" => {
                    if val.contains('@') {
                        return Err(format!("'arbiter' takes no @host: '{tok}'"));
                    }
                    let (from, until) = parse_window(val)?;
                    plan = plan.with_arbiter_outage(from, until);
                }
                "partition" => {
                    if val.contains('@') {
                        return Err(format!("'partition' takes no @host: '{tok}'"));
                    }
                    let (from, until) = parse_window(val)?;
                    plan = plan.with_partition(from, until);
                }
                _ => return Err(format!("unknown fault directive '{key}'")),
            }
        }
        Ok(plan)
    }
}

/// Render a time in the largest unit that divides it exactly (the forms
/// [`parse_time`] accepts), falling back to bare picoseconds.
fn fmt_time(t: Time) -> String {
    if t == 0 {
        return "0".into();
    }
    for (scale, unit) in
        [(PS_PER_SEC, "s"), (PS_PER_MS, "ms"), (PS_PER_US, "us"), (PS_PER_NS, "ns")]
    {
        if t % scale == 0 {
            return format!("{}{unit}", t / scale);
        }
    }
    format!("{t}")
}

impl fmt::Display for FaultPlan {
    /// The canonical `--faults` spec for this plan: `Display` then
    /// [`FromStr`] round-trips to an equal plan for every plan the grammar
    /// can express. Link targeting beyond [`LinkFilter::All`] (builder-only)
    /// is not expressible and renders as the all-links directive.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, ", ")
            }
        };
        for rule in &self.corruption {
            let key = match rule.filter {
                PacketFilter::Any => "loss",
                PacketFilter::Data => "data-loss",
                PacketFilter::Control => "ctrl-loss",
                PacketFilter::Credit => "credit-loss",
                PacketFilter::Ack => "ack-loss",
                PacketFilter::Probe => "probe-loss",
                PacketFilter::Scheduled => "sched-loss",
                PacketFilter::Unscheduled => "unsched-loss",
            };
            sep(f)?;
            write!(f, "{key}={}", rule.prob)?;
        }
        for w in &self.windows {
            sep(f)?;
            match w.kind {
                WindowKind::Down => {
                    write!(f, "down={}..{}", fmt_time(w.from), fmt_time(w.until))?;
                }
                WindowKind::Degraded { slowdown } => {
                    write!(f, "degrade={}..{}@{slowdown}", fmt_time(w.from), fmt_time(w.until))?;
                }
            }
        }
        for w in &self.node_windows {
            sep(f)?;
            // Resolved selectors project the raw node id into the host-index
            // position (like builder-only link filters, they are outside
            // the grammar and render on a best-effort basis).
            let idx = match w.node {
                NodeSelector::Host(i) => i,
                NodeSelector::Node(n) => n.0 as usize,
            };
            match w.kind {
                NodeFaultKind::Crash => {
                    write!(f, "crash={idx}@{}..{}", fmt_time(w.from), fmt_time(w.until))?;
                }
                NodeFaultKind::ArbiterOutage => {
                    write!(f, "arbiter={}..{}", fmt_time(w.from), fmt_time(w.until))?;
                }
            }
        }
        for &(from, until) in &self.arbiter_outages {
            sep(f)?;
            write!(f, "arbiter={}..{}", fmt_time(from), fmt_time(until))?;
        }
        for &(from, until) in &self.partitions {
            sep(f)?;
            write!(f, "partition={}..{}", fmt_time(from), fmt_time(until))?;
        }
        if self.seed != 0 {
            sep(f)?;
            write!(f, "seed={}", self.seed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::units::{ms, us};

    fn pkt(kind: PacketKind, class: TrafficClass) -> Packet {
        match kind {
            PacketKind::Data => {
                Packet::data(FlowId(1), NodeId(0), NodeId(1), 0, 100, class, 1000)
            }
            k => {
                let mut p = Packet::control(FlowId(1), NodeId(0), NodeId(1), 0, k);
                p.class = class;
                p
            }
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let mut rng = SimRng::seed_from_u64(1);
        let before = rng.next_u64();
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!plan.corrupts(
            NodeId(0),
            PortId(0),
            NodeId(1),
            &pkt(PacketKind::Data, TrafficClass::Scheduled),
            &mut rng
        ));
        // No rule matched, so the stream is untouched.
        assert_eq!(rng.next_u64(), before);
        assert!(!plan.link_down_at(NodeId(0), PortId(0), NodeId(1), 0));
        assert_eq!(plan.slowdown_at(NodeId(0), PortId(0), NodeId(1), 0), 1);
        assert!(!plan.node_down_at(NodeId(0), 0));
        assert!(!plan.has_node_faults());
        assert!(plan.is_resolved());
    }

    #[test]
    fn packet_filters_select_the_right_kinds() {
        let credit = pkt(PacketKind::Credit, TrafficClass::Control);
        let data = pkt(PacketKind::Data, TrafficClass::Unscheduled);
        let probe = pkt(PacketKind::Probe, TrafficClass::Unscheduled);
        let ack = pkt(PacketKind::Ack { of_probe: false, end: 0 }, TrafficClass::Control);
        assert!(PacketFilter::Credit.matches(&credit));
        assert!(!PacketFilter::Credit.matches(&data));
        assert!(PacketFilter::Data.matches(&data));
        assert!(!PacketFilter::Data.matches(&probe));
        assert!(PacketFilter::Control.matches(&probe));
        assert!(PacketFilter::Probe.matches(&probe));
        assert!(PacketFilter::Ack.matches(&ack));
        assert!(PacketFilter::Unscheduled.matches(&data));
        assert!(!PacketFilter::Scheduled.matches(&data));
        assert!(PacketFilter::Any.matches(&credit));
    }

    #[test]
    fn windows_cover_and_overlap_half_open() {
        let w = LinkWindow {
            from: ms(1),
            until: ms(2),
            links: LinkFilter::All,
            kind: WindowKind::Down,
        };
        assert!(w.covers(ms(1)));
        assert!(!w.covers(ms(2)));
        assert!(w.overlaps(0, ms(1) + 1));
        assert!(!w.overlaps(0, ms(1)));
        assert!(w.overlaps(ms(2) - 1, ms(3)));
        assert!(!w.overlaps(ms(2), ms(3)));
    }

    #[test]
    fn down_and_degrade_queries_respect_link_filters() {
        let plan = FaultPlan::new(7)
            .with_down(ms(1), ms(2), LinkFilter::Node(NodeId(3)))
            .with_degraded(ms(1), ms(3), 4, LinkFilter::Link(NodeId(5), PortId(2)));
        let far = NodeId(99);
        assert!(plan.link_down_at(NodeId(3), PortId(0), far, ms(1)));
        assert!(!plan.link_down_at(NodeId(4), PortId(0), far, ms(1)));
        assert!(plan.down_during(NodeId(3), PortId(9), far, ms(2) - 1, ms(2)));
        assert!(!plan.down_during(NodeId(3), PortId(9), far, ms(2), ms(3)));
        assert_eq!(plan.slowdown_at(NodeId(5), PortId(2), far, ms(2)), 4);
        assert_eq!(plan.slowdown_at(NodeId(5), PortId(1), far, ms(2)), 1);
    }

    #[test]
    fn adjacent_filter_matches_both_directions() {
        let f = LinkFilter::Adjacent(NodeId(3));
        assert!(f.matches(NodeId(3), PortId(0), NodeId(9)), "egress of the node");
        assert!(f.matches(NodeId(9), PortId(4), NodeId(3)), "ingress toward the node");
        assert!(!f.matches(NodeId(9), PortId(4), NodeId(8)));
    }

    #[test]
    fn node_windows_cut_links_on_both_endpoints() {
        let mut plan = FaultPlan::new(0).with_crash(ms(1), ms(2), 0);
        assert!(plan.has_node_faults());
        assert!(!plan.is_resolved());
        plan.resolve(&[NodeId(7), NodeId(8)], None);
        assert!(plan.is_resolved());
        assert!(plan.node_down_at(NodeId(7), ms(1)));
        assert!(!plan.node_down_at(NodeId(7), ms(2)), "restart instant is alive");
        assert!(!plan.node_down_at(NodeId(8), ms(1)));
        // The crashed node's egress and every link toward it are down.
        assert!(plan.link_down_at(NodeId(7), PortId(0), NodeId(2), ms(1)));
        assert!(plan.link_down_at(NodeId(2), PortId(5), NodeId(7), ms(1)));
        assert!(!plan.link_down_at(NodeId(2), PortId(5), NodeId(8), ms(1)));
        use crate::queues::DropReason;
        assert_eq!(
            plan.cut_reason(NodeId(2), PortId(5), NodeId(7), ms(2) - 1, ms(2)),
            Some(DropReason::NodeDown)
        );
        assert_eq!(plan.cut_reason(NodeId(2), PortId(5), NodeId(7), ms(2), ms(3)), None);
        assert_eq!(plan.node_drop_reason(NodeId(7), ms(1)), DropReason::NodeDown);
    }

    #[test]
    fn arbiter_outage_resolves_to_node_window_or_blackout() {
        use crate::queues::DropReason;
        // With an arbiter host: a crash-like window with arbiter taxonomy.
        let mut with_arb = FaultPlan::new(0).with_arbiter_outage(ms(1), ms(2));
        with_arb.resolve(&[NodeId(1)], Some(NodeId(9)));
        assert!(with_arb.is_resolved());
        assert!(with_arb.node_down_at(NodeId(9), ms(1)));
        assert_eq!(with_arb.node_drop_reason(NodeId(9), ms(1)), DropReason::ArbiterDown);
        assert_eq!(
            with_arb.cut_reason(NodeId(9), PortId(0), NodeId(1), ms(1), ms(1) + 1),
            Some(DropReason::ArbiterDown)
        );
        // Without one: a credit blackout killing credit-carrying packets.
        let mut no_arb = FaultPlan::new(0).with_arbiter_outage(ms(1), ms(2));
        no_arb.resolve(&[NodeId(1)], None);
        assert!(no_arb.is_resolved());
        assert_eq!(no_arb.blackouts, vec![(ms(1), ms(2))]);
        let credit = pkt(PacketKind::Credit, TrafficClass::Control);
        let data = pkt(PacketKind::Data, TrafficClass::Scheduled);
        assert!(no_arb.blackout_kills(&credit, ms(1)));
        assert!(!no_arb.blackout_kills(&credit, ms(2)), "half-open window");
        assert!(!no_arb.blackout_kills(&data, ms(1)), "data rides through a credit stall");
    }

    #[test]
    fn partition_expands_to_adjacent_down_windows_over_upper_half() {
        let hosts = [NodeId(4), NodeId(5), NodeId(6), NodeId(7)];
        let mut plan = FaultPlan::new(0).with_partition(ms(1), ms(2));
        plan.resolve(&hosts, None);
        assert!(plan.is_resolved());
        assert_eq!(plan.windows.len(), 2, "upper half = two hosts");
        for (w, h) in plan.windows.iter().zip([NodeId(6), NodeId(7)]) {
            assert_eq!(w.kind, WindowKind::Down);
            assert_eq!(w.links, LinkFilter::Adjacent(h));
        }
        // Cross-partition links are dark, intra-lower-half links are not.
        assert!(plan.link_down_at(NodeId(0), PortId(2), NodeId(6), ms(1)));
        assert!(plan.link_down_at(NodeId(7), PortId(0), NodeId(0), ms(1)));
        assert!(!plan.link_down_at(NodeId(4), PortId(0), NodeId(5), ms(1)));
    }

    #[test]
    fn host_selector_resolution_wraps_modulo_host_count() {
        let mut plan = FaultPlan::new(0).with_crash(ms(1), ms(2), 5);
        plan.resolve(&[NodeId(10), NodeId(11)], None);
        assert_eq!(plan.node_windows[0].node, NodeSelector::Node(NodeId(11)));
    }

    #[test]
    fn corruption_at_prob_one_always_fires_and_zero_never() {
        let always = FaultPlan::new(1).with_loss(1.0, PacketFilter::Any, LinkFilter::All);
        let never = FaultPlan::new(1).with_loss(0.0, PacketFilter::Any, LinkFilter::All);
        let p = pkt(PacketKind::Data, TrafficClass::Scheduled);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..64 {
            assert!(always.corrupts(NodeId(0), PortId(0), NodeId(99), &p, &mut rng));
            assert!(!never.corrupts(NodeId(0), PortId(0), NodeId(99), &p, &mut rng));
        }
    }

    #[test]
    fn corruption_rate_is_close_to_nominal() {
        let plan = FaultPlan::new(42).with_loss(0.1, PacketFilter::Any, LinkFilter::All);
        let p = pkt(PacketKind::Data, TrafficClass::Scheduled);
        let mut rng = SimRng::seed_from_u64(plan.seed);
        let hits = (0..20_000)
            .filter(|_| plan.corrupts(NodeId(0), PortId(0), NodeId(99), &p, &mut rng))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed corruption rate {rate}");
    }

    #[test]
    fn spec_parses_full_grammar() {
        let plan: FaultPlan =
            "loss=0.5%, credit-loss=0.02, down=1ms..1.5ms, degrade=2ms..3ms@4, seed=9"
                .parse()
                .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.corruption.len(), 2);
        assert!((plan.corruption[0].prob - 0.005).abs() < 1e-12);
        assert_eq!(plan.corruption[0].filter, PacketFilter::Any);
        assert_eq!(plan.corruption[1].filter, PacketFilter::Credit);
        assert_eq!(plan.windows.len(), 2);
        assert_eq!(plan.windows[0].kind, WindowKind::Down);
        assert_eq!(plan.windows[0].from, ms(1));
        assert_eq!(plan.windows[0].until, ms(1) + us(500));
        assert_eq!(plan.windows[1].kind, WindowKind::Degraded { slowdown: 4 });
    }

    #[test]
    fn spec_rejects_nonsense() {
        assert!("loss=2".parse::<FaultPlan>().is_err());
        assert!("loss=-0.1".parse::<FaultPlan>().is_err());
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        assert!("down=2ms..1ms".parse::<FaultPlan>().is_err());
        assert!("down=1ms..2ms@3".parse::<FaultPlan>().is_err());
        assert!("degrade=1ms..2ms".parse::<FaultPlan>().is_err());
        assert!("loss".parse::<FaultPlan>().is_err());
        assert!("down=oops".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn display_round_trips_through_the_grammar() {
        let specs = [
            "loss=0.005",
            "loss=0.005, credit-loss=0.02, down=1ms..1500us, degrade=2ms..3ms@4, seed=9",
            "data-loss=0.1, ctrl-loss=0.25, ack-loss=1, probe-loss=0.5",
            "sched-loss=0.001, unsched-loss=0.002, down=0..300ns",
            "degrade=1us..1000001@2",
            "crash=0@1ms..2ms",
            "crash=3@200us..500us, crash=0@1ms..1100us, seed=5",
            "arbiter=1ms..2ms, partition=3ms..4ms",
            "loss=0.01, crash=1@100us..300us, arbiter=1ms..1500us, partition=2ms..2500us",
            "",
        ];
        for spec in specs {
            let plan: FaultPlan = spec.parse().unwrap();
            let rendered = plan.to_string();
            let reparsed: FaultPlan =
                rendered.parse().unwrap_or_else(|e| panic!("'{rendered}' did not reparse: {e}"));
            assert_eq!(plan, reparsed, "spec '{spec}' rendered as '{rendered}'");
            // A second round is a fixpoint: the rendering is canonical.
            assert_eq!(reparsed.to_string(), rendered);
        }
    }

    #[test]
    fn display_projects_builder_only_link_filters_to_all() {
        let plan = FaultPlan::new(0).with_down(ms(1), ms(2), LinkFilter::Node(NodeId(3)));
        let reparsed: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(reparsed.windows[0].links, LinkFilter::All);
        assert_eq!(reparsed.windows[0].from, ms(1));
        assert_eq!(reparsed.windows[0].until, ms(2));
    }

    #[test]
    fn malformed_specs_report_the_offending_directive() {
        let err = |s: &str| s.parse::<FaultPlan>().unwrap_err();
        assert!(err("loss=2").contains("outside [0, 1]"), "{}", err("loss=2"));
        assert!(err("loss=150%").contains("outside [0, 1]"));
        assert!(err("down=2ms..1ms").contains("empty window"));
        assert!(err("down=1ms..1ms").contains("empty window"));
        assert!(err("down=1xs..2xs").contains("unknown time unit"));
        assert!(err("down=1ms..4parsecs").contains("unknown time unit"));
        assert!(err("degrade=1ms..2ms@0").contains("slowdown must be >= 1"));
        assert!(err("degrade=1ms..2ms@fast").contains("bad slowdown"));
        assert!(err("seed=banana").contains("bad seed"));
        assert!(err("loss=banana").contains("bad probability"));
        assert!(err("flubber=1").contains("unknown fault directive"));
        assert!(err("loss").contains("not KEY=VALUE"));
        // Node-fault grammar error paths (mirrors the degrade@0 class of
        // bugs: every malformed directive names itself in the error).
        assert!(err("crash=1ms..2ms").contains("needs a host index"), "{}", err("crash=1ms..2ms"));
        assert!(err("crash=x@1ms..2ms").contains("bad host index"));
        assert!(err("crash=0@2ms..1ms").contains("empty window"));
        assert!(err("crash=0@2ms..2ms").contains("empty window"));
        assert!(err("crash=0@oops").contains("not FROM..UNTIL"));
        assert!(err("arbiter=2ms..1ms").contains("empty window"));
        assert!(err("arbiter=0@1ms..2ms").contains("takes no @host"));
        assert!(err("partition=2ms..1ms").contains("empty window"));
        assert!(err("partition=0@1ms..2ms").contains("takes no @host"));
        assert!(err("partition=1xs..2xs").contains("unknown time unit"));
    }

    #[test]
    fn spec_time_units_parse() {
        assert_eq!(parse_time("300ns").unwrap(), 300 * PS_PER_NS);
        assert_eq!(parse_time("2.5us").unwrap(), 2 * PS_PER_US + PS_PER_US / 2);
        assert_eq!(parse_time("1s").unwrap(), PS_PER_SEC);
        assert_eq!(parse_time("1200").unwrap(), 1200);
        assert!(parse_time("4parsecs").is_err());
    }
}
