//! Mixed workloads: Poisson background traffic plus periodic incast bursts
//! (the Fig 18 goodput methodology: Web Search traffic mixed with 64-to-1
//! incasts of 64 KB messages).

use aeolus_sim::{FlowDesc, NodeId, Rate, Time};

use crate::dists::EmpiricalDist;
use crate::incast::random_incasts;
use crate::poisson::{poisson_flows, PoissonConfig};

/// Configuration for a realistic + incast traffic mix.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Background (Poisson) load as a fraction of host capacity.
    pub background_load: f64,
    /// Host link rate.
    pub host_rate: Rate,
    /// Background flows to generate.
    pub background_flows: usize,
    /// Incast fan-in (senders per event).
    pub incast_fan_in: usize,
    /// Bytes each incast sender ships.
    pub incast_msg_size: u64,
    /// Number of incast events.
    pub incast_events: usize,
    /// Spacing between incast events.
    pub incast_gap: Time,
    /// RNG seed.
    pub seed: u64,
}

/// Generate the mix, sorted by arrival time, with unique consecutive-block
/// flow ids (background first, then incast).
pub fn mixed_flows(cfg: &MixConfig, hosts: &[NodeId], dist: &EmpiricalDist) -> Vec<FlowDesc> {
    let bg = poisson_flows(
        &PoissonConfig {
            load: cfg.background_load,
            host_rate: cfg.host_rate,
            flows: cfg.background_flows,
            seed: cfg.seed,
            first_id: 0,
            start: 0,
        },
        hosts,
        dist,
    );
    let incast = random_incasts(
        hosts,
        cfg.incast_fan_in,
        cfg.incast_msg_size,
        cfg.incast_events,
        cfg.incast_gap,
        0,
        cfg.background_flows as u64,
        cfg.seed ^ INCAST_SEED_SALT,
    );
    let mut all = bg;
    all.extend(incast);
    all.sort_by_key(|f| (f.start, f.id.0));
    all
}

/// Salt so the incast RNG stream never collides with the background one.
const INCAST_SEED_SALT: u64 = 0x1127_0a57;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::Workload;

    #[test]
    fn mix_contains_both_components_sorted() {
        let hosts: Vec<NodeId> = (0..16).map(NodeId).collect();
        let cfg = MixConfig {
            background_load: 0.3,
            host_rate: Rate::gbps(100),
            background_flows: 500,
            incast_fan_in: 8,
            incast_msg_size: 64_000,
            incast_events: 5,
            incast_gap: 1_000_000_000,
            seed: 5,
        };
        let flows = mixed_flows(&cfg, &hosts, &Workload::WebSearch.dist());
        assert_eq!(flows.len(), 500 + 5 * 8);
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        // Ids unique.
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), flows.len());
        // Incast flows present with the right size.
        assert_eq!(flows.iter().filter(|f| f.size == 64_000 && f.id.0 >= 500).count(), 40);
    }
}
