//! Single-threshold RED/ECN queue — the commodity-switch feature Aeolus
//! re-interprets to build selective dropping (§4.1 of the paper).
//!
//! The switch is configured with both the low and high RED thresholds set to
//! the selective-dropping threshold `K`. An arriving packet when the queue
//! holds ≥ `K` bytes is:
//!
//! * **dropped** if it is Non-ECT — which, under Aeolus marking, is exactly
//!   the unscheduled (pre-credit) packets;
//! * **CE-marked and queued** if it is ECT — the scheduled packets (whose
//!   marks Aeolus receivers simply ignore).
//!
//! The decision is taken on the *pre-enqueue* occupancy: a packet arriving
//! while the queue holds `K - 1` bytes is admitted (and may push occupancy
//! well past `K`), one arriving at exactly `K` is not. Boundary tests below
//! pin this interpretation.
//!
//! Scheduled packets are still subject to the physical buffer cap, but in a
//! functioning proactive transport that cap is never approached.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// RED/ECN FIFO with equal low/high thresholds (deterministic marking), the
/// configuration the paper uses to realize selective dropping.
pub struct RedEcnQueue {
    fifo: ByteFifo,
    /// Selective-dropping / marking threshold in bytes (paper default 6 KB).
    threshold: u64,
    /// Physical per-port buffer in bytes (paper default 200 KB).
    cap_bytes: u64,
}

impl RedEcnQueue {
    /// Queue with marking/dropping `threshold` and physical cap `cap_bytes`.
    pub fn new(threshold: u64, cap_bytes: u64) -> RedEcnQueue {
        assert!(threshold <= cap_bytes, "threshold must not exceed the buffer");
        RedEcnQueue { fifo: ByteFifo::new(), threshold, cap_bytes }
    }

    /// The configured selective-dropping threshold in bytes.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl QueueDisc for RedEcnQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, _now: Time) -> EnqueueOutcome {
        let sz = pool.get(pkt).size;
        if self.fifo.bytes() + sz as u64 > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
        }
        if self.fifo.bytes() >= self.threshold {
            if pool.get(pkt).droppable() {
                return EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, pkt };
            }
            pool.get_mut(pkt).mark_ce();
            self.fifo.push(pkt, sz);
            return EnqueueOutcome::QueuedMarked;
        }
        self.fifo.push(pkt, sz);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _pool: &mut PacketPool, _now: Time) -> Poll {
        match self.fifo.pop() {
            Some((pkt, _)) => Poll::Ready(pkt),
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn pkts(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{ctrl_ref, data_ref};
    use super::*;
    use crate::packet::{Ecn, FlowId, NodeId, Packet, PacketKind, TrafficClass};

    /// 6 KB threshold = 4 MTU packets, the paper default.
    fn queue() -> RedEcnQueue {
        RedEcnQueue::new(6_000, 200_000)
    }

    /// A data packet whose wire size is exactly `size` bytes.
    fn sized_ref(pool: &mut PacketPool, size: u32, seq: u64) -> PacketRef {
        let payload = size - crate::packet::HEADER_BYTES;
        pool.insert(Packet::data(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            seq,
            payload,
            TrafficClass::Unscheduled,
            1 << 20,
        ))
    }

    #[test]
    fn below_threshold_everything_is_queued_unmarked() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..4 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            let out = q.enqueue(r, &mut pool, 0);
            assert!(matches!(out, EnqueueOutcome::Queued), "pkt {i}: {out:?}");
        }
        assert_eq!(q.pkts(), 4);
    }

    #[test]
    fn unscheduled_dropped_above_threshold() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..4 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        // Queue now holds 6000 B >= threshold: next unscheduled must go.
        let r = data_ref(&mut pool, TrafficClass::Unscheduled, 4);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. } => {}
            other => panic!("expected selective drop, got {other:?}"),
        }
        assert_eq!(q.pkts(), 4, "queue never grows with unscheduled packets");
    }

    #[test]
    fn scheduled_marked_not_dropped_above_threshold() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..4 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        let r = data_ref(&mut pool, TrafficClass::Scheduled, 4);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::QueuedMarked => {}
            other => panic!("expected marked enqueue, got {other:?}"),
        }
        assert_eq!(q.pkts(), 5);
        // The marked packet comes out with CE set.
        let mut last = None;
        while let Poll::Ready(p) = q.poll(&mut pool, 0) {
            last = Some(p);
        }
        assert_eq!(pool.get(last.unwrap()).ecn, Ecn::Ce);
    }

    #[test]
    fn control_packets_survive_congestion() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..10 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        let r = ctrl_ref(&mut pool, PacketKind::Probe, 99);
        let out = q.enqueue(r, &mut pool, 0);
        assert!(matches!(out, EnqueueOutcome::QueuedMarked | EnqueueOutcome::Queued));
    }

    #[test]
    fn physical_cap_still_binds_scheduled() {
        let mut pool = PacketPool::new();
        let mut q = RedEcnQueue::new(6_000, 7_500);
        for i in 0..5 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        let r = data_ref(&mut pool, TrafficClass::Scheduled, 5);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. } => {}
            other => panic!("expected buffer-full drop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "threshold must not exceed")]
    fn threshold_above_cap_is_a_config_bug() {
        RedEcnQueue::new(10_000, 5_000);
    }

    // §4.1 boundary semantics: the drop decision reads the *pre-enqueue*
    // occupancy and compares it to K with `>=`.

    #[test]
    fn occupancy_exactly_at_threshold_drops_unscheduled() {
        let mut pool = PacketPool::new();
        let mut q = RedEcnQueue::new(6_000, 200_000);
        // Fill to exactly K = 6000 bytes.
        for i in 0..4 {
            let r = sized_ref(&mut pool, 1500, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        assert_eq!(q.bytes(), 6_000);
        let r = sized_ref(&mut pool, 64, 100);
        match q.enqueue(r, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. } => {}
            other => panic!("at exactly K the unscheduled packet must drop, got {other:?}"),
        }
    }

    #[test]
    fn occupancy_one_byte_below_threshold_admits() {
        let mut pool = PacketPool::new();
        let mut q = RedEcnQueue::new(6_000, 200_000);
        // Fill to K - 1 = 5999 bytes: 3 × 1500 + 1499.
        for i in 0..3 {
            q.enqueue(sized_ref(&mut pool, 1500, i), &mut pool, 0);
        }
        q.enqueue(sized_ref(&mut pool, 1499, 3), &mut pool, 0);
        assert_eq!(q.bytes(), 5_999);
        let r = sized_ref(&mut pool, 64, 100);
        assert!(
            matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued),
            "one byte below K the packet is admitted unmarked"
        );
        assert_eq!(q.bytes(), 6_063);
    }

    #[test]
    fn mtu_packet_at_k_minus_one_overshoots_threshold() {
        let mut pool = PacketPool::new();
        let mut q = RedEcnQueue::new(6_000, 200_000);
        for i in 0..3 {
            q.enqueue(sized_ref(&mut pool, 1500, i), &mut pool, 0);
        }
        q.enqueue(sized_ref(&mut pool, 1499, 3), &mut pool, 0);
        assert_eq!(q.bytes(), 5_999);
        // A full MTU packet arriving at K-1 is admitted — pre-enqueue
        // occupancy rules — and legally pushes the queue to K + 1499.
        let r = sized_ref(&mut pool, 1500, 100);
        assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        assert_eq!(q.bytes(), 7_499);
        // But the *next* arrival sees occupancy >= K and drops.
        let r2 = sized_ref(&mut pool, 64, 101);
        assert!(matches!(
            q.enqueue(r2, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(|| Box::new(RedEcnQueue::new(3_000, 9_000)), seed, 600);
        }
    }
}
