//! Extension — reactive vs proactive (the introduction's argument,
//! quantified): DCTCP needs multiple RTTs to find the right rate, so small
//! flows pay slow-start tax; proactive transports with Aeolus finish them in
//! roughly one RTT.

use aeolus_sim::units::ms;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::compare::SMALL_FLOW_MAX;
use crate::report::Report;
use crate::runner::{run_workload, RunConfig};
use crate::scale::Scale;
use crate::topos::testbed;

/// Run the reactive-vs-proactive comparison on the testbed topology.
pub fn run(scale: Scale) -> Report {
    let schemes = [
        Scheme::Dctcp { rto: ms(10) },
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
    ];
    let mut r = Report::new();
    for w in [Workload::WebServer, Workload::WebSearch] {
        let mut table = TextTable::new(vec![
            "scheme",
            "small mean (us)",
            "small p99 (us)",
            "all mean (us)",
            "completed",
        ]);
        for scheme in schemes {
            let mut cfg = RunConfig::new(scheme, testbed(), w);
            cfg.load = 0.5;
            cfg.n_flows = scale.flows(40, 400, 2000);
            cfg.seed = 99;
            let out = run_workload(&cfg);
            let small = out.agg.band(0, SMALL_FLOW_MAX);
            let mut sf = small.fct_us();
            table.row(vec![
                scheme.label(),
                f2(sf.mean()),
                f2(sf.percentile(99.0)),
                f2(out.agg.fct_us().mean()),
                format!("{}/{}", out.completed, out.scheduled),
            ]);
        }
        r.section(format!("Extension: reactive vs proactive — {}", w.name()), table);
    }
    r.note("expected: DCTCP's small-flow FCT carries slow-start tax; EP+Aeolus approaches one-RTT completion");
    r
}
