//! `repro` — regenerate any table or figure of the Aeolus paper.
//!
//! ```text
//! repro <experiment>... [--scale smoke|quick|full] [--csv DIR]
//! repro all [--scale ...]
//! repro --list
//! ```

use std::time::Instant;

use aeolus_experiments::{registry, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--csv" => {
                let v = iter.next().map(String::as_str).unwrap_or("results");
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--scale" => {
                let v = iter.next().map(String::as_str).unwrap_or("");
                scale = Scale::parse(v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use smoke|quick|full)");
                    std::process::exit(2);
                });
            }
            "--list" => {
                for (name, _) in registry() {
                    println!("{name}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro <experiment>... [--scale smoke|quick|full] [--csv DIR] | repro all | repro --list"
        );
        std::process::exit(2);
    }
    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = if run_all {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for w in &wanted {
            match reg.iter().find(|(n, _)| n == w) {
                Some(entry) => sel.push(entry),
                None => {
                    eprintln!("unknown experiment '{w}' — try --list");
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    for (name, f) in selected {
        let t0 = Instant::now();
        println!("######## {name} (scale {scale:?}) ########");
        let report = f(scale);
        print!("{}", report.render());
        if let Some(dir) = &csv_dir {
            match report.write_csv(dir, name) {
                Ok(paths) => println!("[wrote {} csv file(s) under {}]", paths.len(), dir.display()),
                Err(e) => eprintln!("[csv write failed: {e}]"),
            }
        }
        println!("[{name} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
