//! Figure 4 — FCT of 0–100 KB flows under original Homa vs the hypothetical
//! Homa with no unscheduled/scheduled interference (two-tier tree, 100 G).

use aeolus_sim::units::ms;
use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::homa_two_tier;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run Figure 4.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 4",
            schemes: &[Scheme::Homa { rto: ms(10) }, Scheme::HomaOracle],
            spec: homa_two_tier(scale),
            workloads: &[Workload::CacheFollower, Workload::WebServer],
            host_load: 0.54,
            flows: (60, 1000, 5000),
            seed: 404,
        },
        scale,
    );
    r.note("paper: most flows <30us but 99.9th percentile exceeds 50ms under original Homa; hypothetical Homa tail <50us");
    r
}
