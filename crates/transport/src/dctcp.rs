//! DCTCP (SIGCOMM'10) — the canonical *reactive* datacenter transport,
//! included as the baseline the paper's introduction argues against:
//! a "try and backoff" scheme needs multiple RTTs to converge to the right
//! rate, which is exactly what proactive transports (and Aeolus' first-RTT
//! handling) avoid.
//!
//! Model: window-based sender with slow start and ECN-proportional backoff.
//! Switches run the same single-threshold RED/ECN queues as Aeolus — but
//! here every data packet is ECT, so the threshold *marks* instead of
//! dropping, and the sender reduces its window by the marked fraction
//! (`cwnd ← cwnd·(1 − α/2)` once per window, with `α` an EWMA of the marked
//! fraction). Losses (buffer overflow) recover via triple-duplicate-ACK fast
//! retransmit plus a retransmission timeout.

use aeolus_sim::units::Time;
use aeolus_sim::{
    Ctx, Ecn, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, Packet, PacketKind, RangeSet,
    TimerTable, TrafficClass, TransportEvent,
};

use crate::common::{abort_peer_silent, data_packet, BaseConfig, Tombstones};
use crate::receiver_table::RecvBook;

/// DCTCP tunables.
#[derive(Debug, Clone, Copy)]
pub struct DctcpConfig {
    /// Shared transport parameters (first-RTT mode is ignored: DCTCP always
    /// slow-starts).
    pub base: BaseConfig,
    /// Initial window in packets (RFC 6928 style; DCTCP papers use 10).
    pub init_cwnd_pkts: u32,
    /// EWMA gain for the marked fraction (DCTCP's g, default 1/16).
    pub g: f64,
    /// Retransmission timeout.
    pub rto: Time,
}

impl DctcpConfig {
    /// Paper-standard defaults.
    pub fn new(base: BaseConfig, rto: Time) -> DctcpConfig {
        DctcpConfig { base, init_cwnd_pkts: 10, g: 1.0 / 16.0, rto }
    }
}

struct SendFlow {
    desc: FlowDesc,
    /// Congestion window in bytes.
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    /// EWMA of the marked fraction.
    alpha: f64,
    /// Bytes ACKed cumulatively.
    acked: u64,
    /// Next byte to send for the first time.
    next_seq: u64,
    /// Marked / total ACKs in the current observation window.
    acks_marked: u64,
    acks_total: u64,
    /// Window boundary: when `acked` passes this, α updates and a marked
    /// window may cut cwnd.
    window_end: u64,
    /// Whether a cut was already applied in this window.
    cut_this_window: bool,
    /// Duplicate-ACK counter for fast retransmit.
    dup_acks: u32,
    /// Highest cumulative ACK seen.
    last_ack: u64,
    /// Outstanding retransmission request (fast retransmit pending send).
    rtx_seq: Option<u64>,
    /// Generation for the RTO timer (stale timers are ignored).
    rto_gen: u64,
    completed: bool,
    /// Most recent loss signal, for retransmission attribution.
    last_loss: Option<LossCause>,
    /// Last time any ACK arrived (peer-death watchdog).
    last_heard: Time,
}

struct RecvFlow {
    book: RecvBook,
    /// Out-of-order bytes received (for cumulative ACK computation).
    received: RangeSet,
    /// Whether any CE-marked packet arrived since the last ACK (echoed).
    ce_pending: bool,
}

/// The per-host DCTCP endpoint.
pub struct DctcpEndpoint {
    cfg: DctcpConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<(FlowId, u64)>,
    dead: Tombstones,
}

impl DctcpEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: DctcpConfig) -> DctcpEndpoint {
        DctcpEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort: drop local state, bury the id and record the
    /// abort.
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
    }

    fn mtu(&self) -> u32 {
        self.cfg.base.mtu_payload
    }

    /// Transmit as much as the window allows.
    fn pump(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.mtu();
        if let Some(sf) = self.send_flows.get_mut(flow) {
            // Fast retransmit first.
            if let Some(seq) = sf.rtx_seq.take() {
                let len = (mtu as u64).min(sf.desc.size - seq) as u32;
                let mut pkt =
                    data_packet(&sf.desc, seq, len, TrafficClass::Scheduled, true);
                pkt.ecn = Ecn::Ect0;
                ctx.emit(TransportEvent::Retransmit {
                    flow,
                    bytes: len as u64,
                    cause: sf.last_loss.unwrap_or(LossCause::SackGap),
                });
                ctx.send(pkt);
            }
            while sf.next_seq < sf.desc.size {
                let inflight = sf.next_seq.saturating_sub(sf.acked);
                if inflight + mtu as u64 > sf.cwnd as u64 + mtu as u64 - 1 {
                    break;
                }
                let len = (mtu as u64).min(sf.desc.size - sf.next_seq) as u32;
                let mut pkt =
                    data_packet(&sf.desc, sf.next_seq, len, TrafficClass::Scheduled, false);
                pkt.ecn = Ecn::Ect0;
                ctx.send(pkt);
                sf.next_seq += len as u64;
            }
        }
    }

    fn arm_rto(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let rto = self.cfg.rto;
        if let Some(sf) = self.send_flows.get_mut(flow) {
            sf.rto_gen += 1;
            let token = self.timers.arm((flow, sf.rto_gen));
            ctx.set_timer_in_with(rto, token);
        }
    }

    fn on_rto(&mut self, flow: FlowId, gen: u64, ctx: &mut Ctx<'_>) {
        let mtu = self.mtu();
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let fire = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.completed || gen != sf.rto_gen {
                false
            } else if pcfg.peer_silent(sf.last_heard, ctx.now) {
                // No ACK past the death threshold despite go-back-N
                // retransmissions: the receiver is dead — abort rather than
                // retransmit forever.
                give_up = true;
                false
            } else {
                ctx.metrics.note_timeout(flow);
                ctx.emit(TransportEvent::LossDetected {
                    flow,
                    bytes: sf.next_seq.saturating_sub(sf.acked),
                    cause: LossCause::Timeout,
                });
                sf.last_loss = Some(LossCause::Timeout);
                // Go-back-N from the cumulative ACK point.
                sf.next_seq = sf.acked;
                sf.cwnd = mtu as f64;
                sf.ssthresh = (sf.ssthresh / 2.0).max(2.0 * mtu as f64);
                sf.dup_acks = 0;
                true
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if fire {
            self.pump(flow, ctx);
            self.arm_rto(flow, ctx);
        }
    }

    /// Cumulative-ACK processing with ECN echo (the DCTCP control law).
    fn on_ack(&mut self, flow: FlowId, ack_to: u64, ce_echo: bool, ctx: &mut Ctx<'_>) {
        let mtu = self.mtu() as f64;
        let g = self.cfg.g;
        let (progress, done) = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            sf.acks_total += 1;
            sf.last_heard = ctx.now;
            if ce_echo {
                sf.acks_marked += 1;
            }
            if ack_to > sf.acked {
                let newly = ack_to - sf.acked;
                sf.acked = ack_to;
                sf.dup_acks = 0;
                sf.last_ack = ack_to;
                // Window growth: slow start or congestion avoidance.
                if sf.cwnd < sf.ssthresh {
                    sf.cwnd += newly as f64;
                } else {
                    sf.cwnd += mtu * newly as f64 / sf.cwnd;
                }
                // End of observation window: update alpha, maybe cut.
                if sf.acked >= sf.window_end {
                    let frac = if sf.acks_total > 0 {
                        sf.acks_marked as f64 / sf.acks_total as f64
                    } else {
                        0.0
                    };
                    sf.alpha = (1.0 - g) * sf.alpha + g * frac;
                    if frac > 0.0 && !sf.cut_this_window {
                        sf.cwnd *= 1.0 - sf.alpha / 2.0;
                        sf.ssthresh = sf.cwnd;
                    }
                    sf.cwnd = sf.cwnd.max(mtu);
                    sf.acks_marked = 0;
                    sf.acks_total = 0;
                    sf.cut_this_window = false;
                    sf.window_end = sf.acked + (sf.cwnd as u64).max(1);
                }
                (true, sf.acked >= sf.desc.size)
            } else {
                // Duplicate ACK.
                sf.dup_acks += 1;
                if sf.dup_acks == 3 {
                    sf.rtx_seq = Some(sf.acked);
                    sf.ssthresh = (sf.cwnd / 2.0).max(2.0 * mtu);
                    sf.cwnd = sf.ssthresh;
                    sf.last_loss = Some(LossCause::SackGap);
                    ctx.emit(TransportEvent::LossDetected {
                        flow,
                        bytes: (mtu as u64).min(sf.desc.size - sf.acked),
                        cause: LossCause::SackGap,
                    });
                }
                (sf.dup_acks == 3, false)
            }
        };
        if done {
            if let Some(sf) = self.send_flows.get_mut(flow) {
                sf.completed = true;
                sf.rto_gen += 1; // cancel RTO
            }
            return;
        }
        if progress {
            self.pump(flow, ctx);
            self.arm_rto(flow, ctx);
        }
    }
}

impl Endpoint for DctcpEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mtu = self.mtu();
        let cwnd = (self.cfg.init_cwnd_pkts * mtu) as f64;
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                cwnd,
                ssthresh: f64::MAX,
                // Like the Linux implementation: start conservative so the
                // first marked window halves instead of shaving 3%.
                alpha: 1.0,
                acked: 0,
                next_seq: 0,
                acks_marked: 0,
                acks_total: 0,
                window_end: cwnd as u64,
                cut_this_window: false,
                dup_acks: 0,
                last_ack: 0,
                rtx_seq: None,
                rto_gen: 0,
                completed: false,
                last_loss: None,
                last_heard: ctx.now,
            },
        );
        self.pump(flow.id, ctx);
        self.arm_rto(flow.id, ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Data => {
                let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
                    book: RecvBook::new(),
                    received: RangeSet::new(),
                    ce_pending: false,
                });
                rf.book.learn_size(pkt.flow_size);
                rf.received.insert(pkt.seq, pkt.seq + pkt.payload as u64);
                rf.book.on_data(&pkt, ctx);
                if pkt.ecn == Ecn::Ce {
                    rf.ce_pending = true;
                }
                // Cumulative ACK; the CE echo rides the `of_probe` slot's
                // sibling field (`seq` = 1 marks echo) — we use a dedicated
                // convention: seq 1 = CE echoed, 0 = not.
                let ack_to = rf.received.contiguous_prefix();
                let echo = rf.ce_pending;
                rf.ce_pending = false;
                let mut ack = Packet::control(
                    pkt.flow,
                    ctx.host,
                    pkt.src,
                    u64::from(echo),
                    PacketKind::Ack { of_probe: false, end: ack_to },
                );
                ack.ecn = Ecn::Ect0;
                ctx.send(ack);
            }
            PacketKind::Ack { end, .. } => {
                let ce_echo = pkt.seq == 1;
                self.on_ack(pkt.flow, end, ce_echo, ctx);
            }
            other => {
                debug_assert!(false, "unexpected packet kind for DCTCP: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if let Some((flow, gen)) = self.timers.fire(token) {
            self.on_rto(flow, gen, ctx);
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state; the timer
        // generation bump makes all queued tokens stale.
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_core::AeolusConfig;
    use aeolus_sim::units::{ms, us};
    use crate::common::FirstRttMode;

    #[test]
    fn config_defaults() {
        let base = BaseConfig {
            mtu_payload: 1460,
            base_rtt: us(14),
            aeolus: AeolusConfig::default(),
            mode: FirstRttMode::Blind,
            disable_sack: false,
            peer_silence: 0,
        };
        let c = DctcpConfig::new(base, ms(10));
        assert_eq!(c.init_cwnd_pkts, 10);
        assert!((c.g - 1.0 / 16.0).abs() < 1e-12);
    }
}
