//! Ablation studies of Aeolus' design choices (beyond the paper's own
//! parameter sweeps): what each mechanism contributes.
//!
//! * **threshold** — end-to-end effect of the selective-dropping threshold
//!   on small-flow FCT and transfer efficiency (Figs 15/16 show the
//!   queue-level effect; this shows the protocol-level one).
//! * **recovery** — loss-detection ablation: full Aeolus (SACK + probe) vs
//!   probe-only vs the RTO strawmen.
//! * **burst** — the pre-credit burst budget as a fraction of the BDP
//!   (0 = plain ExpressPass … 2 = over-bursting).

use aeolus_core::AeolusConfig;
use aeolus_sim::units::{ms, us};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_stats::{f2, f3, TextTable};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};
use aeolus_workloads::Workload;

use crate::compare::SMALL_FLOW_MAX;
use crate::report::Report;
use crate::runner::{run_flows, run_workload, RunConfig};
use crate::scale::Scale;
use crate::topos::testbed;

/// Ablation 1: selective-dropping threshold, protocol-level effect.
pub fn threshold(scale: Scale) -> Report {
    let mut table =
        TextTable::new(vec!["threshold", "small-flow mean FCT (us)", "p99 (us)", "efficiency"]);
    for k in [1_500u64, 3_000, 6_000, 12_000, 48_000] {
        let mut cfg =
            RunConfig::new(Scheme::ExpressPassAeolus, testbed(), Workload::WebServer);
        cfg.params.aeolus = AeolusConfig { drop_threshold: k, ..AeolusConfig::default() };
        cfg.load = 0.6;
        cfg.n_flows = scale.flows(40, 400, 2000);
        cfg.seed = 77;
        let out = run_workload(&cfg);
        let small = out.agg.band(0, SMALL_FLOW_MAX);
        let mut fct = small.fct_us();
        table.row(vec![
            format!("{}KB", k as f64 / 1000.0),
            f2(fct.mean()),
            f2(fct.percentile(99.0)),
            f3(out.efficiency),
        ]);
    }
    let mut r = Report::new();
    r.section("Ablation: selective-dropping threshold (EP+Aeolus, WebServer @0.6)", table);
    r.note("expected: flat FCT across small thresholds (recovery is cheap), efficiency dips as the threshold grows past the point where drops are replaced by queueing");
    r
}

/// Ablation 2: loss-detection mechanisms under a loss-heavy incast.
pub fn recovery(scale: Scale) -> Report {
    let senders = scale.count(4, 7, 7);
    let msg = 60_000u64;
    let mut table = TextTable::new(vec!["recovery", "mean FCT (us)", "max FCT (us)", "efficiency"]);
    let arms: Vec<(&str, Scheme, bool)> = vec![
        ("SACK + probe (Aeolus)", Scheme::ExpressPassAeolus, false),
        ("probe only", Scheme::ExpressPassAeolus, true),
        ("RTO 10ms (prio queue)", Scheme::ExpressPassPrioQueue { rto: ms(10) }, false),
        ("RTO 20us (prio queue)", Scheme::ExpressPassPrioQueue { rto: us(20) }, false),
    ];
    for (name, scheme, disable_sack) in arms {
        let mut params = SchemeParams::new(0);
        params.disable_sack = disable_sack;
        params.port_buffer = 60_000; // force the loss regime
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..senders)
            .map(|i| FlowDesc {
                id: FlowId(i as u64 + 1),
                src: hosts[i + 1],
                dst: hosts[0],
                size: msg,
                start: 0,
            })
            .collect();
        let out = run_flows(&mut h, &flows, ms(500));
        let mut fct = out.agg.fct_us();
        table.row(vec![
            name.to_string(),
            f2(fct.mean()),
            f2(fct.max()),
            f3(out.efficiency),
        ]);
    }
    let mut r = Report::new();
    r.section(format!("Ablation: loss recovery under a {senders}:1 loss-heavy incast"), table);
    r.note("expected: SACK+probe ≈ probe-only (probe covers tails; SACK merely accelerates middles), both far ahead of the RTO strawmen");
    r
}

/// Ablation 3: pre-credit burst budget as a fraction of the BDP.
pub fn burst(scale: Scale) -> Report {
    let mut table = TextTable::new(vec![
        "burst budget",
        "small-flow mean FCT (us)",
        "p99 (us)",
        "efficiency",
    ]);
    for frac in [0.0f64, 0.25, 0.5, 1.0, 2.0] {
        let scheme =
            if frac == 0.0 { Scheme::ExpressPass } else { Scheme::ExpressPassAeolus };
        let mut cfg = RunConfig::new(scheme, testbed(), Workload::WebServer);
        cfg.params.aeolus =
            AeolusConfig { burst_budget_frac: frac.max(0.01), ..AeolusConfig::default() };
        cfg.load = 0.4;
        cfg.n_flows = scale.flows(40, 400, 2000);
        cfg.seed = 78;
        let out = run_workload(&cfg);
        let small = out.agg.band(0, SMALL_FLOW_MAX);
        let mut fct = small.fct_us();
        table.row(vec![
            if frac == 0.0 { "0 (plain EP)".to_string() } else { format!("{frac:.2} x BDP") },
            f2(fct.mean()),
            f2(fct.percentile(99.0)),
            f3(out.efficiency),
        ]);
    }
    let mut r = Report::new();
    r.section("Ablation: pre-credit burst budget (EP/EP+Aeolus, WebServer @0.4)", table);
    r.note("expected: FCT improves steeply up to ~1 BDP then flattens; over-bursting only adds drops");
    r
}

/// All three ablations in one report.
pub fn run(scale: Scale) -> Report {
    let mut r = threshold(scale);
    let r2 = recovery(scale);
    let r3 = burst(scale);
    r.sections.extend(r2.sections);
    r.notes.extend(r2.notes);
    r.sections.extend(r3.sections);
    r.notes.extend(r3.notes);
    r
}
