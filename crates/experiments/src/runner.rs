//! Generic experiment runner: scheme × topology × workload → FCT statistics.
//!
//! Individual simulations are strictly single-threaded and deterministic;
//! throughput comes from running *independent* configurations concurrently
//! via [`run_many`] / [`parallel_map`]. Results always come back in input
//! order, so serial and parallel execution produce identical output vectors.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use aeolus_sim::units::{ms, Time, PS_PER_SEC};
use aeolus_sim::{FaultPlan, FlowDesc, Tracer};
use aeolus_stats::{FctAggregator, FctSample};
use aeolus_transport::{Harness, Scheme, SchemeBuilder, SchemeParams, TopoSpec};
use aeolus_workloads::{poisson_flows, PoissonConfig, Workload};

/// Worker-thread cap for [`parallel_map`]; 0 = auto (available cores).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Events processed by every harness collected since the last
/// [`take_events_processed`] — the engine-throughput counter `repro` reports.
static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);

/// Set the worker-thread cap for [`parallel_map`] (0 or `set_jobs(1)` keeps
/// runs serial; 0 restores auto-detection).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the cap from [`set_jobs`], or the machine's
/// available parallelism when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Drain the global events-processed counter (events simulated by all runs
/// collected since the previous call).
pub fn take_events_processed() -> u64 {
    EVENTS_PROCESSED.swap(0, Ordering::Relaxed)
}

/// Session-wide default fault plan (`repro --faults <spec>`). Applied by
/// [`run_workload`] to any run whose params don't carry an explicit plan.
static DEFAULT_FAULTS: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Install a default fault plan for all subsequent runs (the `--faults` CLI
/// flag). `FaultPlan::default()` (empty) clears it.
pub fn set_default_faults(plan: FaultPlan) {
    let mut slot = DEFAULT_FAULTS.lock().unwrap();
    *slot = if plan.is_empty() { None } else { Some(plan) };
}

/// The current session-wide default fault plan (empty unless `--faults` set
/// one). Experiment kernels that build harnesses directly should thread this
/// into [`aeolus_transport::SchemeBuilder::faults`].
pub fn default_faults() -> FaultPlan {
    DEFAULT_FAULTS.lock().unwrap().clone().unwrap_or_default()
}

/// Credit events to the global counter — for experiment kernels that drive a
/// harness directly instead of going through [`collect`].
pub fn note_events(n: u64) {
    EVENTS_PROCESSED.fetch_add(n, Ordering::Relaxed);
}

/// Session-wide conformance-checking switch (`repro --check`). When set,
/// every [`run_workload`] harness is built via
/// [`SchemeBuilder::build_checked`], so the full conformance oracle rides
/// the experiment and panics at the first invariant-violating event.
static CHECKED: AtomicBool = AtomicBool::new(false);

/// Turn session-wide conformance checking on or off (the `--check` CLI
/// flag). Checked runs are slower; numbers are unchanged because the oracle
/// only observes.
pub fn set_checked(on: bool) {
    CHECKED.store(on, Ordering::Relaxed);
}

/// Is session-wide conformance checking on?
pub fn checked() -> bool {
    CHECKED.load(Ordering::Relaxed)
}

/// One simulation run's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Transport scheme.
    pub scheme: Scheme,
    /// Topology.
    pub spec: TopoSpec,
    /// Scheme parameters (`SchemeParams::new(0)` lets the harness derive the
    /// base RTT from the topology).
    pub params: SchemeParams,
    /// Workload distribution.
    pub workload: Workload,
    /// Offered load as a fraction of aggregate *host* capacity.
    pub load: f64,
    /// Number of flows.
    pub n_flows: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Extra time after the last arrival to let stragglers drain.
    pub drain: Time,
}

impl RunConfig {
    /// Sensible defaults for the given scheme/topology/workload.
    pub fn new(scheme: Scheme, spec: TopoSpec, workload: Workload) -> RunConfig {
        RunConfig {
            scheme,
            spec,
            params: SchemeParams::new(0),
            workload,
            load: 0.4,
            n_flows: 2_000,
            seed: 1,
            drain: ms(400),
        }
    }
}

/// Outcome of one run.
pub struct RunOutput {
    /// FCT samples of completed flows (with per-size ideal FCTs).
    pub agg: FctAggregator,
    /// Transfer efficiency (delivered unique / sent payload).
    pub efficiency: f64,
    /// Flows that suffered ≥1 timeout.
    pub flows_with_timeouts: usize,
    /// Completed / scheduled flows.
    pub completed: usize,
    /// Scheduled flows.
    pub scheduled: usize,
    /// Normalized goodput: unique delivered bits over (hosts × rate × span).
    pub goodput: f64,
    /// Simulated span (first arrival → last event processed).
    pub span: Time,
    /// Events the engine processed during the run.
    pub events: u64,
}

impl RunOutput {
    /// Completion fraction (1.0 = every flow finished before the horizon).
    pub fn completion(&self) -> f64 {
        if self.scheduled == 0 {
            1.0
        } else {
            self.completed as f64 / self.scheduled as f64
        }
    }
}

/// Homa computes its unscheduled-priority cutoffs from the observed message
/// size distribution; derive them from the workload's quantiles (one cutoff
/// per boundary between the `unsched_levels` priority bands).
pub fn homa_cutoffs_for(workload: Workload) -> Vec<u64> {
    let d = workload.dist();
    vec![d.quantile(0.4), d.quantile(0.7), d.quantile(0.9)]
}

/// Run a Poisson-workload experiment.
///
/// When the content-addressed cache is enabled (`repro` without
/// `--no-cache`; see [`crate::cache`]), the run's *effective* configuration
/// — params normalized, session faults folded in — is keyed and served from
/// the store on a hit. Checked runs (`--check`) always simulate: a skipped
/// run exercises no oracle.
pub fn run_workload(cfg: &RunConfig) -> RunOutput {
    let mut params = cfg.params.clone();
    // Workload-derived Homa cutoffs unless the caller overrode them.
    if params.homa_cutoffs == SchemeParams::new(0).homa_cutoffs {
        params.homa_cutoffs = homa_cutoffs_for(cfg.workload);
    }
    // Session-wide `--faults` default, unless the config carries its own plan.
    if params.faults.is_empty() {
        params.faults = default_faults();
    }
    let eff = RunConfig { params, ..cfg.clone() };
    if checked() || !crate::cache::cache_enabled() {
        return run_workload_uncached(&eff);
    }
    crate::cache::run_cached(&eff, run_workload_uncached)
}

/// The simulate-always body of [`run_workload`], on the fully-normalized
/// config (the cache's verify mode re-invokes this to compare against a
/// stored entry).
pub(crate) fn run_workload_uncached(cfg: &RunConfig) -> RunOutput {
    let builder =
        SchemeBuilder::new(cfg.scheme).params(cfg.params.clone()).topology(cfg.spec);
    if checked() {
        // `--check`: same run, but the conformance oracle observes every
        // event and the wire-level delivery ledger is audited at the end.
        let mut h = builder.build_checked();
        let flows = poisson_for(cfg, &mut h);
        let out = run_flows(&mut h, &flows, cfg.drain);
        h.topo.net.tracer().assert_flows_complete(h.metrics());
        out
    } else {
        let mut h = builder.build();
        let flows = poisson_for(cfg, &mut h);
        run_flows(&mut h, &flows, cfg.drain)
    }
}

/// Generate the Poisson flow list for `cfg` against a built harness.
fn poisson_for<T: Tracer>(cfg: &RunConfig, h: &mut Harness<T>) -> Vec<FlowDesc> {
    let hosts = h.hosts().to_vec();
    poisson_flows(
        &PoissonConfig {
            load: cfg.load,
            host_rate: h.topo.host_rate,
            flows: cfg.n_flows,
            seed: cfg.seed,
            first_id: 1,
            start: 0,
        },
        &hosts,
        &cfg.workload.dist(),
    )
}

/// Run an arbitrary flow list on a prepared harness (any tracer — the
/// conformance oracle from `--check` rides through here unchanged).
pub fn run_flows<T: Tracer>(h: &mut Harness<T>, flows: &[FlowDesc], drain: Time) -> RunOutput {
    h.schedule(flows);
    let last_arrival = flows.iter().map(|f| f.start).max().unwrap_or(0);
    let horizon = last_arrival + drain;
    h.run(horizon);
    collect(h)
}

/// Collect statistics from a finished harness.
pub fn collect<T: Tracer>(h: &Harness<T>) -> RunOutput {
    let m = h.metrics();
    let mut agg = FctAggregator::new();
    for rec in m.flows() {
        if let Some(fct) = rec.fct() {
            agg.push(FctSample {
                size: rec.desc.size,
                fct_ps: fct,
                ideal_ps: h.ideal_fct(rec.desc.size),
            });
        }
    }
    let span = h.topo.net.now().max(1);
    let capacity_bits =
        h.hosts().len() as f64 * h.topo.host_rate.bps() as f64 * span as f64 / PS_PER_SEC as f64;
    let events = h.topo.net.events_processed();
    EVENTS_PROCESSED.fetch_add(events, Ordering::Relaxed);
    RunOutput {
        efficiency: m.transfer_efficiency(),
        flows_with_timeouts: m.flows_with_timeouts(),
        completed: m.completed_count(),
        scheduled: m.flow_count(),
        goodput: m.payload_delivered as f64 * 8.0 / capacity_bits,
        span,
        events,
        agg,
    }
}

/// Apply `f` to every item on a scoped worker pool (work-stealing by atomic
/// index) and return the results **in input order** — so callers observe the
/// same output for any worker count, including 1. Each invocation of `f`
/// must be self-contained (our simulations are single-threaded and seeded),
/// which makes serial and parallel execution bit-identical.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("runner worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Run every configuration (concurrently up to the [`set_jobs`] cap) and
/// return outputs in input order. Each run is an independent, deterministic,
/// single-threaded simulation, so this is observably identical to
/// `cfgs.iter().map(run_workload).collect()` — just faster.
pub fn run_many(cfgs: &[RunConfig]) -> Vec<RunOutput> {
    parallel_map(cfgs, run_workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topos::testbed;

    #[test]
    fn workload_run_produces_samples() {
        let mut cfg = RunConfig::new(Scheme::ExpressPassAeolus, testbed(), Workload::WebServer);
        cfg.n_flows = 40;
        cfg.load = 0.3;
        let out = run_workload(&cfg);
        assert!(out.completion() > 0.9, "completion {}", out.completion());
        assert!(out.agg.len() >= 36);
        assert!(out.efficiency > 0.5);
        assert!(out.goodput > 0.0 && out.goodput < 1.0);
        // Slowdowns must be causal.
        for s in out.agg.samples() {
            assert!(s.slowdown() >= 0.99, "slowdown {} for size {}", s.slowdown(), s.size);
        }
        assert!(out.events > 0, "a completed run must have processed events");
    }

    #[test]
    fn checked_mode_runs_the_oracle_over_a_workload() {
        // Same workload as above, but with the conformance oracle riding
        // every event (`repro --check`). Numbers must be unaffected.
        let mut cfg = RunConfig::new(Scheme::NdpAeolus, testbed(), Workload::WebServer);
        cfg.n_flows = 25;
        cfg.load = 0.3;
        let plain = run_workload(&cfg);
        set_checked(true);
        let checked_out = run_workload(&cfg);
        set_checked(false);
        assert_eq!(plain.completed, checked_out.completed);
        assert_eq!(plain.events, checked_out.events, "the oracle only observes");
        assert_eq!(plain.span, checked_out.span);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        set_jobs(8);
        let out = parallel_map(&items, |&x| x * x);
        set_jobs(0);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_many_matches_serial_exactly() {
        let cfgs: Vec<RunConfig> = (1..=4)
            .map(|seed| {
                let mut c =
                    RunConfig::new(Scheme::HomaAeolus, testbed(), Workload::WebServer);
                c.n_flows = 25;
                c.load = 0.3;
                c.seed = seed;
                c
            })
            .collect();
        let serial: Vec<RunOutput> = cfgs.iter().map(run_workload).collect();
        set_jobs(4);
        let parallel = run_many(&cfgs);
        set_jobs(0);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.completed, p.completed);
            assert_eq!(s.scheduled, p.scheduled);
            assert_eq!(s.events, p.events, "event counts must be bit-identical");
            assert_eq!(s.span, p.span);
            assert_eq!(s.agg.len(), p.agg.len());
            assert_eq!(s.agg.summary().p99_slowdown, p.agg.summary().p99_slowdown);
        }
    }
}
