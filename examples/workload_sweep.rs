//! Production-workload sweep: small-flow FCTs under a realistic open-loop
//! workload (the Figure 9/12/14 methodology at example scale).
//!
//! Runs one of the paper's four workloads on the two-tier 100 G tree at a
//! chosen load for every scheme, and prints the 0–100 KB FCT distribution.
//!
//! ```text
//! cargo run --release --example workload_sweep [webserver|cachefollower|websearch|datamining] [load]
//! ```

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;
use aeolus::stats::f2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = match args.first().map(String::as_str) {
        Some("cachefollower") => Workload::CacheFollower,
        Some("websearch") => Workload::WebSearch,
        Some("datamining") => Workload::DataMining,
        _ => Workload::WebServer,
    };
    let load: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.4);
    let n_flows = 400;

    println!("{} @ load {load}, two-tier 8x8x64 @100G, {n_flows} flows\n", workload.name());
    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "scheme", "done", "mean(us)", "p99(us)", "max(us)", "eff", "timeouts"
    );
    for scheme in [
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::Ndp,
        Scheme::NdpAeolus,
    ] {
        let spec = TopoSpec::LeafSpine {
            spines: 8,
            leaves: 8,
            hosts_per_leaf: 8,
            link: LinkParams::uniform(Rate::gbps(100), 550 * aeolus::sim::units::ns(1)),
        };
        let mut h = SchemeBuilder::new(scheme).topology(spec).build();
        let hosts = h.hosts().to_vec();
        let flows = poisson_flows(
            &PoissonConfig {
                load,
                host_rate: h.topo.host_rate,
                flows: n_flows,
                seed: 7,
                first_id: 1,
                start: 0,
            },
            &hosts,
            &workload.dist(),
        );
        h.schedule(&flows);
        h.run(flows.last().unwrap().start + ms(400));
        let m = h.metrics();
        let mut agg = FctAggregator::new();
        for r in m.flows() {
            if let Some(f) = r.fct() {
                if r.desc.size < 100_000 {
                    agg.push(FctSample {
                        size: r.desc.size,
                        fct_ps: f,
                        ideal_ps: h.ideal_fct(r.desc.size),
                    });
                }
            }
        }
        let mut s = agg.fct_us();
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>10} {:>8} {:>9}",
            scheme.name(),
            format!("{}/{}", m.completed_count(), m.flow_count()),
            f2(s.mean()),
            f2(s.percentile(99.0)),
            f2(s.max()),
            format!("{:.3}", m.transfer_efficiency()),
            m.flows_with_timeouts(),
        );
    }
}
