//! A set of disjoint byte ranges.
//!
//! Receivers use this to track which bytes of a message have arrived (and so
//! which arriving bytes are new vs. duplicates), and senders use it to track
//! acknowledged data. Ranges are half-open `[start, end)`.

use std::collections::BTreeMap;

/// Set of disjoint, coalesced half-open byte ranges.
#[derive(Debug, Clone, Default)]
pub struct RangeSet {
    // start -> end, ranges disjoint and non-adjacent.
    ranges: BTreeMap<u64, u64>,
    total: u64,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// Insert `[start, end)`, returning the number of bytes newly covered
    /// (0 when the range was already fully present — i.e. a duplicate).
    ///
    /// The common cases — duplicate data and in-order extension of an
    /// existing range — never touch the allocator: the predecessor's end is
    /// updated in place and successors are only removed (not re-inserted).
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut new_start = start;
        let mut new_end = end;
        let mut absorbed: u64 = 0;
        // The only range that can begin before `start` and still overlap or
        // touch `[start, end)` is the predecessor; merge into it in place.
        let mut in_place = false;
        if let Some((&s, &e)) = self.ranges.range(..=start).next_back() {
            if e >= start {
                if e >= end {
                    return 0; // duplicate: already fully covered
                }
                new_start = s;
                new_end = new_end.max(e);
                absorbed += e - s;
                in_place = true;
            }
        }
        // Absorb every following range that overlaps or is adjacent. They
        // all start strictly after `new_start` (else the predecessor lookup
        // would have found them).
        while let Some((&s, &e)) = self.ranges.range((new_start + 1)..).next() {
            if s > new_end {
                break;
            }
            absorbed += e - s;
            new_end = new_end.max(e);
            self.ranges.remove(&s);
        }
        if in_place {
            *self.ranges.get_mut(&new_start).expect("predecessor present") = new_end;
        } else {
            self.ranges.insert(new_start, new_end);
        }
        let added = (new_end - new_start) - absorbed;
        self.total += added;
        added
    }

    /// Whether `[start, end)` is fully covered.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.ranges.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.total
    }

    /// Gaps (missing sub-ranges) within `[0, upto)`, in order.
    pub fn gaps(&self, upto: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for (&s, &e) in &self.ranges {
            if s >= upto {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(upto)));
            }
            cursor = cursor.max(e);
        }
        if cursor < upto {
            out.push((cursor, upto));
        }
        out
    }

    /// Number of covered bytes within `[start, end)`.
    pub fn covered_in(&self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut total = 0;
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > start {
                total += e.min(end) - start;
            }
        }
        for (&s, &e) in self.ranges.range((start + 1)..end) {
            total += e.min(end) - s;
        }
        total
    }

    /// First uncovered sub-range within `[start, end)`, if any.
    pub fn first_uncovered_in(&self, start: u64, end: u64) -> Option<(u64, u64)> {
        if start >= end {
            return None;
        }
        let mut cursor = start;
        // The covering range that begins at or before `start` may extend past it.
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > cursor {
                cursor = e;
            }
        }
        if cursor >= end {
            return None;
        }
        match self.ranges.range(cursor..end).next() {
            Some((&s, _)) if s > cursor => Some((cursor, s.min(end))),
            Some((&s, &e)) => {
                debug_assert_eq!(s, cursor);
                let _ = e;
                // Shouldn't happen (coalesced ranges would have covered
                // cursor), but recurse defensively.
                self.first_uncovered_in(e, end)
            }
            None => Some((cursor, end)),
        }
    }

    /// Length of the prefix `[0, n)` fully covered (the cumulative ACK point).
    pub fn contiguous_prefix(&self) -> u64 {
        match self.ranges.get(&0) {
            Some(&e) => e,
            None => 0,
        }
    }

    /// Number of stored disjoint ranges (for tests).
    pub fn fragments(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_count_new_bytes_once() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(0, 10), 10);
        assert_eq!(rs.insert(0, 10), 0, "duplicate adds nothing");
        assert_eq!(rs.insert(5, 15), 5, "overlap counts only the new part");
        assert_eq!(rs.covered(), 15);
        assert_eq!(rs.fragments(), 1);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(10, 20);
        assert_eq!(rs.fragments(), 1);
        assert!(rs.contains(0, 20));
    }

    #[test]
    fn disjoint_ranges_and_gaps() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert_eq!(rs.gaps(50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(rs.contiguous_prefix(), 0);
        rs.insert(0, 10);
        assert_eq!(rs.contiguous_prefix(), 20);
    }

    #[test]
    fn insert_bridging_many_ranges() {
        let mut rs = RangeSet::new();
        rs.insert(0, 5);
        rs.insert(10, 15);
        rs.insert(20, 25);
        // Bridge everything.
        assert_eq!(rs.insert(3, 22), 10);
        assert_eq!(rs.fragments(), 1);
        assert!(rs.contains(0, 25));
        assert_eq!(rs.covered(), 25);
    }

    #[test]
    fn contains_partial_is_false() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        assert!(!rs.contains(5, 15));
        assert!(rs.contains(2, 8));
        assert!(rs.contains(7, 7), "empty range trivially contained");
    }

    #[test]
    fn gaps_clip_to_upto() {
        let mut rs = RangeSet::new();
        rs.insert(5, 100);
        assert_eq!(rs.gaps(10), vec![(0, 5)]);
        assert_eq!(rs.gaps(3), vec![(0, 3)]);
    }

    #[test]
    fn covered_in_counts_partial_overlaps() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert_eq!(rs.covered_in(0, 50), 20);
        assert_eq!(rs.covered_in(15, 35), 10);
        assert_eq!(rs.covered_in(12, 18), 6);
        assert_eq!(rs.covered_in(20, 30), 0);
        assert_eq!(rs.covered_in(40, 40), 0);
    }

    #[test]
    fn first_uncovered_walks_holes() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(20, 30);
        assert_eq!(rs.first_uncovered_in(0, 40), Some((10, 20)));
        assert_eq!(rs.first_uncovered_in(25, 40), Some((30, 40)));
        assert_eq!(rs.first_uncovered_in(0, 10), None);
        assert_eq!(rs.first_uncovered_in(5, 15), Some((10, 15)));
        assert_eq!(rs.first_uncovered_in(12, 18), Some((12, 18)));
        let empty = RangeSet::new();
        assert_eq!(empty.first_uncovered_in(3, 7), Some((3, 7)));
        assert_eq!(empty.first_uncovered_in(7, 7), None);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(5, 5), 0);
        assert_eq!(rs.covered(), 0);
        assert_eq!(rs.fragments(), 0);
    }
}
