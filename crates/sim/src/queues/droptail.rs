//! Plain drop-tail FIFO, optionally drawing buffer from a shared pool.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, PoolHandle, QueueDisc};
use crate::packet::Packet;
use crate::units::Time;

/// FIFO queue that tail-drops when its byte cap (or the switch shared buffer
/// pool) is exhausted.
pub struct DropTailQueue {
    fifo: ByteFifo,
    cap_bytes: u64,
    pool: Option<PoolHandle>,
}

impl DropTailQueue {
    /// A drop-tail queue holding at most `cap_bytes` of packets.
    pub fn new(cap_bytes: u64) -> DropTailQueue {
        DropTailQueue { fifo: ByteFifo::new(), cap_bytes, pool: None }
    }

    /// Attach a switch-wide shared buffer pool; enqueues must also reserve
    /// from the pool, and dequeues release back to it.
    pub fn with_pool(mut self, pool: PoolHandle) -> DropTailQueue {
        self.pool = Some(pool);
        self
    }
}

impl QueueDisc for DropTailQueue {
    fn enqueue(&mut self, pkt: Packet, _now: Time) -> EnqueueOutcome {
        let sz = pkt.size as u64;
        if self.fifo.bytes() + sz > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt: Box::new(pkt) };
        }
        if let Some(pool) = &self.pool {
            if !pool.borrow_mut().try_alloc(sz) {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::SharedBufferFull,
                    pkt: Box::new(pkt),
                };
            }
        }
        self.fifo.push(pkt);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _now: Time) -> Poll {
        match self.fifo.pop() {
            Some(pkt) => {
                if let Some(pool) = &self.pool {
                    pool.borrow_mut().free(pkt.size as u64);
                }
                Poll::Ready(pkt)
            }
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn pkts(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_pkt;
    use super::super::SharedPool;
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn accepts_until_cap_then_tail_drops() {
        let mut q = DropTailQueue::new(3000);
        for i in 0..2 {
            assert!(matches!(
                q.enqueue(data_pkt(TrafficClass::Scheduled, i * 1460), 0),
                EnqueueOutcome::Queued
            ));
        }
        match q.enqueue(data_pkt(TrafficClass::Scheduled, 2 * 1460), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt } => {
                assert_eq!(pkt.seq, 2 * 1460)
            }
            other => panic!("expected tail drop, got {other:?}"),
        }
        assert_eq!(q.bytes(), 3000);
        assert_eq!(q.pkts(), 2);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTailQueue::new(1 << 20);
        for i in 0..10u64 {
            q.enqueue(data_pkt(TrafficClass::Scheduled, i), 0);
        }
        for i in 0..10u64 {
            match q.poll(0) {
                Poll::Ready(p) => assert_eq!(p.seq, i),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(q.poll(0), Poll::Empty));
    }

    #[test]
    fn shared_pool_exhaustion_drops_even_below_port_cap() {
        let pool = SharedPool::new(1500);
        let mut q1 = DropTailQueue::new(1 << 20).with_pool(pool.clone());
        let mut q2 = DropTailQueue::new(1 << 20).with_pool(pool.clone());
        assert!(matches!(q1.enqueue(data_pkt(TrafficClass::Scheduled, 0), 0), EnqueueOutcome::Queued));
        // q2 has plenty of per-port headroom but the pool is gone.
        match q2.enqueue(data_pkt(TrafficClass::Scheduled, 1), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, .. } => {}
            other => panic!("expected shared-buffer drop, got {other:?}"),
        }
        // Draining q1 frees pool space for q2.
        assert!(matches!(q1.poll(0), Poll::Ready(_)));
        assert!(matches!(q2.enqueue(data_pkt(TrafficClass::Scheduled, 2), 0), EnqueueOutcome::Queued));
        assert_eq!(pool.borrow().used(), 1500);
    }
}
