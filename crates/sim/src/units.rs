//! Simulation units: time, data rates and sizes.
//!
//! The simulator clock is a `u64` count of **picoseconds**. At 100 Gbps one
//! bit takes exactly 10 ps to serialize, so every serialization time used by
//! the Aeolus experiments is exact — no rounding drift between schemes.
//! A `u64` of picoseconds covers ~213 days of simulated time, far beyond any
//! experiment horizon.

/// Simulated time in picoseconds since the start of the run.
pub type Time = u64;

/// One nanosecond in [`Time`] units.
pub const PS_PER_NS: Time = 1_000;
/// One microsecond in [`Time`] units.
pub const PS_PER_US: Time = 1_000_000;
/// One millisecond in [`Time`] units.
pub const PS_PER_MS: Time = 1_000_000_000;
/// One second in [`Time`] units.
pub const PS_PER_SEC: Time = 1_000_000_000_000;

/// Convert nanoseconds to [`Time`].
#[inline]
pub const fn ns(v: u64) -> Time {
    v * PS_PER_NS
}

/// Convert microseconds to [`Time`].
#[inline]
pub const fn us(v: u64) -> Time {
    v * PS_PER_US
}

/// Convert milliseconds to [`Time`].
#[inline]
pub const fn ms(v: u64) -> Time {
    v * PS_PER_MS
}

/// Convert seconds to [`Time`].
#[inline]
pub const fn secs(v: u64) -> Time {
    v * PS_PER_SEC
}

/// Format a [`Time`] as a human-readable string (µs with fraction).
pub fn fmt_time(t: Time) -> String {
    format!("{:.3}us", t as f64 / PS_PER_US as f64)
}

/// A link data rate in bits per second.
///
/// Rates are plain integers so serialization times stay exact for the link
/// speeds used in the paper (1/10/25/40/100/400 Gbps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(pub u64);

impl Rate {
    /// Construct a rate from gigabits per second.
    pub const fn gbps(v: u64) -> Rate {
        Rate(v * 1_000_000_000)
    }

    /// Construct a rate from megabits per second.
    pub const fn mbps(v: u64) -> Rate {
        Rate(v * 1_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` at this rate, rounded up to the next
    /// picosecond so that back-to-back packets never overlap.
    #[inline]
    pub fn serialize(self, bytes: u64) -> Time {
        debug_assert!(self.0 > 0, "serialize on a zero rate");
        // Packet-sized byte counts fit a u64 numerator; the u128 division is
        // a libcall and only needed for multi-megabyte arguments.
        const FITS_U64: u64 = u64::MAX / (8 * PS_PER_SEC);
        if bytes <= FITS_U64 {
            (bytes * 8 * PS_PER_SEC).div_ceil(self.0)
        } else {
            let bits = (bytes as u128) * 8 * (PS_PER_SEC as u128);
            bits.div_ceil(self.0 as u128) as Time
        }
    }

    /// Exact picoseconds per byte, when this rate divides the picosecond
    /// grid evenly (true for every paper rate: 1/10/25/40/100/400 Gbps).
    /// Lets ports replace the per-packet division with one multiply.
    #[inline]
    pub const fn ps_per_byte(self) -> Option<u64> {
        if self.0 > 0 && (8 * PS_PER_SEC) % self.0 == 0 {
            Some(8 * PS_PER_SEC / self.0)
        } else {
            None
        }
    }

    /// Number of whole bytes this rate can carry in `dt` picoseconds.
    #[inline]
    pub fn bytes_in(self, dt: Time) -> u64 {
        ((self.0 as u128 * dt as u128) / (8 * PS_PER_SEC as u128)) as u64
    }

    /// Scale the rate by a ratio `num/den` (used for credit throttling).
    #[inline]
    pub fn scale(self, num: u64, den: u64) -> Rate {
        Rate((self.0 as u128 * num as u128 / den as u128) as u64)
    }
}

/// Kilobytes to bytes.
#[inline]
pub const fn kb(v: u64) -> u64 {
    v * 1_000
}

/// Megabytes to bytes.
#[inline]
pub const fn mb(v: u64) -> u64 {
    v * 1_000_000
}

/// Bandwidth-delay product in bytes for a rate and a round-trip time.
#[inline]
pub fn bdp_bytes(rate: Rate, rtt: Time) -> u64 {
    rate.bytes_in(rtt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_exact_at_100g() {
        let r = Rate::gbps(100);
        // 1500 B * 8 = 12000 bits, 10 ps/bit -> 120 ns.
        assert_eq!(r.serialize(1500), 120 * PS_PER_NS);
        // 64 B probe -> 5.12 ns.
        assert_eq!(r.serialize(64), 5_120);
    }

    #[test]
    fn serialization_is_exact_at_10g() {
        let r = Rate::gbps(10);
        assert_eq!(r.serialize(1500), 1_200 * PS_PER_NS);
    }

    #[test]
    fn serialization_rounds_up() {
        // 3 bits/s carries 1 byte in ceil(8e12/3) ps.
        let r = Rate(3);
        assert_eq!(r.serialize(1), (8 * PS_PER_SEC).div_ceil(3));
    }

    #[test]
    fn serialize_u64_and_u128_paths_agree() {
        let boundary = u64::MAX / (8 * PS_PER_SEC);
        for rate in [Rate(3), Rate(7), Rate::gbps(10), Rate::gbps(100), Rate::mbps(123)] {
            for bytes in [boundary, boundary + 1, boundary + 12345] {
                let wide =
                    ((bytes as u128) * 8 * (PS_PER_SEC as u128)).div_ceil(rate.0 as u128) as Time;
                assert_eq!(rate.serialize(bytes), wide, "rate {rate:?} bytes {bytes}");
            }
        }
    }

    #[test]
    fn ps_per_byte_exact_for_paper_rates() {
        for (g, ppb) in [(1, 8000), (10, 800), (25, 320), (40, 200), (100, 80), (400, 20)] {
            assert_eq!(Rate::gbps(g).ps_per_byte(), Some(ppb));
            assert_eq!(Rate::gbps(g).serialize(1500), 1500 * ppb);
        }
        // 3 bits/s does not divide the picosecond grid.
        assert_eq!(Rate(3).ps_per_byte(), None);
    }

    #[test]
    fn bytes_in_inverts_serialize() {
        let r = Rate::gbps(100);
        let t = r.serialize(1500);
        assert_eq!(r.bytes_in(t), 1500);
        // A hair less time fits one byte less.
        assert_eq!(r.bytes_in(t - 1), 1499);
    }

    #[test]
    fn bdp_matches_hand_computation() {
        // 100 Gbps * 4.5 us = 56.25 KB.
        assert_eq!(bdp_bytes(Rate::gbps(100), us(4) + 500 * PS_PER_NS), 56_250);
    }

    #[test]
    fn rate_scaling() {
        assert_eq!(Rate::gbps(100).scale(1, 20), Rate::gbps(5));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(1), 1_000_000);
        assert_eq!(ms(1), 1_000 * us(1));
        assert_eq!(secs(1), 1_000 * ms(1));
        assert_eq!(kb(100), 100_000);
        assert_eq!(mb(2), 2_000_000);
    }
}
