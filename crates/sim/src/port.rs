//! Egress ports: a queue discipline feeding a link.

use crate::packet::NodeId;
use crate::queues::QueueDisc;
use crate::units::{Rate, Time};

/// A point-to-point link leaving an egress port.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// Line rate.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: Time,
    /// Node at the far end.
    pub to: NodeId,
}

/// Per-port statistics, updated by the network engine.
#[derive(Debug, Default, Clone)]
pub struct PortStats {
    /// Total wire bytes transmitted.
    pub bytes_tx: u64,
    /// Packets transmitted.
    pub pkts_tx: u64,
    /// Data payload bytes transmitted.
    pub payload_tx: u64,
    /// Maximum queue occupancy observed (bytes).
    pub qlen_max: u64,
    /// Time-weighted integral of queue occupancy (byte·ps), for averages.
    pub qlen_integral: u128,
    /// Last time the queue occupancy changed.
    pub qlen_last_change: Time,
    /// Packets dropped at this port, by coarse reason index
    /// (see [`crate::metrics::Metrics`] for the global per-reason counters).
    pub drops: u64,
    /// Packets killed on the wire by fault injection (corruption or a link
    /// going down mid-serialization) — always 0 without a fault plan.
    pub fault_kills: u64,
}

impl PortStats {
    /// Account a queue-occupancy change at `now`; call with the occupancy
    /// *before* the change has been applied… actually with the previous
    /// occupancy `prev_bytes` held since the last change.
    pub fn on_qlen_change(&mut self, prev_bytes: u64, now: Time) {
        let dt = now.saturating_sub(self.qlen_last_change);
        self.qlen_integral += prev_bytes as u128 * dt as u128;
        self.qlen_last_change = now;
    }

    /// Record the new occupancy for the max tracker.
    pub fn observe_qlen(&mut self, bytes: u64) {
        self.qlen_max = self.qlen_max.max(bytes);
    }

    /// Average queue length in bytes over `[0, horizon]`.
    pub fn avg_qlen(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.qlen_integral as f64 / horizon as f64
    }

    /// Link utilization over the window `[from, to]` given cumulative
    /// `bytes_tx` sampled externally — helper for whole-run utilization.
    pub fn utilization(&self, rate: Rate, window: Time) -> f64 {
        if window == 0 {
            return 0.0;
        }
        (self.bytes_tx as f64 * 8.0) / (rate.bps() as f64 * window as f64 / crate::units::PS_PER_SEC as f64)
    }
}

/// An egress port: queue + link + transmitter state.
pub struct Port {
    /// The attached link.
    pub link: Link,
    /// Exact serialization cost in ps/byte when the line rate divides the
    /// picosecond grid (all paper rates do); 0 = fall back to the division.
    pub ser_ps_per_byte: u64,
    /// The queue discipline.
    pub queue: Box<dyn QueueDisc>,
    /// Whether the transmitter is currently serializing a packet.
    pub busy: bool,
    /// Pending pacing kick, if any (dedupes `PortKick` events).
    pub kick_at: Option<Time>,
    /// Statistics.
    pub stats: PortStats,
}

impl Port {
    /// A port transmitting through `link` with the given discipline.
    pub fn new(link: Link, queue: Box<dyn QueueDisc>) -> Port {
        Port {
            link,
            ser_ps_per_byte: link.rate.ps_per_byte().unwrap_or(0),
            queue,
            busy: false,
            kick_at: None,
            stats: PortStats::default(),
        }
    }

    /// Serialization time of `bytes` on this port's link: one multiply on the
    /// exact-rate fast path, identical to [`Rate::serialize`] by construction.
    #[inline]
    pub fn serialize(&self, bytes: u64) -> Time {
        if self.ser_ps_per_byte != 0 {
            self.ser_ps_per_byte * bytes
        } else {
            self.link.rate.serialize(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{us, PS_PER_SEC};

    #[test]
    fn qlen_integral_accumulates_time_weighted() {
        let mut s = PortStats::default();
        // Queue at 1000 B from t=0 to t=10, then 0.
        s.on_qlen_change(0, 0);
        s.observe_qlen(1000);
        s.on_qlen_change(1000, 10);
        s.observe_qlen(0);
        assert_eq!(s.qlen_integral, 10_000);
        assert_eq!(s.qlen_max, 1000);
        assert!((s.avg_qlen(10) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_saturated_link_is_one() {
        let mut s = PortStats::default();
        let rate = Rate::gbps(100);
        let window = us(10);
        s.bytes_tx = rate.bytes_in(window);
        let u = s.utilization(rate, window);
        assert!((u - 1.0).abs() < 1e-3, "utilization {u}");
        let _ = PS_PER_SEC; // silence unused import in some cfgs
    }
}
