//! Figure 10 — average FCT of 0–100 KB flows vs offered load (0.2–0.9),
//! ExpressPass vs ExpressPass+Aeolus, four workloads on the fat-tree.

use aeolus_stats::{f2, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::compare::SMALL_FLOW_MAX;
use crate::report::Report;
use crate::runner::{run_many, RunConfig};
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, FAT_TREE_OVERSUB};

/// Core loads swept (the paper's x axis).
pub fn loads(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Smoke => vec![0.4],
        Scale::Quick => vec![0.2, 0.4, 0.6, 0.8],
        Scale::Full => vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
    }
}

/// The two schemes compared.
const SCHEMES: [Scheme; 2] = [Scheme::ExpressPass, Scheme::ExpressPassAeolus];

/// Run Figure 10.
pub fn run(scale: Scale) -> Report {
    let ls = loads(scale);
    // Full workload × scheme × load matrix, fanned out across cores.
    let mut cfgs = Vec::new();
    for w in Workload::ALL {
        for scheme in SCHEMES {
            for &load in &ls {
                let mut cfg = RunConfig::new(scheme, ep_fat_tree(scale), w);
                cfg.load = load / FAT_TREE_OVERSUB;
                cfg.n_flows = scale.flows(40, 400, 2000);
                cfg.seed = 1010;
                cfgs.push(cfg);
            }
        }
    }
    let outs = run_many(&cfgs);
    let mut outs = outs.iter();
    let mut r = Report::new();
    for w in Workload::ALL {
        let mut header = vec!["scheme".to_string()];
        header.extend(ls.iter().map(|l| format!("load {l:.1}")));
        let mut table = TextTable::new(header);
        for scheme in SCHEMES {
            let mut row = vec![scheme.label()];
            for _ in &ls {
                let out = outs.next().expect("one output per config");
                row.push(f2(out.agg.band(0, SMALL_FLOW_MAX).fct_us().mean()));
            }
            table.row(row);
        }
        r.section(format!("Figure 10: mean small-flow FCT vs load — {}", w.name()), table);
    }
    r.note("paper: sizable Aeolus gains across all loads, shrinking slightly as load rises");
    r
}
