//! Fault injection: a queue wrapper that randomly discards packets.
//!
//! Real fabrics lose packets for reasons outside any congestion model —
//! corrupted FCS, flapping links, buggy firmware. Robustness tests wrap a
//! port's discipline in [`LossyQueue`] to verify that the recovery
//! machinery (probes, backstops, RTOs) eventually delivers every flow even
//! when the network itself misbehaves.

use super::{DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::pool::{PacketPool, PacketRef};
use crate::rng::SimRng;
use crate::units::Time;

/// Wraps a discipline, dropping each arriving packet with probability `p`.
///
/// Drops are attributed to [`DropReason::BufferFull`] (the closest
/// observable cause a real network would report); they apply to *every*
/// packet class — including control packets, which is exactly the regime
/// the protocols' backstop timers must survive.
pub struct LossyQueue {
    inner: Box<dyn QueueDisc>,
    loss_prob: f64,
    rng: SimRng,
    /// Packets discarded by fault injection.
    pub injected_drops: u64,
}

impl LossyQueue {
    /// Wrap `inner`, dropping packets i.i.d. with probability `loss_prob`.
    pub fn new(inner: Box<dyn QueueDisc>, loss_prob: f64, seed: u64) -> LossyQueue {
        assert!((0.0..1.0).contains(&loss_prob), "loss probability out of range");
        LossyQueue { inner, loss_prob, rng: SimRng::seed_from_u64(seed), injected_drops: 0 }
    }
}

impl QueueDisc for LossyQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, now: Time) -> EnqueueOutcome {
        if self.rng.chance(self.loss_prob) {
            self.injected_drops += 1;
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
        }
        self.inner.enqueue(pkt, pool, now)
    }

    fn poll(&mut self, pool: &mut PacketPool, now: Time) -> Poll {
        self.inner.poll(pool, now)
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn pkts(&self) -> usize {
        self.inner.pkts()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        self.inner.bands(out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_ref;
    use super::super::DropTailQueue;
    use super::*;
    use crate::packet::TrafficClass;

    #[test]
    fn drops_roughly_the_requested_fraction() {
        let mut pool = PacketPool::new();
        let mut q = LossyQueue::new(Box::new(DropTailQueue::new(1 << 40)), 0.2, 7);
        let n = 10_000u64;
        for i in 0..n {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            if let EnqueueOutcome::Dropped { pkt, .. } = q.enqueue(r, &mut pool, 0) {
                pool.free(pkt);
            }
        }
        let frac = q.injected_drops as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "observed loss {frac}");
        assert_eq!(q.pkts() as u64 + q.injected_drops, n);
    }

    #[test]
    fn zero_probability_is_transparent() {
        let mut pool = PacketPool::new();
        let mut q = LossyQueue::new(Box::new(DropTailQueue::new(1 << 40)), 0.0, 7);
        for i in 0..100 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        assert_eq!(q.injected_drops, 0);
        let mut n = 0;
        while let Poll::Ready(_) = q.poll(&mut pool, 0) {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut pool = PacketPool::new();
            let mut q = LossyQueue::new(Box::new(DropTailQueue::new(1 << 40)), 0.3, 42);
            (0..1000u64)
                .map(|i| {
                    let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
                    match q.enqueue(r, &mut pool, 0) {
                        EnqueueOutcome::Dropped { pkt, .. } => {
                            pool.free(pkt);
                            true
                        }
                        _ => false,
                    }
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(
                || Box::new(LossyQueue::new(Box::new(DropTailQueue::new(8_000)), 0.3, 42)),
                seed,
                600,
            );
        }
    }
}
