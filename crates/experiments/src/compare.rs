//! Scheme-comparison helper used by the FCT-CDF figures (3, 4, 9, 12, 14):
//! run the same workload under several schemes and tabulate the small-flow
//! (0–100 KB) FCT distribution per workload.

use aeolus_stats::{plot_cdfs, Cdf, TextTable};
use aeolus_transport::{Scheme, TopoSpec};
use aeolus_workloads::Workload;

use crate::report::{fct_header, fct_row, Report};
use crate::runner::{run_many, RunConfig};
use crate::scale::Scale;

/// Bytes bounding the paper's "small flow" band.
pub const SMALL_FLOW_MAX: u64 = 100_000;

/// Configuration of one comparison figure.
pub struct Comparison<'a> {
    /// Title prefix ("Figure 9" …).
    pub title: &'a str,
    /// Schemes to compare, with display names.
    pub schemes: &'a [Scheme],
    /// Topology (same for all runs).
    pub spec: TopoSpec,
    /// Workloads (one table section each).
    pub workloads: &'a [Workload],
    /// Offered load as a fraction of *host* capacity.
    pub host_load: f64,
    /// Flow count per run at each scale: (smoke, quick, full).
    pub flows: (usize, usize, usize),
    /// Workload seed.
    pub seed: u64,
}

/// Run the comparison and build the report.
pub fn small_flow_comparison(c: &Comparison<'_>, scale: Scale) -> Report {
    let mut report = Report::new();
    let n_flows = scale.flows(c.flows.0, c.flows.1, c.flows.2);
    // One independent run per workload × scheme: fan the whole matrix out
    // across cores, then tabulate in order.
    let mut cfgs = Vec::with_capacity(c.workloads.len() * c.schemes.len());
    for &w in c.workloads {
        for &scheme in c.schemes {
            let mut cfg = RunConfig::new(scheme, c.spec, w);
            cfg.load = c.host_load;
            cfg.n_flows = n_flows;
            cfg.seed = c.seed;
            cfgs.push(cfg);
        }
    }
    let outs = run_many(&cfgs);
    let mut outs = outs.iter();
    for &w in c.workloads {
        let mut table = TextTable::new(fct_header());
        let mut cdfs: Vec<(String, Cdf)> = Vec::new();
        for &scheme in c.schemes {
            let out = outs.next().expect("one output per config");
            let small = out.agg.band(0, SMALL_FLOW_MAX);
            let mut row = fct_row(&scheme.label(), &small);
            row[0] = format!(
                "{} [done {}/{}]",
                scheme.label(),
                out.completed,
                out.scheduled
            );
            table.row(row);
            if !small.is_empty() {
                cdfs.push((scheme.label(), Cdf::from_samples(&mut small.fct_us())));
            }
        }
        report.section(format!("{}: {} (0-100KB flows)", c.title, w.name()), table);
        let series: Vec<(String, &Cdf)> =
            cdfs.iter().map(|(n, c)| (n.clone(), c)).collect();
        if !series.is_empty() {
            report.chart(
                format!("{}: {} small-flow FCT CDF (us)", c.title, w.name()),
                plot_cdfs(&series, 72, 16),
            );
        }
    }
    report
}
